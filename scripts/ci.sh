#!/usr/bin/env bash
# Tier-1 verification, fully offline.
#
# The workspace is hermetic: no external crates, so a path-only Cargo.lock
# is committed and `CARGO_NET_OFFLINE=true` must never be a constraint.
# Run from anywhere inside the repository.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

# Scratch space for the persistence smoke; removed however the run ends.
CI_TMP="$(mktemp -d "${TMPDIR:-/tmp}/stcfa-ci.XXXXXX")"
trap 'rm -rf "$CI_TMP"' EXIT INT TERM

echo "== tier-1: formatting =="
cargo fmt --check

echo "== tier-1: release build =="
cargo build --release --offline

echo "== tier-1: test suite =="
cargo test -q --offline

echo "== tier-1: clippy (warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: query-engine batch at several worker counts =="
# batch_default reads STCFA_QUERY_THREADS; every count must be
# byte-identical to single-threaded (the suite asserts it).
for t in 1 2 8; do
  echo "-- STCFA_QUERY_THREADS=$t"
  STCFA_QUERY_THREADS=$t cargo test -q --offline --test query_engine
done

echo "== lint: machine-readable corpus report is stable =="
# `stcfa lint --format json` over the whole corpus, digested. The digest is
# pinned so a renderer or rule change that shifts any diagnostic shows up
# here as well as in tests/lint_snapshot.rs (which pins the same reports).
LINT_DIGEST_WANT="1591454845"
lint_report="$(for f in corpus/*.ml; do
  echo "== $f"
  ./target/release/stcfa lint "$f" --format json --threads 1
done)"
LINT_DIGEST_GOT="$(printf '%s\n' "$lint_report" | cksum | cut -d' ' -f1)"
if [ "$LINT_DIGEST_GOT" != "$LINT_DIGEST_WANT" ]; then
  echo "lint digest drifted: want $LINT_DIGEST_WANT got $LINT_DIGEST_GOT" >&2
  printf '%s\n' "$lint_report" >&2
  exit 1
fi
echo "-- corpus lint digest ok ($LINT_DIGEST_GOT)"

echo "== rules: differential gate (rule engine vs hand-fused lints) =="
# STCFA002/004/005 exist twice — hand-fused loops and declarative rule
# programs. The gate pins byte-identical reports over corpus and
# synthesized programs at 1/2/8 threads, plus 0-CFA oracle soundness
# for the rule-backed STCFA007/008.
cargo test -q --offline --test rules_differential

echo "== rules: corpus STCFA007/008 findings are pinned =="
# The new rule-backed lints, extracted from the corpus-wide JSON report
# and digested separately from LINT_DIGEST_WANT so a drift in the rule
# layer is attributed to it directly.
RULES_DIGEST_WANT="2082882043"
rules_report="$(for f in corpus/*.ml; do
  echo "== $f"
  ./target/release/stcfa lint "$f" --format json --threads 1 \
    | grep -E '"code":"STCFA00[78]"' || true
done)"
RULES_DIGEST_GOT="$(printf '%s\n' "$rules_report" | cksum | cut -d' ' -f1)"
if [ "$RULES_DIGEST_GOT" != "$RULES_DIGEST_WANT" ]; then
  echo "rules digest drifted: want $RULES_DIGEST_WANT got $RULES_DIGEST_GOT" >&2
  printf '%s\n' "$rules_report" >&2
  exit 1
fi
echo "-- corpus rules digest ok ($RULES_DIGEST_GOT)"

echo "== rules: clippy on the rule crate (warnings are errors) =="
cargo clippy -p stcfa-rules --all-targets --offline -- -D warnings

echo "== opt: corpus differential gate at several worker counts =="
# The optimizer must agree with the CBV evaluator on every corpus program
# under all 16 pass combinations, never grow a program, and never create
# warning-severity findings — at every thread count, since evidence
# batching must not change any rewrite decision.
for t in 1 2 8; do
  echo "-- STCFA_QUERY_THREADS=$t"
  STCFA_QUERY_THREADS=$t cargo test -q --offline --test opt_differential
done

echo "== opt: pretty-printer round-trip gate =="
# `--emit` output must re-parse to the same arena (size, label count,
# per-abstraction shape) and print as a fixed point.
cargo test -q --offline --test pretty_roundtrip

echo "== opt: clippy on the optimizer crate (warnings are errors) =="
cargo clippy -p stcfa-opt --all-targets --offline -- -D warnings

echo "== opt: CLI smoke (dead_code.ml must shrink) =="
opt_json="$(./target/release/stcfa opt corpus/dead_code.ml --report json)"
echo "$opt_json"
opt_before="$(printf '%s' "$opt_json" | sed -n 's/.*"nodes_before":\([0-9]*\).*/\1/p')"
opt_after="$(printf '%s' "$opt_json" | sed -n 's/.*"nodes_after":\([0-9]*\).*/\1/p')"
[ -n "$opt_before" ] && [ -n "$opt_after" ] && [ "$opt_after" -lt "$opt_before" ] \
  || { echo "opt smoke: dead_code.ml did not shrink (${opt_before:-?} -> ${opt_after:-?})" >&2; exit 1; }
./target/release/stcfa opt corpus/dead_code.ml --emit >/dev/null \
  || { echo "opt smoke: --emit failed" >&2; exit 1; }
echo "-- opt smoke ok ($opt_before -> $opt_after nodes)"

echo "== precision: differential gate at several worker counts =="
# Every graded answer must be monotone against Tier 0, sound against the
# cubic oracle, exact-when-claimed, and byte-identically transcribed by
# two independent scheduler builds — at 1/2/8 threads, since the batch
# engine underneath must not change an escalation decision.
for t in 1 2 8; do
  echo "-- STCFA_QUERY_THREADS=$t"
  STCFA_QUERY_THREADS=$t cargo test -q --offline --test precision_differential
done

echo "== precision: corpus --precision labels are pinned =="
# `stcfa <file> --call-sites --precision` over the whole corpus: grade,
# tier and suspicion per site. Pinned as a digest (like the lint report)
# and diffed across thread counts so a nondeterministic escalation or a
# drifted detector score is caught before the protocol surface ships it.
PRECISION_DIGEST_WANT="4167118286"
precision_ref=""
for t in 1 2 8; do
  out="$(for f in corpus/*.ml; do
    echo "== $f"
    STCFA_QUERY_THREADS=$t ./target/release/stcfa "$f" --call-sites --precision
  done)"
  if [ -z "$precision_ref" ]; then
    precision_ref="$out"
  elif [ "$out" != "$precision_ref" ]; then
    echo "precision: --precision output differs between STCFA_QUERY_THREADS=1 and $t" >&2
    diff <(printf '%s\n' "$precision_ref") <(printf '%s\n' "$out") >&2 || true
    exit 1
  fi
done
PRECISION_DIGEST_GOT="$(printf '%s\n' "$precision_ref" | cksum | cut -d' ' -f1)"
if [ "$PRECISION_DIGEST_GOT" != "$PRECISION_DIGEST_WANT" ]; then
  echo "precision digest drifted: want $PRECISION_DIGEST_WANT got $PRECISION_DIGEST_GOT" >&2
  printf '%s\n' "$precision_ref" >&2
  exit 1
fi
echo "-- corpus precision digest ok ($PRECISION_DIGEST_GOT, identical at threads 1/2/8)"

echo "== precision: clippy on the scheduler crate (warnings are errors) =="
cargo clippy -p stcfa-precision --all-targets --offline -- -D warnings

echo "== server: stdio smoke round-trip =="
# A full analyze -> warm analyze -> query -> lint -> shutdown conversation
# through the release daemon. Gates: clean exit, every response ok:true,
# and the second analyze served from the cache.
smoke_out="$(printf '%s\n' \
  '{"id":1,"op":"analyze","source":"fun id x = x; id (fn u => u)"}' \
  '{"id":2,"op":"analyze","source":"fun id x = x; id (fn u => u)"}' \
  '{"id":3,"op":"query","kind":"label-set","source":"fun id x = x; id (fn u => u)"}' \
  '{"id":4,"op":"lint","source":"fun id x = x; id (fn u => u)"}' \
  '{"id":5,"op":"shutdown"}' \
  | ./target/release/stcfa serve --stdio --threads 2)"
echo "$smoke_out"
[ "$(printf '%s\n' "$smoke_out" | wc -l)" = "5" ] || { echo "server smoke: expected 5 responses" >&2; exit 1; }
if printf '%s\n' "$smoke_out" | grep -q '"ok":false'; then
  echo "server smoke: a request failed" >&2; exit 1
fi
printf '%s\n' "$smoke_out" | sed -n '2p' | grep -q '"cached":true' \
  || { echo "server smoke: warm analyze was not a cache hit" >&2; exit 1; }

echo "== persist: warm restart smoke over stdio =="
# Two daemon generations sharing one --cache-dir. The first builds and
# persists; the second must answer the same conversation from disk —
# cached:true on its first analyze, zero misses, one disk hit — with the
# query/lint response lines byte-identical across the restart.
persist_dir="$CI_TMP/cache"
persist_requests="$(printf '%s\n' \
  '{"id":1,"op":"analyze","source":"fun id x = x; id (fn u => u)"}' \
  '{"id":2,"op":"query","kind":"label-set","source":"fun id x = x; id (fn u => u)"}' \
  '{"id":3,"op":"lint","source":"fun id x = x; id (fn u => u)"}' \
  '{"id":4,"op":"shutdown"}')"
cold_out="$(printf '%s\n' "$persist_requests" | ./target/release/stcfa serve --stdio --threads 2 --cache-dir "$persist_dir")"
warm_out="$(printf '%s\n' "$persist_requests" | ./target/release/stcfa serve --stdio --threads 2 --cache-dir "$persist_dir")"
for out in "$cold_out" "$warm_out"; do
  if printf '%s\n' "$out" | grep -q '"ok":false'; then
    echo "persist smoke: a request failed" >&2; printf '%s\n' "$out" >&2; exit 1
  fi
done
printf '%s\n' "$cold_out" | sed -n '1p' | grep -q '"cached":false' \
  || { echo "persist smoke: first generation should build" >&2; exit 1; }
printf '%s\n' "$warm_out" | sed -n '1p' | grep -q '"cached":true' \
  || { echo "persist smoke: restarted daemon rebuilt instead of loading" >&2; exit 1; }
if [ "$(printf '%s\n' "$cold_out" | sed -n '2,3p')" != "$(printf '%s\n' "$warm_out" | sed -n '2,3p')" ]; then
  echo "persist smoke: answers changed across the restart" >&2
  diff <(printf '%s\n' "$cold_out") <(printf '%s\n' "$warm_out") >&2 || true
  exit 1
fi
ls "$persist_dir"/*.stcfa >/dev/null 2>&1 \
  || { echo "persist smoke: no snapshot file in $persist_dir" >&2; exit 1; }
echo "-- warm restart served from disk, transcripts identical"

echo "== session: multi-module smoke over stdio =="
# Split a corpus program into 3 modules and drive a full protocol-v2
# session conversation (open -> query -> update one module -> query ->
# lint -> close) through the release daemon. Gates: every response
# ok:true, the update relinks exactly the edited module, and the
# transcript is byte-identical at 1, 2 and 8 worker threads.
session_requests="$(./target/release/stcfa session corpus/higher_order.ml --split 3 --emit-requests --update-last)"
session_ref=""
for t in 1 2 8; do
  out="$(printf '%s\n' "$session_requests" | ./target/release/stcfa serve --stdio --threads "$t")"
  if printf '%s\n' "$out" | grep -q '"ok":false'; then
    echo "session smoke: a request failed at --threads $t" >&2
    printf '%s\n' "$out" >&2
    exit 1
  fi
  if [ -z "$session_ref" ]; then
    session_ref="$out"
    printf '%s\n' "$out" | sed -n '1p' | grep -q '"relinked":3' \
      || { echo "session smoke: open did not link 3 modules" >&2; exit 1; }
    printf '%s\n' "$out" | sed -n '3p' | grep -q '"reused":2,"relinked":1' \
      || { echo "session smoke: update did not reuse the unchanged prefix" >&2; exit 1; }
  elif [ "$out" != "$session_ref" ]; then
    echo "session smoke: transcript differs between --threads 1 and --threads $t" >&2
    diff <(printf '%s\n' "$session_ref") <(printf '%s\n' "$out") >&2 || true
    exit 1
  fi
done
echo "-- session transcripts byte-identical at threads 1/2/8"

echo "== server: fleet fault-injection gate =="
# The connection-level fault suite (mid-burst disconnect, half-written
# lines, slow-reader backpressure, overload shedding, transcript
# invariance across shard/thread geometry) must pass explicitly, not
# just ride along in the tier-1 run.
cargo test -q --offline --test server -- fleet mid_burst half_written \
  overload slow_reader persist_tier idle

echo "== server: TCP soak smoke (64 connections) =="
# A short bursty run against the release daemon through the fleet
# transport. Gates: no connection fails, responses stay in per-stream
# order, cross-connection transcripts are byte-identical, nothing is
# shed at nominal load, and p99 stays sane.
soak_log="$CI_TMP/serve.err"
./target/release/stcfa serve --addr 127.0.0.1:0 --threads 2 --summary 2>"$soak_log" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -rf "$CI_TMP"' EXIT INT TERM
soak_addr=""
for _ in $(seq 1 200); do
  soak_addr="$(sed -n 's/^stcfa-server listening on //p' "$soak_log" | head -n1)"
  [ -n "$soak_addr" ] && break
  sleep 0.05
done
[ -n "$soak_addr" ] || { echo "soak smoke: daemon never announced its port" >&2; exit 1; }
# `stcfa soak` itself exits nonzero on failed connections or reordering.
soak_out="$(./target/release/stcfa soak --addr "$soak_addr" --connections 64 --bursts 2 --burst 4)"
echo "$soak_out"
printf '%s\n' "$soak_out" | grep -q '"overloaded":0,' \
  || { echo "soak smoke: requests shed at nominal load" >&2; exit 1; }
printf '%s\n' "$soak_out" | grep -q '"transcript_identical":true' \
  || { echo "soak smoke: transcripts diverged across connections" >&2; exit 1; }
soak_p99="$(printf '%s\n' "$soak_out" | sed -n 's/.*"p99_ns":\([0-9]*\).*/\1/p')"
[ -n "$soak_p99" ] && [ "$soak_p99" -lt 2000000000 ] \
  || { echo "soak smoke: p99 ${soak_p99:-missing} ns exceeds the 2 s sanity bound" >&2; exit 1; }
./target/release/stcfa client --addr "$soak_addr" --request '{"op":"shutdown"}' >/dev/null
wait "$serve_pid"
grep -q '^fleet summary:' "$soak_log" \
  || { echo "soak smoke: --summary line missing from stderr" >&2; exit 1; }
echo "-- soak clean: 64 connections, zero shed, p99 ${soak_p99} ns"

echo "== benches compile (not run) =="
cargo bench --no-run --offline

echo "ci.sh: all green"
