#!/usr/bin/env bash
# Tier-1 verification, fully offline.
#
# The workspace is hermetic: no external crates, so a path-only Cargo.lock
# is committed and `CARGO_NET_OFFLINE=true` must never be a constraint.
# Run from anywhere inside the repository.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== tier-1: release build =="
cargo build --release --offline

echo "== tier-1: test suite =="
cargo test -q --offline

echo "== tier-1: query-engine batch at several worker counts =="
# batch_default reads STCFA_QUERY_THREADS; every count must be
# byte-identical to single-threaded (the suite asserts it).
for t in 1 2 8; do
  echo "-- STCFA_QUERY_THREADS=$t"
  STCFA_QUERY_THREADS=$t cargo test -q --offline --test query_engine
done

echo "== benches compile (not run) =="
cargo bench --no-run --offline

echo "ci.sh: all green"
