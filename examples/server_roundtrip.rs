//! The analysis daemon exercised in-process: one `Server`, the full
//! protocol round-trip (analyze → query → lint → evict → stats →
//! shutdown), and a demonstration that the content-addressed cache makes
//! the second analyze of identical source a build-free hit.
//!
//! Run with: `cargo run --example server_roundtrip`

use std::time::Instant;

use stcfa::server::{Server, ServerOptions};

fn main() {
    let server = Server::new(ServerOptions::default());
    let send = |request: &str| {
        let response = server.handle_line(request, Instant::now());
        println!("-> {request}");
        println!("<- {response}\n");
        response
    };

    let source = r#""fun id x = x; id (fn u => u)""#;

    // First analyze: a cache miss, pays parse + analysis + freeze.
    let first = send(&format!(r#"{{"id":1,"op":"analyze","source":{source}}}"#));
    let digest = first
        .split(r#""snapshot":""#)
        .nth(1)
        .and_then(|rest| rest.get(..16))
        .expect("analyze returns a digest")
        .to_owned();

    // Second analyze of byte-identical source: same digest, cached:true —
    // the daemon never rebuilds a warm snapshot.
    send(&format!(r#"{{"id":2,"op":"analyze","source":{source}}}"#));

    // Queries name the snapshot by digest (or inline source).
    send(&format!(
        r#"{{"id":3,"op":"query","kind":"label-set","snapshot":"{digest}"}}"#
    ));
    send(&format!(r#"{{"id":4,"op":"lint","snapshot":"{digest}"}}"#));

    // Deadlines are per-request and structured: deadline_ms 0 always
    // times out, but the daemon keeps serving.
    send(&format!(
        r#"{{"id":5,"op":"analyze","source":{source},"deadline_ms":0}}"#
    ));

    // Eviction turns the digest into a checked stale-snapshot error.
    send(&format!(r#"{{"id":6,"op":"evict","snapshot":"{digest}"}}"#));
    send(&format!(
        r#"{{"id":7,"op":"query","kind":"label-set","snapshot":"{digest}"}}"#
    ));

    // Counters: one miss (the single build), hits for everything warm.
    send(r#"{"id":8,"op":"stats"}"#);
    send(r#"{"id":9,"op":"shutdown"}"#);
    assert!(server.is_stopping());
}
