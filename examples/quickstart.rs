//! Quickstart: parse a program, run the linear-time subtransitive CFA, and
//! ask the four queries from the paper's Section 2 table.
//!
//! Run with: `cargo run --example quickstart`

use stcfa::core::Analysis;
use stcfa::lambda::{ExprKind, Program};

fn main() {
    // The paper's Section 3 worked example, plus a little context.
    let source = "\
        fun id x = x;\n\
        val f = id (fn a => a + 1);\n\
        val g = id (fn b => b * 2);\n\
        f (g 10)";
    let program = Program::parse(source).expect("parses");
    println!("program ({} syntax nodes):\n{source}\n", program.size());

    // One linear-time pass builds the subtransitive graph.
    let analysis = Analysis::run(&program).expect("bounded-type program");
    let stats = analysis.stats();
    println!(
        "subtransitive graph: {} build nodes + {} close nodes, {} edges\n",
        stats.build_nodes,
        stats.close_nodes,
        stats.edges()
    );

    // Query 1: L(e) for the root — one reachability, O(graph).
    let root_labels = analysis.labels_of(program.root());
    println!(
        "L(root) = {:?}  (the program evaluates to an int: no functions)",
        root_labels
    );

    // Query 2: call targets at every application site.
    println!("\ncall targets per application site:");
    for app in program.app_sites() {
        let ExprKind::App { func, .. } = program.kind(app) else {
            unreachable!()
        };
        let targets = analysis.labels_of(*func);
        let names: Vec<String> = targets
            .iter()
            .map(|l| {
                let lam = program.lam_of_label(*l);
                let ExprKind::Lam { param, .. } = program.kind(lam) else {
                    unreachable!()
                };
                format!("fn {} => …", program.var_name(*param))
            })
            .collect();
        println!("  {app:?}: {names:?}");
    }

    // Query 3: is a specific label possible at a site? (early-exit search)
    let first_label = program.all_labels().next().expect("has a lambda");
    println!(
        "\nlabel {:?} possible at root? {}",
        first_label,
        analysis.label_reaches(program.root(), first_label)
    );

    // Query 4: the inverse — everywhere a given abstraction can show up.
    let sites = analysis.exprs_with_label(first_label);
    println!(
        "expressions that may evaluate to {first_label:?}: {} occurrences",
        sites.len()
    );
}
