//! The flow-powered linter over the whole sample corpus: freeze one
//! `QueryEngine` snapshot per program, run every rule against it, and show
//! the cubic-CFA cross-check that keeps the flow-dead rule free of false
//! positives.
//!
//! Run with: `cargo run --example lint_report`

use std::path::PathBuf;

use stcfa::cfa0::Cfa0;
use stcfa::core::{Analysis, QueryEngine};
use stcfa::lambda::{ExprKind, Program};
use stcfa::lint::{lint, render_text, LintOptions, RuleCode};

fn main() {
    let corpus = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus"));
    let mut files: Vec<_> = std::fs::read_dir(&corpus)
        .expect("corpus directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "ml"))
        .collect();
    files.sort();

    let mut total = 0usize;
    let mut flow_dead = 0usize;
    for file in &files {
        let name = file.file_name().unwrap().to_string_lossy();
        let src = std::fs::read_to_string(file).expect("readable corpus file");
        let program = Program::parse(&src).expect("corpus parses");
        let analysis = Analysis::run(&program).expect("corpus is bounded-type");
        let engine = QueryEngine::freeze(&analysis);
        let diags = lint(&program, &analysis, &engine, &LintOptions::default());

        println!("== {name} ({} findings)", diags.len());
        if !diags.is_empty() {
            print!("{}", render_text(&diags));
        }
        total += diags.len();

        // The flow-dead rule already ran this oracle internally before
        // reporting; re-run it here to make the guarantee observable.
        let dead: Vec<_> = diags
            .iter()
            .filter(|d| {
                matches!(
                    d.code,
                    RuleCode::FlowDeadApplication | RuleCode::StuckApplication
                )
            })
            .collect();
        if !dead.is_empty() {
            let cfa = Cfa0::analyze(&program);
            for d in dead {
                let ExprKind::App { func, .. } = program.kind(d.expr) else {
                    unreachable!("flow-dead diagnostics anchor at applications");
                };
                assert!(
                    cfa.labels(&program, *func).is_empty(),
                    "cubic CFA disputes {} at {:?}",
                    d.code,
                    d.expr
                );
                flow_dead += 1;
            }
        }
        println!();
    }

    println!(
        "{} diagnostics over {} programs; {} dead-call finding(s) \
         confirmed by the cubic oracle",
        total,
        files.len(),
        flow_dead
    );
}
