//! Linear-time effects audit (paper, Section 8) over a realistic program:
//! colour the subtransitive graph to find every expression that may
//! perform I/O, and cross-check against the quadratic reference pipeline
//! and against what actually happens when the program runs.
//!
//! Run with: `cargo run --example effects_audit`

use std::time::Instant;

use stcfa::apps::{effects, effects_via_cfa0};
use stcfa::cfa0::Cfa0;
use stcfa::core::Analysis;
use stcfa::lambda::eval::{eval, EvalOptions};
use stcfa::workloads::life;

fn main() {
    let program = life::program();
    println!(
        "auditing `life` ({} syntax nodes, {} functions)",
        program.size(),
        program.label_count()
    );

    // Linear path: subtransitive graph + colouring.
    let t0 = Instant::now();
    let analysis = Analysis::run(&program).expect("life is bounded-type");
    let fast = effects(&program, &analysis);
    let fast_time = t0.elapsed();

    // Reference path: full cubic CFA + fixpoint post-processing.
    let t1 = Instant::now();
    let cfa = Cfa0::analyze(&program);
    let slow = effects_via_cfa0(&program, &cfa);
    let slow_time = t1.elapsed();

    assert_eq!(
        fast.effectful_exprs(),
        slow.effectful_exprs(),
        "the colouring must agree with the reference"
    );
    println!(
        "effectful occurrences: {} of {} ({:.1}%)",
        fast.count(),
        program.size(),
        100.0 * fast.count() as f64 / program.size() as f64
    );
    println!("  graph colouring: {fast_time:?}");
    println!("  CFA + post-pass: {slow_time:?}");

    // Ground truth: every expression that dynamically performed an effect
    // must be flagged.
    let out = eval(
        &program,
        EvalOptions {
            fuel: 10_000_000,
            inputs: vec![],
            max_depth: None,
        },
    )
    .expect("life terminates");
    for at in &out.trace.effects {
        assert!(
            fast.is_effectful(*at),
            "dynamic effect at {at:?} was not predicted"
        );
    }
    println!(
        "dynamic check: {} runtime effects, all predicted by the static audit",
        out.trace.effects.len()
    );
}
