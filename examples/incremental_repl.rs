//! A scripted REPL session showing the *incremental* subtransitive
//! analysis: each fragment is parsed, appended to the session program, and
//! analyzed at a cost proportional to the fragment — the paper's
//! "simple, incremental, demand-driven" remark in action.
//!
//! Run with: `cargo run --example incremental_repl`

use stcfa::core::incremental::IncrementalAnalysis;
use stcfa::lambda::session::SessionProgram;

fn main() {
    let mut session = SessionProgram::new();
    let mut analysis = IncrementalAnalysis::new(Default::default());

    let fragments = [
        "fun id x = x;",
        "fun compose f = fn g => fn x => f (g x);",
        "val inc = fn n => n + 1;",
        "val twice = compose inc inc;",
        "val weird = id (fn b => b);",
        "twice 40",
    ];

    for frag in fragments {
        let f = session.define(frag).expect("fragment parses");
        let delta = analysis.update(&session).expect("bounded types");
        println!("> {frag}");
        println!(
            "  [update: +{} exprs, +{} graph nodes, +{} edges — total {} nodes]",
            delta.new_exprs,
            delta.new_nodes,
            delta.new_edges,
            analysis.node_count()
        );
        for b in &f.bindings {
            let labels = analysis.labels_of_binder(session.program(), b.binder);
            println!("  {} : {} possible function(s)", b.name, labels.len());
        }
        if let Some(v) = f.value {
            let labels = analysis.labels_of(session.program(), v);
            println!("  value may evaluate to {} function(s)", labels.len());
        }
    }

    // The session's knowledge is cumulative: `twice` flows through
    // `compose`, whose summary was built two fragments earlier.
    let twice = session.lookup("twice").expect("defined");
    let labels = analysis.labels_of_binder(session.program(), twice);
    println!(
        "\nfinal: `twice` can be {} function(s) — the composition closure",
        labels.len()
    );
    assert!(!labels.is_empty());
}
