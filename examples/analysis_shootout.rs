//! Four analyses, one program: compare the precision and cost of
//! unification CFA, standard cubic CFA, the linear-time subtransitive
//! analysis, and its polyvariant extension on the paper's join-point
//! pattern (Section 2).
//!
//! Run with: `cargo run --release --example analysis_shootout`

use std::time::Instant;

use stcfa::cfa0::Cfa0;
use stcfa::core::{Analysis, PolyAnalysis};
use stcfa::lambda::{ExprKind, Program};
use stcfa::sba::Sba;
use stcfa::unify::UnifyCfa;
use stcfa::workloads::join_point;

fn avg_targets(program: &Program, labels_of_func: impl Fn(stcfa::lambda::ExprId) -> usize) -> f64 {
    let mut total = 0usize;
    let mut sites = 0usize;
    for app in program.app_sites() {
        let ExprKind::App { func, .. } = program.kind(app) else {
            unreachable!()
        };
        total += labels_of_func(*func);
        sites += 1;
    }
    total as f64 / sites.max(1) as f64
}

fn main() {
    let program = join_point::program(24);
    println!(
        "join-point program: {} nodes, {} functions, {} call sites\n",
        program.size(),
        program.label_count(),
        program.app_sites().len()
    );
    println!(
        "{:<28} {:>12} {:>22}",
        "analysis", "time", "avg targets per site"
    );

    let t = Instant::now();
    let uni = UnifyCfa::analyze(&program);
    let uni_time = t.elapsed();
    let uni_avg = avg_targets(&program, |f| uni.labels(f).len());
    println!(
        "{:<28} {:>12?} {:>22.2}",
        "equality-based (unify)", uni_time, uni_avg
    );

    let t = Instant::now();
    let sba = Sba::analyze(&program);
    let sba_time = t.elapsed();
    let sba_avg = avg_targets(&program, |f| sba.labels(&program, f).len());
    println!(
        "{:<28} {:>12?} {:>22.2}",
        "set-based (SBA)", sba_time, sba_avg
    );

    let t = Instant::now();
    let cfa = Cfa0::analyze(&program);
    let cfa_time = t.elapsed();
    let cfa_avg = avg_targets(&program, |f| cfa.labels(&program, f).len());
    println!(
        "{:<28} {:>12?} {:>22.2}",
        "standard 0-CFA (cubic)", cfa_time, cfa_avg
    );

    let t = Instant::now();
    let sub = Analysis::run(&program).unwrap();
    let sub_build = t.elapsed();
    let sub_avg = avg_targets(&program, |f| sub.labels_of(f).len());
    println!(
        "{:<28} {:>12?} {:>22.2}",
        "subtransitive (linear)", sub_build, sub_avg
    );

    let t = Instant::now();
    let poly = PolyAnalysis::run(&program).unwrap();
    let poly_time = t.elapsed();
    let poly_avg = avg_targets(&program, |f| poly.labels_of(f).len());
    println!(
        "{:<28} {:>12?} {:>22.2}",
        "polyvariant subtransitive", poly_time, poly_avg
    );

    println!(
        "\nreading the table: the equality-based analysis is fast but merges\n\
         everything the join point touches; inclusion-based analyses agree\n\
         with each other (≈{cfa_avg:.2}); polyvariance splits the join point\n\
         per call site (≈{poly_avg:.2})."
    );
    assert!(uni_avg >= cfa_avg);
    assert!(
        (cfa_avg - sub_avg).abs() < 1e-9,
        "subtransitive ≡ standard CFA"
    );
    assert!(poly_avg <= sub_avg);
}
