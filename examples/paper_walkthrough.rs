//! A guided tour of the paper's Section 3 worked example:
//! `(λx.(x x)) (λ'x'.x')`.
//!
//! Prints the build-phase edges (ABS-1/ABS-2/APP-1/APP-2), the close-phase
//! edges the demand-driven rules add, and the multi-step path that replaces
//! DTC's single transition `(λx.(x x)) (λ'x'.x') → λ'x'.x'`.
//!
//! Run with: `cargo run --example paper_walkthrough`

use stcfa::cfa0::Dtc;
use stcfa::core::{Analysis, NodeId, NodeKind};
use stcfa::lambda::Program;

fn describe(analysis: &Analysis, program: &Program, n: NodeId) -> String {
    match analysis.nodes().kind(n) {
        NodeKind::Expr(e) => match program.kind(e) {
            stcfa::lambda::ExprKind::Lam { param, .. } => {
                format!("λ{}", program.var_name(*param))
            }
            stcfa::lambda::ExprKind::App { .. } => {
                if e == program.root() {
                    "(λx.(x x) λy.y)".into()
                } else {
                    "(x x)".into()
                }
            }
            other => format!("{other:?}"),
        },
        NodeKind::Binder(v) => program.var_name(v).to_string(),
        NodeKind::Dom(p) => format!("dom({})", describe(analysis, program, p)),
        NodeKind::Ran(p) => format!("ran({})", describe(analysis, program, p)),
        other => format!("{other:?}"),
    }
}

fn main() {
    let program = Program::parse("(fn x => x x) (fn y => y)").unwrap();
    let analysis = Analysis::run(&program).unwrap();
    let stats = analysis.stats();

    println!("program: (λx.(x x)) (λ'y.y)\n");
    println!(
        "build phase: {} nodes, {} edges; close phase adds {} nodes, {} edges\n",
        stats.build_nodes, stats.build_edges, stats.close_nodes, stats.close_edges
    );

    println!("all edges of the subtransitive graph (consumer → producer):");
    for i in 0..analysis.node_count() {
        let n = NodeId::from_index(i);
        for &s in analysis.succs(n) {
            println!(
                "  {} → {}",
                describe(&analysis, &program, n),
                describe(&analysis, &program, NodeId::from_index(s as usize))
            );
        }
    }

    // The headline result: reachability on this graph equals standard CFA.
    let labels = analysis.labels_of(program.root());
    println!("\nL(root) via graph reachability: {labels:?}");

    // The multi-step path that witnesses it — the paper's Section 3
    // derivation, recovered mechanically.
    let path = analysis
        .witness_path(program.root(), labels[0])
        .expect("the label is reachable");
    println!("\nwitness path (the paper's multi-step LC derivation):");
    for (i, &n) in path.iter().enumerate() {
        let arrow = if i == 0 { "  " } else { "→ " };
        println!("  {arrow}{}", describe(&analysis, &program, n));
    }

    let dtc = Dtc::analyze(&program).unwrap();
    println!(
        "L(root) via the DTC system:    {:?}",
        dtc.labels(program.root())
    );
    assert_eq!(labels, dtc.labels(program.root()));
    println!(
        "\nDTC adds the transition root → λy in one (cubic) step; the\n\
         subtransitive graph spells it as a multi-step path — Proposition 1."
    );
}
