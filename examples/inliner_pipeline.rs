//! A miniature compiler pass built on the paper's linear-time analyses:
//! repeatedly find call sites with a *unique, called-once* target (1-limited
//! CFA + called-once analysis, Sections 8–9) and inline them, verifying
//! after every step that observable behaviour is unchanged.
//!
//! Run with: `cargo run --example inliner_pipeline`

use stcfa::apps::{find_candidates, inline_once};
use stcfa::core::Analysis;
use stcfa::lambda::eval::{eval, EvalOptions};
use stcfa::lambda::Program;

fn main() {
    let source = "\
        fun square n = n * n;\n\
        fun cube n = n * square n;\n\
        let val step = fn x => cube x + 1 in\n\
          print (step 3)\n\
        end";
    let mut program = Program::parse(source).expect("parses");
    println!("before:\n{}\n", program.to_source());

    let reference = eval(&program, EvalOptions::default()).expect("terminates");

    let mut round = 0;
    loop {
        let analysis = Analysis::run(&program).expect("bounded-type program");
        let candidates = find_candidates(&program, &analysis);
        let Some(c) = candidates.first().copied() else {
            break;
        };
        round += 1;
        println!(
            "round {round}: inlining the unique target {:?} at call site {:?}",
            c.label, c.site
        );
        program = inline_once(&program, &analysis, c.site).expect("candidate inlines");

        // The pass must preserve observable behaviour.
        let now = eval(&program, EvalOptions::default()).expect("terminates");
        assert_eq!(
            now.outputs, reference.outputs,
            "inlining changed the output!"
        );
    }

    println!("\nafter {round} rounds:\n{}", program.to_source());
    println!(
        "\napplication sites: {} (was {})",
        program.app_sites().len(),
        Program::parse(source).unwrap().app_sites().len()
    );
    println!("printed output unchanged: {:?}", reference.outputs);
}
