//! Machine-independent scaling-shape assertions: the headline complexity
//! claims of the paper, checked on *deterministic work counters* (never
//! wall-clock), so they hold on any host.

use stcfa_bench::fit_exponent;
use stcfa_core::Analysis;
use stcfa_sba::Sba;
use stcfa_workloads::{cubic, join_point};

const SIZES: [usize; 5] = [8, 16, 32, 64, 128];
/// Smaller sweep for the deliberately superlinear baselines (debug-mode
/// cubic work at n=128 alone takes ~a minute).
const BASELINE_SIZES: [usize; 4] = [8, 16, 32, 64];

#[test]
fn sba_work_is_superquadratic_on_the_cubic_family() {
    let points: Vec<(f64, f64)> = BASELINE_SIZES
        .iter()
        .map(|&n| {
            let p = cubic::program(n);
            let w = Sba::analyze(&p).stats().work_units;
            (p.size() as f64, w as f64)
        })
        .collect();
    let k = fit_exponent(&points);
    assert!(
        k > 2.3,
        "expected (near-)cubic work growth for SBA, measured exponent {k:.2}"
    );
}

#[test]
fn subtransitive_graph_is_linear_on_the_cubic_family() {
    let nodes: Vec<(f64, f64)> = SIZES
        .iter()
        .map(|&n| {
            let p = cubic::program(n);
            let a = Analysis::run(&p).unwrap();
            (p.size() as f64, a.node_count() as f64)
        })
        .collect();
    let k = fit_exponent(&nodes);
    assert!(
        (0.85..=1.15).contains(&k),
        "expected linear node growth, measured exponent {k:.2}"
    );
    let edges: Vec<(f64, f64)> = SIZES
        .iter()
        .map(|&n| {
            let p = cubic::program(n);
            let a = Analysis::run(&p).unwrap();
            (p.size() as f64, a.edge_count() as f64)
        })
        .collect();
    let k = fit_exponent(&edges);
    assert!(
        (0.85..=1.2).contains(&k),
        "expected linear edge growth, measured exponent {k:.2}"
    );
}

#[test]
fn close_phase_work_is_linear_on_join_points() {
    // The paper's explanation for standard CFA's observed non-linearity;
    // the subtransitive close phase must stay linear on it.
    let points: Vec<(f64, f64)> = SIZES
        .iter()
        .map(|&n| {
            let p = join_point::program(n);
            let a = Analysis::run(&p).unwrap();
            (p.size() as f64, a.stats().edges_processed as f64)
        })
        .collect();
    let k = fit_exponent(&points);
    assert!(
        (0.85..=1.2).contains(&k),
        "expected linear closure work, measured exponent {k:.2}"
    );
}

#[test]
fn query_all_output_is_quadratic_on_the_cubic_family() {
    // "All calls from all call sites" is quadratic *output*: O(n) sites
    // with O(n) callees each.
    let points: Vec<(f64, f64)> = SIZES
        .iter()
        .map(|&n| {
            let p = cubic::program(n);
            let a = Analysis::run(&p).unwrap();
            let mut pairs = 0usize;
            for app in p.nontrivial_apps() {
                let stcfa_lambda::ExprKind::App { func, .. } = p.kind(app) else {
                    unreachable!()
                };
                pairs += a.labels_of(*func).len();
            }
            (p.size() as f64, pairs as f64)
        })
        .collect();
    let k = fit_exponent(&points);
    assert!(
        (1.8..=2.2).contains(&k),
        "expected quadratic pair output, measured exponent {k:.2}"
    );
}

#[test]
fn cubic_baseline_activations_grow_superlinearly() {
    // The standard algorithm's own work counters on the same family.
    let points: Vec<(f64, f64)> = BASELINE_SIZES
        .iter()
        .map(|&n| {
            let p = cubic::program(n);
            let cfa = stcfa_cfa0::Cfa0::analyze(&p);
            (p.size() as f64, cfa.stats().propagations as f64)
        })
        .collect();
    let k = fit_exponent(&points);
    assert!(
        k > 1.5,
        "expected superlinear propagation work for the cubic baseline, got {k:.2}"
    );
}
