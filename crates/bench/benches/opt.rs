//! Cost of the flow-directed optimizer: what does a full fixpoint run
//! pay on top of the analysis it reuses, and how do the passes split
//! that bill? Three measurements per input —
//!
//! 1. `analyze_only` — parse-to-snapshot baseline (`Analysis::run` +
//!    `QueryEngine::freeze`), the work the optimizer would do anyway;
//! 2. `optimize_full` — the default pipeline to fixpoint, including
//!    every per-round re-analysis and the 0-CFA oracle. Counters carry
//!    the node-count reduction and rewrites performed, so rewrites/sec
//!    falls out as `performed / min_ns`;
//! 3. `pass/<name>` — each pass alone, isolating which one dominates.
//!
//! Inputs are the corpus program with real dead code (the optimizer's
//! acceptance workload) and a seeded synthesized program (realistic
//! shape, little to rewrite — the "optimizer as no-op" overhead case).
//! Sizes stay small: the *ratios* are the result and the CI host is
//! single-core.

use stcfa_core::{Analysis, QueryEngine};
use stcfa_devkit::bench::{BenchmarkId, Criterion};
use stcfa_devkit::{criterion_group, criterion_main};
use stcfa_lambda::Program;
use stcfa_opt::{optimize, OptOptions, Pass, PassSet};
use stcfa_workloads::synth::{generate, SynthConfig};
use std::hint::black_box;

fn inputs() -> Vec<(String, Program)> {
    let dead_code = concat!(env!("CARGO_MANIFEST_DIR"), "/../../corpus/dead_code.ml");
    let src = std::fs::read_to_string(dead_code).expect("corpus/dead_code.ml exists");
    let mut out = vec![("dead_code".to_owned(), Program::parse(&src).unwrap())];
    out.push((
        "synth300".to_owned(),
        generate(&SynthConfig {
            seed: 7,
            target_size: 300,
            max_type_depth: 2,
            effect_prob: 0.15,
            max_tuple_width: 3,
            datatypes: true,
        }),
    ));
    out
}

fn options(passes: PassSet) -> OptOptions {
    OptOptions {
        passes,
        threads: 1,
        ..OptOptions::default()
    }
}

fn bench_opt(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt");
    group.sample_size(10);
    for (name, p) in inputs() {
        // 1. The snapshot the optimizer consumes — its lower bound.
        group.bench_with_input(BenchmarkId::new("analyze_only", &name), &p, |b, p| {
            b.iter(|| {
                let a = Analysis::run(p).unwrap();
                black_box(QueryEngine::freeze(&a))
            })
        });

        // 2. Default pipeline to fixpoint. The counters make the
        // wall-clock interpretable: performed / min_ns is rewrites/sec,
        // and nodes_before - nodes_after is what the time bought.
        let out = optimize(&p, &options(PassSet::all())).unwrap();
        group.bench_with_input(BenchmarkId::new("optimize_full", &name), &p, |b, p| {
            b.iter(|| black_box(optimize(p, &options(PassSet::all())).unwrap()))
        });
        group
            .counter("nodes_before", out.report.nodes_before as u64)
            .counter("nodes_after", out.report.nodes_after as u64)
            .counter("rewrites_performed", out.report.performed_total() as u64)
            .counter("rounds", out.report.rounds as u64);

        // 3. Each pass alone — where the bill lands.
        for pass in Pass::all() {
            let solo = optimize(&p, &options(PassSet::only(pass))).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("pass/{}", pass.name()), &name),
                &p,
                |b, p| b.iter(|| black_box(optimize(p, &options(PassSet::only(pass))).unwrap())),
            );
            group.counter("rewrites_performed", solo.report.performed_total() as u64);
        }
    }
    group.finish();
}

criterion_group!(benches, bench_opt);
criterion_main!(benches);
