//! E1 / the Section 2 complexity table: the four control-flow queries,
//! standard algorithm vs subtransitive graph, at two program sizes (the
//! scaling *ratio* is the result; absolute numbers depend on the host) —
//! plus the frozen [`QueryEngine`] variants: the same queries off the
//! SCC-condensed bit-parallel summary, and batches at 1/2/8 workers.

use stcfa_cfa0::Cfa0;
use stcfa_core::{Analysis, Query, QueryEngine};
use stcfa_devkit::bench::{BenchmarkId, Criterion};
use stcfa_devkit::{criterion_group, criterion_main};
use stcfa_workloads::cubic;
use std::hint::black_box;

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("queries");
    group.sample_size(10);
    for &n in &[16usize, 64] {
        let p = cubic::program(n);
        // The standard algorithm answers any query by computing everything.
        group.bench_with_input(BenchmarkId::new("std_any_query", n), &p, |b, p| {
            b.iter(|| black_box(Cfa0::analyze(p)))
        });
        let a = Analysis::run(&p).unwrap();
        let e = p.root();
        let l = p.all_labels().next().unwrap();
        group.bench_with_input(BenchmarkId::new("new_member", n), &a, |b, a| {
            b.iter(|| black_box(a.label_reaches(e, l)))
        });
        group.bench_with_input(BenchmarkId::new("new_labels_of", n), &a, |b, a| {
            b.iter(|| black_box(a.labels_of(e)))
        });
        group.bench_with_input(BenchmarkId::new("new_inverse", n), &a, |b, a| {
            b.iter(|| black_box(a.exprs_with_label(l)))
        });
        group.bench_with_input(
            BenchmarkId::new("new_all_label_sets", n),
            &(&p, &a),
            |b, (p, a)| b.iter(|| black_box(a.all_label_sets(p))),
        );

        // Freezing cost (CSR + condensation, no sweep).
        group.bench_with_input(BenchmarkId::new("engine_freeze", n), &a, |b, a| {
            b.iter(|| black_box(QueryEngine::freeze(a)))
        });
        // Engine variants off the completed summary sweep.
        let q = QueryEngine::freeze(&a);
        q.prepare();
        group.bench_with_input(BenchmarkId::new("engine_member", n), &q, |b, q| {
            b.iter(|| black_box(q.label_reaches(e, l)))
        });
        group.bench_with_input(BenchmarkId::new("engine_labels_of", n), &q, |b, q| {
            b.iter(|| black_box(q.labels_of(e)))
        });
        group.bench_with_input(BenchmarkId::new("engine_inverse", n), &q, |b, q| {
            b.iter(|| black_box(q.exprs_with_label(l)))
        });
        // Freeze + sweep + read everything: the honest comparison against
        // new_all_label_sets, which amortizes nothing.
        group.bench_with_input(
            BenchmarkId::new("engine_all_label_sets_cold", n),
            &a,
            |b, a| {
                b.iter(|| {
                    let q = QueryEngine::freeze(a);
                    black_box(q.all_label_sets())
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("engine_all_label_sets", n), &q, |b, q| {
            b.iter(|| black_box(q.all_label_sets()))
        });

        // The same per-expression query list, sharded across workers.
        let queries: Vec<Query> = p.exprs().map(Query::LabelsOf).collect();
        for &threads in &[1usize, 2, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("engine_batch_t{threads}"), n),
                &(&q, &queries),
                |b, (q, queries)| b.iter(|| black_box(q.batch(queries, threads))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
