//! Adaptive precision scheduler economics (EXPERIMENTS.md E17): what a
//! graded answer costs relative to the two extremes it interpolates
//! between — the always-linear Tier 0 lookup and a whole-program cubic
//! re-analysis.
//!
//! Three measurements over the largest corpus program (plus a budget
//! sweep):
//!
//! 1. `tier0_all_sites` — the frozen engine answering every query site.
//!    The floor the scheduler must not disturb for unsuspicious sites.
//! 2. `cubic_whole` vs `cubic_cone` — full `Cfa0` against the
//!    cone-restricted run the scheduler actually escalates to. The
//!    acceptance bar: the cone run stays **under 25 %** of the
//!    whole-program time (compare the two `min_ns` records in
//!    `BENCH_precision.json`; `cone_expr_fraction_milli` explains why).
//! 3. `scheduled_all_sites/<budget>` — the scheduler over every site at
//!    budget 0 (never escalate), the default, and unlimited. Counters
//!    report how many sites escalated (`cone_runs`) and refined
//!    (`refined`), so the escalated fraction is `cone_runs / sites`.

use stcfa_cfa0::Cfa0;
use stcfa_core::{Analysis, QueryEngine};
use stcfa_devkit::bench::{BenchmarkId, Criterion};
use stcfa_devkit::{criterion_group, criterion_main};
use stcfa_lambda::{ExprId, ExprKind, Program};
use stcfa_precision::{demand_cone, PrecisionScheduler, SuspicionIndex};
use std::hint::black_box;

fn corpus() -> Vec<(String, Program)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../corpus");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "ml"))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let name = p.file_stem().unwrap().to_string_lossy().into_owned();
            let src = std::fs::read_to_string(&p).expect("readable");
            (name, Program::parse(&src).expect("corpus parses"))
        })
        .collect()
}

/// The query sites the scheduler serves: the root plus every
/// application's operator (the `--call-sites` surface).
fn sites(p: &Program) -> Vec<ExprId> {
    let mut out = vec![p.root()];
    for app in p.app_sites() {
        if let ExprKind::App { func, .. } = p.kind(app) {
            out.push(*func);
        }
    }
    out
}

fn bench_precision(c: &mut Criterion) {
    let (name, program) = corpus()
        .into_iter()
        .max_by_key(|(_, p)| p.size())
        .expect("non-empty corpus");
    let analysis = Analysis::run(&program).expect("corpus analyzes");
    let engine = QueryEngine::freeze(&analysis);
    engine.prepare();
    let suspicion = SuspicionIndex::build(&analysis, &engine);
    let all_sites = sites(&program);

    let mut group = c.benchmark_group("precision");
    group.sample_size(10);

    group.bench_with_input(
        BenchmarkId::new("tier0_all_sites", &name),
        &all_sites,
        |b, sites| {
            b.iter(|| {
                let mut total = 0usize;
                for &e in sites {
                    total += engine.labels_of(e).len();
                }
                black_box(total)
            })
        },
    );
    group.counter("sites", all_sites.len() as u64);

    group.bench_with_input(BenchmarkId::new("cubic_whole", &name), &program, |b, p| {
        b.iter(|| black_box(Cfa0::analyze(p).labels(p, p.root()).len()))
    });

    // The cone the scheduler would actually charge for: the most
    // suspicious site's slice (ties broken by site order, so the pick
    // is deterministic).
    let worst = all_sites
        .iter()
        .copied()
        .max_by_key(|&e| suspicion.of_expr(&engine, e))
        .expect("at least the root");
    let cone = demand_cone(&program, &engine, &[engine.node_of_expr(worst).index()]);
    group.bench_with_input(
        BenchmarkId::new("cubic_cone", &name),
        &(&program, &cone),
        |b, (p, cone)| {
            b.iter(|| black_box(Cfa0::analyze_within(p, &cone.exprs).labels(p, worst).len()))
        },
    );
    group.counter("cone_nodes", cone.node_count as u64);
    group.counter(
        "cone_expr_fraction_milli",
        (cone.expr_fraction(&program) * 1000.0) as u64,
    );

    for (label, budget) in [
        ("budget0", 0usize),
        ("default", PrecisionScheduler::DEFAULT_BUDGET),
        ("unlimited", usize::MAX),
    ] {
        group.bench_with_input(
            BenchmarkId::new("scheduled_all_sites", format!("{name}/{label}")),
            &all_sites,
            |b, sites| {
                b.iter(|| {
                    // A fresh scheduler per iteration: memoization would
                    // otherwise collapse every run after the first into
                    // lookups and undersell the escalation cost.
                    let sched =
                        PrecisionScheduler::new(suspicion.clone(), analysis.policy(), budget);
                    let mut total = 0usize;
                    for &e in sites {
                        total += sched.labels_of(&program, &engine, e).0.len();
                    }
                    black_box((total, sched.stats().cone_runs))
                })
            },
        );
        let sched = PrecisionScheduler::new(suspicion.clone(), analysis.policy(), budget);
        for &e in &all_sites {
            sched.labels_of(&program, &engine, e);
        }
        let stats = sched.stats();
        group.counter("sites", all_sites.len() as u64);
        group.counter("cone_runs", stats.cone_runs);
        group.counter("refined", stats.refined);
        group.counter(
            "escalated_fraction_milli",
            (stats.cone_runs * 1000) / all_sites.len().max(1) as u64,
        );
    }

    group.finish();
}

criterion_group!(benches, bench_precision);
criterion_main!(benches);
