//! The rule layer vs its hand-fused twins: what does declarativity
//! cost? Three comparisons per program size —
//!
//! 1. the full hand-fused lint report vs the rule-backed STCFA002/004/005
//!    backend (`lint_rule_backed`, which includes `ExtDb` construction
//!    the way a cold request pays it);
//! 2. the semi-naive dominator program over the call graph, cold
//!    (fresh `ExtDb`) and warm (derived tables cached);
//! 3. taint reachability, full sweep vs a single demand-mode
//!    membership query — the asymmetry the demand evaluator exists for.
//!
//! Inputs are the parameterized cubic-family program (dense flow) and a
//! seeded synthesized program (realistic shape). Sizes are kept small:
//! the *ratios* are the result, and the CI host is single-core.

use stcfa_core::{Analysis, QueryEngine};
use stcfa_devkit::bench::{BenchmarkId, Criterion};
use stcfa_devkit::{criterion_group, criterion_main};
use stcfa_lambda::Program;
use stcfa_lint::{lint, lint_rule_backed, LintOptions};
use stcfa_rules::{dominators, expr_is_tainted, tainted_exprs, ExtDb};
use stcfa_workloads::cubic;
use stcfa_workloads::synth::{generate, SynthConfig};
use std::hint::black_box;

fn inputs() -> Vec<(String, Program)> {
    let mut out = Vec::new();
    for &n in &[16usize, 64] {
        out.push((format!("cubic{n}"), cubic::program(n)));
    }
    out.push((
        "synth300".to_owned(),
        generate(&SynthConfig {
            seed: 7,
            target_size: 300,
            max_type_depth: 2,
            effect_prob: 0.15,
            max_tuple_width: 3,
            datatypes: true,
        }),
    ));
    out
}

fn bench_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("rules");
    group.sample_size(10);
    for (name, p) in inputs() {
        let a = Analysis::run(&p).unwrap();
        let q = QueryEngine::freeze(&a);
        q.prepare();

        // 1. Full hand-fused report vs the rule-backed subset backend.
        group.bench_with_input(
            BenchmarkId::new("lint_hand_fused", &name),
            &(&p, &a, &q),
            |b, (p, a, q)| b.iter(|| black_box(lint(p, a, q, &LintOptions { threads: 1 }))),
        );
        group.bench_with_input(
            BenchmarkId::new("lint_rule_backed", &name),
            &(&p, &a, &q),
            |b, (p, a, q)| b.iter(|| black_box(lint_rule_backed(p, a, q))),
        );

        // 2. Dominators: cold pays ExtDb + call-graph derivation, warm
        // reuses the cached derived tables and measures the stratified
        // evaluation alone.
        group.bench_with_input(
            BenchmarkId::new("dominators_cold", &name),
            &(&p, &a, &q),
            |b, (p, a, q)| {
                b.iter(|| {
                    let db = ExtDb::new(p, a, q);
                    black_box(dominators(&db))
                })
            },
        );
        let db = ExtDb::new(&p, &a, &q);
        db.callgraph();
        group.bench_with_input(BenchmarkId::new("dominators_warm", &name), &db, |b, db| {
            b.iter(|| black_box(dominators(db)))
        });

        // 3. Taint: the whole-program sweep vs one demand-mode
        // membership question at the root, same sources (the
        // effectful-bodied labels, or label 0 when there are none).
        let sources: Vec<_> = {
            let eff = db.effects();
            let mut s: Vec<_> = p
                .all_labels()
                .filter(|&l| match p.kind(p.lam_of_label(l)) {
                    stcfa_lambda::ExprKind::Lam { body, .. } => eff.is_effectful(*body),
                    _ => false,
                })
                .collect();
            if s.is_empty() {
                s.extend(p.all_labels().take(1));
            }
            s
        };
        group.bench_with_input(
            BenchmarkId::new("taint_full", &name),
            &(&db, &sources),
            |b, (db, sources)| b.iter(|| black_box(tainted_exprs(db, sources))),
        );
        let root = p.root();
        group.bench_with_input(
            BenchmarkId::new("taint_demand_root", &name),
            &(&db, &sources),
            |b, (db, sources)| b.iter(|| black_box(expr_is_tainted(db, sources, root))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rules);
criterion_main!(benches);
