//! Incremental analysis: the cost of keeping up with a growing session
//! (update per fragment) vs re-analyzing from scratch at each step.

use stcfa_core::incremental::IncrementalAnalysis;
use stcfa_devkit::bench::{BenchmarkId, Criterion};
use stcfa_devkit::{criterion_group, criterion_main};
use stcfa_lambda::session::SessionProgram;
use std::hint::black_box;

fn build_session(fragments: usize) -> Vec<String> {
    let mut out = vec!["fun id x = x;".to_owned()];
    for i in 0..fragments {
        out.push(format!("val v{i} = id (fn q{i} => q{i} + {i});"));
    }
    out
}

fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental");
    group.sample_size(10);
    for &n in &[16usize, 64] {
        let fragments = build_session(n);
        group.bench_with_input(
            BenchmarkId::new("update_per_fragment", n),
            &fragments,
            |b, fragments| {
                b.iter(|| {
                    let mut session = SessionProgram::new();
                    let mut a = IncrementalAnalysis::new(Default::default());
                    for f in fragments {
                        session.define(f).unwrap();
                        a.update(&session).unwrap();
                    }
                    black_box(a.node_count())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rescratch_per_fragment", n),
            &fragments,
            |b, fragments| {
                b.iter(|| {
                    let mut session = SessionProgram::new();
                    let mut last = 0usize;
                    for f in fragments {
                        session.define(f).unwrap();
                        let mut a = IncrementalAnalysis::new(Default::default());
                        a.update(&session).unwrap();
                        last = a.node_count();
                    }
                    black_box(last)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
