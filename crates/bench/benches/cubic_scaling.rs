//! E2 / paper Table 1: the parameterized cubic benchmark.
//!
//! Regenerates the three measured quantities of the paper's first table —
//! SBA (cubic baseline) analysis time, the linear algorithm's build+close
//! time, and the quadratic cost of listing all functions from all
//! non-trivial call sites.

use stcfa_core::Analysis;
use stcfa_devkit::bench::{BenchmarkId, Criterion};
use stcfa_devkit::{criterion_group, criterion_main};
use stcfa_lambda::ExprKind;
use stcfa_sba::Sba;
use stcfa_workloads::cubic;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for &n in &[1usize, 4, 16, 64] {
        let p = cubic::program(n);
        group.bench_with_input(BenchmarkId::new("sba_total", n), &p, |b, p| {
            b.iter(|| black_box(Sba::analyze(p)))
        });
        group.bench_with_input(
            BenchmarkId::new("subtransitive_build_close", n),
            &p,
            |b, p| b.iter(|| black_box(Analysis::run(p).unwrap())),
        );
        let a = Analysis::run(&p).unwrap();
        group.bench_with_input(
            BenchmarkId::new("query_all_nontrivial", n),
            &(&p, &a),
            |b, (p, a)| {
                b.iter(|| {
                    let mut pairs = 0usize;
                    for app in p.nontrivial_apps() {
                        let ExprKind::App { func, .. } = p.kind(app) else {
                            unreachable!()
                        };
                        pairs += a.labels_of(*func).len();
                    }
                    black_box(pairs)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
