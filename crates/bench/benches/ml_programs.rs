//! E3 / paper Table 2: the `life` and `lexgen` benchmark substitutes, each
//! analyzed by the SBA baseline, the linear-time subtransitive algorithm,
//! and (for reference) the almost-linear equality-based analysis.

use stcfa_core::Analysis;
use stcfa_devkit::bench::{BenchmarkId, Criterion};
use stcfa_devkit::{criterion_group, criterion_main};
use stcfa_lambda::Program;
use stcfa_sba::Sba;
use stcfa_unify::UnifyCfa;
use stcfa_workloads::{lexgen, life};
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    let programs: Vec<(&str, Program)> =
        vec![("life", life::program()), ("lexgen", lexgen::program())];
    for (name, p) in &programs {
        group.bench_with_input(BenchmarkId::new("sba_total", name), p, |b, p| {
            b.iter(|| black_box(Sba::analyze(p)))
        });
        group.bench_with_input(BenchmarkId::new("subtransitive_total", name), p, |b, p| {
            b.iter(|| black_box(Analysis::run(p).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("unify_total", name), p, |b, p| {
            b.iter(|| black_box(UnifyCfa::analyze(p)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
