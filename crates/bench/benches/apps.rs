//! E4–E6: the linear-time CFA-consuming applications (effects, k-limited,
//! called-once) against their quadratic reference pipelines.

use stcfa_apps::{effects, effects_via_cfa0, CalledOnce, KLimited};
use stcfa_cfa0::Cfa0;
use stcfa_core::Analysis;
use stcfa_devkit::bench::{BenchmarkId, Criterion};
use stcfa_devkit::{criterion_group, criterion_main};
use stcfa_workloads::{cubic, join_point, synth};
use std::hint::black_box;

fn bench_effects(c: &mut Criterion) {
    let mut group = c.benchmark_group("effects");
    group.sample_size(10);
    for &n in &[200usize, 1600] {
        let p = synth::generate(&synth::SynthConfig {
            seed: 9,
            target_size: n,
            effect_prob: 0.15,
            ..Default::default()
        });
        group.bench_with_input(BenchmarkId::new("graph_plus_colouring", n), &p, |b, p| {
            b.iter(|| {
                let a = Analysis::run(p).unwrap();
                black_box(effects(p, &a))
            })
        });
        group.bench_with_input(BenchmarkId::new("cfa_plus_post_pass", n), &p, |b, p| {
            b.iter(|| {
                let cfa = Cfa0::analyze(p);
                black_box(effects_via_cfa0(p, &cfa))
            })
        });
    }
    group.finish();
}

fn bench_klimited(c: &mut Criterion) {
    let mut group = c.benchmark_group("klimited");
    group.sample_size(10);
    for &n in &[32usize, 256] {
        let p = join_point::program(n);
        let a = Analysis::run(&p).unwrap();
        for k in [1usize, 3] {
            group.bench_with_input(BenchmarkId::new(format!("k{k}"), n), &a, |b, a| {
                b.iter(|| black_box(KLimited::run(a, k)))
            });
        }
    }
    group.finish();
}

fn bench_called_once(c: &mut Criterion) {
    let mut group = c.benchmark_group("called_once");
    group.sample_size(10);
    for &n in &[32usize, 256] {
        let p = cubic::program(n);
        let a = Analysis::run(&p).unwrap();
        group.bench_with_input(
            BenchmarkId::new("propagation", n),
            &(&p, &a),
            |b, (p, a)| b.iter(|| black_box(CalledOnce::run(p, a))),
        );
        group.bench_with_input(
            BenchmarkId::new("query_per_site_reference", n),
            &(&p, &a),
            |b, (p, a)| b.iter(|| black_box(CalledOnce::via_queries(p, a))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_effects, bench_klimited, bench_called_once);
criterion_main!(benches);
