//! The daemon's request economics: what a request costs when the
//! content-addressed cache misses (parse + analyze + freeze) vs when it
//! hits (digest lookup + Arc clone), pipeline throughput at several
//! worker counts over a warm cache, and the many-connection soak — the
//! nonblocking fleet transport against the per-connection-thread
//! baseline under bursty pipelined load.

use std::hint::black_box;
use std::io::Cursor;
use std::sync::mpsc;
use std::time::Instant;

use stcfa_devkit::bench::{BenchmarkId, Criterion};
use stcfa_devkit::{criterion_group, criterion_main};
use stcfa_server::{run_soak, Server, ServerOptions, SoakConfig, SoakReport};
use stcfa_workloads::{lexgen, life};

fn corpus() -> Vec<(&'static str, String)> {
    vec![
        ("identity", "(fn x => x) (fn y => y)".to_owned()),
        ("life", life::program().to_source()),
        ("lexgen", lexgen::program().to_source()),
    ]
}

fn analyze_request(source: &str) -> String {
    format!(r#"{{"op":"analyze","source":{}}}"#, json_escape(source))
}

fn query_request(id: usize, source: &str) -> String {
    format!(
        r#"{{"id":{id},"op":"query","kind":"label-set","source":{}}}"#,
        json_escape(source)
    )
}

/// Minimal JSON string escaping for embedding corpus sources in requests.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn server(threads: usize) -> Server {
    Server::new(ServerOptions {
        threads,
        ..Default::default()
    })
}

fn bench_server(c: &mut Criterion) {
    let mut group = c.benchmark_group("server");
    group.sample_size(10);
    let corpus = corpus();

    // Cold: every iteration is a fresh daemon, so the analyze request pays
    // the full build (the cache-miss path).
    for (name, source) in &corpus {
        let request = analyze_request(source);
        group.bench_with_input(
            BenchmarkId::new("analyze_cold", name),
            &request,
            |b, request| {
                b.iter(|| {
                    let s = server(1);
                    black_box(s.handle_line(request, Instant::now()))
                })
            },
        );
    }

    // Warm: one daemon, source already cached; the same request is a
    // digest lookup plus an Arc clone.
    for (name, source) in &corpus {
        let request = analyze_request(source);
        let s = server(1);
        s.handle_line(&request, Instant::now());
        group.bench_with_input(
            BenchmarkId::new("analyze_warm", name),
            &request,
            |b, request| b.iter(|| black_box(s.handle_line(request, Instant::now()))),
        );
    }

    // Disk-warm: every iteration is a fresh daemon (the memory cache is
    // cold), but its `--cache-dir` already holds the persisted snapshot —
    // the restart path: read + integrity check + decode instead of
    // parse + analyze + freeze.
    let cache_root =
        std::env::temp_dir().join(format!("stcfa-bench-server-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_root);
    for (name, source) in &corpus {
        let dir = cache_root.join(name);
        let request = analyze_request(source);
        let warmer = Server::new(ServerOptions {
            threads: 1,
            cache_dir: Some(dir.clone()),
            ..Default::default()
        });
        warmer.handle_line(&request, Instant::now());
        group.bench_with_input(
            BenchmarkId::new("analyze_disk_warm", name),
            &request,
            |b, request| {
                b.iter(|| {
                    let s = Server::new(ServerOptions {
                        threads: 1,
                        cache_dir: Some(dir.clone()),
                        ..Default::default()
                    });
                    black_box(s.handle_line(request, Instant::now()))
                })
            },
        );
    }
    let _ = std::fs::remove_dir_all(&cache_root);

    // Pipeline throughput over a warm cache: 64 label-set queries against
    // the largest corpus entry, through the full ordered pipeline at
    // --threads 1/2/8.
    let (_, big) = corpus.last().expect("corpus is non-empty");
    let mut batch = String::new();
    for i in 0..64 {
        batch.push_str(&query_request(i, big));
        batch.push('\n');
    }
    for &threads in &[1usize, 2, 8] {
        let s = server(threads);
        s.handle_line(&analyze_request(big), Instant::now());
        group.bench_with_input(
            BenchmarkId::new("pipeline_warm_64_queries", format!("t{threads}")),
            &batch,
            |b, batch| {
                b.iter(|| {
                    let mut out = Vec::with_capacity(batch.len());
                    s.serve(Cursor::new(batch.clone()), &mut out).unwrap();
                    black_box(out.len())
                })
            },
        );
    }
    group.finish();
}

/// Boots a daemon on an ephemeral loopback port — either the
/// nonblocking event-loop fleet or the legacy thread-per-connection
/// transport — runs `f` against the bound address, then drives a clean
/// protocol shutdown and joins the serve thread.
fn with_tcp_server(threaded: bool, f: impl FnOnce(&str)) {
    let server = Server::new(ServerOptions {
        threads: 2,
        // Nominal load for the 256-connection soak is 2048 frames in
        // flight at once; admission must not shed any of it.
        max_inflight: 4096,
        ..Default::default()
    });
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel();
        let srv = &server;
        scope.spawn(move || {
            let on_bound = move |a: std::net::SocketAddr| tx.send(a).unwrap();
            if threaded {
                srv.serve_tcp_threaded("127.0.0.1:0", on_bound).unwrap();
            } else {
                srv.serve_tcp("127.0.0.1:0", on_bound).unwrap();
            }
        });
        let addr = rx.recv().unwrap().to_string();
        f(&addr);
        use std::io::{BufRead, BufReader, Write};
        let stream = std::net::TcpStream::connect(&addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        writeln!(writer, r#"{{"op":"shutdown"}}"#).unwrap();
        let mut bye = String::new();
        BufReader::new(stream).read_line(&mut bye).unwrap();
    });
}

fn bench_soak(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_soak");
    group.sample_size(5);

    // Bursty pipelined load over a warm cache: every connection fires
    // `burst` back-to-back requests, reads the burst's responses, and
    // repeats. The tiny identity source keeps per-request engine work
    // negligible so the measurement isolates the *transport*: framing,
    // dispatch, scheduling, and write-path behaviour under concurrency.
    let cases: &[(&str, bool, usize)] = &[
        ("fleet/c64", false, 64),
        ("threaded/c64", true, 64),
        ("fleet/c256", false, 256),
    ];
    for &(name, threaded, connections) in cases {
        let mut last: Option<SoakReport> = None;
        with_tcp_server(threaded, |addr| {
            let config = SoakConfig {
                addr: addr.to_owned(),
                connections,
                bursts: 4,
                burst: 8,
                ..Default::default()
            };
            group.bench_function(name, |b| {
                b.iter(|| {
                    last = Some(run_soak(&config));
                })
            });
        });
        // Verified after the daemon is down, so a failure can't strand
        // the serve thread in the scope join above.
        let report = last.expect("soak never ran");
        assert!(report.clean(), "soak failed: {}", report.to_json_line());
        group
            .counter("connections", report.connections as u64)
            .counter("requests", report.requests)
            .counter("p50_ns", report.p50_ns)
            .counter("p99_ns", report.p99_ns)
            .counter("throughput_rps", report.throughput_rps);
    }
    group.finish();
}

criterion_group!(benches, bench_server, bench_soak);
criterion_main!(benches);
