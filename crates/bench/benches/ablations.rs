//! E8 / E10 / E11 ablations: the Section 6 datatype congruences, the
//! hybrid driver's overhead, and the cost of Section 7 polyvariance.

use stcfa_core::hybrid::HybridCfa;
use stcfa_core::{Analysis, AnalysisOptions, DatatypePolicy, PolyAnalysis};
use stcfa_devkit::bench::{BenchmarkId, Criterion};
use stcfa_devkit::{criterion_group, criterion_main};
use stcfa_workloads::{funlist, join_point};
use std::hint::black_box;

fn bench_congruences(c: &mut Criterion) {
    let mut group = c.benchmark_group("congruence");
    group.sample_size(10);
    for &n in &[16usize, 64] {
        let p = funlist::program(n);
        for (name, policy) in [
            ("forget", DatatypePolicy::Forget),
            ("c1", DatatypePolicy::Congruence1),
            ("c2", DatatypePolicy::Congruence2),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &p, |b, p| {
                b.iter(|| {
                    black_box(
                        Analysis::run_with(
                            p,
                            AnalysisOptions {
                                policy,
                                max_nodes: None,
                            },
                        )
                        .unwrap(),
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench_hybrid_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("hybrid");
    group.sample_size(10);
    let p = join_point::program(64);
    group.bench_function("direct", |b| {
        b.iter(|| black_box(Analysis::run(&p).unwrap()))
    });
    group.bench_function("hybrid_wrapper", |b| {
        b.iter(|| black_box(HybridCfa::run(&p, AnalysisOptions::default())))
    });
    group.finish();
}

fn bench_polyvariance(c: &mut Criterion) {
    let mut group = c.benchmark_group("polyvariance");
    group.sample_size(10);
    for &n in &[8usize, 32] {
        let p = join_point::program(n);
        group.bench_with_input(BenchmarkId::new("monovariant", n), &p, |b, p| {
            b.iter(|| black_box(Analysis::run(p).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("polyvariant", n), &p, |b, p| {
            b.iter(|| black_box(PolyAnalysis::run(p).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_congruences,
    bench_hybrid_overhead,
    bench_polyvariance
);
criterion_main!(benches);
