//! Session linking: the cost of a cold multi-module link, a hot re-link
//! after editing the last module (checkpointed prefix reuse), and a
//! whole-program rebuild from scratch — the hot-reload economics the
//! session layer exists for. Expected shape: `relink_last` beats
//! `full_rebuild` by well over 5× on the ≥4-module workloads, because
//! only the edited module's fragment is re-parsed and re-closed.

use stcfa_core::{Analysis, AnalysisOptions};
use stcfa_devkit::bench::{BenchmarkId, Criterion};
use stcfa_devkit::{criterion_group, criterion_main};
use stcfa_lambda::Program;
use stcfa_session::Workspace;
use stcfa_workloads::modules::{concatenated, module_sources, ModulesConfig};
use std::hint::black_box;

fn workload(modules: usize) -> Vec<(String, String)> {
    module_sources(&ModulesConfig {
        seed: 42,
        modules,
        decls_per_module: 12,
        cross_module_prob: 0.5,
        datatypes: true,
    })
}

fn bench_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("session");
    group.sample_size(10);
    for &n in &[8usize, 16, 32, 64] {
        let sources = workload(n);
        let whole = concatenated(&sources);

        group.bench_with_input(BenchmarkId::new("cold_link", n), &sources, |b, sources| {
            b.iter(|| {
                let mut ws = Workspace::new(AnalysisOptions::default());
                for (name, src) in sources {
                    ws.upsert(name, src);
                }
                black_box(ws.link().unwrap().nodes)
            })
        });

        group.bench_with_input(
            BenchmarkId::new("relink_last", n),
            &sources,
            |b, sources| {
                let mut ws = Workspace::new(AnalysisOptions::default());
                for (name, src) in sources {
                    ws.upsert(name, src);
                }
                ws.link().unwrap();
                let (last_name, last_src) = sources.last().unwrap().clone();
                // Alternate between two variants of the last module so
                // every iteration is a genuine content change (a repeat
                // of the same source would be a digest no-op).
                let variants = [
                    format!("fun alt0 x = x;\n{last_src}"),
                    format!("fun alt1 x = x + 1;\n{last_src}"),
                ];
                let mut flip = 0usize;
                b.iter(|| {
                    ws.upsert(&last_name, &variants[flip % 2]);
                    flip += 1;
                    black_box(ws.link().unwrap().relinked)
                })
            },
        );

        group.bench_with_input(BenchmarkId::new("full_rebuild", n), &whole, |b, whole| {
            b.iter(|| {
                let p = Program::parse(whole).unwrap();
                let a = Analysis::run_with(&p, AnalysisOptions::default()).unwrap();
                black_box(a.node_count())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_session);
criterion_main!(benches);
