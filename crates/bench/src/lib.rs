//! Shared harness for the benchmark suite: timing helpers, measurement
//! records for each experiment in DESIGN.md's per-experiment index, and a
//! plain-text table renderer that mimics the paper's Tables 1 and 2.
//!
//! Criterion benches (under `benches/`) give statistically careful
//! timings; the `tables` binary (under `src/bin/`) regenerates the paper's
//! tables directly, printing one section per experiment id (E1–E11).

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub mod experiments;

/// Runs `f` once and returns its result with the elapsed wall-clock time.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed())
}

/// Runs `f` several times and returns the minimum elapsed time (the
/// paper's methodology: "timings … represent the fastest of 10 runs").
pub fn best_of<R>(runs: usize, mut f: impl FnMut() -> R) -> (R, Duration) {
    assert!(runs > 0);
    let (mut out, mut best) = time(&mut f);
    for _ in 1..runs {
        let (r, d) = time(&mut f);
        if d < best {
            best = d;
            out = r;
        }
    }
    (out, best)
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Least-squares slope of `log y` against `log x` — the empirical growth
/// exponent of a measurement series (`≈1` linear, `≈2` quadratic,
/// `≈3` cubic).
///
/// # Panics
///
/// Panics if fewer than two points are given or any coordinate is
/// non-positive.
pub fn fit_exponent(points: &[(f64, f64)]) -> f64 {
    assert!(points.len() >= 2, "need at least two points");
    let logs: Vec<(f64, f64)> = points
        .iter()
        .map(|&(x, y)| {
            assert!(x > 0.0 && y > 0.0, "log-log fit needs positive data");
            (x.ln(), y.ln())
        })
        .collect();
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// A plain-text table with a title, column headers and string rows.
#[derive(Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                s.push_str(&format!(" {c:>w$} |"));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["n", "time"]);
        t.row(vec!["1".into(), "2 ms".into()]);
        t.row(vec!["100".into(), "2000 ms".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.lines().count() >= 5);
    }

    #[test]
    fn best_of_returns_at_least_sleep_time() {
        let (_, d) = best_of(3, || std::thread::sleep(Duration::from_micros(50)));
        assert!(d >= Duration::from_micros(50));
    }

    #[test]
    fn fit_exponent_recovers_powers() {
        let lin: Vec<(f64, f64)> = (1..=6).map(|i| (i as f64, 3.0 * i as f64)).collect();
        assert!((fit_exponent(&lin) - 1.0).abs() < 1e-9);
        let cubic: Vec<(f64, f64)> = (1..=6)
            .map(|i| (i as f64, 0.5 * (i as f64).powi(3)))
            .collect();
        assert!((fit_exponent(&cubic) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn duration_formatting() {
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with(" ms"));
        assert!(fmt_duration(Duration::from_micros(5)).ends_with(" µs"));
    }
}
