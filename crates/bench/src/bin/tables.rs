//! Regenerates the paper's tables (and the repository's additional
//! experiments) as plain text, one section per experiment id from
//! DESIGN.md, and writes the same run's measurements (per-experiment
//! times + work counters) as machine-readable `BENCH_paper_tables.json`
//! at the workspace root.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p stcfa-bench --bin tables            # all experiments
//! cargo run --release -p stcfa-bench --bin tables -- --e2    # just Table 1
//! cargo run --release -p stcfa-bench --bin tables -- --quick # fewer repetitions
//! ```

use stcfa_bench::experiments::{self, Runs};
use stcfa_devkit::bench::{workspace_root, Report};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let runs = if quick { Runs(2) } else { Runs(10) };
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| a.starts_with("--e"))
        .map(|a| a.trim_start_matches("--"))
        .collect();

    type Experiment = fn(Runs, &mut Report) -> String;
    let all: Vec<(&str, Experiment)> = vec![
        ("e1", experiments::e1_query_complexity as Experiment),
        ("e2", experiments::e2_cubic_benchmark),
        ("e3", experiments::e3_ml_programs),
        ("e4", experiments::e4_effects),
        ("e5", experiments::e5_klimited),
        ("e6", experiments::e6_called_once),
        ("e7", experiments::e7_constants),
        ("e8", experiments::e8_congruences),
        ("e9", experiments::e9_unification),
        ("e10", experiments::e10_hybrid),
        ("e11", experiments::e11_polyvariance),
        ("e12", experiments::e12_incremental),
    ];

    for w in &wanted {
        if !all.iter().any(|(id, _)| id == w) {
            eprintln!(
                "unknown experiment `--{w}`; valid: {}",
                all.iter()
                    .map(|(id, _)| format!("--{id}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            std::process::exit(2);
        }
    }

    println!(
        "# Subtransitive CFA — experiment tables\n\
         (fastest of {} runs per measurement, release timings)\n",
        runs.0
    );
    let mut report = Report::new();
    for (id, f) in all {
        if wanted.is_empty() || wanted.contains(&id) {
            println!("{}", f(runs, &mut report));
        }
    }

    // The aggregate snapshot is the committed record of the *full* suite;
    // a filtered run must not clobber it with a partial report.
    if wanted.is_empty() {
        let out = workspace_root(env!("CARGO_MANIFEST_DIR")).join("BENCH_paper_tables.json");
        match report.write_json("paper_tables", &out) {
            Ok(()) => eprintln!(
                "{} measurement(s) written to {}",
                report.len(),
                out.display()
            ),
            Err(e) => eprintln!("failed to write {}: {e}", out.display()),
        }
    }
}
