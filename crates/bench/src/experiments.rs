//! One function per experiment in DESIGN.md's per-experiment index
//! (E1–E11). Each returns a rendered table (plus commentary) so the
//! `tables` binary and EXPERIMENTS.md stay in sync with the code, and
//! records its headline measurements (times and work counters) into a
//! [`Report`] so the same run also produces machine-readable
//! `BENCH_paper_tables.json` for the perf trajectory.

use stcfa_apps::{effects, effects_via_cfa0, CalledOnce, KLimited};
use stcfa_cfa0::Cfa0;
use stcfa_core::hybrid::HybridCfa;
use stcfa_core::{Analysis, AnalysisOptions, DatatypePolicy, PolyAnalysis, QueryEngine};
use stcfa_lambda::{ExprKind, Program};
use stcfa_sba::Sba;
use stcfa_types::{TypeMetrics, TypedProgram};
use stcfa_unify::UnifyCfa;
use stcfa_workloads::{cubic, funlist, join_point, lexgen, life, synth};

use crate::{best_of, fmt_duration, Table};
use stcfa_devkit::bench::Report;

/// How many repetitions feed the "fastest of N" measurement (the paper
/// uses 10; the quick mode of the `tables` binary uses fewer).
#[derive(Clone, Copy, Debug)]
pub struct Runs(pub usize);

impl Default for Runs {
    fn default() -> Self {
        Runs(5)
    }
}

fn avg_call_targets(p: &Program, labels_of: impl Fn(stcfa_lambda::ExprId) -> usize) -> f64 {
    let mut total = 0usize;
    let mut sites = 0usize;
    for app in p.app_sites() {
        let ExprKind::App { func, .. } = p.kind(app) else {
            unreachable!()
        };
        total += labels_of(*func);
        sites += 1;
    }
    total as f64 / sites.max(1) as f64
}

/// E1 — the Section 2 complexity table: per-query scaling, Std vs New.
pub fn e1_query_complexity(runs: Runs, report: &mut Report) -> String {
    let mut t = Table::new(
        "E1 — Section 2 query complexity (standard algorithm vs subtransitive graph)",
        &[
            "n (copies)",
            "nodes",
            "Std: all-sets solve",
            "New: build+close",
            "New: is l∈L(e)?",
            "New: L(e)",
            "New: {e : l∈L(e)}",
            "New: all sets",
            "Engine: freeze+sweep",
            "Engine: all sets",
        ],
    );
    for &n in &[4usize, 16, 64, 256] {
        let p = cubic::program(n);
        // The standard algorithm computes everything at once; its cost is
        // the same for any of the four queries.
        let (_, std_t) = best_of(runs.0, || Cfa0::analyze(&p));
        let (a, build_t) = best_of(runs.0, || Analysis::run(&p).unwrap());
        let e = p.root();
        let l = p.all_labels().next().unwrap();
        let (_, q_member) = best_of(runs.0, || a.label_reaches(e, l));
        let (_, q_labels) = best_of(runs.0, || a.labels_of(e));
        let (_, q_inverse) = best_of(runs.0, || a.exprs_with_label(l));
        let (_, q_all) = best_of(runs.0.min(3), || a.all_label_sets(&p));
        // The frozen engine: one CSR freeze + SCC condensation +
        // bit-parallel sweep buys O(1)-per-row answers to the same list.
        let (_, eng_freeze) = best_of(runs.0, || {
            let q = QueryEngine::freeze(&a);
            q.prepare();
            q
        });
        let engine = QueryEngine::freeze(&a);
        engine.prepare();
        let (_, eng_all) = best_of(runs.0.min(3), || engine.all_label_sets());
        let samples = runs.0 as u32;
        report
            .time("E1", format!("std_all_sets/{n}"), std_t, samples)
            .counter("nodes", p.size() as u64);
        report.time("E1", format!("build_close/{n}"), build_t, samples);
        report.time("E1", format!("query_member/{n}"), q_member, samples);
        report.time("E1", format!("query_labels_of/{n}"), q_labels, samples);
        report.time("E1", format!("query_inverse/{n}"), q_inverse, samples);
        report.time("E1", format!("query_all_sets/{n}"), q_all, samples.min(3));
        report.time(
            "E1",
            format!("engine_freeze_sweep/{n}"),
            eng_freeze,
            samples,
        );
        let qs = engine.query_stats();
        report
            .time(
                "E1",
                format!("engine_all_sets/{n}"),
                eng_all,
                samples.min(3),
            )
            .counter("queries_answered", qs.queries)
            .counter("cache_hits", qs.summary_hits + qs.demand_hits)
            .counter("sccs", engine.comp_count() as u64);
        t.row(vec![
            n.to_string(),
            p.size().to_string(),
            fmt_duration(std_t),
            fmt_duration(build_t),
            fmt_duration(q_member),
            fmt_duration(q_labels),
            fmt_duration(q_inverse),
            fmt_duration(q_all),
            fmt_duration(eng_freeze),
            fmt_duration(eng_all),
        ]);
    }
    format!(
        "{}\nShape to check: Std grows superlinearly; New build and the three\n\
         single queries grow ~linearly; \"all sets\" grows ~quadratically\n\
         (it is the output size). The frozen engine's all-sets column should\n\
         beat the per-node BFS column by a widening factor: its sweep is one\n\
         O(E·L/64) pass, after which each row is a table read.\n",
        t.render()
    )
}

/// E2 — Table 1: the parameterized cubic benchmark.
pub fn e2_cubic_benchmark(runs: Runs, report: &mut Report) -> String {
    let mut t = Table::new(
        "E2 — Table 1: parameterized benchmark (SBA vs linear-time algorithm)",
        &[
            "size",
            "nodes",
            "SBA time",
            "SBA work",
            "build time",
            "build nodes",
            "close time",
            "close nodes",
            "query-all time",
            "pairs",
        ],
    );
    for &n in &[1usize, 2, 4, 8, 16, 32, 64, 128] {
        let p = cubic::program(n);
        let (sba, sba_t) = best_of(runs.0, || Sba::analyze(&p));
        let (a, total_t) = best_of(runs.0, || Analysis::run(&p).unwrap());
        let s = a.stats();
        // Estimate the build/close split from counted work: the build is a
        // single linear pass, so attribute time ∝ edges processed.
        let build_frac = s.build_edges as f64 / (s.build_edges + s.close_edges).max(1) as f64;
        let build_t = total_t.mul_f64(build_frac);
        let close_t = total_t.mul_f64(1.0 - build_frac);
        // "writing out the control flow information for all non-trivial
        // applications".
        let (pairs, query_t) = best_of(runs.0.min(3), || {
            let mut pairs = 0usize;
            for app in p.nontrivial_apps() {
                let ExprKind::App { func, .. } = p.kind(app) else {
                    unreachable!()
                };
                pairs += a.labels_of(*func).len();
            }
            pairs
        });
        let samples = runs.0 as u32;
        report
            .time("E2", format!("sba_total/{n}"), sba_t, samples)
            .counter("work_units", sba.stats().work_units);
        report
            .time("E2", format!("build_close/{n}"), total_t, samples)
            .counter("build_nodes", s.build_nodes as u64)
            .counter("close_nodes", s.close_nodes as u64);
        report
            .time(
                "E2",
                format!("query_all_nontrivial/{n}"),
                query_t,
                samples.min(3),
            )
            .counter("pairs", pairs as u64);
        t.row(vec![
            n.to_string(),
            p.size().to_string(),
            fmt_duration(sba_t),
            sba.stats().work_units.to_string(),
            fmt_duration(build_t),
            s.build_nodes.to_string(),
            fmt_duration(close_t),
            s.close_nodes.to_string(),
            fmt_duration(query_t),
            pairs.to_string(),
        ]);
    }
    format!(
        "{}\nShape to check (paper, Table 1): SBA work is clearly superlinear\n\
         (cubic trend); build/close nodes grow linearly; querying all\n\
         non-trivial applications is quadratic (there are O(n) of them and\n\
         each costs O(n)).\n",
        t.render()
    )
}

/// E3 — Table 2: the `life` and `lexgen` substitutes.
pub fn e3_ml_programs(runs: Runs, report: &mut Report) -> String {
    let mut t = Table::new(
        "E3 — Table 2: ML benchmarks (substitutes; see DESIGN.md)",
        &[
            "prog",
            "lines",
            "SBA total",
            "our total",
            "build nodes",
            "close nodes",
            "speedup",
        ],
    );
    let progs: Vec<(&str, String)> = vec![
        ("life", life::SOURCE.to_owned()),
        ("lexgen", lexgen::source(lexgen::DEFAULT_STATES)),
    ];
    for (name, src) in progs {
        let p = Program::parse(&src).unwrap();
        let lines = src.lines().filter(|l| !l.trim().is_empty()).count();
        let (_, sba_t) = best_of(runs.0, || Sba::analyze(&p));
        let (a, our_t) = best_of(runs.0, || Analysis::run(&p).unwrap());
        let s = a.stats();
        let samples = runs.0 as u32;
        report.time("E3", format!("sba_total/{name}"), sba_t, samples);
        report
            .time("E3", format!("subtransitive_total/{name}"), our_t, samples)
            .counter("build_nodes", s.build_nodes as u64)
            .counter("close_nodes", s.close_nodes as u64);
        t.row(vec![
            name.to_string(),
            lines.to_string(),
            fmt_duration(sba_t),
            fmt_duration(our_t),
            s.build_nodes.to_string(),
            s.close_nodes.to_string(),
            format!("{:.2}x", sba_t.as_secs_f64() / our_t.as_secs_f64()),
        ]);
    }
    format!(
        "{}\nShape to check (paper, Table 2): the linear algorithm beats SBA\n\
         (the paper reports 2.5–3x); close nodes stay of the order of build\n\
         nodes; build nodes track program size.\n",
        t.render()
    )
}

/// E4 — Section 8: linear-time effects analysis.
pub fn e4_effects(runs: Runs, report: &mut Report) -> String {
    let mut t = Table::new(
        "E4 — Section 8: effects analysis (graph colouring vs CFA+post-pass)",
        &[
            "calls",
            "nodes",
            "effectful",
            "colouring",
            "CFA+post",
            "agree",
        ],
    );
    for &n in &[8usize, 32, 128, 512] {
        let p = join_point::program_with_effects(n);
        // End-to-end pipelines, as the paper compares them: graph + colour
        // vs cubic CFA + post-pass.
        let (fast, fast_t) = best_of(runs.0, || {
            let a = Analysis::run(&p).unwrap();
            effects(&p, &a)
        });
        let (slow, slow_t) = best_of(runs.0, || {
            let cfa = Cfa0::analyze(&p);
            effects_via_cfa0(&p, &cfa)
        });
        let agree = fast.effectful_exprs() == slow.effectful_exprs();
        let samples = runs.0 as u32;
        report
            .time("E4", format!("colouring/{n}"), fast_t, samples)
            .counter("effectful", fast.count() as u64);
        report.time("E4", format!("cfa_post_pass/{n}"), slow_t, samples);
        t.row(vec![
            n.to_string(),
            p.size().to_string(),
            fast.count().to_string(),
            fmt_duration(fast_t),
            fmt_duration(slow_t),
            agree.to_string(),
        ]);
    }
    format!(
        "{}\nShape to check: identical answers; colouring time grows linearly\n\
         with program size (the reference includes a quadratic-size\n\
         intermediate).\n",
        t.render()
    )
}

/// E5 — Section 9: k-limited CFA.
pub fn e5_klimited(runs: Runs, report: &mut Report) -> String {
    let mut t = Table::new(
        "E5 — Section 9: k-limited CFA (linear-time annotation propagation)",
        &[
            "calls", "nodes", "k=1 time", "k=2 time", "k=3 time", "many@k=1",
        ],
    );
    for &n in &[8usize, 32, 128, 512] {
        let p = join_point::program(n);
        let a = Analysis::run(&p).unwrap();
        let mut row = vec![n.to_string(), p.size().to_string()];
        let mut many = 0usize;
        for k in 1..=3usize {
            let (kl, kt) = best_of(runs.0, || KLimited::run(&a, k));
            if k == 1 {
                many = p
                    .app_sites()
                    .iter()
                    .filter(|&&app| kl.call_targets(&p, &a, app).is_some_and(|s| s.is_many()))
                    .count();
            }
            report.time("E5", format!("k{k}/{n}"), kt, runs.0 as u32);
            row.push(fmt_duration(kt));
        }
        report.counters("E5", format!("many_at_k1/{n}"), &[("sites", many as u64)]);
        row.push(many.to_string());
        t.row(row);
    }
    format!(
        "{}\nShape to check: time grows linearly in program size for every k\n\
         (each node's annotation changes at most k+1 times).\n",
        t.render()
    )
}

/// E6 — called-once analysis.
pub fn e6_called_once(runs: Runs, report: &mut Report) -> String {
    let mut t = Table::new(
        "E6 — called-once analysis (linear site-set propagation)",
        &[
            "n",
            "nodes",
            "functions",
            "called-once",
            "never-called",
            "fast",
            "reference",
        ],
    );
    for &n in &[8usize, 32, 128, 512] {
        let p = cubic::program(n);
        let a = Analysis::run(&p).unwrap();
        let (fast, fast_t) = best_of(runs.0, || CalledOnce::run(&p, &a));
        let (_slow, slow_t) = best_of(runs.0.min(3), || CalledOnce::via_queries(&p, &a));
        report
            .time("E6", format!("propagation/{n}"), fast_t, runs.0 as u32)
            .counter("called_once", fast.called_once().len() as u64)
            .counter("never_called", fast.never_called().len() as u64);
        report.time(
            "E6",
            format!("query_per_site/{n}"),
            slow_t,
            runs.0.min(3) as u32,
        );
        t.row(vec![
            n.to_string(),
            p.size().to_string(),
            p.label_count().to_string(),
            fast.called_once().len().to_string(),
            fast.never_called().len().to_string(),
            fmt_duration(fast_t),
            fmt_duration(slow_t),
        ]);
    }
    format!(
        "{}\nShape to check: the propagation stays linear while the
query-per-site reference grows quadratically.\n",
        t.render()
    )
}

/// E7 — the constant factor: close/build node ratio and k_avg.
pub fn e7_constants(_runs: Runs, report: &mut Report) -> String {
    let mut t = Table::new(
        "E7 — Section 10 constants: k_avg and close/build node ratio",
        &[
            "workload",
            "nodes",
            "k_avg",
            "k_max",
            "build nodes",
            "close nodes",
            "close/build",
        ],
    );
    let mut progs: Vec<(String, Program)> = vec![
        ("life".into(), life::program()),
        ("lexgen".into(), lexgen::program()),
        ("cubic(32)".into(), cubic::program(32)),
        ("join(32)".into(), join_point::program(32)),
    ];
    for depth in 1..=3usize {
        progs.push((
            format!("synth(k-depth {depth})"),
            synth::generate(&synth::SynthConfig {
                seed: 4,
                target_size: 600,
                max_type_depth: depth,
                ..Default::default()
            }),
        ));
    }
    for (name, p) in progs {
        let typed = TypedProgram::infer(&p).unwrap();
        let m = TypeMetrics::compute(&p, &typed);
        let a = Analysis::run(&p).unwrap();
        let s = a.stats();
        report.counters(
            "E7",
            &name,
            &[
                ("nodes", p.size() as u64),
                ("k_avg_milli", (m.avg_size * 1000.0) as u64),
                ("k_max", m.max_size as u64),
                ("build_nodes", s.build_nodes as u64),
                ("close_nodes", s.close_nodes as u64),
            ],
        );
        t.row(vec![
            name,
            p.size().to_string(),
            format!("{:.2}", m.avg_size),
            m.max_size.to_string(),
            s.build_nodes.to_string(),
            s.close_nodes.to_string(),
            format!("{:.2}", s.close_nodes as f64 / s.build_nodes.max(1) as f64),
        ]);
    }
    format!(
        "{}\nShape to check (paper): k_avg \"typically around 2 or 3\"; close\n\
         nodes \"typically no more than the number of nodes in the build\n\
         phase\"; both ratios rise with type depth.\n",
        t.render()
    )
}

/// E8 — Section 6 congruence ablation (≈₁ vs ≈₂ vs Forget).
pub fn e8_congruences(runs: Runs, report: &mut Report) -> String {
    let mut t = Table::new(
        "E8 — Section 6 datatype congruences on function-list workloads",
        &["n", "policy", "time", "nodes", "avg call targets"],
    );
    for &n in &[4usize, 16, 64] {
        let p = funlist::program(n);
        for (name, policy) in [
            ("Forget", DatatypePolicy::Forget),
            ("≈1", DatatypePolicy::Congruence1),
            ("≈2", DatatypePolicy::Congruence2),
        ] {
            let (a, at) = best_of(runs.0, || {
                Analysis::run_with(
                    &p,
                    AnalysisOptions {
                        policy,
                        max_nodes: None,
                    },
                )
                .unwrap()
            });
            let avg = avg_call_targets(&p, |f| a.labels_of(f).len());
            report
                .time("E8", format!("{name}/{n}"), at, runs.0 as u32)
                .counter("nodes", a.node_count() as u64)
                .counter("avg_targets_milli", (avg * 1000.0) as u64);
            t.row(vec![
                n.to_string(),
                name.to_string(),
                fmt_duration(at),
                a.node_count().to_string(),
                format!("{avg:.2}"),
            ]);
        }
    }
    format!(
        "{}\nShape to check (paper, Section 6): ≈2 is strictly more accurate\n\
         than ≈1 (smaller target sets) at moderate extra node cost; Forget\n\
         is cheapest and coarsest.\n",
        t.render()
    )
}

/// E9 — precision of equality-based CFA vs inclusion-based.
pub fn e9_unification(runs: Runs, report: &mut Report) -> String {
    let mut t = Table::new(
        "E9 — equality-based (almost-linear) CFA: the precision it gives up",
        &[
            "workload",
            "unify time",
            "cfa0 time",
            "sub time",
            "unify avg",
            "exact avg",
            "blowup",
        ],
    );
    let progs: Vec<(String, Program)> = vec![
        ("join(16)".into(), join_point::program(16)),
        ("cubic(16)".into(), cubic::program(16)),
        ("life".into(), life::program()),
        (
            "lexgen(24)".into(),
            Program::parse(&lexgen::source(24)).unwrap(),
        ),
    ];
    for (name, p) in progs {
        let (uni, ut) = best_of(runs.0, || UnifyCfa::analyze(&p));
        let (cfa, ct) = best_of(runs.0, || Cfa0::analyze(&p));
        let (_a, at) = best_of(runs.0, || Analysis::run(&p).unwrap());
        let uni_avg = avg_call_targets(&p, |f| uni.labels(f).len());
        let exact_avg = avg_call_targets(&p, |f| cfa.labels(&p, f).len());
        let samples = runs.0 as u32;
        report
            .time("E9", format!("unify/{name}"), ut, samples)
            .counter("avg_targets_milli", (uni_avg * 1000.0) as u64);
        report
            .time("E9", format!("cfa0/{name}"), ct, samples)
            .counter("avg_targets_milli", (exact_avg * 1000.0) as u64);
        report.time("E9", format!("subtransitive/{name}"), at, samples);
        t.row(vec![
            name,
            fmt_duration(ut),
            fmt_duration(ct),
            fmt_duration(at),
            format!("{uni_avg:.2}"),
            format!("{exact_avg:.2}"),
            format!("{:.2}x", uni_avg / exact_avg.max(1e-9)),
        ]);
    }
    format!(
        "{}\nShape to check (paper, Section 1/11): equality-based analysis is\n\
         fast but computes strictly coarser sets; the subtransitive\n\
         algorithm shows \"this loss of information is not necessary\".\n",
        t.render()
    )
}

/// E10 — the hybrid driver from the conclusion.
pub fn e10_hybrid(runs: Runs, report: &mut Report) -> String {
    let mut t = Table::new(
        "E10 — hybrid: linear on bounded types, cubic fallback otherwise",
        &["program", "engine", "time", "budget hit"],
    );
    let progs: Vec<(String, Program)> = vec![
        ("cubic(32)".into(), cubic::program(32)),
        ("life".into(), life::program()),
        (
            "Ω (untyped)".into(),
            Program::parse("(fn x => x x) (fn x => x x)").unwrap(),
        ),
    ];
    for (name, p) in progs {
        let (h, ht) = best_of(runs.0, || HybridCfa::run(&p, AnalysisOptions::default()));
        report
            .time("E10", format!("hybrid/{name}"), ht, runs.0 as u32)
            .counter("fell_back", u64::from(!h.is_linear()));
        t.row(vec![
            name,
            if h.is_linear() {
                "subtransitive".into()
            } else {
                "cubic fallback".into()
            },
            fmt_duration(ht),
            (!h.is_linear()).to_string(),
        ]);
    }
    format!(
        "{}\nShape to check: bounded-type programs use the linear engine; the\n\
         untyped Ω exceeds its node budget and falls back, still answering.\n",
        t.render()
    )
}

/// E11 — Section 7 polyvariance.
pub fn e11_polyvariance(runs: Runs, report: &mut Report) -> String {
    let mut t = Table::new(
        "E11 — Section 7 polyvariance: summary instantiation",
        &[
            "calls",
            "mono avg targets",
            "poly avg targets",
            "mono time",
            "poly time",
            "instances",
        ],
    );
    for &n in &[4usize, 8, 16, 32] {
        let p = join_point::program(n);
        let (mono, mt) = best_of(runs.0, || Analysis::run(&p).unwrap());
        let (poly, pt) = best_of(runs.0, || PolyAnalysis::run(&p).unwrap());
        let mono_avg = avg_call_targets(&p, |f| mono.labels_of(f).len());
        let poly_avg = avg_call_targets(&p, |f| poly.labels_of(f).len());
        let samples = runs.0 as u32;
        report
            .time("E11", format!("monovariant/{n}"), mt, samples)
            .counter("avg_targets_milli", (mono_avg * 1000.0) as u64);
        report
            .time("E11", format!("polyvariant/{n}"), pt, samples)
            .counter("avg_targets_milli", (poly_avg * 1000.0) as u64)
            .counter("instances", poly.instance_count() as u64);
        t.row(vec![
            n.to_string(),
            format!("{mono_avg:.2}"),
            format!("{poly_avg:.2}"),
            fmt_duration(mt),
            fmt_duration(pt),
            poly.instance_count().to_string(),
        ]);
    }
    format!(
        "{}\nShape to check: the monovariant join point collects all n\n\
         arguments at every site; polyvariant summaries cut each site to\n\
         its own argument (avg → 1) at modest extra cost.\n",
        t.render()
    )
}

/// E12 — incremental analysis: update cost vs re-analysis as a session
/// grows (the paper's "simple, incremental, demand-driven" remark).
pub fn e12_incremental(runs: Runs, report: &mut Report) -> String {
    use stcfa_core::incremental::IncrementalAnalysis;
    use stcfa_lambda::session::SessionProgram;

    let mut t = Table::new(
        "E12 — incremental analysis over a growing session",
        &[
            "fragments",
            "total nodes",
            "incremental (all updates)",
            "re-analysis (each step)",
            "speedup",
        ],
    );
    for &n in &[8usize, 32, 128] {
        let fragments: Vec<String> = std::iter::once("fun id x = x;".to_owned())
            .chain((0..n).map(|i| format!("val v{i} = id (fn q{i} => q{i} + {i});")))
            .collect();
        let (nodes, inc_t) = best_of(runs.0, || {
            let mut session = SessionProgram::new();
            let mut a = IncrementalAnalysis::new(Default::default());
            for f in &fragments {
                session.define(f).unwrap();
                a.update(&session).unwrap();
            }
            a.node_count()
        });
        let (_, scratch_t) = best_of(runs.0, || {
            let mut session = SessionProgram::new();
            for f in &fragments {
                session.define(f).unwrap();
                let mut a = IncrementalAnalysis::new(Default::default());
                a.update(&session).unwrap();
            }
        });
        let samples = runs.0 as u32;
        report
            .time("E12", format!("incremental/{n}"), inc_t, samples)
            .counter("nodes", nodes as u64);
        report.time("E12", format!("rescratch/{n}"), scratch_t, samples);
        t.row(vec![
            (n + 1).to_string(),
            nodes.to_string(),
            fmt_duration(inc_t),
            fmt_duration(scratch_t),
            format!("{:.2}x", scratch_t.as_secs_f64() / inc_t.as_secs_f64()),
        ]);
    }
    format!(
        "{}\nShape to check: updating after each fragment costs the delta, so\n\
         the whole incremental session is linear; re-analyzing from scratch\n\
         per fragment is quadratic in session length — the gap widens.\n",
        t.render()
    )
}

/// Runs every experiment, in order, recording measurements into `report`.
pub fn all(runs: Runs, report: &mut Report) -> Vec<(&'static str, String)> {
    vec![
        ("E1", e1_query_complexity(runs, report)),
        ("E2", e2_cubic_benchmark(runs, report)),
        ("E3", e3_ml_programs(runs, report)),
        ("E4", e4_effects(runs, report)),
        ("E5", e5_klimited(runs, report)),
        ("E6", e6_called_once(runs, report)),
        ("E7", e7_constants(runs, report)),
        ("E8", e8_congruences(runs, report)),
        ("E9", e9_unification(runs, report)),
        ("E10", e10_hybrid(runs, report)),
        ("E11", e11_polyvariance(runs, report)),
        ("E12", e12_incremental(runs, report)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke-test the cheap experiments so the harness cannot rot.
    #[test]
    fn small_experiments_render() {
        // E7 type-infers lexgen, whose deep let-chain wants a roomy stack
        // in debug builds.
        std::thread::Builder::new()
            .stack_size(256 << 20)
            .spawn(|| {
                let runs = Runs(1);
                let mut report = Report::new();
                for s in [
                    e7_constants(runs, &mut report),
                    e10_hybrid(runs, &mut report),
                ] {
                    assert!(s.contains('|'), "table body missing");
                    assert!(s.contains("Shape to check"));
                }
                assert!(!report.is_empty(), "experiments must record measurements");
                let json = report.to_json("smoke");
                assert!(json.contains("\"E7\""), "E7 records missing from JSON");
                assert!(json.contains("\"E10\""), "E10 records missing from JSON");
            })
            .unwrap()
            .join()
            .unwrap();
    }
}
