//! Semi-naive, delta-driven evaluation with bitset-backed stores.
//!
//! The evaluator walks the program's dependency groups (SCCs of the
//! relation dependency graph, dependencies first — see
//! [`RuleProgram`]'s registration checks) and runs each group to
//! fixpoint before the next starts, which is exactly what stratified
//! negation needs: a negated relation always lives in an earlier,
//! already-complete group.
//!
//! Within a group, evaluation is **semi-naive**: each rule is joined in
//! full once (the naive round, which also picks up seeded facts), and
//! every tuple inserted after that is pushed onto a worklist and driven
//! through each same-group occurrence in each rule body — so a fact is
//! considered at each recursive position exactly once.
//!
//! Two structural fast paths keep the promised complexity:
//!
//! - **Row-union joins.** A rule whose last body literal is a
//!   bitset-backed binary atom with a bound key and whose value variable
//!   is exactly the unary head variable (e.g.
//!   `invoked(l) :- app_func(_, e), expr_label(e, l)`) unions raw `u64`
//!   rows into a scratch set instead of enumerating label bits — the
//!   `O(E·L/64)` word-parallel arithmetic of the hand-fused analyses.
//! - **Condensation sweeps.** A single-relation group whose one
//!   recursive rule is `r(x) :- edge(x, y), r(y)` over the engine's CSR
//!   is solved as one ascending pass over SCC component ids (the
//!   reverse-topological numbering makes the pass a fixpoint), never
//!   touching a worklist.
//!
//! [`Evaluator::query_unary`] adds a demand mode on top: for
//! sweep-shaped relations it answers a single membership question by
//! walking only the BFS cone of the queried node, not the whole graph.

use stcfa_graph::BitSet;

use crate::edb::{EdbRel, ExtDb};
use crate::program::{CLit, CRule, CTerm, Groups, RelId, RelKind, RuleError, RuleProgram};

const UNBOUND: u32 = u32::MAX;

/// Where a relation's tuples live during evaluation.
enum Store {
    /// Extensional: answered by the [`ExtDb`] view, never written.
    Extern(EdbRel),
    /// Unary intensional: a bitset over the column's domain.
    Unary(BitSet),
    /// Binary intensional: per-key bitset rows over the value domain,
    /// allocated only for inhabited keys.
    Binary {
        rows: Vec<Option<BitSet>>,
        val_size: usize,
        len: usize,
    },
}

/// Evaluation counters, for tests and the bench harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Tuples inserted by rules (seeds not included).
    pub derived: usize,
    /// Worklist tuples driven through recursive occurrences.
    pub rounds: usize,
    /// Groups solved by the condensation sweep fast path.
    pub sweep_strata: usize,
    /// Nodes visited by demand-mode BFS cones.
    pub demand_visited: usize,
}

/// An evaluation of one [`RuleProgram`] against one [`ExtDb`].
pub struct Evaluator<'a> {
    prog: &'a RuleProgram,
    db: &'a ExtDb<'a>,
    stores: Vec<Store>,
    groups: Groups,
    /// Rule indices per group (rules whose head lives in the group).
    group_rules: Vec<Vec<usize>>,
    /// Per relation: `(rule, body index)` of each same-group positive
    /// occurrence — the positions delta tuples are driven through.
    occurrences: Vec<Vec<(usize, usize)>>,
    /// Per rule: whether the row-union fast path applies.
    fast_row: Vec<bool>,
    evaluated: Vec<bool>,
    demand_seeded: Vec<bool>,
    stats: EvalStats,
    /// Test hook: disable both fast paths to compare against the
    /// generic join.
    #[cfg(test)]
    pub(crate) force_generic: bool,
}

impl<'a> Evaluator<'a> {
    /// Prepares an evaluation: resolves extensional views, sizes the
    /// intensional stores, computes the group order, and validates every
    /// constant against its column's domain.
    pub fn new(prog: &'a RuleProgram, db: &'a ExtDb<'a>) -> Result<Evaluator<'a>, RuleError> {
        let groups = prog.groups()?;
        let mut stores = Vec::with_capacity(prog.rels.len());
        for decl in &prog.rels {
            stores.push(match decl.kind {
                RelKind::Edb => Store::Extern(EdbRel::from_name(decl.name).ok_or_else(|| {
                    RuleError(format!("`{}` is not in the extensional catalog", decl.name))
                })?),
                RelKind::Idb => {
                    if decl.schema.len() == 1 {
                        Store::Unary(BitSet::new(db.dom_size(decl.schema[0])))
                    } else {
                        Store::Binary {
                            rows: vec![None; db.dom_size(decl.schema[0])],
                            val_size: db.dom_size(decl.schema[1]),
                            len: 0,
                        }
                    }
                }
            });
        }
        // Constants must be dense indices of their column's domain.
        for rule in &prog.rules {
            let atoms = rule.body.iter().filter_map(|l| match l {
                CLit::Pos(a) | CLit::Neg(a) => Some(a),
                CLit::Neq(..) => None,
            });
            for atom in atoms.chain(std::iter::once(&rule.head)) {
                let schema = &prog.rels[atom.rel].schema;
                for (t, &dom) in atom.terms.iter().zip(schema) {
                    if let CTerm::Const(c) = t {
                        if *c as usize >= db.dom_size(dom) {
                            return Err(RuleError(format!(
                                "constant {c} is out of range for domain {} (size {})",
                                dom.as_str(),
                                db.dom_size(dom)
                            )));
                        }
                    }
                }
            }
        }
        let mut group_rules = vec![Vec::new(); groups.order.len()];
        let mut occurrences = vec![Vec::new(); prog.rels.len()];
        for (ri, rule) in prog.rules.iter().enumerate() {
            let g = groups.group_of[rule.head.rel];
            group_rules[g].push(ri);
            for (li, lit) in rule.body.iter().enumerate() {
                if let CLit::Pos(a) = lit {
                    if groups.group_of[a.rel] == g {
                        occurrences[a.rel].push((ri, li));
                    }
                }
            }
        }
        let fast_row = prog
            .rules
            .iter()
            .map(|rule| Self::fast_row_shape(&stores, rule))
            .collect();
        let n_groups = groups.order.len();
        Ok(Evaluator {
            prog,
            db,
            stores,
            groups,
            group_rules,
            occurrences,
            fast_row,
            evaluated: vec![false; n_groups],
            demand_seeded: vec![false; n_groups],
            stats: EvalStats::default(),
            #[cfg(test)]
            force_generic: false,
        })
    }

    /// Whether the row-union fast path applies to `rule`: unary head
    /// `h(v)`, last body literal a bitset-backed binary atom `rel(k, v)`
    /// whose key is bound by the prefix and whose value variable is `v`,
    /// with `v` appearing nowhere else in the body.
    fn fast_row_shape(stores: &[Store], rule: &CRule) -> bool {
        if rule.head.terms.len() != 1 || rule.body.is_empty() {
            return false;
        }
        let CTerm::Var(h) = rule.head.terms[0] else {
            return false;
        };
        let last = rule.body.len() - 1;
        let CLit::Pos(atom) = &rule.body[last] else {
            return false;
        };
        if atom.terms.len() != 2 || atom.terms[1] != CTerm::Var(h) {
            return false;
        }
        let row_backed = match &stores[atom.rel] {
            Store::Extern(e) => matches!(e, EdbRel::CompLabel | EdbRel::ExprLabel),
            Store::Binary { .. } => true,
            Store::Unary(_) => false,
        };
        if !row_backed {
            return false;
        }
        // The key must be resolvable when the last literal is reached,
        // and must not be the head variable itself.
        let key_ok = match atom.terms[0] {
            CTerm::Const(_) => true,
            CTerm::Wild => false,
            CTerm::Var(k) => {
                k != h
                    && rule.body[..last].iter().any(|l| match l {
                        CLit::Pos(a) => a.terms.contains(&CTerm::Var(k)),
                        _ => false,
                    })
            }
        };
        if !key_ok {
            return false;
        }
        // `v` must still be unbound at the last literal.
        rule.body[..last].iter().all(|l| match l {
            CLit::Pos(a) | CLit::Neg(a) => !a.terms.contains(&CTerm::Var(h)),
            CLit::Neq(a, b) => *a != CTerm::Var(h) && *b != CTerm::Var(h),
        })
    }

    /// Seeds a fact into an intensional relation (demand inputs, e.g.
    /// taint sources). Must run before the relation's group evaluates.
    ///
    /// # Panics
    ///
    /// Panics on an extensional relation, an arity mismatch, an
    /// out-of-domain index, or a relation whose group already ran.
    pub fn seed(&mut self, rel: RelId, tuple: &[u32]) {
        let r = rel.0 as usize;
        let decl = &self.prog.rels[r];
        assert_eq!(
            decl.kind,
            RelKind::Idb,
            "cannot seed extensional `{}`",
            decl.name
        );
        assert_eq!(
            decl.schema.len(),
            tuple.len(),
            "`{}` has arity {}",
            decl.name,
            decl.schema.len()
        );
        for (x, &dom) in tuple.iter().zip(&decl.schema) {
            assert!(
                (*x as usize) < self.db.dom_size(dom),
                "seed {x} out of range for domain {}",
                dom.as_str()
            );
        }
        assert!(
            !self.evaluated[self.groups.group_of[r]],
            "`{}` already evaluated; seed before running",
            decl.name
        );
        let (a, b) = (tuple[0], tuple.get(1).copied().unwrap_or(0));
        self.insert(r, a, b);
    }

    /// Runs every group to fixpoint, dependencies first. Idempotent.
    pub fn run(&mut self) {
        for g in 0..self.groups.order.len() {
            if !self.evaluated[g] {
                self.eval_group(g);
                self.evaluated[g] = true;
            }
        }
    }

    /// The evaluation counters so far.
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    /// Membership test against the current stores (extensional relations
    /// are answered by the view). Call [`Evaluator::run`] first for
    /// intensional relations.
    pub fn contains(&self, rel: RelId, tuple: &[u32]) -> bool {
        let r = rel.0 as usize;
        assert_eq!(
            self.prog.rels[r].schema.len(),
            tuple.len(),
            "arity mismatch"
        );
        self.rel_contains(r, tuple[0], tuple.get(1).copied().unwrap_or(0))
    }

    /// The elements of a unary relation, in increasing order.
    pub fn unary(&self, rel: RelId) -> Vec<u32> {
        let r = rel.0 as usize;
        assert_eq!(self.prog.rels[r].schema.len(), 1, "`unary` needs arity 1");
        match &self.stores[r] {
            Store::Unary(s) => s.iter().map(|x| x as u32).collect(),
            Store::Extern(e) => {
                let mut out = Vec::new();
                self.db.for_each(*e, &mut |a, _| out.push(a));
                out.sort_unstable();
                out
            }
            Store::Binary { .. } => unreachable!("arity checked above"),
        }
    }

    /// The tuples of a binary relation, sorted.
    pub fn pairs(&self, rel: RelId) -> Vec<(u32, u32)> {
        let r = rel.0 as usize;
        assert_eq!(self.prog.rels[r].schema.len(), 2, "`pairs` needs arity 2");
        let mut out = Vec::new();
        match &self.stores[r] {
            Store::Binary { rows, .. } => {
                for (k, row) in rows.iter().enumerate() {
                    if let Some(row) = row {
                        out.extend(row.iter().map(|v| (k as u32, v as u32)));
                    }
                }
            }
            Store::Extern(e) => {
                self.db.for_each(*e, &mut |a, b| out.push((a, b)));
                out.sort_unstable();
            }
            Store::Unary(_) => unreachable!("arity checked above"),
        }
        out
    }

    /// Demand-mode membership: evaluates only what the question needs.
    ///
    /// Earlier groups are completed as usual, but if `rel`'s own group
    /// is sweep-shaped (`r(x) :- edge(x, y), r(y)` plus non-recursive
    /// seed rules), the answer comes from a BFS cone over the engine's
    /// CSR starting at `x` — touching `O(cone)` nodes, not `O(V + E)` —
    /// and the group is left unevaluated for later full runs.
    pub fn query_unary(&mut self, rel: RelId, x: u32) -> bool {
        let r = rel.0 as usize;
        assert_eq!(
            self.prog.rels[r].schema.len(),
            1,
            "`query_unary` needs arity 1"
        );
        let g = self.groups.group_of[r];
        for gg in 0..g {
            if !self.evaluated[gg] {
                self.eval_group(gg);
                self.evaluated[gg] = true;
            }
        }
        if self.evaluated[g] {
            return self.rel_contains(r, x, 0);
        }
        let rules = self.group_rules[g].clone();
        if let Some((_, seed_rules)) = self.sweep_shape(g, &rules) {
            if !self.demand_seeded[g] {
                let mut wl = Vec::new();
                for ri in seed_rules {
                    self.eval_rule(ri, usize::MAX, None, &mut wl);
                }
                self.demand_seeded[g] = true;
            }
            let csr = self.db.engine().csr();
            let mut visited = BitSet::new(self.db.engine().node_count());
            let mut stack = vec![x];
            visited.insert(x as usize);
            let mut cone = 0;
            let mut hit = false;
            while let Some(u) = stack.pop() {
                cone += 1;
                if self.rel_contains(r, u, 0) {
                    hit = true;
                    break;
                }
                for &v in csr.succs(u as usize) {
                    if visited.insert(v as usize) {
                        stack.push(v);
                    }
                }
            }
            self.stats.demand_visited += cone;
            hit
        } else {
            self.eval_group(g);
            self.evaluated[g] = true;
            self.rel_contains(r, x, 0)
        }
    }

    // --- group evaluation --------------------------------------------------

    fn eval_group(&mut self, g: usize) {
        let rules = self.group_rules[g].clone();
        if let Some((rel, seed_rules)) = self.sweep_shape(g, &rules) {
            self.eval_sweep(rel, &seed_rules);
            return;
        }
        // Naive round: every rule joined in full (sees seeds and the
        // results of earlier rules in this group), fresh tuples queued.
        let mut wl: Vec<(usize, u32, u32)> = Vec::new();
        for &ri in &rules {
            self.eval_rule(ri, usize::MAX, None, &mut wl);
        }
        // Delta rounds: drive each fresh tuple through every same-group
        // positive occurrence exactly once.
        while let Some((rel, a, b)) = wl.pop() {
            self.stats.rounds += 1;
            for i in 0..self.occurrences[rel].len() {
                let (ri, li) = self.occurrences[rel][i];
                self.eval_rule(ri, li, Some((a, b)), &mut wl);
            }
        }
    }

    /// Detects the sweep shape: a single-relation group over `Dom::Node`
    /// whose one recursive rule is `r(x) :- edge(x, y), r(y)` (either
    /// literal order) with `edge` the engine CSR view. Returns the
    /// relation and the group's non-recursive (seed) rules.
    fn sweep_shape(&self, g: usize, rules: &[usize]) -> Option<(usize, Vec<usize>)> {
        #[cfg(test)]
        if self.force_generic {
            return None;
        }
        let members = &self.groups.order[g];
        if members.len() != 1 {
            return None;
        }
        let r = members[0];
        let decl = &self.prog.rels[r];
        if decl.kind != RelKind::Idb
            || decl.schema.len() != 1
            || decl.schema[0] != crate::program::Dom::Node
        {
            return None;
        }
        let mut seed_rules = Vec::new();
        let mut recursive = 0usize;
        for &ri in rules {
            let rule = &self.prog.rules[ri];
            let is_rec = rule
                .body
                .iter()
                .any(|l| matches!(l, CLit::Pos(a) if self.groups.group_of[a.rel] == g));
            if !is_rec {
                seed_rules.push(ri);
                continue;
            }
            recursive += 1;
            if rule.body.len() != 2 {
                return None;
            }
            // One literal is edge(x, y), the other r(y); head is r(x).
            let mut edge_xy: Option<(u8, u8)> = None;
            let mut rec_y: Option<u8> = None;
            for lit in &rule.body {
                let CLit::Pos(a) = lit else { return None };
                if a.rel == r {
                    match a.terms[..] {
                        [CTerm::Var(y)] => rec_y = Some(y),
                        _ => return None,
                    }
                } else if matches!(self.stores[a.rel], Store::Extern(EdbRel::Edge)) {
                    match a.terms[..] {
                        [CTerm::Var(x), CTerm::Var(y)] if x != y => edge_xy = Some((x, y)),
                        _ => return None,
                    }
                } else {
                    return None;
                }
            }
            let ((x, y), ry) = (edge_xy?, rec_y?);
            if ry != y || rule.head.terms[..] != [CTerm::Var(x)] {
                return None;
            }
        }
        if recursive != 1 {
            return None;
        }
        Some((r, seed_rules))
    }

    /// Solves `r(x) :- edge(x, y), r(y)` (plus seeds) as one ascending
    /// pass over SCC component ids: a component holds `r` iff it
    /// contains a seed or any member has an edge into a smaller-id
    /// component that holds `r` (the reverse-topological numbering makes
    /// one pass a fixpoint; `r` is uniform inside a strongly connected
    /// component).
    fn eval_sweep(&mut self, r: usize, seed_rules: &[usize]) {
        if !self.demand_seeded[self.groups.group_of[r]] {
            let mut wl = Vec::new();
            for &ri in seed_rules {
                self.eval_rule(ri, usize::MAX, None, &mut wl);
            }
        }
        let cond = self.db.engine().condensation();
        let csr = self.db.engine().csr();
        let cc = cond.comp_count();
        let mut bits = vec![false; cc];
        {
            let Store::Unary(s) = &self.stores[r] else {
                unreachable!("sweep relation is unary")
            };
            for x in s.iter() {
                bits[cond.comp_of(x)] = true;
            }
        }
        for c in 0..cc {
            if bits[c] {
                continue;
            }
            'members: for &m in cond.members(c) {
                for &s in csr.succs(m as usize) {
                    let d = cond.comp_of(s as usize);
                    if d != c && bits[d] {
                        bits[c] = true;
                        break 'members;
                    }
                }
            }
        }
        let mut fresh = 0usize;
        let Store::Unary(s) = &mut self.stores[r] else {
            unreachable!("sweep relation is unary")
        };
        for (c, &on) in bits.iter().enumerate() {
            if on {
                for &m in cond.members(c) {
                    if s.insert(m as usize) {
                        fresh += 1;
                    }
                }
            }
        }
        self.stats.derived += fresh;
        self.stats.sweep_strata += 1;
    }

    /// Evaluates one rule. With `tuple`, body literal `skip` is pre-bound
    /// to the delta tuple and excluded from the join; with `skip ==
    /// usize::MAX` the rule is joined in full. Fresh head tuples are
    /// inserted and queued on `wl`.
    fn eval_rule(
        &mut self,
        ri: usize,
        skip: usize,
        tuple: Option<(u32, u32)>,
        wl: &mut Vec<(usize, u32, u32)>,
    ) {
        let prog = self.prog;
        let rule = &prog.rules[ri];
        let mut binds = vec![UNBOUND; rule.vars.len()];
        if let Some((a, b)) = tuple {
            let CLit::Pos(atom) = &rule.body[skip] else {
                unreachable!("delta occurrences are positive atoms")
            };
            for (t, v) in atom.terms.iter().zip([a, b]) {
                if unify(*t, v, &mut binds).is_err() {
                    return;
                }
            }
        }
        let head_rel = rule.head.rel;
        let last = rule.body.len().wrapping_sub(1);
        let fast = self.use_fast_row(ri) && skip != last;
        if fast {
            let Store::Unary(head) = &self.stores[head_rel] else {
                unreachable!("fast-path head is unary")
            };
            let mut scratch = BitSet::new(head.capacity());
            self.join_from(
                rule,
                0,
                skip,
                last,
                &mut binds,
                &mut Sink::Row(&mut scratch),
            );
            for bit in scratch.iter() {
                if self.insert(head_rel, bit as u32, 0) {
                    self.stats.derived += 1;
                    wl.push((head_rel, bit as u32, 0));
                }
            }
        } else {
            let mut out: Vec<(u32, u32)> = Vec::new();
            self.join_from(
                rule,
                0,
                skip,
                rule.body.len(),
                &mut binds,
                &mut Sink::Tuples(&mut out),
            );
            for (a, b) in out {
                if self.insert(head_rel, a, b) {
                    self.stats.derived += 1;
                    wl.push((head_rel, a, b));
                }
            }
        }
    }

    fn use_fast_row(&self, ri: usize) -> bool {
        #[cfg(test)]
        if self.force_generic {
            return false;
        }
        self.fast_row[ri]
    }

    /// Left-to-right nested-loop join over `body[li..stop]`, skipping the
    /// pre-bound literal `skip`. At `stop` the sink fires: either the
    /// head tuple is materialized, or (row-union fast path) the last
    /// literal's raw row is unioned word-parallel into the scratch set.
    fn join_from(
        &self,
        rule: &CRule,
        li: usize,
        skip: usize,
        stop: usize,
        binds: &mut [u32],
        sink: &mut Sink<'_>,
    ) {
        if li == stop {
            match sink {
                Sink::Tuples(out) => {
                    let a = resolve(rule.head.terms[0], binds).expect("head bound");
                    let b = rule
                        .head
                        .terms
                        .get(1)
                        .map(|t| resolve(*t, binds).expect("head bound"))
                        .unwrap_or(0);
                    out.push((a, b));
                }
                Sink::Row(scratch) => {
                    let CLit::Pos(atom) = &rule.body[stop] else {
                        unreachable!("fast-path row literal is positive")
                    };
                    let key = resolve(atom.terms[0], binds).expect("fast-path key bound");
                    if let Some(row) = self.rel_row_words(atom.rel, key) {
                        scratch.union_words(row);
                    }
                }
            }
            return;
        }
        if li == skip {
            return self.join_from(rule, li + 1, skip, stop, binds, sink);
        }
        match &rule.body[li] {
            CLit::Neq(a, b) => {
                let (a, b) = (
                    resolve(*a, binds).expect("neq operand bound"),
                    resolve(*b, binds).expect("neq operand bound"),
                );
                if a != b {
                    self.join_from(rule, li + 1, skip, stop, binds, sink);
                }
            }
            CLit::Neg(atom) => {
                if !self.atom_exists(atom, binds) {
                    self.join_from(rule, li + 1, skip, stop, binds, sink);
                }
            }
            CLit::Pos(atom) if atom.terms.len() == 1 => {
                let t = atom.terms[0];
                match resolve(t, binds) {
                    Some(x) => {
                        if self.rel_contains(atom.rel, x, 0) {
                            self.join_from(rule, li + 1, skip, stop, binds, sink);
                        }
                    }
                    None => match t {
                        CTerm::Var(v) => {
                            self.rel_for_each(atom.rel, &mut |x, _| {
                                binds[v as usize] = x;
                                self.join_from(rule, li + 1, skip, stop, binds, sink);
                            });
                            binds[v as usize] = UNBOUND;
                        }
                        CTerm::Wild => {
                            if self.rel_any(atom.rel) {
                                self.join_from(rule, li + 1, skip, stop, binds, sink);
                            }
                        }
                        CTerm::Const(_) => unreachable!("constants resolve"),
                    },
                }
            }
            CLit::Pos(atom) => {
                let (t0, t1) = (atom.terms[0], atom.terms[1]);
                match resolve(t0, binds) {
                    Some(k) => match (resolve(t1, binds), t1) {
                        (Some(v), _) => {
                            if self.rel_contains(atom.rel, k, v) {
                                self.join_from(rule, li + 1, skip, stop, binds, sink);
                            }
                        }
                        (None, CTerm::Var(v1)) => {
                            self.rel_matching(atom.rel, k, &mut |v| {
                                binds[v1 as usize] = v;
                                self.join_from(rule, li + 1, skip, stop, binds, sink);
                            });
                            binds[v1 as usize] = UNBOUND;
                        }
                        (None, CTerm::Wild) => {
                            if self.rel_has_key(atom.rel, k) {
                                self.join_from(rule, li + 1, skip, stop, binds, sink);
                            }
                        }
                        (None, CTerm::Const(_)) => unreachable!("constants resolve"),
                    },
                    None => {
                        // First column unbound: full scan with unification
                        // (no reverse index; acceptable for the catalog's
                        // small key-unbound uses).
                        self.rel_for_each(atom.rel, &mut |a, b| {
                            let Ok(u0) = unify(t0, a, binds) else { return };
                            if let Ok(u1) = unify(t1, b, binds) {
                                self.join_from(rule, li + 1, skip, stop, binds, sink);
                                if let Some(v) = u1 {
                                    binds[v as usize] = UNBOUND;
                                }
                            }
                            if let Some(v) = u0 {
                                binds[v as usize] = UNBOUND;
                            }
                        });
                    }
                }
            }
        }
    }

    /// Existence check for a negated atom; unbound positions are wilds.
    fn atom_exists(&self, atom: &crate::program::CAtom, binds: &[u32]) -> bool {
        if atom.terms.len() == 1 {
            return match resolve(atom.terms[0], binds) {
                Some(x) => self.rel_contains(atom.rel, x, 0),
                None => self.rel_any(atom.rel),
            };
        }
        match (resolve(atom.terms[0], binds), resolve(atom.terms[1], binds)) {
            (Some(a), Some(b)) => self.rel_contains(atom.rel, a, b),
            (Some(a), None) => self.rel_has_key(atom.rel, a),
            (None, Some(b)) => {
                let mut any = false;
                self.rel_for_each(atom.rel, &mut |_, v| any |= v == b);
                any
            }
            (None, None) => self.rel_any(atom.rel),
        }
    }

    // --- store access -------------------------------------------------------

    fn insert(&mut self, rel: usize, a: u32, b: u32) -> bool {
        match &mut self.stores[rel] {
            Store::Unary(s) => s.insert(a as usize),
            Store::Binary {
                rows,
                val_size,
                len,
            } => {
                let row = rows[a as usize].get_or_insert_with(|| BitSet::new(*val_size));
                let fresh = row.insert(b as usize);
                if fresh {
                    *len += 1;
                }
                fresh
            }
            Store::Extern(_) => unreachable!("rules cannot derive extensional relations"),
        }
    }

    fn rel_contains(&self, rel: usize, a: u32, b: u32) -> bool {
        match &self.stores[rel] {
            Store::Extern(e) => self.db.contains(*e, a, b),
            Store::Unary(s) => s.contains(a as usize),
            Store::Binary { rows, .. } => rows[a as usize]
                .as_ref()
                .is_some_and(|r| r.contains(b as usize)),
        }
    }

    fn rel_for_each(&self, rel: usize, f: &mut dyn FnMut(u32, u32)) {
        match &self.stores[rel] {
            Store::Extern(e) => self.db.for_each(*e, f),
            Store::Unary(s) => {
                for x in s.iter() {
                    f(x as u32, 0);
                }
            }
            Store::Binary { rows, .. } => {
                for (k, row) in rows.iter().enumerate() {
                    if let Some(row) = row {
                        for v in row.iter() {
                            f(k as u32, v as u32);
                        }
                    }
                }
            }
        }
    }

    fn rel_matching(&self, rel: usize, key: u32, f: &mut dyn FnMut(u32)) {
        match &self.stores[rel] {
            Store::Extern(e) => self.db.for_each_matching(*e, key, f),
            Store::Binary { rows, .. } => {
                if let Some(row) = &rows[key as usize] {
                    for v in row.iter() {
                        f(v as u32);
                    }
                }
            }
            Store::Unary(_) => unreachable!("unary relation has no second column"),
        }
    }

    fn rel_has_key(&self, rel: usize, key: u32) -> bool {
        match &self.stores[rel] {
            Store::Extern(e) => self.db.has_key(*e, key),
            Store::Binary { rows, .. } => {
                rows[key as usize].as_ref().is_some_and(|r| !r.is_empty())
            }
            Store::Unary(_) => unreachable!("unary relation has no second column"),
        }
    }

    fn rel_any(&self, rel: usize) -> bool {
        match &self.stores[rel] {
            Store::Extern(e) => {
                let mut any = false;
                self.db.for_each(*e, &mut |_, _| any = true);
                any
            }
            Store::Unary(s) => !s.is_empty(),
            Store::Binary { len, .. } => *len > 0,
        }
    }

    fn rel_row_words(&self, rel: usize, key: u32) -> Option<&[u64]> {
        match &self.stores[rel] {
            Store::Extern(e) => self.db.row_words(*e, key),
            Store::Binary { rows, .. } => rows[key as usize].as_ref().map(|r| r.words()),
            Store::Unary(_) => None,
        }
    }
}

enum Sink<'s> {
    /// Materialize head tuples.
    Tuples(&'s mut Vec<(u32, u32)>),
    /// Row-union fast path: union the last literal's raw row into a
    /// scratch set of head values.
    Row(&'s mut BitSet),
}

fn resolve(t: CTerm, binds: &[u32]) -> Option<u32> {
    match t {
        CTerm::Const(c) => Some(c),
        CTerm::Wild => None,
        CTerm::Var(v) => match binds[v as usize] {
            UNBOUND => None,
            x => Some(x),
        },
    }
}

/// Matches `t` against `val`: `Ok(Some(v))` freshly bound variable `v`
/// (caller unbinds after backtracking), `Ok(None)` matched without
/// binding, `Err(())` mismatch.
fn unify(t: CTerm, val: u32, binds: &mut [u32]) -> Result<Option<u8>, ()> {
    match t {
        CTerm::Wild => Ok(None),
        CTerm::Const(c) => {
            if c == val {
                Ok(None)
            } else {
                Err(())
            }
        }
        CTerm::Var(v) => {
            let slot = &mut binds[v as usize];
            if *slot == UNBOUND {
                *slot = val;
                Ok(Some(v))
            } else if *slot == val {
                Ok(None)
            } else {
                Err(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{head, neg, pos, var, Dom, RuleProgram, WILD};
    use stcfa_core::{Analysis, QueryEngine};
    use stcfa_lambda::Program;

    fn setup(src: &str) -> (Program, Analysis) {
        let p = Program::parse(src).unwrap();
        let a = Analysis::run(&p).unwrap();
        (p, a)
    }

    const HIGHER_ORDER: &str = "fun apply f = fn y => f y; apply (fn n => print n) 7";

    /// `invoked(l) :- app_func(_, e), expr_label(e, l).` must agree with
    /// the engine's own per-application label sets.
    #[test]
    fn row_union_rule_matches_engine_answers() {
        let (p, a) = setup(HIGHER_ORDER);
        let engine = QueryEngine::freeze(&a);
        let db = ExtDb::new(&p, &a, &engine);
        let mut rp = RuleProgram::new();
        let app_func = rp.edb("app_func", &[Dom::Expr, Dom::Expr]);
        let expr_label = rp.edb("expr_label", &[Dom::Expr, Dom::Label]);
        let invoked = rp.decl("invoked", &[Dom::Label]);
        rp.rule(
            head(invoked, &[var("l")]),
            vec![
                pos(app_func, &[WILD, var("e")]),
                pos(expr_label, &[var("e"), var("l")]),
            ],
        )
        .unwrap();

        let mut want: Vec<u32> = Vec::new();
        for app in p.app_sites() {
            if let stcfa_lambda::ExprKind::App { func, .. } = p.kind(app) {
                want.extend(engine.labels_of(*func).iter().map(|l| l.index() as u32));
            }
        }
        want.sort_unstable();
        want.dedup();

        // Fast path and generic join agree with the engine.
        let mut fast = Evaluator::new(&rp, &db).unwrap();
        fast.run();
        assert_eq!(fast.unary(invoked), want);
        let mut slow = Evaluator::new(&rp, &db).unwrap();
        slow.force_generic = true;
        slow.run();
        assert_eq!(slow.unary(invoked), want);
    }

    /// The condensation sweep must agree with the generic worklist on
    /// `treach(n) :- src(n); treach(n) :- edge(n, m), treach(m).`
    #[test]
    fn sweep_matches_generic_evaluation() {
        let (p, a) = setup(HIGHER_ORDER);
        let engine = QueryEngine::freeze(&a);
        let db = ExtDb::new(&p, &a, &engine);
        let mut rp = RuleProgram::new();
        let edge = rp.edb("edge", &[Dom::Node, Dom::Node]);
        let origin = rp.edb("label_origin", &[Dom::Label, Dom::Node]);
        let eff = rp.edb("effectful_label", &[Dom::Label]);
        let src = rp.decl("src", &[Dom::Node]);
        let treach = rp.decl("treach", &[Dom::Node]);
        rp.rule(
            head(src, &[var("n")]),
            vec![pos(eff, &[var("l")]), pos(origin, &[var("l"), var("n")])],
        )
        .unwrap();
        rp.rule(head(treach, &[var("n")]), vec![pos(src, &[var("n")])])
            .unwrap();
        rp.rule(
            head(treach, &[var("n")]),
            vec![pos(edge, &[var("n"), var("m")]), pos(treach, &[var("m")])],
        )
        .unwrap();

        let mut swept = Evaluator::new(&rp, &db).unwrap();
        swept.run();
        let mut generic = Evaluator::new(&rp, &db).unwrap();
        generic.force_generic = true;
        generic.run();
        assert_eq!(swept.unary(treach), generic.unary(treach));
        assert!(
            !swept.unary(treach).is_empty(),
            "print-lambda taints someone"
        );
        assert_eq!(swept.stats().sweep_strata, 1);
        assert_eq!(generic.stats().sweep_strata, 0);

        // Demand mode gives the same verdict per node without a full run.
        let mut demand = Evaluator::new(&rp, &db).unwrap();
        let full: Vec<u32> = swept.unary(treach);
        for n in 0..engine.node_count() as u32 {
            assert_eq!(
                demand.query_unary(treach, n),
                full.binary_search(&n).is_ok(),
                "node {n}"
            );
        }
        assert!(demand.stats().demand_visited > 0);
        assert_eq!(demand.stats().sweep_strata, 0, "demand never swept");
    }

    /// Binary recursion (transitive closure) against brute force, and
    /// seeded facts flowing through rules.
    #[test]
    fn binary_transitive_closure_matches_brute_force() {
        let (p, a) = setup(HIGHER_ORDER);
        let engine = QueryEngine::freeze(&a);
        let db = ExtDb::new(&p, &a, &engine);
        let mut rp = RuleProgram::new();
        let edge = rp.edb("edge", &[Dom::Node, Dom::Node]);
        let tc = rp.decl("tc", &[Dom::Node, Dom::Node]);
        rp.rule(
            head(tc, &[var("x"), var("y")]),
            vec![pos(edge, &[var("x"), var("y")])],
        )
        .unwrap();
        rp.rule(
            head(tc, &[var("x"), var("z")]),
            vec![
                pos(tc, &[var("x"), var("y")]),
                pos(edge, &[var("y"), var("z")]),
            ],
        )
        .unwrap();
        let mut ev = Evaluator::new(&rp, &db).unwrap();
        ev.run();
        let got = ev.pairs(tc);

        // Brute force: BFS from every node over the CSR.
        let csr = engine.csr();
        let mut want: Vec<(u32, u32)> = Vec::new();
        for s in 0..engine.node_count() {
            let mut seen = BitSet::new(engine.node_count());
            let mut stack: Vec<usize> = csr.succs(s).iter().map(|&v| v as usize).collect();
            while let Some(u) = stack.pop() {
                if seen.insert(u) {
                    want.push((s as u32, u as u32));
                    stack.extend(csr.succs(u).iter().map(|&v| v as usize));
                }
            }
        }
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(ev.stats().rounds > 0, "delta rounds ran");
        assert!(ev.stats().derived >= got.len());
    }

    /// Stratified negation over real views: labels never invoked.
    #[test]
    fn negation_filters_against_completed_stratum() {
        let (p, a) = setup("let val dead = fn x => x in (fn y => y) 1 end");
        let engine = QueryEngine::freeze(&a);
        let db = ExtDb::new(&p, &a, &engine);
        let mut rp = RuleProgram::new();
        let app_func = rp.edb("app_func", &[Dom::Expr, Dom::Expr]);
        let expr_label = rp.edb("expr_label", &[Dom::Expr, Dom::Label]);
        let lam_label = rp.edb("lam_label", &[Dom::Label, Dom::Expr]);
        let invoked = rp.decl("invoked", &[Dom::Label]);
        let dead = rp.decl("dead", &[Dom::Label]);
        rp.rule(
            head(invoked, &[var("l")]),
            vec![
                pos(app_func, &[WILD, var("e")]),
                pos(expr_label, &[var("e"), var("l")]),
            ],
        )
        .unwrap();
        rp.rule(
            head(dead, &[var("l")]),
            vec![pos(lam_label, &[var("l"), WILD]), neg(invoked, &[var("l")])],
        )
        .unwrap();
        let mut ev = Evaluator::new(&rp, &db).unwrap();
        ev.run();
        assert_eq!(p.label_count(), 2);
        assert_eq!(ev.unary(invoked).len(), 1, "only fn y is applied");
        assert_eq!(ev.unary(dead).len(), 1, "fn x is dead");
        assert_ne!(ev.unary(invoked), ev.unary(dead));
    }

    /// Seeds flow into sweeps, and out-of-contract seeds are rejected.
    #[test]
    fn seeding_and_guards() {
        let (p, a) = setup(HIGHER_ORDER);
        let engine = QueryEngine::freeze(&a);
        let db = ExtDb::new(&p, &a, &engine);
        let mut rp = RuleProgram::new();
        let edge = rp.edb("edge", &[Dom::Node, Dom::Node]);
        let treach = rp.decl("treach", &[Dom::Node]);
        rp.rule(
            head(treach, &[var("n")]),
            vec![pos(edge, &[var("n"), var("m")]), pos(treach, &[var("m")])],
        )
        .unwrap();
        let mut ev = Evaluator::new(&rp, &db).unwrap();
        // Without seeds the relation is empty even after a sweep.
        let mut empty = Evaluator::new(&rp, &db).unwrap();
        empty.run();
        assert!(empty.unary(treach).is_empty());
        // Seed one node: at least that node holds.
        ev.seed(treach, &[0]);
        ev.run();
        assert!(ev.contains(treach, &[0]));
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut e2 = Evaluator::new(&rp, &db).unwrap();
            e2.seed(edge, &[0, 0]);
        }));
        assert!(res.is_err(), "seeding an extensional relation panics");
    }
}
