//! A Datalog-flavoured rule layer over the frozen subtransitive engine.
//!
//! The subtransitive analyses — what the query engine, the lints, and
//! the protocol all compute — are relational at heart: label sets are a
//! reachability relation, lints are joins with negation over it, and
//! the linear-time guarantee comes from never materializing the
//! transitive closure. This crate makes that explicit. It has three
//! layers:
//!
//! - [`program`] — a typed Rust builder DSL (no parser) for relation
//!   declarations and Horn clauses. Registration is the type checker:
//!   arity, per-column domains, left-to-right boundness, and stratified
//!   negation are all rejected with a [`program::RuleError`] before
//!   anything evaluates.
//! - [`edb`] — the extensional database: every input relation is a
//!   zero-copy view over structures the engine already owns (CSR edge
//!   slices, the SCC condensation, per-component label bit rows, the
//!   effects colouring, the call graph).
//! - [`eval`] — a semi-naive worklist evaluator with bitset stores.
//!   Structural fast paths (word-parallel row-union joins, ascending
//!   condensation sweeps) keep rule programs at the same `O(E·L/64)`
//!   arithmetic as the hand-fused analyses, and a demand mode answers
//!   single membership questions from a BFS cone.
//!
//! [`analyses`] holds the shipped programs: the three lint analyses
//! ported byte-identically from their hand-fused forms (STCFA002/004/
//! 005), the call-graph dominator relation, taint-style source→sink
//! reachability, and the two new lint analyses (STCFA007 mixed purity,
//! STCFA008 dominated-redundant application).
//!
//! ```
//! use stcfa_core::{Analysis, QueryEngine};
//! use stcfa_lambda::Program;
//! use stcfa_rules::edb::ExtDb;
//!
//! let p = Program::parse("let val dead = fn x => x in (fn y => y) 1 end").unwrap();
//! let a = Analysis::run(&p).unwrap();
//! let engine = QueryEngine::freeze(&a);
//! let db = ExtDb::new(&p, &a, &engine);
//! let dead = stcfa_rules::analyses::never_invoked(&db);
//! assert_eq!(dead.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod analyses;
pub mod edb;
pub mod eval;
pub mod program;

pub use analyses::{
    dominated_redundant, dominators, escaping_effectful, expr_is_tainted, mixed_purity,
    never_invoked, tainted_exprs, useless_param, DomRelation, DominatedRedundant,
};
pub use edb::{edb_catalog, edb_schema, ExtDb};
pub use eval::{EvalStats, Evaluator};
pub use program::{
    cst, head, neg, neq, pos, var, Dom, Head, Lit, RelId, RuleError, RuleProgram, Term, WILD,
};
