//! The shipped rule programs: the three ported lint analyses
//! (never-invoked, useless-parameter, escaping-effectful), the
//! call-graph dominator relation, taint-style source→sink reachability,
//! and the mixed-purity / dominated-redundant analyses behind lint codes
//! STCFA007 and STCFA008.
//!
//! Each analysis comes as a pair: a `*_program()` constructor returning
//! the declarative [`RuleProgram`] (what `stcfa lint --explain` prints)
//! and a driver that evaluates it against an [`ExtDb`] and decodes the
//! answer relation into typed ids.

use stcfa_graph::BitSet;
use stcfa_lambda::{ExprId, ExprKind, Label, VarId};

use crate::edb::ExtDb;
use crate::eval::Evaluator;
use crate::program::{head, neg, neq, pos, var, Dom, RelId, RuleProgram, WILD};

/// `never_invoked`: labels of abstractions no application can call and
/// that do not escape to the program result (rule form of STCFA002).
pub fn never_invoked_program() -> (RuleProgram, RelId) {
    let mut p = RuleProgram::new();
    let app_func = p.edb("app_func", &[Dom::Expr, Dom::Expr]);
    let expr_label = p.edb("expr_label", &[Dom::Expr, Dom::Label]);
    let root_expr = p.edb("root_expr", &[Dom::Expr]);
    let lam_label = p.edb("lam_label", &[Dom::Label, Dom::Expr]);
    let machinery = p.edb("machinery_label", &[Dom::Label]);
    let invoked = p.decl("invoked", &[Dom::Label]);
    let escaping = p.decl("escaping", &[Dom::Label]);
    let report = p.decl("never_invoked", &[Dom::Label]);
    p.rule(
        head(invoked, &[var("l")]),
        vec![
            pos(app_func, &[WILD, var("e")]),
            pos(expr_label, &[var("e"), var("l")]),
        ],
    )
    .expect("well-formed");
    p.rule(
        head(escaping, &[var("l")]),
        vec![
            pos(root_expr, &[var("e")]),
            pos(expr_label, &[var("e"), var("l")]),
        ],
    )
    .expect("well-formed");
    p.rule(
        head(report, &[var("l")]),
        vec![
            pos(lam_label, &[var("l"), WILD]),
            neg(invoked, &[var("l")]),
            neg(escaping, &[var("l")]),
            neg(machinery, &[var("l")]),
        ],
    )
    .expect("well-formed");
    (p, report)
}

/// Evaluates [`never_invoked_program`]; labels in increasing order.
pub fn never_invoked(db: &ExtDb<'_>) -> Vec<Label> {
    let (p, report) = never_invoked_program();
    let mut ev = Evaluator::new(&p, db).expect("program is well-formed");
    ev.run();
    ev.unary(report)
        .into_iter()
        .map(|l| Label::from_index(l as usize))
        .collect()
}

/// `useless_param`: λ parameters with no occurrences (rule form of
/// STCFA004). The answer pairs each parameter with its abstraction.
pub fn useless_param_program() -> (RuleProgram, RelId) {
    let mut p = RuleProgram::new();
    let occurrence = p.edb("occurrence", &[Dom::Var, Dom::Expr]);
    let param = p.edb("param", &[Dom::Var, Dom::Expr]);
    let exempt = p.edb("exempt_var", &[Dom::Var]);
    let used = p.decl("used", &[Dom::Var]);
    let report = p.decl("useless_param", &[Dom::Var, Dom::Expr]);
    p.rule(
        head(used, &[var("v")]),
        vec![pos(occurrence, &[var("v"), WILD])],
    )
    .expect("well-formed");
    p.rule(
        head(report, &[var("v"), var("lam")]),
        vec![
            pos(param, &[var("v"), var("lam")]),
            neg(used, &[var("v")]),
            neg(exempt, &[var("v")]),
        ],
    )
    .expect("well-formed");
    (p, report)
}

/// Evaluates [`useless_param_program`]; `(binder, lambda)` pairs in
/// increasing binder order.
pub fn useless_param(db: &ExtDb<'_>) -> Vec<(VarId, ExprId)> {
    let (p, report) = useless_param_program();
    let mut ev = Evaluator::new(&p, db).expect("program is well-formed");
    ev.run();
    ev.pairs(report)
        .into_iter()
        .map(|(v, e)| {
            (
                VarId::from_index(v as usize),
                ExprId::from_index(e as usize),
            )
        })
        .collect()
}

/// `escaping_effectful`: effectful abstractions reaching the program
/// result (rule form of STCFA005).
pub fn escaping_effectful_program() -> (RuleProgram, RelId) {
    let mut p = RuleProgram::new();
    let root_expr = p.edb("root_expr", &[Dom::Expr]);
    let expr_label = p.edb("expr_label", &[Dom::Expr, Dom::Label]);
    let effectful = p.edb("effectful_label", &[Dom::Label]);
    let escaping = p.decl("escaping", &[Dom::Label]);
    let report = p.decl("escaping_effectful", &[Dom::Label]);
    p.rule(
        head(escaping, &[var("l")]),
        vec![
            pos(root_expr, &[var("e")]),
            pos(expr_label, &[var("e"), var("l")]),
        ],
    )
    .expect("well-formed");
    p.rule(
        head(report, &[var("l")]),
        vec![pos(escaping, &[var("l")]), pos(effectful, &[var("l")])],
    )
    .expect("well-formed");
    (p, report)
}

/// Evaluates [`escaping_effectful_program`]; labels in increasing order.
pub fn escaping_effectful(db: &ExtDb<'_>) -> Vec<Label> {
    let (p, report) = escaping_effectful_program();
    let mut ev = Evaluator::new(&p, db).expect("program is well-formed");
    ev.run();
    ev.unary(report)
        .into_iter()
        .map(|l| Label::from_index(l as usize))
        .collect()
}

/// The call-graph dominator relation, as stratified Datalog:
/// `nd(n, d)` — the entry reaches `n` on a path avoiding `d` — is the
/// positive complement, and `dom(n, d) = reach(n) ∧ ¬nd(n, d)`. Every
/// reachable node dominates itself; the entry is dominated only by
/// itself.
pub fn dominators_program() -> (RuleProgram, RelId, RelId) {
    let mut p = RuleProgram::new();
    let entry = p.edb("cg_entry", &[Dom::CgNode]);
    let edge = p.edb("cg_edge", &[Dom::CgNode, Dom::CgNode]);
    let node = p.edb("cg_node", &[Dom::CgNode]);
    let reach = p.decl("reach", &[Dom::CgNode]);
    let nd = p.decl("nd", &[Dom::CgNode, Dom::CgNode]);
    let dom = p.decl("dom", &[Dom::CgNode, Dom::CgNode]);
    p.rule(head(reach, &[var("n")]), vec![pos(entry, &[var("n")])])
        .expect("well-formed");
    p.rule(
        head(reach, &[var("n")]),
        vec![pos(reach, &[var("p")]), pos(edge, &[var("p"), var("n")])],
    )
    .expect("well-formed");
    p.rule(
        head(nd, &[var("n"), var("d")]),
        vec![
            pos(entry, &[var("n")]),
            pos(node, &[var("d")]),
            neq(var("n"), var("d")),
        ],
    )
    .expect("well-formed");
    p.rule(
        head(nd, &[var("n"), var("d")]),
        vec![
            pos(nd, &[var("p"), var("d")]),
            pos(edge, &[var("p"), var("n")]),
            neq(var("n"), var("d")),
        ],
    )
    .expect("well-formed");
    p.rule(
        head(dom, &[var("n"), var("d")]),
        vec![
            pos(reach, &[var("n")]),
            pos(node, &[var("d")]),
            neg(nd, &[var("n"), var("d")]),
        ],
    )
    .expect("well-formed");
    (p, reach, dom)
}

/// The dominator relation over call-graph nodes (labels plus the
/// virtual entry at index `label_count()`).
#[derive(Clone, Debug)]
pub struct DomRelation {
    entry: usize,
    reachable: BitSet,
    /// Per node: its dominators, increasing; empty for unreachable nodes.
    doms: Vec<Vec<u32>>,
}

impl DomRelation {
    /// The entry node (the call graph's virtual root).
    pub fn entry(&self) -> usize {
        self.entry
    }

    /// Whether the entry reaches `n`.
    pub fn is_reachable(&self, n: usize) -> bool {
        self.reachable.contains(n)
    }

    /// The dominators of `n` in increasing order (includes `n` itself;
    /// empty for unreachable nodes).
    pub fn doms_of(&self, n: usize) -> &[u32] {
        &self.doms[n]
    }

    /// Whether `d` dominates `n` (reflexive on reachable nodes).
    pub fn dominates(&self, d: usize, n: usize) -> bool {
        self.doms[n].binary_search(&(d as u32)).is_ok()
    }

    /// Whether `d` dominates `n` and `d != n`.
    pub fn strictly_dominates(&self, d: usize, n: usize) -> bool {
        d != n && self.dominates(d, n)
    }
}

/// Evaluates [`dominators_program`] over the call graph.
pub fn dominators(db: &ExtDb<'_>) -> DomRelation {
    let (p, reach, dom) = dominators_program();
    let mut ev = Evaluator::new(&p, db).expect("program is well-formed");
    ev.run();
    let n = db.dom_size(Dom::CgNode);
    let mut reachable = BitSet::new(n);
    for x in ev.unary(reach) {
        reachable.insert(x as usize);
    }
    let mut doms = vec![Vec::new(); n];
    for (node, d) in ev.pairs(dom) {
        doms[node as usize].push(d);
    }
    DomRelation {
        entry: n - 1,
        reachable,
        doms,
    }
}

/// Taint reachability: `src_label` is seeded with the source labels,
/// their origin nodes become sources, and `treach` closes over the
/// subtransitive edges — so an occurrence is tainted exactly when its
/// label set meets the sources.
pub fn taint_program() -> (RuleProgram, RelId, RelId) {
    let mut p = RuleProgram::new();
    let origin = p.edb("label_origin", &[Dom::Label, Dom::Node]);
    let edge = p.edb("edge", &[Dom::Node, Dom::Node]);
    let src_label = p.decl("src_label", &[Dom::Label]);
    let src = p.decl("src", &[Dom::Node]);
    let treach = p.decl("treach", &[Dom::Node]);
    p.rule(
        head(src, &[var("n")]),
        vec![
            pos(src_label, &[var("l")]),
            pos(origin, &[var("l"), var("n")]),
        ],
    )
    .expect("well-formed");
    p.rule(head(treach, &[var("n")]), vec![pos(src, &[var("n")])])
        .expect("well-formed");
    p.rule(
        head(treach, &[var("n")]),
        vec![pos(edge, &[var("n"), var("m")]), pos(treach, &[var("m")])],
    )
    .expect("well-formed");
    (p, src_label, treach)
}

/// Every occurrence whose value may carry one of `sources` (full
/// evaluation; condensation sweep). Sorted by expression id.
pub fn tainted_exprs(db: &ExtDb<'_>, sources: &[Label]) -> Vec<ExprId> {
    let (p, src_label, treach) = taint_program();
    let mut ev = Evaluator::new(&p, db).expect("program is well-formed");
    for l in sources {
        ev.seed(src_label, &[l.index() as u32]);
    }
    ev.run();
    let program = db.program();
    let engine = db.engine();
    program
        .exprs()
        .filter(|&e| ev.contains(treach, &[engine.node_of_expr(e).index() as u32]))
        .collect()
}

/// Demand-mode taint query for one occurrence: walks only the BFS cone
/// of the occurrence's node instead of evaluating the whole relation.
pub fn expr_is_tainted(db: &ExtDb<'_>, sources: &[Label], e: ExprId) -> bool {
    let (p, src_label, treach) = taint_program();
    let mut ev = Evaluator::new(&p, db).expect("program is well-formed");
    for l in sources {
        ev.seed(src_label, &[l.index() as u32]);
    }
    ev.query_unary(treach, db.engine().node_of_expr(e).index() as u32)
}

/// `mixed_purity`: applications whose operator may evaluate to *both*
/// an effectful-bodied and a pure-bodied abstraction (rule form of
/// STCFA007). Two condensation sweeps (`ereach`, `preach`) meet at the
/// operator's node.
pub fn mixed_purity_program() -> (RuleProgram, RelId) {
    let mut p = RuleProgram::new();
    let effectful = p.edb("effectful_label", &[Dom::Label]);
    let pure = p.edb("pure_label", &[Dom::Label]);
    let origin = p.edb("label_origin", &[Dom::Label, Dom::Node]);
    let edge = p.edb("edge", &[Dom::Node, Dom::Node]);
    let app_func = p.edb("app_func", &[Dom::Expr, Dom::Expr]);
    let expr_node = p.edb("expr_node", &[Dom::Expr, Dom::Node]);
    let esrc = p.decl("esrc", &[Dom::Node]);
    let psrc = p.decl("psrc", &[Dom::Node]);
    let ereach = p.decl("ereach", &[Dom::Node]);
    let preach = p.decl("preach", &[Dom::Node]);
    let report = p.decl("mixed_purity", &[Dom::Expr, Dom::Expr]);
    p.rule(
        head(esrc, &[var("n")]),
        vec![
            pos(effectful, &[var("l")]),
            pos(origin, &[var("l"), var("n")]),
        ],
    )
    .expect("well-formed");
    p.rule(
        head(psrc, &[var("n")]),
        vec![pos(pure, &[var("l")]), pos(origin, &[var("l"), var("n")])],
    )
    .expect("well-formed");
    p.rule(head(ereach, &[var("n")]), vec![pos(esrc, &[var("n")])])
        .expect("well-formed");
    p.rule(
        head(ereach, &[var("n")]),
        vec![pos(edge, &[var("n"), var("m")]), pos(ereach, &[var("m")])],
    )
    .expect("well-formed");
    p.rule(head(preach, &[var("n")]), vec![pos(psrc, &[var("n")])])
        .expect("well-formed");
    p.rule(
        head(preach, &[var("n")]),
        vec![pos(edge, &[var("n"), var("m")]), pos(preach, &[var("m")])],
    )
    .expect("well-formed");
    p.rule(
        head(report, &[var("a"), var("f")]),
        vec![
            pos(app_func, &[var("a"), var("f")]),
            pos(expr_node, &[var("f"), var("n")]),
            pos(ereach, &[var("n")]),
            pos(preach, &[var("n")]),
        ],
    )
    .expect("well-formed");
    (p, report)
}

/// Evaluates [`mixed_purity_program`]; `(application, operator)` pairs
/// in increasing application order.
pub fn mixed_purity(db: &ExtDb<'_>) -> Vec<(ExprId, ExprId)> {
    let (p, report) = mixed_purity_program();
    let mut ev = Evaluator::new(&p, db).expect("program is well-formed");
    ev.run();
    ev.pairs(report)
        .into_iter()
        .map(|(a, f)| {
            (
                ExprId::from_index(a as usize),
                ExprId::from_index(f as usize),
            )
        })
        .collect()
}

/// One STCFA008 finding: `app` applies the sole target `target`, and so
/// does `by_app`, whose enclosing abstraction strictly dominates `app`'s
/// in the call graph — every call path reaching `app`'s encloser already
/// went through `by_app`'s.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DominatedRedundant {
    /// The dominated (reported) application.
    pub app: ExprId,
    /// Its operator expression.
    pub func: ExprId,
    /// The single abstraction both applications call.
    pub target: Label,
    /// The earlier application in the dominating encloser.
    pub by_app: ExprId,
}

/// Applications with a singleton call target whose encloser is strictly
/// dominated by another same-target application's encloser (the glue
/// analysis behind STCFA008). Sorted by reported application id; each
/// reported application cites the smallest qualifying witness.
pub fn dominated_redundant(db: &ExtDb<'_>) -> Vec<DominatedRedundant> {
    let dom = dominators(db);
    let program = db.program();
    let engine = db.engine();
    // Applications with a singleton target, grouped by that target.
    let mut by_target: Vec<Vec<(ExprId, ExprId, usize)>> = vec![Vec::new(); program.label_count()];
    for &app in db.app_sites() {
        let ExprKind::App { func, .. } = program.kind(app) else {
            continue;
        };
        let labels = engine.labels_of(*func);
        if let [only] = labels[..] {
            let enc = db.encloser_of(app) as usize;
            if dom.is_reachable(enc) {
                by_target[only.index()].push((app, *func, enc));
            }
        }
    }
    let mut out = Vec::new();
    for (target, apps) in by_target.iter().enumerate() {
        for &(app, func, enc) in apps {
            let witness = apps
                .iter()
                .filter(|&&(other, _, oenc)| other != app && dom.strictly_dominates(oenc, enc))
                .map(|&(other, _, _)| other)
                .min();
            if let Some(by_app) = witness {
                out.push(DominatedRedundant {
                    app,
                    func,
                    target: Label::from_index(target),
                    by_app,
                });
            }
        }
    }
    out.sort_by_key(|r| r.app.index());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_core::{Analysis, QueryEngine};
    use stcfa_lambda::Program;

    struct Fixture {
        program: Program,
        analysis: Analysis,
        engine: QueryEngine,
    }

    impl Fixture {
        fn new(src: &str) -> Fixture {
            let program = Program::parse(src).unwrap();
            let analysis = Analysis::run(&program).unwrap();
            let engine = QueryEngine::freeze(&analysis);
            Fixture {
                program,
                analysis,
                engine,
            }
        }
        fn db(&self) -> ExtDb<'_> {
            ExtDb::new(&self.program, &self.analysis, &self.engine)
        }
    }

    #[test]
    fn never_invoked_finds_the_dead_lambda() {
        let fx = Fixture::new("let val dead = fn x => x in (fn y => y) 1 end");
        let db = fx.db();
        let got = never_invoked(&db);
        assert_eq!(got.len(), 1);
        // The reported label is the one bound to `dead`.
        let lam = fx.program.lam_of_label(got[0]);
        assert!(matches!(
            fx.program.kind(lam),
            ExprKind::Lam { param, .. } if fx.program.var_name(*param) == "x"
        ));
    }

    #[test]
    fn useless_param_flags_konst_second_argument() {
        let fx = Fixture::new("fun konst a b = a; konst 1 2");
        let db = fx.db();
        let got = useless_param(&db);
        assert_eq!(got.len(), 1);
        assert_eq!(fx.program.var_name(got[0].0), "b");
    }

    #[test]
    fn escaping_effectful_sees_the_returned_printer() {
        let fx = Fixture::new("let val f = fn x => print x in f end");
        let got = escaping_effectful(&fx.db());
        assert_eq!(got.len(), 1, "the printer escapes");
        let fx2 = Fixture::new("let val f = fn x => print x in 1 end");
        assert!(
            escaping_effectful(&fx2.db()).is_empty(),
            "mentioned, not returned"
        );
    }

    /// Brute-force check: `dom(n, d)` iff the entry cannot reach `n`
    /// when `d` is removed from the call graph.
    #[test]
    fn dominators_match_avoid_one_bfs() {
        let fx = Fixture::new("fun f x = x; fun g y = f y; val a = f 1; val b = g 2; b");
        let db = fx.db();
        let dom = dominators(&db);
        let g = db.callgraph().graph();
        let n = g.node_count();
        let entry = dom.entry();
        assert_eq!(entry, fx.program.label_count());
        for d in 0..n {
            // BFS from the entry that refuses to enter `d`.
            let mut seen = BitSet::new(n);
            if entry != d {
                seen.insert(entry);
                let mut stack = vec![entry];
                while let Some(u) = stack.pop() {
                    for &v in g.succs(u) {
                        let v = v as usize;
                        if v != d && seen.insert(v) {
                            stack.push(v);
                        }
                    }
                }
            }
            for node in 0..n {
                let want = dom.is_reachable(node) && !seen.contains(node);
                assert_eq!(dom.dominates(d, node), want, "dominates({d}, {node})");
            }
        }
        // Spot checks: reflexive, and the entry dominates everything
        // reachable but is dominated only by itself.
        for node in 0..n {
            if dom.is_reachable(node) {
                assert!(dom.dominates(node, node));
                assert!(dom.dominates(entry, node));
            } else {
                assert!(dom.doms_of(node).is_empty());
            }
        }
        assert_eq!(dom.doms_of(entry), &[entry as u32]);
    }

    #[test]
    fn taint_full_and_demand_agree() {
        let fx = Fixture::new("fun apply f = fn y => f y; apply (fn n => print n) 7");
        let db = fx.db();
        // Sources: every effectful-bodied label — the printer itself
        // and `fn y => f y`, whose body may call it.
        let sources: Vec<Label> = fx
            .program
            .all_labels()
            .filter(|&l| {
                let lam = fx.program.lam_of_label(l);
                match fx.program.kind(lam) {
                    ExprKind::Lam { body, .. } => db.effects().is_effectful(*body),
                    _ => false,
                }
            })
            .collect();
        assert_eq!(sources.len(), 2);
        let full = tainted_exprs(&db, &sources);
        assert!(!full.is_empty(), "the printer flows somewhere");
        for e in fx.program.exprs() {
            assert_eq!(
                expr_is_tainted(&db, &sources, e),
                full.binary_search(&e).is_ok(),
                "expr {e:?}"
            );
        }
        // Tainting is exactly `label set meets sources`.
        for &e in &full {
            let labels = fx.engine.labels_of(e);
            assert!(labels.iter().any(|l| sources.contains(l)), "{e:?}");
        }
    }

    #[test]
    fn mixed_purity_reports_the_forked_operator() {
        let fx = Fixture::new(
            "fun pick b = if b then (fn x => print x) else (fn y => y); (pick true) 5",
        );
        let db = fx.db();
        let got = mixed_purity(&db);
        assert_eq!(got.len(), 1, "only the fork call mixes purity");
        let (_, func) = got[0];
        let labels = fx.engine.labels_of(func);
        assert_eq!(labels.len(), 2, "operator sees both branches");
        // A purely pure program reports nothing.
        let fx2 = Fixture::new("fun apply f = fn y => f y; apply (fn n => n + 1) 7");
        assert!(mixed_purity(&fx2.db()).is_empty());
    }

    #[test]
    fn dominated_redundant_flags_the_inner_call() {
        let fx = Fixture::new("fun f x = x; fun g y = f y; val a = f 1; g 2");
        let db = fx.db();
        let got = dominated_redundant(&db);
        assert_eq!(got.len(), 1, "{got:?}");
        let r = got[0];
        // The dominated call is `f y` inside `g`; the witness is the
        // top-level `f 1`.
        assert!(matches!(
            fx.program.kind(r.app),
            ExprKind::App { func, .. }
                if matches!(fx.program.kind(*func), ExprKind::Var { .. })
        ));
        assert_eq!(fx.program.lam_of_label(r.target), {
            // target is the `fun f` lambda
            let mut lam = None;
            for l in fx.program.all_labels() {
                let e = fx.program.lam_of_label(l);
                if let ExprKind::Lam { param, .. } = fx.program.kind(e) {
                    if fx.program.var_name(*param) == "x" {
                        lam = Some(e);
                    }
                }
            }
            lam.unwrap()
        });
        assert_ne!(r.app, r.by_app);
        // Sibling calls in the same encloser never dominate each other.
        let fx2 = Fixture::new("fun f x = x; val a = f 1; val b = f 2; b");
        assert!(dominated_redundant(&fx2.db()).is_empty());
    }
}
