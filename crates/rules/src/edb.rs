//! Extensional relations: zero-copy views over the frozen engine.
//!
//! The rule engine never materializes its inputs. Every extensional
//! relation in the catalog below is answered straight out of structures
//! the analysis already owns:
//!
//! | relation | view over |
//! |----------|-----------|
//! | `edge(node, node)` | the frozen forward CSR (`QueryEngine::csr`) |
//! | `dag_edge(comp, comp)` | the SCC condensation DAG |
//! | `node_comp(node, comp)` | `Condensation::comp_of` |
//! | `comp_label(comp, label)` | the per-SCC summary bit rows (word slices) |
//! | `expr_node(expr, node)` | the frozen occurrence→node array |
//! | `expr_label(expr, label)` | the summary row of the occurrence's SCC |
//! | `label_origin(label, node)` | the nodes carrying each label's own bit |
//! | `occurrence(var, expr)` | the frozen binder→occurrences index |
//! | `lam_label(label, expr)` | `Program::lam_of_label` |
//! | `param(var, expr)` | the λ parameter of each abstraction |
//! | `app_func(expr, expr)` | application sites and their operators |
//! | `root_expr(expr)` | the program root |
//! | `effectful_label(label)` / `pure_label(label)` | the linear effects colouring |
//! | `machinery_label(label)` | `$`-parameter (desugaring) lambdas |
//! | `exempt_var(var)` | `_`/`$`-prefixed binders |
//! | `cg_edge(cgnode, cgnode)` | the call graph (labels + virtual root) |
//! | `cg_entry(cgnode)` / `cg_node(cgnode)` | the call graph's root / node set |
//! | `app_encloser(expr, cgnode)` | each application's enclosing abstraction |
//!
//! `comp_label` and `expr_label` additionally expose their raw `u64`
//! rows ([`ExtDb::row_words`]), which the evaluator unions word-parallel
//! into rule heads — the same `O(E·L/64)` arithmetic the hand-fused
//! sweep consumers use.
//!
//! Derived inputs that are not free (the effects colouring, the call
//! graph, the encloser map) are computed lazily, at most once per
//! [`ExtDb`], and only when a program actually references them.

use std::cell::OnceCell;

use stcfa_apps::callgraph::CallGraph;
use stcfa_apps::effects::{effects, Effects};
use stcfa_core::{Analysis, NodeId, QueryEngine};
use stcfa_lambda::{ExprId, ExprKind, Label, Program, VarId};

use crate::program::Dom;

/// One extensional relation from the catalog.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum EdbRel {
    Edge,
    DagEdge,
    NodeComp,
    CompLabel,
    ExprNode,
    ExprLabel,
    LabelOrigin,
    Occurrence,
    LamLabel,
    Param,
    AppFunc,
    RootExpr,
    EffectfulLabel,
    PureLabel,
    MachineryLabel,
    ExemptVar,
    CgEdge,
    CgEntry,
    CgNode,
    AppEncloser,
}

/// The catalog: wire name, view, schema.
const CATALOG: &[(&str, EdbRel, &[Dom])] = &[
    ("edge", EdbRel::Edge, &[Dom::Node, Dom::Node]),
    ("dag_edge", EdbRel::DagEdge, &[Dom::Comp, Dom::Comp]),
    ("node_comp", EdbRel::NodeComp, &[Dom::Node, Dom::Comp]),
    ("comp_label", EdbRel::CompLabel, &[Dom::Comp, Dom::Label]),
    ("expr_node", EdbRel::ExprNode, &[Dom::Expr, Dom::Node]),
    ("expr_label", EdbRel::ExprLabel, &[Dom::Expr, Dom::Label]),
    (
        "label_origin",
        EdbRel::LabelOrigin,
        &[Dom::Label, Dom::Node],
    ),
    ("occurrence", EdbRel::Occurrence, &[Dom::Var, Dom::Expr]),
    ("lam_label", EdbRel::LamLabel, &[Dom::Label, Dom::Expr]),
    ("param", EdbRel::Param, &[Dom::Var, Dom::Expr]),
    ("app_func", EdbRel::AppFunc, &[Dom::Expr, Dom::Expr]),
    ("root_expr", EdbRel::RootExpr, &[Dom::Expr]),
    ("effectful_label", EdbRel::EffectfulLabel, &[Dom::Label]),
    ("pure_label", EdbRel::PureLabel, &[Dom::Label]),
    ("machinery_label", EdbRel::MachineryLabel, &[Dom::Label]),
    ("exempt_var", EdbRel::ExemptVar, &[Dom::Var]),
    ("cg_edge", EdbRel::CgEdge, &[Dom::CgNode, Dom::CgNode]),
    ("cg_entry", EdbRel::CgEntry, &[Dom::CgNode]),
    ("cg_node", EdbRel::CgNode, &[Dom::CgNode]),
    (
        "app_encloser",
        EdbRel::AppEncloser,
        &[Dom::Expr, Dom::CgNode],
    ),
];

/// The catalog schema of an extensional relation name, if it exists.
pub fn edb_schema(name: &str) -> Option<&'static [Dom]> {
    CATALOG
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|(_, _, schema)| *schema)
}

/// Every extensional relation name in the catalog, with its schema.
pub fn edb_catalog() -> impl Iterator<Item = (&'static str, &'static [Dom])> {
    CATALOG.iter().map(|(n, _, s)| (*n, *s))
}

impl EdbRel {
    pub(crate) fn from_name(name: &str) -> Option<EdbRel> {
        CATALOG
            .iter()
            .find(|(n, _, _)| *n == name)
            .map(|(_, rel, _)| *rel)
    }
}

/// The extensional database: borrowed program/analysis/engine plus the
/// lazily derived inputs. `engine` must be frozen from `analysis`.
pub struct ExtDb<'a> {
    program: &'a Program,
    analysis: &'a Analysis,
    engine: &'a QueryEngine,
    effects: OnceCell<Effects>,
    callgraph: OnceCell<CallGraph>,
    /// Expression → enclosing call-graph node (label index, or the
    /// virtual root `label_count()`).
    encloser: OnceCell<Vec<u32>>,
    /// Binder → its λ's expression (`u32::MAX` = not a λ parameter).
    param_lam: OnceCell<Vec<u32>>,
    /// Label → the nodes carrying its own bit.
    origins: OnceCell<Vec<Vec<u32>>>,
    apps: OnceCell<Vec<ExprId>>,
}

impl<'a> ExtDb<'a> {
    /// Wraps the borrowed inputs. `engine` must be frozen from
    /// `analysis` over `program` (the same contract the lint crate's
    /// `lint()` documents).
    pub fn new(program: &'a Program, analysis: &'a Analysis, engine: &'a QueryEngine) -> ExtDb<'a> {
        ExtDb {
            program,
            analysis,
            engine,
            effects: OnceCell::new(),
            callgraph: OnceCell::new(),
            encloser: OnceCell::new(),
            param_lam: OnceCell::new(),
            origins: OnceCell::new(),
            apps: OnceCell::new(),
        }
    }

    /// The borrowed program.
    pub fn program(&self) -> &'a Program {
        self.program
    }

    /// The borrowed frozen engine.
    pub fn engine(&self) -> &'a QueryEngine {
        self.engine
    }

    /// The size of a domain's dense index space.
    pub fn dom_size(&self, dom: Dom) -> usize {
        match dom {
            Dom::Node => self.engine.node_count(),
            Dom::Comp => self.engine.comp_count(),
            Dom::Label => self.engine.label_count(),
            Dom::Expr => self.program.size(),
            Dom::Var => self.program.var_count(),
            Dom::CgNode => self.engine.label_count() + 1,
        }
    }

    // --- lazily derived inputs ---------------------------------------------

    /// The linear effects colouring (computed once, on first use).
    pub fn effects(&self) -> &Effects {
        self.effects
            .get_or_init(|| effects(self.program, self.analysis))
    }

    /// The call graph (computed once, on first use).
    pub fn callgraph(&self) -> &CallGraph {
        self.callgraph
            .get_or_init(|| CallGraph::build_with_engine(self.program, self.engine))
    }

    /// The application sites, in program order.
    pub fn app_sites(&self) -> &[ExprId] {
        self.apps.get_or_init(|| self.program.app_sites())
    }

    /// The call-graph node lexically enclosing `e`: the label of the
    /// nearest enclosing abstraction, or the virtual root.
    pub fn encloser_of(&self, e: ExprId) -> u32 {
        self.encloser.get_or_init(|| {
            let labels = self.program.label_count();
            let mut out = vec![labels as u32; self.program.size()];
            // Iterative top-down walk: children inherit their parent's
            // owner; a lambda's body switches to the lambda's label.
            let mut stack = vec![(self.program.root(), labels as u32)];
            while let Some((e, owner)) = stack.pop() {
                out[e.index()] = owner;
                match self.program.kind(e) {
                    ExprKind::Lam { label, body, .. } => {
                        stack.push((*body, label.index() as u32));
                    }
                    _ => {
                        self.program.for_each_child(e, |c| stack.push((c, owner)));
                    }
                }
            }
            out
        })[e.index()]
    }

    fn param_lam(&self) -> &[u32] {
        self.param_lam.get_or_init(|| {
            let mut out = vec![u32::MAX; self.program.var_count()];
            for e in self.program.exprs() {
                if let ExprKind::Lam { param, .. } = self.program.kind(e) {
                    out[param.index()] = e.index() as u32;
                }
            }
            out
        })
    }

    fn origins(&self) -> &[Vec<u32>] {
        self.origins.get_or_init(|| {
            let mut out = vec![Vec::new(); self.engine.label_count()];
            for n in 0..self.engine.node_count() {
                if let Some(l) = self.engine.own_label(NodeId::from_index(n)) {
                    out[l.index()].push(n as u32);
                }
            }
            out
        })
    }

    fn label_is_effectful(&self, l: usize) -> bool {
        let lam = self.program.lam_of_label(Label::from_index(l));
        match self.program.kind(lam) {
            ExprKind::Lam { body, .. } => self.effects().is_effectful(*body),
            _ => false,
        }
    }

    fn label_is_machinery(&self, l: usize) -> bool {
        let lam = self.program.lam_of_label(Label::from_index(l));
        match self.program.kind(lam) {
            ExprKind::Lam { param, .. } => self.program.var_name(*param).starts_with('$'),
            _ => false,
        }
    }

    fn var_is_exempt(&self, v: usize) -> bool {
        let name = self.program.var_name(VarId::from_index(v));
        name.starts_with('_') || name.starts_with('$')
    }

    fn app_operator(&self, e: usize) -> Option<u32> {
        match self.program.kind(ExprId::from_index(e)) {
            ExprKind::App { func, .. } => Some(func.index() as u32),
            _ => None,
        }
    }

    // --- relation access ----------------------------------------------------
    //
    // Keys arriving here come from joins over the relation's declared
    // domains, so they are always in range for the corresponding arrays;
    // constants supplied by rule authors are checked by the evaluator
    // against `dom_size` before they get this far.

    /// Enumerates a relation's tuples (unary relations emit `b = 0`).
    pub(crate) fn for_each(&self, rel: EdbRel, f: &mut dyn FnMut(u32, u32)) {
        match rel {
            EdbRel::Edge => {
                for u in 0..self.engine.node_count() {
                    for &v in self.engine.csr().succs(u) {
                        f(u as u32, v);
                    }
                }
            }
            EdbRel::DagEdge => {
                let dag = self.engine.condensation().dag();
                for c in 0..self.engine.comp_count() {
                    for &d in dag.succs(c) {
                        f(c as u32, d);
                    }
                }
            }
            EdbRel::NodeComp => {
                let cond = self.engine.condensation();
                for n in 0..self.engine.node_count() {
                    f(n as u32, cond.comp_of(n) as u32);
                }
            }
            EdbRel::CompLabel => {
                for c in 0..self.engine.comp_count() {
                    self.for_each_matching(rel, c as u32, &mut |l| f(c as u32, l));
                }
            }
            EdbRel::ExprNode => {
                for e in 0..self.program.size() {
                    let n = self.engine.node_of_expr(ExprId::from_index(e));
                    f(e as u32, n.index() as u32);
                }
            }
            EdbRel::ExprLabel => {
                for e in 0..self.program.size() {
                    self.for_each_matching(rel, e as u32, &mut |l| f(e as u32, l));
                }
            }
            EdbRel::LabelOrigin => {
                for (l, nodes) in self.origins().iter().enumerate() {
                    for &n in nodes {
                        f(l as u32, n);
                    }
                }
            }
            EdbRel::Occurrence => {
                for v in 0..self.program.var_count() {
                    for e in self.engine.occurrences_of(VarId::from_index(v)) {
                        f(v as u32, e.index() as u32);
                    }
                }
            }
            EdbRel::LamLabel => {
                for l in self.program.all_labels() {
                    f(
                        l.index() as u32,
                        self.program.lam_of_label(l).index() as u32,
                    );
                }
            }
            EdbRel::Param => {
                for (v, &lam) in self.param_lam().iter().enumerate() {
                    if lam != u32::MAX {
                        f(v as u32, lam);
                    }
                }
            }
            EdbRel::AppFunc => {
                for &a in self.app_sites() {
                    if let Some(func) = self.app_operator(a.index()) {
                        f(a.index() as u32, func);
                    }
                }
            }
            EdbRel::RootExpr => f(self.program.root().index() as u32, 0),
            EdbRel::EffectfulLabel => {
                for l in 0..self.engine.label_count() {
                    if self.label_is_effectful(l) {
                        f(l as u32, 0);
                    }
                }
            }
            EdbRel::PureLabel => {
                for l in 0..self.engine.label_count() {
                    if !self.label_is_effectful(l) {
                        f(l as u32, 0);
                    }
                }
            }
            EdbRel::MachineryLabel => {
                for l in 0..self.engine.label_count() {
                    if self.label_is_machinery(l) {
                        f(l as u32, 0);
                    }
                }
            }
            EdbRel::ExemptVar => {
                for v in 0..self.program.var_count() {
                    if self.var_is_exempt(v) {
                        f(v as u32, 0);
                    }
                }
            }
            EdbRel::CgEdge => {
                let g = self.callgraph().graph();
                for u in 0..g.node_count() {
                    for &v in g.succs(u) {
                        f(u as u32, v);
                    }
                }
            }
            EdbRel::CgEntry => f(self.engine.label_count() as u32, 0),
            EdbRel::CgNode => {
                for n in 0..=self.engine.label_count() {
                    f(n as u32, 0);
                }
            }
            EdbRel::AppEncloser => {
                for &a in self.app_sites() {
                    f(a.index() as u32, self.encloser_of(a));
                }
            }
        }
    }

    /// Enumerates the second column of a binary relation under a bound
    /// first column.
    pub(crate) fn for_each_matching(&self, rel: EdbRel, key: u32, f: &mut dyn FnMut(u32)) {
        match rel {
            EdbRel::Edge => {
                for &v in self.engine.csr().succs(key as usize) {
                    f(v);
                }
            }
            EdbRel::DagEdge => {
                for &d in self.engine.condensation().dag().succs(key as usize) {
                    f(d);
                }
            }
            EdbRel::NodeComp => f(self.engine.condensation().comp_of(key as usize) as u32),
            EdbRel::CompLabel => {
                for (wi, &word) in self.engine.summary_row(key as usize).iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let b = bits.trailing_zeros();
                        bits &= bits - 1;
                        f(wi as u32 * 64 + b);
                    }
                }
            }
            EdbRel::ExprNode => f(self
                .engine
                .node_of_expr(ExprId::from_index(key as usize))
                .index() as u32),
            EdbRel::ExprLabel => {
                let c = self.engine.condensation().comp_of(
                    self.engine
                        .node_of_expr(ExprId::from_index(key as usize))
                        .index(),
                );
                self.for_each_matching(EdbRel::CompLabel, c as u32, f);
            }
            EdbRel::LabelOrigin => {
                for &n in &self.origins()[key as usize] {
                    f(n);
                }
            }
            EdbRel::Occurrence => {
                for e in self.engine.occurrences_of(VarId::from_index(key as usize)) {
                    f(e.index() as u32);
                }
            }
            EdbRel::LamLabel => f(self
                .program
                .lam_of_label(Label::from_index(key as usize))
                .index() as u32),
            EdbRel::Param => {
                let lam = self.param_lam()[key as usize];
                if lam != u32::MAX {
                    f(lam);
                }
            }
            EdbRel::AppFunc => {
                if let Some(func) = self.app_operator(key as usize) {
                    f(func);
                }
            }
            EdbRel::CgEdge => {
                for &v in self.callgraph().graph().succs(key as usize) {
                    f(v);
                }
            }
            EdbRel::AppEncloser => {
                if self.app_operator(key as usize).is_some() {
                    f(self.encloser_of(ExprId::from_index(key as usize)));
                }
            }
            EdbRel::RootExpr
            | EdbRel::EffectfulLabel
            | EdbRel::PureLabel
            | EdbRel::MachineryLabel
            | EdbRel::ExemptVar
            | EdbRel::CgEntry
            | EdbRel::CgNode => unreachable!("unary relation has no second column"),
        }
    }

    /// Membership test (`b` is ignored for unary relations).
    pub(crate) fn contains(&self, rel: EdbRel, a: u32, b: u32) -> bool {
        match rel {
            EdbRel::Edge => self.engine.csr().succs(a as usize).contains(&b),
            EdbRel::DagEdge => self
                .engine
                .condensation()
                .dag()
                .succs(a as usize)
                .contains(&b),
            EdbRel::NodeComp => self.engine.condensation().comp_of(a as usize) as u32 == b,
            EdbRel::CompLabel => {
                let row = self.engine.summary_row(a as usize);
                row[b as usize / 64] & (1u64 << (b % 64)) != 0
            }
            EdbRel::ExprNode => {
                self.engine
                    .node_of_expr(ExprId::from_index(a as usize))
                    .index() as u32
                    == b
            }
            EdbRel::ExprLabel => self.engine.label_reaches(
                ExprId::from_index(a as usize),
                Label::from_index(b as usize),
            ),
            EdbRel::LabelOrigin => self.origins()[a as usize].contains(&b),
            EdbRel::Occurrence => self
                .engine
                .occurrences_of(VarId::from_index(a as usize))
                .any(|e| e.index() as u32 == b),
            EdbRel::LamLabel => {
                self.program
                    .lam_of_label(Label::from_index(a as usize))
                    .index() as u32
                    == b
            }
            EdbRel::Param => self.param_lam()[a as usize] == b,
            EdbRel::AppFunc => self.app_operator(a as usize) == Some(b),
            EdbRel::RootExpr => self.program.root().index() as u32 == a,
            EdbRel::EffectfulLabel => self.label_is_effectful(a as usize),
            EdbRel::PureLabel => !self.label_is_effectful(a as usize),
            EdbRel::MachineryLabel => self.label_is_machinery(a as usize),
            EdbRel::ExemptVar => self.var_is_exempt(a as usize),
            EdbRel::CgEdge => self.callgraph().graph().has_edge(a as usize, b as usize),
            EdbRel::CgEntry => a as usize == self.engine.label_count(),
            EdbRel::CgNode => (a as usize) <= self.engine.label_count(),
            EdbRel::AppEncloser => {
                self.app_operator(a as usize).is_some()
                    && self.encloser_of(ExprId::from_index(a as usize)) == b
            }
        }
    }

    /// Whether any tuple has first column `key` (binary relations).
    pub(crate) fn has_key(&self, rel: EdbRel, key: u32) -> bool {
        match rel {
            EdbRel::Edge => !self.engine.csr().succs(key as usize).is_empty(),
            EdbRel::DagEdge => !self
                .engine
                .condensation()
                .dag()
                .succs(key as usize)
                .is_empty(),
            EdbRel::NodeComp | EdbRel::ExprNode | EdbRel::LamLabel => true,
            EdbRel::CompLabel => self
                .engine
                .summary_row(key as usize)
                .iter()
                .any(|&w| w != 0),
            EdbRel::ExprLabel => {
                let c = self.engine.condensation().comp_of(
                    self.engine
                        .node_of_expr(ExprId::from_index(key as usize))
                        .index(),
                );
                self.has_key(EdbRel::CompLabel, c as u32)
            }
            EdbRel::LabelOrigin => !self.origins()[key as usize].is_empty(),
            EdbRel::Occurrence => self
                .engine
                .occurrences_of(VarId::from_index(key as usize))
                .next()
                .is_some(),
            EdbRel::Param => self.param_lam()[key as usize] != u32::MAX,
            EdbRel::AppFunc => self.app_operator(key as usize).is_some(),
            EdbRel::CgEdge => !self.callgraph().graph().succs(key as usize).is_empty(),
            EdbRel::AppEncloser => self.app_operator(key as usize).is_some(),
            EdbRel::RootExpr
            | EdbRel::EffectfulLabel
            | EdbRel::PureLabel
            | EdbRel::MachineryLabel
            | EdbRel::ExemptVar
            | EdbRel::CgEntry
            | EdbRel::CgNode => unreachable!("unary relation has no second column"),
        }
    }

    /// The raw `u64` row of a bitset-backed relation under a bound first
    /// column, for word-parallel union joins. `None` for relations
    /// without a bitset row representation.
    pub(crate) fn row_words(&self, rel: EdbRel, key: u32) -> Option<&[u64]> {
        match rel {
            EdbRel::CompLabel => Some(self.engine.summary_row(key as usize)),
            EdbRel::ExprLabel => {
                let c = self.engine.condensation().comp_of(
                    self.engine
                        .node_of_expr(ExprId::from_index(key as usize))
                        .index(),
                );
                Some(self.engine.summary_row(c))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_for(src: &str) -> (Program, Analysis) {
        let p = Program::parse(src).unwrap();
        let a = Analysis::run(&p).unwrap();
        (p, a)
    }

    #[test]
    fn expr_label_view_matches_engine_answers() {
        let (p, a) = db_for("fun apply f = fn y => f y; apply (fn n => n + 1) 7");
        let engine = QueryEngine::freeze(&a);
        let db = ExtDb::new(&p, &a, &engine);
        for e in p.exprs() {
            let mut via_view: Vec<u32> = Vec::new();
            db.for_each_matching(EdbRel::ExprLabel, e.index() as u32, &mut |l| {
                via_view.push(l)
            });
            let direct: Vec<u32> = engine
                .labels_of(e)
                .iter()
                .map(|l| l.index() as u32)
                .collect();
            assert_eq!(via_view, direct, "expr {e:?}");
            // The raw row agrees bit-for-bit with the enumeration.
            let row = db.row_words(EdbRel::ExprLabel, e.index() as u32).unwrap();
            for &l in &direct {
                assert!(row[l as usize / 64] & (1 << (l % 64)) != 0);
            }
        }
    }

    #[test]
    fn catalog_names_resolve_and_schemas_agree() {
        for (name, schema) in edb_catalog() {
            assert!(EdbRel::from_name(name).is_some(), "{name}");
            assert_eq!(edb_schema(name), Some(schema), "{name}");
            assert!(!schema.is_empty() && schema.len() <= 2, "{name}");
        }
        assert!(EdbRel::from_name("nope").is_none());
    }

    #[test]
    fn effect_views_partition_the_labels() {
        let (p, a) = db_for("let val f = fn x => print x in fn y => y end");
        let engine = QueryEngine::freeze(&a);
        let db = ExtDb::new(&p, &a, &engine);
        let mut eff = Vec::new();
        let mut pure = Vec::new();
        db.for_each(EdbRel::EffectfulLabel, &mut |l, _| eff.push(l));
        db.for_each(EdbRel::PureLabel, &mut |l, _| pure.push(l));
        assert_eq!(eff.len() + pure.len(), p.label_count());
        assert_eq!(eff.len(), 1, "only `fn x => print x` is effectful");
    }

    #[test]
    fn enclosers_attribute_apps_to_their_lambda() {
        let (p, a) = db_for("fun apply f = fn y => f y; apply (fn n => n + 1) 7");
        let engine = QueryEngine::freeze(&a);
        let db = ExtDb::new(&p, &a, &engine);
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        db.for_each(EdbRel::AppEncloser, &mut |a, o| pairs.push((a, o)));
        assert_eq!(pairs.len(), p.app_sites().len());
        // `f y` sits inside `fn y => …`; the outer applications are
        // top-level (owner = virtual root).
        let root = p.label_count() as u32;
        assert!(pairs.iter().any(|&(_, o)| o != root), "f y has a λ owner");
        assert!(pairs.iter().any(|&(_, o)| o == root), "top-level apps");
    }
}
