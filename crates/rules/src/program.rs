//! The typed builder DSL: relation declarations, rules, and the
//! registration-time checks (arity, domains, boundness, stratified
//! negation).
//!
//! Rules are authored directly in Rust — no parser — with
//! [`RuleProgram::edb`]/[`RuleProgram::decl`] declaring relations and
//! [`RuleProgram::rule`] registering Horn clauses over them:
//!
//! ```
//! use stcfa_rules::program::{head, neg, pos, var, Dom, RuleProgram, WILD};
//!
//! let mut p = RuleProgram::new();
//! let lam = p.edb("lam_label", &[Dom::Label, Dom::Expr]);
//! let app_func = p.edb("app_func", &[Dom::Expr, Dom::Expr]);
//! let expr_label = p.edb("expr_label", &[Dom::Expr, Dom::Label]);
//! let invoked = p.decl("invoked", &[Dom::Label]);
//! let report = p.decl("report", &[Dom::Label]);
//! p.rule(
//!     head(invoked, &[var("l")]),
//!     vec![pos(app_func, &[WILD, var("e")]), pos(expr_label, &[var("e"), var("l")])],
//! )
//! .unwrap();
//! p.rule(
//!     head(report, &[var("l")]),
//!     vec![pos(lam, &[var("l"), WILD]), neg(invoked, &[var("l")])],
//! )
//! .unwrap();
//! assert!(p.to_string().contains("invoked(l) :- app_func(_, e), expr_label(e, l)."));
//! ```
//!
//! Every structural error — arity mismatch, a variable used at two
//! different domains, an unbound variable under negation, or a negation
//! inside a recursive clique — is rejected at registration with a
//! [`RuleError`], never at evaluation time.

use std::fmt;

use stcfa_graph::DiGraph;

use crate::edb::edb_schema;

/// Typed value domains. Every relation column carries one, and the
/// builder rejects rules that join a variable across two domains.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dom {
    /// Nodes of the frozen subtransitive graph (CSR indices).
    Node,
    /// SCC condensation components (reverse-topological ids).
    Comp,
    /// Abstraction labels.
    Label,
    /// Expression occurrences.
    Expr,
    /// Binders.
    Var,
    /// Call-graph nodes: the program's labels plus the virtual root
    /// (`label_count()`).
    CgNode,
}

impl Dom {
    /// The lowercase name used by the pretty-printer.
    pub fn as_str(self) -> &'static str {
        match self {
            Dom::Node => "node",
            Dom::Comp => "comp",
            Dom::Label => "label",
            Dom::Expr => "expr",
            Dom::Var => "var",
            Dom::CgNode => "cgnode",
        }
    }
}

/// A handle to a declared relation, scoped to the [`RuleProgram`] that
/// returned it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RelId(pub(crate) u32);

/// One term of an atom.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Term {
    /// A named variable, scoped to one rule.
    Var(&'static str),
    /// A constant value in the column's domain (a dense index).
    Const(u32),
    /// An anonymous variable: matches anything, binds nothing.
    Wild,
}

/// A named variable term.
pub const fn var(name: &'static str) -> Term {
    Term::Var(name)
}

/// A constant term (a dense index into the column's domain).
pub const fn cst(value: u32) -> Term {
    Term::Const(value)
}

/// The anonymous variable.
pub const WILD: Term = Term::Wild;

/// A body literal: a positive or negated atom, or a disequality filter.
#[derive(Clone, Debug)]
pub enum Lit {
    /// `rel(terms…)`.
    Pos(RelId, Vec<Term>),
    /// `!rel(terms…)` — stratified negation.
    Neg(RelId, Vec<Term>),
    /// `a != b` — both sides must be bound when the filter runs.
    Neq(Term, Term),
}

/// A positive body atom.
pub fn pos(rel: RelId, terms: &[Term]) -> Lit {
    Lit::Pos(rel, terms.to_vec())
}

/// A negated body atom.
pub fn neg(rel: RelId, terms: &[Term]) -> Lit {
    Lit::Neg(rel, terms.to_vec())
}

/// A disequality filter.
pub fn neq(a: Term, b: Term) -> Lit {
    Lit::Neq(a, b)
}

/// A head atom.
#[derive(Clone, Debug)]
pub struct Head {
    pub(crate) rel: RelId,
    pub(crate) terms: Vec<Term>,
}

/// Builds a head atom.
pub fn head(rel: RelId, terms: &[Term]) -> Head {
    Head {
        rel,
        terms: terms.to_vec(),
    }
}

/// A registration error: the rule (or program) violated a static check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleError(pub String);

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for RuleError {}

/// What a relation is to the evaluator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RelKind {
    /// Extensional: a zero-copy view over the frozen engine, resolved by
    /// name against the [`crate::edb`] catalog.
    Edb,
    /// Intensional: derived by rules (and/or seeded facts).
    Idb,
}

/// A declared relation.
#[derive(Clone, Debug)]
pub(crate) struct RelDecl {
    pub(crate) name: &'static str,
    pub(crate) schema: Vec<Dom>,
    pub(crate) kind: RelKind,
}

/// A compiled term: variables interned to per-rule indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum CTerm {
    Var(u8),
    Const(u32),
    Wild,
}

/// A compiled atom.
#[derive(Clone, Debug)]
pub(crate) struct CAtom {
    pub(crate) rel: usize,
    pub(crate) terms: Vec<CTerm>,
}

/// A compiled literal.
#[derive(Clone, Debug)]
pub(crate) enum CLit {
    Pos(CAtom),
    Neg(CAtom),
    Neq(CTerm, CTerm),
}

/// A compiled rule.
#[derive(Clone, Debug)]
pub(crate) struct CRule {
    pub(crate) head: CAtom,
    pub(crate) body: Vec<CLit>,
    /// Variable names, indexed by the `CTerm::Var` payload.
    pub(crate) vars: Vec<&'static str>,
}

/// Evaluation groups: the SCCs of the rule dependency graph, in
/// topological (dependencies-first) order. Mutually recursive relations
/// share a group; negation always crosses group boundaries (enforced at
/// registration).
#[derive(Clone, Debug)]
pub(crate) struct Groups {
    /// Relation → group index.
    pub(crate) group_of: Vec<usize>,
    /// Groups in evaluation order; each lists its relation ids.
    pub(crate) order: Vec<Vec<usize>>,
}

/// A Datalog-flavoured rule program: declarations plus Horn clauses.
///
/// Registration is the type checker — see the [module docs](self) for
/// the checks. Evaluate with [`crate::eval::Evaluator`].
#[derive(Clone, Debug, Default)]
pub struct RuleProgram {
    pub(crate) rels: Vec<RelDecl>,
    pub(crate) rules: Vec<CRule>,
}

impl RuleProgram {
    /// An empty program.
    pub fn new() -> RuleProgram {
        RuleProgram::default()
    }

    fn find(&self, name: &str) -> Option<usize> {
        self.rels.iter().position(|r| r.name == name)
    }

    /// Declares (or re-fetches) an extensional relation: a named
    /// zero-copy view from the [`crate::edb`] catalog.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not in the catalog, if `schema` disagrees with
    /// the catalog, or if `name` was already declared intensional —
    /// these are authoring bugs, not data errors.
    pub fn edb(&mut self, name: &'static str, schema: &[Dom]) -> RelId {
        let want = edb_schema(name)
            .unwrap_or_else(|| panic!("`{name}` is not an extensional relation in the catalog"));
        assert_eq!(
            want, schema,
            "extensional relation `{name}` has catalog schema {want:?}"
        );
        if let Some(i) = self.find(name) {
            assert_eq!(
                self.rels[i].kind,
                RelKind::Edb,
                "`{name}` was already declared intensional"
            );
            return RelId(i as u32);
        }
        self.rels.push(RelDecl {
            name,
            schema: schema.to_vec(),
            kind: RelKind::Edb,
        });
        RelId(self.rels.len() as u32 - 1)
    }

    /// Declares an intensional relation (derived by rules and/or seeded
    /// facts). Arity must be 1 or 2.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name, an empty schema, or arity > 2.
    pub fn decl(&mut self, name: &'static str, schema: &[Dom]) -> RelId {
        assert!(
            self.find(name).is_none(),
            "relation `{name}` declared twice"
        );
        assert!(
            !schema.is_empty() && schema.len() <= 2,
            "relation `{name}`: arity must be 1 or 2 (got {})",
            schema.len()
        );
        assert!(
            edb_schema(name).is_none(),
            "`{name}` shadows an extensional relation; pick another name"
        );
        self.rels.push(RelDecl {
            name,
            schema: schema.to_vec(),
            kind: RelKind::Idb,
        });
        RelId(self.rels.len() as u32 - 1)
    }

    /// The declared name of a relation handle.
    pub fn rel_name(&self, rel: RelId) -> &'static str {
        self.rels[rel.0 as usize].name
    }

    /// Registers one rule, running every static check. On error the
    /// program is left exactly as it was.
    pub fn rule(&mut self, head: Head, body: Vec<Lit>) -> Result<(), RuleError> {
        let compiled = self.compile_rule(&head, &body)?;
        self.rules.push(compiled);
        // Stratification is a whole-program property: re-check it with
        // the candidate rule included, and back it out on failure so a
        // rejected rule leaves no trace.
        if let Err(e) = self.groups() {
            self.rules.pop();
            return Err(e);
        }
        Ok(())
    }

    fn rel_decl(&self, rel: RelId, what: &str) -> Result<&RelDecl, RuleError> {
        self.rels
            .get(rel.0 as usize)
            .ok_or_else(|| RuleError(format!("{what}: unknown relation handle {rel:?}")))
    }

    /// Compiles and checks one rule without installing it.
    fn compile_rule(&self, head_atom: &Head, body: &[Lit]) -> Result<CRule, RuleError> {
        let head_decl = self.rel_decl(head_atom.rel, "head")?;
        if head_decl.kind != RelKind::Idb {
            return Err(RuleError(format!(
                "head relation `{}` is extensional; rules may only derive intensional relations",
                head_decl.name
            )));
        }
        let mut vars: Vec<&'static str> = Vec::new();
        let mut var_doms: Vec<Dom> = Vec::new();
        let intern = |name: &'static str,
                      dom: Dom,
                      vars: &mut Vec<&'static str>,
                      var_doms: &mut Vec<Dom>|
         -> Result<u8, RuleError> {
            if let Some(i) = vars.iter().position(|&v| v == name) {
                if var_doms[i] != dom {
                    return Err(RuleError(format!(
                        "variable `{name}` used at both {} and {}",
                        var_doms[i].as_str(),
                        dom.as_str()
                    )));
                }
                return Ok(i as u8);
            }
            if vars.len() == u8::MAX as usize {
                return Err(RuleError("too many variables in one rule".to_string()));
            }
            vars.push(name);
            var_doms.push(dom);
            Ok(vars.len() as u8 - 1)
        };
        let compile_atom = |rel: RelId,
                            terms: &[Term],
                            wild_ok: bool,
                            what: &str,
                            vars: &mut Vec<&'static str>,
                            var_doms: &mut Vec<Dom>|
         -> Result<CAtom, RuleError> {
            let decl = self.rel_decl(rel, what)?;
            if decl.schema.len() != terms.len() {
                return Err(RuleError(format!(
                    "{what} `{}` has arity {}, got {} terms",
                    decl.name,
                    decl.schema.len(),
                    terms.len()
                )));
            }
            let mut out = Vec::with_capacity(terms.len());
            for (t, &dom) in terms.iter().zip(&decl.schema) {
                out.push(match *t {
                    Term::Var(name) => CTerm::Var(intern(name, dom, vars, var_doms)?),
                    Term::Const(v) => CTerm::Const(v),
                    Term::Wild => {
                        if !wild_ok {
                            return Err(RuleError(format!(
                                "{what} `{}`: wildcards are not allowed here",
                                decl.name
                            )));
                        }
                        CTerm::Wild
                    }
                });
            }
            Ok(CAtom {
                rel: rel.0 as usize,
                terms: out,
            })
        };

        // Compile the body in order, tracking which variables each
        // positive atom binds: negation and disequality must only see
        // already-bound variables (left-to-right), which is also the
        // order the evaluator joins in.
        let mut bound = vec![false; u8::MAX as usize];
        let mut cbody = Vec::with_capacity(body.len());
        for lit in body {
            match lit {
                Lit::Pos(rel, terms) => {
                    let atom = compile_atom(*rel, terms, true, "atom", &mut vars, &mut var_doms)?;
                    for t in &atom.terms {
                        if let CTerm::Var(v) = t {
                            bound[*v as usize] = true;
                        }
                    }
                    cbody.push(CLit::Pos(atom));
                }
                Lit::Neg(rel, terms) => {
                    let atom =
                        compile_atom(*rel, terms, true, "negated atom", &mut vars, &mut var_doms)?;
                    for t in &atom.terms {
                        if let CTerm::Var(v) = t {
                            if !bound[*v as usize] {
                                return Err(RuleError(format!(
                                    "negated atom `{}`: variable `{}` is not bound by an \
                                     earlier positive atom",
                                    self.rels[atom.rel].name, vars[*v as usize]
                                )));
                            }
                        }
                    }
                    cbody.push(CLit::Neg(atom));
                }
                Lit::Neq(a, b) => {
                    let side = |t: &Term| -> Result<CTerm, RuleError> {
                        match *t {
                            Term::Wild => Err(RuleError(
                                "disequality over a wildcard is always ambiguous".to_string(),
                            )),
                            Term::Const(v) => Ok(CTerm::Const(v)),
                            Term::Var(name) => {
                                let i = vars.iter().position(|&v| v == name).ok_or_else(|| {
                                    RuleError(format!(
                                        "disequality variable `{name}` is not bound by an \
                                         earlier positive atom"
                                    ))
                                })?;
                                if !bound[i] {
                                    return Err(RuleError(format!(
                                        "disequality variable `{name}` is not bound by an \
                                         earlier positive atom"
                                    )));
                                }
                                Ok(CTerm::Var(i as u8))
                            }
                        }
                    };
                    cbody.push(CLit::Neq(side(a)?, side(b)?));
                }
            }
        }

        let chead = compile_atom(
            head_atom.rel,
            &head_atom.terms,
            false,
            "head",
            &mut vars,
            &mut var_doms,
        )?;
        for t in &chead.terms {
            if let CTerm::Var(v) = t {
                if !bound[*v as usize] {
                    return Err(RuleError(format!(
                        "head variable `{}` is not bound by a positive body atom",
                        vars[*v as usize]
                    )));
                }
            }
        }
        Ok(CRule {
            head: chead,
            body: cbody,
            vars,
        })
    }

    /// Computes the evaluation groups (dependency SCCs in topological
    /// order), rejecting negation inside a recursive clique — the
    /// stratified-negation check.
    pub(crate) fn groups(&self) -> Result<Groups, RuleError> {
        let n = self.rels.len();
        let mut dep = DiGraph::with_nodes(n);
        // (body rel, head rel) pairs carrying a negation.
        let mut neg_edges: Vec<(usize, usize)> = Vec::new();
        for rule in &self.rules {
            for lit in &rule.body {
                match lit {
                    CLit::Pos(a) => dep.add_edge_dedup(a.rel, rule.head.rel),
                    CLit::Neg(a) => {
                        neg_edges.push((a.rel, rule.head.rel));
                        dep.add_edge_dedup(a.rel, rule.head.rel)
                    }
                    CLit::Neq(..) => continue,
                };
            }
        }
        let (comp, comp_count) = dep.sccs();
        for &(from, to) in &neg_edges {
            if comp[from] == comp[to] {
                return Err(RuleError(format!(
                    "unstratifiable negation: `{}` is negated inside a recursive clique \
                     with `{}`",
                    self.rels[from].name, self.rels[to].name
                )));
            }
        }
        // Kahn's algorithm over the component DAG, smallest component id
        // first — deterministic evaluation order.
        let mut deps_left = vec![0usize; comp_count];
        let mut comp_succs: Vec<Vec<usize>> = vec![Vec::new(); comp_count];
        for u in 0..n {
            for &v in dep.succs(u) {
                let (cu, cv) = (comp[u], comp[v as usize]);
                if cu != cv && !comp_succs[cu].contains(&cv) {
                    comp_succs[cu].push(cv);
                    deps_left[cv] += 1;
                }
            }
        }
        let mut ready: Vec<usize> = (0..comp_count).filter(|&c| deps_left[c] == 0).collect();
        ready.sort_unstable_by(|a, b| b.cmp(a)); // pop() takes the smallest
        let mut topo: Vec<usize> = Vec::with_capacity(comp_count);
        while let Some(c) = ready.pop() {
            topo.push(c);
            for &s in &comp_succs[c] {
                deps_left[s] -= 1;
                if deps_left[s] == 0 {
                    let at = ready.partition_point(|&r| r > s);
                    ready.insert(at, s);
                }
            }
        }
        debug_assert_eq!(topo.len(), comp_count, "component DAG is acyclic");
        let mut group_of = vec![usize::MAX; n];
        let mut order: Vec<Vec<usize>> = Vec::with_capacity(comp_count);
        for &c in &topo {
            let members: Vec<usize> = (0..n).filter(|&r| comp[r] == c).collect();
            for &r in &members {
                group_of[r] = order.len();
            }
            order.push(members);
        }
        Ok(Groups { group_of, order })
    }
}

impl fmt::Display for RuleProgram {
    /// Pretty-prints the program in Datalog surface syntax — the form
    /// `stcfa lint --explain` shows.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for decl in &self.rels {
            let kw = match decl.kind {
                RelKind::Edb => ".edb",
                RelKind::Idb => ".decl",
            };
            let doms: Vec<&str> = decl.schema.iter().map(|d| d.as_str()).collect();
            writeln!(f, "{kw} {}({})", decl.name, doms.join(", "))?;
        }
        for rule in &self.rules {
            let term = |t: &CTerm| -> String {
                match t {
                    CTerm::Var(v) => rule.vars[*v as usize].to_string(),
                    CTerm::Const(c) => c.to_string(),
                    CTerm::Wild => "_".to_string(),
                }
            };
            let atom = |a: &CAtom| -> String {
                let ts: Vec<String> = a.terms.iter().map(&term).collect();
                format!("{}({})", self.rels[a.rel].name, ts.join(", "))
            };
            let body: Vec<String> = rule
                .body
                .iter()
                .map(|lit| match lit {
                    CLit::Pos(a) => atom(a),
                    CLit::Neg(a) => format!("!{}", atom(a)),
                    CLit::Neq(a, b) => format!("{} != {}", term(a), term(b)),
                })
                .collect();
            if body.is_empty() {
                writeln!(f, "{}.", atom(&rule.head))?;
            } else {
                writeln!(f, "{} :- {}.", atom(&rule.head), body.join(", "))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (RuleProgram, RelId, RelId) {
        let mut p = RuleProgram::new();
        let edge = p.edb("edge", &[Dom::Node, Dom::Node]);
        let reach = p.decl("reach", &[Dom::Node]);
        (p, edge, reach)
    }

    #[test]
    fn transitive_reach_registers_and_prints() {
        let (mut p, edge, reach) = toy();
        p.rule(
            head(reach, &[var("x")]),
            vec![pos(edge, &[var("x"), var("y")]), pos(reach, &[var("y")])],
        )
        .unwrap();
        let text = p.to_string();
        assert!(text.contains(".edb edge(node, node)"), "{text}");
        assert!(text.contains("reach(x) :- edge(x, y), reach(y)."), "{text}");
    }

    #[test]
    fn arity_and_domain_errors_are_rejected() {
        let (mut p, edge, reach) = toy();
        let err = p
            .rule(head(reach, &[var("x")]), vec![pos(edge, &[var("x")])])
            .unwrap_err();
        assert!(err.0.contains("arity"), "{err}");
        // `x` is a node in edge but would be a label here.
        let lab = p.decl("lab", &[Dom::Label]);
        let err = p
            .rule(head(lab, &[var("x")]), vec![pos(edge, &[var("x"), WILD])])
            .unwrap_err();
        assert!(err.0.contains("used at both"), "{err}");
    }

    #[test]
    fn unbound_head_and_negation_are_rejected() {
        let (mut p, edge, reach) = toy();
        let err = p.rule(head(reach, &[var("z")]), vec![]).unwrap_err();
        assert!(err.0.contains("not bound"), "{err}");
        let err = p
            .rule(
                head(reach, &[var("x")]),
                vec![neg(reach, &[var("x")]), pos(edge, &[var("x"), WILD])],
            )
            .unwrap_err();
        assert!(
            err.0.contains("not bound by an earlier positive atom"),
            "{err}"
        );
    }

    #[test]
    fn negation_in_a_recursive_clique_is_unstratifiable() {
        let mut p = RuleProgram::new();
        let edge = p.edb("edge", &[Dom::Node, Dom::Node]);
        let a = p.decl("a", &[Dom::Node]);
        let b = p.decl("b", &[Dom::Node]);
        p.rule(
            head(a, &[var("x")]),
            vec![pos(edge, &[var("x"), WILD]), neg(b, &[var("x")])],
        )
        .unwrap();
        let before = p.rules.len();
        let err = p
            .rule(head(b, &[var("x")]), vec![pos(a, &[var("x")])])
            .unwrap_err();
        assert!(err.0.contains("unstratifiable"), "{err}");
        assert_eq!(p.rules.len(), before, "rejected rule leaves no trace");
    }

    #[test]
    fn groups_come_out_in_dependency_order() {
        let (mut p, edge, reach) = toy();
        let report = p.decl("report", &[Dom::Node]);
        p.rule(
            head(reach, &[var("x")]),
            vec![pos(edge, &[var("x"), var("y")]), pos(reach, &[var("y")])],
        )
        .unwrap();
        p.rule(
            head(report, &[var("x")]),
            vec![pos(edge, &[var("x"), WILD]), neg(reach, &[var("x")])],
        )
        .unwrap();
        let groups = p.groups().unwrap();
        let g = |r: RelId| groups.group_of[r.0 as usize];
        assert!(g(edge) < g(reach), "EDB before its consumers");
        assert!(g(reach) < g(report), "negated relation strictly earlier");
    }

    #[test]
    #[should_panic(expected = "not an extensional relation")]
    fn unknown_edb_name_panics() {
        RuleProgram::new().edb("no_such_relation", &[Dom::Node]);
    }
}
