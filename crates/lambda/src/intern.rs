//! String interning.
//!
//! Identifiers (variables, constructors, datatypes) are interned into
//! [`Symbol`]s — small copyable handles — so the rest of the system can
//! compare and hash names in `O(1)` and store them in dense tables.

use std::collections::HashMap;
use std::fmt;

/// An interned string handle.
///
/// Symbols are only meaningful relative to the [`Interner`] (and hence the
/// [`crate::Program`]) that produced them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// Returns the dense index of this symbol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.0)
    }
}

/// A deduplicating string table.
///
/// ```
/// use stcfa_lambda::intern::Interner;
///
/// let mut interner = Interner::new();
/// let a = interner.intern("map");
/// let b = interner.intern("map");
/// assert_eq!(a, b);
/// assert_eq!(interner.resolve(a), "map");
/// ```
#[derive(Debug, Default, Clone)]
pub struct Interner {
    strings: Vec<String>,
    map: HashMap<String, Symbol>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning the existing symbol if it was seen before.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.strings.len()).expect("interner overflow"));
        self.strings.push(s.to_owned());
        self.map.insert(s.to_owned(), sym);
        sym
    }

    /// Returns the string for `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was produced by a different interner and is out of
    /// range for this one.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Looks up a string without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether no strings have been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Forgets every symbol at index `len` and above, restoring the
    /// interner to an earlier extent. Interning is append-only, so this
    /// exactly undoes the interleaving of `intern` calls since that
    /// extent — the session rewind machinery relies on replays minting
    /// identical symbols.
    pub(crate) fn rewind(&mut self, len: usize) {
        for s in &self.strings[len..] {
            self.map.remove(s);
        }
        self.strings.truncate(len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_deduplicates() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("y");
        let c = i.intern("x");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let names = ["foo", "bar", "baz", ""];
        let syms: Vec<_> = names.iter().map(|n| i.intern(n)).collect();
        for (n, s) in names.iter().zip(&syms) {
            assert_eq!(i.resolve(*s), *n);
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("missing").is_none());
        let s = i.intern("present");
        assert_eq!(i.get("present"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
