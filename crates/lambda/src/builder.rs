//! Programmatic construction of [`Program`]s.
//!
//! The builder is the single constructor of programs (the parser lowers
//! through it too). It assigns fresh abstraction labels, keeps binders
//! distinct by construction, and checks the structural invariants when
//! [`ProgramBuilder::finish`] is called.
//!
//! ```
//! use stcfa_lambda::builder::ProgramBuilder;
//!
//! // (fn x => x x) (fn y => y)
//! let mut b = ProgramBuilder::new();
//! let x = b.fresh_var("x");
//! let xx = {
//!     let x1 = b.var(x);
//!     let x2 = b.var(x);
//!     b.app(x1, x2)
//! };
//! let f = b.lam(x, xx);
//! let y = b.fresh_var("y");
//! let id = {
//!     let yv = b.var(y);
//!     b.lam(y, yv)
//! };
//! let root = b.app(f, id);
//! let program = b.finish(root).unwrap();
//! assert_eq!(program.size(), 7);
//! assert_eq!(program.label_count(), 2);
//! ```

use crate::ast::{
    CaseArm, ConId, DataEnv, DataId, ExprId, ExprKind, Label, Literal, PrimOp, Program, TyExpr,
    VarId,
};
use crate::intern::{Interner, Symbol};
use crate::lexer::Span;
use crate::validate::{self, ValidateError};

/// Incremental builder for [`Program`]s.
///
/// Expression-forming methods panic on *structural* misuse (arity
/// mismatches, unknown ids) because those are programming errors in the
/// caller; scope and tree-shape errors are reported by
/// [`ProgramBuilder::finish`] as [`ValidateError`]s.
#[derive(Debug, Default, Clone)]
pub struct ProgramBuilder {
    interner: Interner,
    exprs: Vec<ExprKind>,
    /// Parallel to `exprs`; `None` until [`ProgramBuilder::set_span`].
    spans: Vec<Option<Span>>,
    vars: Vec<Symbol>,
    labels: Vec<ExprId>,
    data: DataEnv,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, kind: ExprKind) -> ExprId {
        let id = ExprId::from_index(self.exprs.len());
        self.exprs.push(kind);
        self.spans.push(None);
        id
    }

    /// Records the source span of an already-built expression (the parser
    /// calls this as it closes each production). Overwrites any earlier
    /// span for the same node.
    pub fn set_span(&mut self, id: ExprId, span: Span) {
        self.spans[id.index()] = span.into();
    }

    /// The recorded span of an already-built expression, if any.
    pub fn span(&self, id: ExprId) -> Option<Span> {
        self.spans[id.index()]
    }

    /// Interns a name.
    pub fn intern(&mut self, name: &str) -> Symbol {
        self.interner.intern(name)
    }

    /// Creates a fresh binder with the given source name. Binders with the
    /// same name are still distinct.
    pub fn fresh_var(&mut self, name: &str) -> VarId {
        let sym = self.interner.intern(name);
        let id = VarId::from_index(self.vars.len());
        self.vars.push(sym);
        id
    }

    /// Declares a datatype. Panics on duplicate names.
    pub fn declare_data(&mut self, name: &str) -> DataId {
        let sym = self.interner.intern(name);
        self.data
            .declare_data(sym)
            .expect("duplicate datatype name")
    }

    /// Declares a constructor. Panics on duplicate names.
    pub fn declare_con(&mut self, data: DataId, name: &str, arg_tys: Vec<TyExpr>) -> ConId {
        let sym = self.interner.intern(name);
        self.data
            .declare_con(data, sym, arg_tys)
            .expect("duplicate constructor name")
    }

    /// Variable occurrence.
    pub fn var(&mut self, var: VarId) -> ExprId {
        assert!(var.index() < self.vars.len(), "unknown VarId");
        self.push(ExprKind::Var(var))
    }

    /// Abstraction `fn param => body`; assigns the next fresh label.
    pub fn lam(&mut self, param: VarId, body: ExprId) -> ExprId {
        let label = Label::from_index(self.labels.len());
        let id = self.push(ExprKind::Lam { label, param, body });
        self.labels.push(id);
        id
    }

    /// Application `(func arg)`.
    pub fn app(&mut self, func: ExprId, arg: ExprId) -> ExprId {
        self.push(ExprKind::App { func, arg })
    }

    /// Curried application `(f a₁ … aₙ)`.
    pub fn apps(&mut self, func: ExprId, args: impl IntoIterator<Item = ExprId>) -> ExprId {
        args.into_iter().fold(func, |f, a| self.app(f, a))
    }

    /// Non-recursive let.
    pub fn let_(&mut self, binder: VarId, rhs: ExprId, body: ExprId) -> ExprId {
        self.push(ExprKind::Let { binder, rhs, body })
    }

    /// Recursive let; `lambda` must be an abstraction.
    pub fn letrec(&mut self, binder: VarId, lambda: ExprId, body: ExprId) -> ExprId {
        assert!(
            matches!(self.exprs[lambda.index()], ExprKind::Lam { .. }),
            "letrec right-hand side must be an abstraction"
        );
        self.push(ExprKind::LetRec {
            binder,
            lambda,
            body,
        })
    }

    /// Conditional.
    pub fn if_(&mut self, cond: ExprId, then_branch: ExprId, else_branch: ExprId) -> ExprId {
        self.push(ExprKind::If {
            cond,
            then_branch,
            else_branch,
        })
    }

    /// Record (tuple) of two or more fields.
    pub fn record(&mut self, items: Vec<ExprId>) -> ExprId {
        assert!(items.len() >= 2, "records have at least two fields");
        self.push(ExprKind::Record(items.into()))
    }

    /// Projection `#index expr` with a zero-based index.
    pub fn proj(&mut self, index: u32, tuple: ExprId) -> ExprId {
        self.push(ExprKind::Proj { index, tuple })
    }

    /// Saturated constructor application.
    pub fn con(&mut self, con: ConId, args: Vec<ExprId>) -> ExprId {
        assert_eq!(
            args.len(),
            self.data.arity(con),
            "constructor {} applied to wrong number of arguments",
            self.interner.resolve(self.data.con(con).name),
        );
        self.push(ExprKind::Con {
            con,
            args: args.into(),
        })
    }

    /// Case expression. Each arm is `(constructor, binders, body)`.
    pub fn case(
        &mut self,
        scrutinee: ExprId,
        arms: Vec<(ConId, Vec<VarId>, ExprId)>,
        default: Option<ExprId>,
    ) -> ExprId {
        let arms: Vec<CaseArm> = arms
            .into_iter()
            .map(|(con, binders, body)| {
                assert_eq!(
                    binders.len(),
                    self.data.arity(con),
                    "case arm for {} binds wrong number of variables",
                    self.interner.resolve(self.data.con(con).name),
                );
                CaseArm {
                    con,
                    binders: binders.into(),
                    body,
                }
            })
            .collect();
        assert!(
            !arms.is_empty() || default.is_some(),
            "case must have at least one arm"
        );
        self.push(ExprKind::Case {
            scrutinee,
            arms: arms.into(),
            default,
        })
    }

    /// Literal.
    pub fn lit(&mut self, lit: Literal) -> ExprId {
        self.push(ExprKind::Lit(lit))
    }

    /// Integer literal.
    pub fn int(&mut self, value: i64) -> ExprId {
        self.lit(Literal::Int(value))
    }

    /// Boolean literal.
    pub fn bool(&mut self, value: bool) -> ExprId {
        self.lit(Literal::Bool(value))
    }

    /// Unit literal.
    pub fn unit(&mut self) -> ExprId {
        self.lit(Literal::Unit)
    }

    /// Saturated primitive application.
    pub fn prim(&mut self, op: PrimOp, args: Vec<ExprId>) -> ExprId {
        assert_eq!(
            args.len(),
            op.arity(),
            "primitive {} applied to wrong arity",
            op.name()
        );
        self.push(ExprKind::Prim {
            op,
            args: args.into(),
        })
    }

    /// Number of expressions created so far.
    pub fn expr_count(&self) -> usize {
        self.exprs.len()
    }

    /// The shape of an already-built expression.
    pub fn kind(&self, id: ExprId) -> &ExprKind {
        &self.exprs[id.index()]
    }

    /// Read access to the datatype environment built so far.
    pub fn data_env(&self) -> &DataEnv {
        &self.data
    }

    /// Finalizes the program with `root` as the top-level expression,
    /// validating all structural invariants (tree shape, no orphans,
    /// closedness, unique binding, letrec shape, case-arm consistency).
    pub fn finish(self, root: ExprId) -> Result<Program, ValidateError> {
        let program = self.finish_unchecked(Some(root));
        validate::validate(&program)?;
        Ok(program)
    }

    /// Finalizes without whole-program validation — for *forest* programs
    /// (incremental sessions), whose fragments are validated individually
    /// with [`validate::validate_forest`]. With `root: None` a unit
    /// expression is appended to serve as the (meaningless) root.
    pub fn finish_unchecked(mut self, root: Option<ExprId>) -> Program {
        let root = root.unwrap_or_else(|| self.unit());
        Program {
            interner: self.interner,
            exprs: self.exprs,
            spans: self.spans,
            vars: self.vars,
            labels: self.labels,
            data: self.data,
            root,
        }
    }

    /// Re-opens a program for appending (the existing arena, binders,
    /// labels and datatypes keep their ids).
    pub fn from_program(program: Program) -> ProgramBuilder {
        ProgramBuilder {
            interner: program.interner,
            exprs: program.exprs,
            spans: program.spans,
            vars: program.vars,
            labels: program.labels,
            data: program.data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_identity_application() {
        let mut b = ProgramBuilder::new();
        let x = b.fresh_var("x");
        let xv = b.var(x);
        let id1 = b.lam(x, xv);
        let y = b.fresh_var("y");
        let yv = b.var(y);
        let id2 = b.lam(y, yv);
        let root = b.app(id1, id2);
        let p = b.finish(root).unwrap();
        assert_eq!(p.size(), 5);
        assert_eq!(p.label_count(), 2);
        assert_eq!(p.var_count(), 2);
        assert_eq!(p.root(), root);
    }

    #[test]
    fn labels_map_back_to_lams() {
        let mut b = ProgramBuilder::new();
        let x = b.fresh_var("x");
        let xv = b.var(x);
        let lam = b.lam(x, xv);
        let p = b.finish(lam).unwrap();
        let l = p.label_of(lam).unwrap();
        assert_eq!(p.lam_of_label(l), lam);
    }

    #[test]
    #[should_panic(expected = "letrec right-hand side")]
    fn letrec_requires_lambda() {
        let mut b = ProgramBuilder::new();
        let f = b.fresh_var("f");
        let one = b.int(1);
        let body = b.var(f);
        b.letrec(f, one, body);
    }

    #[test]
    fn open_programs_are_rejected() {
        let mut b = ProgramBuilder::new();
        let x = b.fresh_var("x");
        let root = b.var(x); // x is never bound
        assert!(b.finish(root).is_err());
    }

    #[test]
    fn orphan_nodes_are_rejected() {
        let mut b = ProgramBuilder::new();
        let _orphan = b.int(1);
        let root = b.int(2);
        assert!(b.finish(root).is_err());
    }

    #[test]
    fn shared_subtrees_are_rejected() {
        let mut b = ProgramBuilder::new();
        let one = b.int(1);
        let root = b.prim(PrimOp::Add, vec![one, one]); // `one` used twice
        assert!(b.finish(root).is_err());
    }

    #[test]
    fn apps_folds_left() {
        let mut b = ProgramBuilder::new();
        let f = b.fresh_var("f");
        let x = b.fresh_var("x");
        let fv = b.var(f);
        let a1 = b.int(1);
        let a2 = b.int(2);
        let call = b.apps(fv, [a1, a2]);
        let inner = b.lam(x, call);
        // bind f to the identity to close the program
        let z = b.fresh_var("z");
        let zv = b.var(z);
        let idf = b.lam(z, zv);
        let outer = b.lam(f, inner);
        let partial = b.app(outer, idf);
        let arg = b.int(0);
        let root = b.app(partial, arg);
        let p = b.finish(root).unwrap();
        // ((f 1) 2) — outermost app's func is itself an app
        match p.kind(call) {
            ExprKind::App { func, .. } => {
                assert!(matches!(p.kind(*func), ExprKind::App { .. }));
            }
            other => panic!("expected app, got {other:?}"),
        }
    }
}
