//! Recursive-descent parser for the ML-flavoured surface syntax.
//!
//! The grammar, informally:
//!
//! ```text
//! program  := decl* expr?
//! decl     := "datatype" lid "=" conbind ("|" conbind)* [";"]
//!           | "fun" lid lid+ "=" expr [";"]            -- recursive, curried
//!           | "val" lid "=" expr [";"]
//!           | "val" "rec" lid "=" expr [";"]           -- rhs must be `fn`
//! conbind  := UId ["of" tyarg ("*" tyarg)*]
//! tyarg    := tyatom ["->" tyarg]
//! tyatom   := "int" | "bool" | "unit" | lid | "(" tyarg ")"
//! expr     := "fn" lid "=>" expr
//!           | "let" decl+ "in" expr "end"
//!           | "if" expr "then" expr "else" expr
//!           | "case" expr "of" ["|"] arm ("|" arm)*
//!           | cmp
//! arm      := UId ["(" lid ("," lid)* ")"] "=>" expr | "_" "=>" expr
//! cmp      := add [("<" | "<=" | "=") add]
//! add      := mul (("+" | "-") mul)*
//! mul      := appexpr (("*" | "div") appexpr)*
//! appexpr  := atom+                                     -- application
//! atom     := lid | UId ["(" expr ("," expr)* ")"] | literal
//!           | "(" ")" | "(" expr ")" | "(" expr ("," expr)+ ")"
//!           | "#" INT atom | "not" atom | "print" atom | "readint"
//! ```
//!
//! Top-level and `let` declarations desugar to nested `let`/`letrec`; `fun`
//! with several parameters curries. A program with no final expression
//! evaluates to `()`.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::ast::{ConId, DataId, ExprId, ExprKind, PrimOp, Program, TyExpr, VarId};
use crate::builder::ProgramBuilder;
use crate::lexer::{lex, Kw, LexError, Pos, Span, Tok};
use crate::validate::ValidateError;

/// A parse (or lex, or validation) failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Position of the offending token (line 0 for post-parse validation
    /// errors).
    pub pos: Pos,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            pos: e.pos,
            message: e.message,
        }
    }
}

const NOWHERE: Pos = Pos {
    offset: 0,
    line: 0,
    col: 0,
};

impl From<ValidateError> for ParseError {
    fn from(e: ValidateError) -> Self {
        ParseError {
            pos: NOWHERE,
            message: e.to_string(),
        }
    }
}

/// Parses a complete program.
pub fn parse(source: &str) -> Result<Program, ParseError> {
    let toks = lex(source)?;
    let mut p = Parser {
        toks,
        idx: 0,
        prev_end: NOWHERE,
        b: ProgramBuilder::new(),
        scopes: HashMap::new(),
    };
    let root = p.decl_block(BlockKind::TopLevel)?;
    p.expect(&Tok::Eof)?;
    Ok(p.b.finish(root)?)
}

/// One freshly parsed session binding (see [`crate::session`]).
#[derive(Clone, Debug)]
pub struct RawBinding {
    /// Source name.
    pub name: String,
    /// The fresh binder.
    pub binder: VarId,
    /// The bound expression.
    pub rhs: ExprId,
    /// Whether the binding is recursive.
    pub recursive: bool,
}

/// One freshly parsed fragment: top-level bindings and/or a value.
#[derive(Clone, Debug)]
pub struct RawFragment {
    /// Bindings introduced, in order.
    pub bindings: Vec<RawBinding>,
    /// The trailing value expression, if any.
    pub value: Option<ExprId>,
}

/// Parses a REPL-style fragment into an existing program arena (taken
/// apart and reassembled through [`ProgramBuilder::from_program`]), with
/// `scope` giving the top-level names already in force. The fragment's
/// bindings are *not* wrapped in `let` expressions — the caller records
/// them (see [`crate::session::SessionProgram`]).
pub fn parse_fragment(
    program: &mut Program,
    scope: &HashMap<String, VarId>,
    source: &str,
) -> Result<RawFragment, ParseError> {
    let toks = lex(source)?;
    // A session arena's root is meaningless (the session layer tracks
    // per-fragment values instead); keep the incoming root rather than
    // allocating a placeholder per fragment, so a program split into `k`
    // fragments builds the *same* arena as the unsplit program — the
    // node-for-node guarantee the session linker's differential tests
    // rely on.
    let old_root = program.root();
    let placeholder = ProgramBuilder::new().finish_unchecked(None);
    let owned = std::mem::replace(program, placeholder);
    let mut scopes: HashMap<String, Vec<VarId>> = HashMap::new();
    for (name, &var) in scope {
        scopes.insert(name.clone(), vec![var]);
    }
    let mut p = Parser {
        toks,
        idx: 0,
        prev_end: NOWHERE,
        b: ProgramBuilder::from_program(owned),
        scopes,
    };

    let result = p.fragment();
    // Reassemble the arena whether or not parsing succeeded; the session
    // layer discards the scratch copy on error.
    *program = p.b.finish_unchecked(Some(old_root));
    result
}

impl Parser {
    /// `fragment := (datatype-decl | fun-binding | val-binding)* expr?`
    fn fragment(&mut self) -> Result<RawFragment, ParseError> {
        let mut bindings = Vec::new();
        loop {
            match self.peek() {
                Tok::Kw(Kw::Datatype) => self.datatype_decl()?,
                Tok::Kw(Kw::Fun) => {
                    self.bump();
                    let names = self.scan_fun_group()?;
                    if names.len() == 1 {
                        let (name, binder, rhs) = self.fun_binding()?;
                        // Stays bound: later bindings and the value see it.
                        bindings.push(RawBinding {
                            name,
                            binder,
                            rhs,
                            recursive: true,
                        });
                    } else {
                        let group = self.mutual_group(&names)?;
                        bindings.push(RawBinding {
                            name: "$pack".into(),
                            binder: group.pack,
                            rhs: group.pack_lam,
                            recursive: true,
                        });
                        for (name, binder, rhs) in group.outer {
                            self.scopes.entry(name.clone()).or_default().push(binder);
                            bindings.push(RawBinding {
                                name,
                                binder,
                                rhs,
                                recursive: false,
                            });
                        }
                    }
                }
                Tok::Kw(Kw::Val) => {
                    self.bump();
                    let (name, binder, rhs, recursive) = self.val_binding()?;
                    bindings.push(RawBinding {
                        name,
                        binder,
                        rhs,
                        recursive,
                    });
                }
                _ => break,
            }
        }
        let value = if self.peek() == &Tok::Eof {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(&Tok::Eof)?;
        Ok(RawFragment { bindings, value })
    }
}

enum BlockKind {
    TopLevel,
    Let,
}

/// The desugared pieces of an `and`-connected `fun` group.
struct MutualGroup {
    /// The hidden recursive pack binder.
    pack: VarId,
    /// `λ$d. let wrappers in (member₁, …, memberₙ)`.
    pack_lam: ExprId,
    /// Outer wrappers `(name, binder, rhs)` for the continuation.
    outer: Vec<(String, VarId, ExprId)>,
}

struct Parser {
    toks: Vec<(Tok, Span)>,
    idx: usize,
    /// End of the most recently consumed token — the right edge of every
    /// span the parser closes.
    prev_end: Pos,
    b: ProgramBuilder,
    /// name -> stack of binders currently in scope (innermost last).
    scopes: HashMap<String, Vec<VarId>>,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.idx].0
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.idx + 1).min(self.toks.len() - 1)].0
    }

    fn pos(&self) -> Pos {
        self.toks[self.idx].1.start
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.idx].0.clone();
        self.prev_end = self.toks[self.idx].1.end;
        if self.idx + 1 < self.toks.len() {
            self.idx += 1;
        }
        t
    }

    /// Records `start ‥ end-of-last-consumed-token` as the span of `id`.
    fn mark(&mut self, id: ExprId, start: Pos) -> ExprId {
        self.b.set_span(
            id,
            Span {
                start,
                end: self.prev_end,
            },
        );
        id
    }

    /// Gives every still-unspanned node built since `lo` the span
    /// `start ‥ end-of-last-consumed-token`. Desugared helpers (currying,
    /// mutual-recursion packs and wrappers) have no tokens of their own;
    /// they inherit the whole binding's span through this.
    fn fill_spans(&mut self, lo: usize, start: Pos) {
        let span = Span {
            start,
            end: self.prev_end,
        };
        for i in lo..self.b.expr_count() {
            let id = ExprId::from_index(i);
            if self.b.span(id).is_none() {
                self.b.set_span(id, span);
            }
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            pos: self.pos(),
            message: message.into(),
        })
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), ParseError> {
        if self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {tok}, found {}", self.peek()))
        }
    }

    fn expect_kw(&mut self, kw: Kw) -> Result<(), ParseError> {
        self.expect(&Tok::Kw(kw))
    }

    fn lident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::LIdent(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    // --- scope management -------------------------------------------------

    fn bind(&mut self, name: &str) -> VarId {
        let v = self.b.fresh_var(name);
        self.scopes.entry(name.to_owned()).or_default().push(v);
        v
    }

    fn unbind(&mut self, name: &str) {
        let stack = self.scopes.get_mut(name).expect("unbind of unbound name");
        stack.pop().expect("unbind of empty scope stack");
    }

    fn lookup(&self, name: &str) -> Option<VarId> {
        self.scopes.get(name).and_then(|s| s.last().copied())
    }

    // --- declarations ------------------------------------------------------

    /// Parses a sequence of declarations followed by the block body, and
    /// builds the nested `let`/`letrec` expression.
    fn decl_block(&mut self, kind: BlockKind) -> Result<ExprId, ParseError> {
        match self.peek().clone() {
            Tok::Kw(Kw::Datatype) => {
                self.datatype_decl()?;
                self.decl_block(kind)
            }
            Tok::Kw(Kw::Fun) => {
                let start = self.pos();
                self.bump();
                let names = self.scan_fun_group()?;
                if names.len() == 1 {
                    let (fname, f, lam) = self.fun_binding()?;
                    let rest = self.decl_block(kind)?;
                    self.unbind(&fname);
                    let node = self.b.letrec(f, lam, rest);
                    Ok(self.mark(node, start))
                } else {
                    let group = self.mutual_group(&names)?;
                    for ((name, binder, _), _) in group.outer.iter().zip(&names) {
                        self.scopes.entry(name.clone()).or_default().push(*binder);
                    }
                    let rest = self.decl_block(kind)?;
                    for name in names.iter().rev() {
                        self.unbind(name);
                    }
                    let mut body = rest;
                    for (_, binder, rhs) in group.outer.iter().rev() {
                        body = self.b.let_(*binder, *rhs, body);
                        self.mark(body, start);
                    }
                    let node = self.b.letrec(group.pack, group.pack_lam, body);
                    Ok(self.mark(node, start))
                }
            }
            Tok::Kw(Kw::Val) => {
                let start = self.pos();
                self.bump();
                let (name, v, rhs, recursive) = self.val_binding()?;
                let rest = self.decl_block(kind)?;
                self.unbind(&name);
                let node = if recursive {
                    self.b.letrec(v, rhs, rest)
                } else {
                    self.b.let_(v, rhs, rest)
                };
                Ok(self.mark(node, start))
            }
            _ => match kind {
                BlockKind::TopLevel => {
                    if self.peek() == &Tok::Eof {
                        Ok(self.b.unit())
                    } else {
                        self.expr()
                    }
                }
                BlockKind::Let => {
                    self.expect_kw(Kw::In)?;
                    let body = self.expr()?;
                    self.expect_kw(Kw::End)?;
                    Ok(body)
                }
            },
        }
    }

    /// Token-level lookahead from just after `fun`: the names of the
    /// `and`-connected group (length 1 when there is no `and`). `let`/`end`
    /// nesting is tracked so that `and` inside nested blocks is ignored;
    /// `and` cannot otherwise occur inside expressions (it is a keyword).
    fn scan_fun_group(&self) -> Result<Vec<String>, ParseError> {
        let mut names = Vec::new();
        let mut i = self.idx;
        match &self.toks[i].0 {
            Tok::LIdent(s) => names.push(s.clone()),
            other => {
                return Err(ParseError {
                    pos: self.toks[i].1.start,
                    message: format!("expected function name, found {other}"),
                })
            }
        }
        i += 1;
        let mut depth = 0i32;
        loop {
            match &self.toks[i].0 {
                Tok::Kw(Kw::Let) => depth += 1,
                Tok::Kw(Kw::End) => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                Tok::Kw(Kw::And) if depth == 0 => {
                    i += 1;
                    match &self.toks[i].0 {
                        Tok::LIdent(s) => names.push(s.clone()),
                        other => {
                            return Err(ParseError {
                                pos: self.toks[i].1.start,
                                message: format!(
                                    "expected function name after `and`, found {other}"
                                ),
                            })
                        }
                    }
                }
                Tok::Kw(Kw::Fun | Kw::Val | Kw::Datatype | Kw::In) if depth == 0 => break,
                Tok::Semi if depth == 0 => break,
                Tok::Eof => break,
                _ => {}
            }
            i += 1;
        }
        Ok(names)
    }

    /// One eta-wrapper `λa. (#index (pack 0)) a` — the indirection through
    /// which a member of a mutual-recursion group is reached.
    fn wrapper_lam(&mut self, pack: VarId, index: u32) -> ExprId {
        let a = self.b.fresh_var("$a");
        let packv = self.b.var(pack);
        let zero = self.b.int(0);
        let call = self.b.app(packv, zero);
        let proj = self.b.proj(index, call);
        let av = self.b.var(a);
        let app = self.b.app(proj, av);
        self.b.lam(a, app)
    }

    /// Parses an `and`-connected `fun` group, desugaring to a single
    /// recursive *pack*:
    ///
    /// ```text
    /// fun f x = E and g y = F
    /// ⟹ letrec $pack = λ$d.
    ///       let f = λa.(#1 ($pack 0)) a in
    ///       let g = λa.(#2 ($pack 0)) a in
    ///       (λx.E, λy.F)
    ///    in let f = λa.(#1 ($pack 0)) a in
    ///       let g = λa.(#2 ($pack 0)) a in …
    /// ```
    ///
    /// Bodies `E`/`F` see the group through the eta-wrappers, so mutual
    /// calls flow through one extra abstraction (visible to CFA consumers
    /// as a wrapper label). The group is monomorphic within itself and
    /// generalized outside — SML's typing of `and`.
    fn mutual_group(&mut self, names: &[String]) -> Result<MutualGroup, ParseError> {
        let start = self.pos();
        let lo = self.b.expr_count();
        let pack = self.b.fresh_var("$pack");
        let d = self.b.fresh_var("$d");
        // Inner wrappers, in scope for the group bodies.
        let inner: Vec<(VarId, ExprId)> = (0..names.len())
            .map(|i| {
                let w = self.b.fresh_var(&names[i]);
                let lam = self.wrapper_lam(pack, i as u32);
                (w, lam)
            })
            .collect();
        for (name, (w, _)) in names.iter().zip(&inner) {
            self.scopes.entry(name.clone()).or_default().push(*w);
        }
        // Parse each member.
        let mut lams = Vec::new();
        for (i, expected) in names.iter().enumerate() {
            if i > 0 {
                self.expect(&Tok::Kw(Kw::And))?;
            }
            let member_start = self.pos();
            let member_lo = self.b.expr_count();
            let got = self.lident()?;
            if &got != expected {
                return self.err(format!(
                    "mutual-recursion scan expected `{expected}`, found `{got}`"
                ));
            }
            let mut params = Vec::new();
            while let Tok::LIdent(_) = self.peek() {
                params.push(self.lident()?);
            }
            if params.is_empty() {
                return self.err("`fun` needs at least one parameter");
            }
            let pvars: Vec<VarId> = params.iter().map(|p| self.bind(p)).collect();
            self.expect(&Tok::Equals)?;
            let mut body = self.expr()?;
            for p in params.iter().rev() {
                self.unbind(p);
            }
            for &pv in pvars.iter().skip(1).rev() {
                body = self.b.lam(pv, body);
            }
            lams.push(self.b.lam(pvars[0], body));
            // The curried member lambdas carry the member's source range.
            self.fill_spans(member_lo, member_start);
        }
        if self.peek() == &Tok::Semi {
            self.bump();
        }
        for name in names.iter().rev() {
            self.unbind(name);
        }
        let tuple = self.b.record(lams);
        let mut inner_body = tuple;
        for (w, wl) in inner.iter().rev() {
            inner_body = self.b.let_(*w, *wl, inner_body);
        }
        let pack_lam = self.b.lam(d, inner_body);
        // Fresh outer wrappers for the continuation.
        let outer = names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let o = self.b.fresh_var(name);
                let rhs = self.wrapper_lam(pack, i as u32);
                (name.clone(), o, rhs)
            })
            .collect();
        // Pack machinery (wrappers, tuple, pack lambda) has no tokens of
        // its own: give it the whole group's span.
        self.fill_spans(lo, start);
        Ok(MutualGroup {
            pack,
            pack_lam,
            outer,
        })
    }

    /// Parses `f p₁ … pₙ = body [;]` after the `fun` keyword. The binder
    /// stays in scope for the caller to release (or keep, for fragments).
    fn fun_binding(&mut self) -> Result<(String, VarId, ExprId), ParseError> {
        let start = self.pos();
        let lo = self.b.expr_count();
        let fname = self.lident()?;
        let f = self.bind(&fname);
        let mut params = Vec::new();
        while let Tok::LIdent(_) = self.peek() {
            let pname = self.lident()?;
            params.push(pname);
        }
        if params.is_empty() {
            return self.err("`fun` needs at least one parameter");
        }
        let param_vars: Vec<VarId> = params.iter().map(|p| self.bind(p)).collect();
        self.expect(&Tok::Equals)?;
        let mut body = self.expr()?;
        for pname in params.iter().rev() {
            self.unbind(pname);
        }
        // Curry: fn p1 => fn p2 => ... => body.
        for &pv in param_vars.iter().skip(1).rev() {
            body = self.b.lam(pv, body);
        }
        let lam = self.b.lam(param_vars[0], body);
        // The curried lambdas inherit the binding's source range.
        self.fill_spans(lo, start);
        if self.peek() == &Tok::Semi {
            self.bump();
        }
        Ok((fname, f, lam))
    }

    /// Parses `[rec] x = rhs [;]` after the `val` keyword. The binder
    /// stays in scope for the caller to release (or keep, for fragments).
    fn val_binding(&mut self) -> Result<(String, VarId, ExprId, bool), ParseError> {
        let recursive = if self.peek() == &Tok::Kw(Kw::Rec) {
            self.bump();
            true
        } else {
            false
        };
        let name = self.lident()?;
        let (v, rhs) = if recursive {
            let v = self.bind(&name);
            self.expect(&Tok::Equals)?;
            let rhs = self.expr()?;
            if !matches!(self.b.kind(rhs), ExprKind::Lam { .. }) {
                return self.err("`val rec` right-hand side must be `fn`");
            }
            (v, rhs)
        } else {
            self.expect(&Tok::Equals)?;
            let rhs = self.expr()?;
            let v = self.bind(&name);
            (v, rhs)
        };
        if self.peek() == &Tok::Semi {
            self.bump();
        }
        Ok((name, v, rhs, recursive))
    }

    fn datatype_decl(&mut self) -> Result<(), ParseError> {
        self.expect_kw(Kw::Datatype)?;
        let name = self.lident()?;
        let sym_exists = {
            let s = self.b.intern(&name);
            self.b.data_env().data_by_name(s).is_some()
        };
        if sym_exists {
            return self.err(format!("datatype `{name}` is declared twice"));
        }
        let data = self.b.declare_data(&name);
        self.expect(&Tok::Equals)?;
        loop {
            self.conbind(data)?;
            if self.peek() == &Tok::Bar {
                self.bump();
            } else {
                break;
            }
        }
        if self.peek() == &Tok::Semi {
            self.bump();
        }
        Ok(())
    }

    fn conbind(&mut self, data: DataId) -> Result<(), ParseError> {
        let name = match self.peek().clone() {
            Tok::UIdent(s) => {
                self.bump();
                s
            }
            other => return self.err(format!("expected constructor name, found {other}")),
        };
        let exists = {
            let s = self.b.intern(&name);
            self.b.data_env().con_by_name(s).is_some()
        };
        if exists {
            return self.err(format!("constructor `{name}` is declared twice"));
        }
        let mut arg_tys = Vec::new();
        if self.peek() == &Tok::Kw(Kw::Of) {
            self.bump();
            loop {
                arg_tys.push(self.tyarg()?);
                if self.peek() == &Tok::Star {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.b.declare_con(data, &name, arg_tys);
        Ok(())
    }

    fn tyarg(&mut self) -> Result<TyExpr, ParseError> {
        let lhs = self.tyatom()?;
        if self.peek() == &Tok::Arrow {
            self.bump();
            let rhs = self.tyarg()?;
            Ok(TyExpr::Arrow(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn tyatom(&mut self) -> Result<TyExpr, ParseError> {
        match self.peek().clone() {
            Tok::Kw(Kw::Int) => {
                self.bump();
                Ok(TyExpr::Int)
            }
            Tok::Kw(Kw::Bool) => {
                self.bump();
                Ok(TyExpr::Bool)
            }
            Tok::Kw(Kw::Unit) => {
                self.bump();
                Ok(TyExpr::Unit)
            }
            Tok::LIdent(name) => {
                self.bump();
                let sym = self.b.intern(&name);
                match self.b.data_env().data_by_name(sym) {
                    Some(d) => Ok(TyExpr::Data(d)),
                    None => self.err(format!("unknown type `{name}`")),
                }
            }
            Tok::LParen => {
                self.bump();
                // Allow tuple types inside parens: (t1 * t2 * ...).
                let mut parts = vec![self.tyarg()?];
                while self.peek() == &Tok::Star {
                    self.bump();
                    parts.push(self.tyarg()?);
                }
                self.expect(&Tok::RParen)?;
                if parts.len() == 1 {
                    Ok(parts.pop().expect("one part"))
                } else {
                    Ok(TyExpr::Tuple(parts.into()))
                }
            }
            other => self.err(format!("expected type, found {other}")),
        }
    }

    // --- expressions --------------------------------------------------------

    fn expr(&mut self) -> Result<ExprId, ParseError> {
        let start = self.pos();
        match self.peek().clone() {
            Tok::Kw(Kw::Fn) => {
                self.bump();
                let name = self.lident()?;
                let v = self.bind(&name);
                self.expect(&Tok::FatArrow)?;
                let body = self.expr()?;
                self.unbind(&name);
                let node = self.b.lam(v, body);
                Ok(self.mark(node, start))
            }
            Tok::Kw(Kw::Let) => {
                self.bump();
                self.decl_block(BlockKind::Let)
            }
            Tok::Kw(Kw::If) => {
                self.bump();
                let cond = self.expr()?;
                self.expect_kw(Kw::Then)?;
                let t = self.expr()?;
                self.expect_kw(Kw::Else)?;
                let e = self.expr()?;
                let node = self.b.if_(cond, t, e);
                Ok(self.mark(node, start))
            }
            Tok::Kw(Kw::Case) => {
                self.bump();
                let scrutinee = self.expr()?;
                self.expect_kw(Kw::Of)?;
                if self.peek() == &Tok::Bar {
                    self.bump();
                }
                let mut arms: Vec<(ConId, Vec<VarId>, ExprId)> = Vec::new();
                let mut default = None;
                loop {
                    if self.peek() == &Tok::Underscore {
                        self.bump();
                        self.expect(&Tok::FatArrow)?;
                        default = Some(self.expr()?);
                        if self.peek() == &Tok::Bar {
                            return self.err("wildcard arm must be last");
                        }
                        break;
                    }
                    let con_name = match self.peek().clone() {
                        Tok::UIdent(s) => {
                            self.bump();
                            s
                        }
                        other => return self.err(format!("expected case pattern, found {other}")),
                    };
                    let con = {
                        let sym = self.b.intern(&con_name);
                        match self.b.data_env().con_by_name(sym) {
                            Some(c) => c,
                            None => {
                                return self
                                    .err(format!("unknown constructor `{con_name}` in pattern"))
                            }
                        }
                    };
                    let arity = self.b.data_env().arity(con);
                    let mut names = Vec::new();
                    if self.peek() == &Tok::LParen {
                        self.bump();
                        loop {
                            names.push(self.lident()?);
                            if self.peek() == &Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                        self.expect(&Tok::RParen)?;
                    }
                    if names.len() != arity {
                        return self.err(format!(
                            "constructor `{con_name}` has arity {arity}, pattern binds {}",
                            names.len()
                        ));
                    }
                    let binders: Vec<VarId> = names.iter().map(|n| self.bind(n)).collect();
                    self.expect(&Tok::FatArrow)?;
                    let body = self.expr()?;
                    for n in names.iter().rev() {
                        self.unbind(n);
                    }
                    arms.push((con, binders, body));
                    if self.peek() == &Tok::Bar {
                        self.bump();
                    } else {
                        break;
                    }
                }
                let node = self.b.case(scrutinee, arms, default);
                Ok(self.mark(node, start))
            }
            _ => self.cmp(),
        }
    }

    fn cmp(&mut self) -> Result<ExprId, ParseError> {
        let start = self.pos();
        let lhs = self.add()?;
        let op = match self.peek() {
            Tok::Lt => PrimOp::Lt,
            Tok::Leq => PrimOp::Leq,
            Tok::Equals => PrimOp::IntEq,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add()?;
        let node = self.b.prim(op, vec![lhs, rhs]);
        Ok(self.mark(node, start))
    }

    fn add(&mut self) -> Result<ExprId, ParseError> {
        let start = self.pos();
        let mut lhs = self.mul()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => PrimOp::Add,
                Tok::Minus => PrimOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul()?;
            lhs = self.b.prim(op, vec![lhs, rhs]);
            self.mark(lhs, start);
        }
    }

    fn mul(&mut self) -> Result<ExprId, ParseError> {
        let start = self.pos();
        let mut lhs = self.appexpr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => PrimOp::Mul,
                Tok::Kw(Kw::Div) => PrimOp::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.appexpr()?;
            lhs = self.b.prim(op, vec![lhs, rhs]);
            self.mark(lhs, start);
        }
    }

    fn starts_atom(&self) -> bool {
        matches!(
            self.peek(),
            Tok::LIdent(_)
                | Tok::UIdent(_)
                | Tok::Int(_)
                | Tok::LParen
                | Tok::Hash
                | Tok::Kw(Kw::True)
                | Tok::Kw(Kw::False)
                | Tok::Kw(Kw::Not)
                | Tok::Kw(Kw::Print)
                | Tok::Kw(Kw::Readint)
        )
    }

    fn appexpr(&mut self) -> Result<ExprId, ParseError> {
        let start = self.pos();
        let mut head = self.atom()?;
        while self.starts_atom() {
            let arg = self.atom()?;
            head = self.b.app(head, arg);
            self.mark(head, start);
        }
        Ok(head)
    }

    fn atom(&mut self) -> Result<ExprId, ParseError> {
        let start = self.pos();
        match self.peek().clone() {
            Tok::LIdent(name) => {
                self.bump();
                match self.lookup(&name) {
                    Some(v) => {
                        let node = self.b.var(v);
                        Ok(self.mark(node, start))
                    }
                    None => self.err(format!("unbound variable `{name}`")),
                }
            }
            Tok::UIdent(name) => {
                self.bump();
                let con = {
                    let sym = self.b.intern(&name);
                    match self.b.data_env().con_by_name(sym) {
                        Some(c) => c,
                        None => return self.err(format!("unknown constructor `{name}`")),
                    }
                };
                let arity = self.b.data_env().arity(con);
                if arity == 0 {
                    let node = self.b.con(con, Vec::new());
                    return Ok(self.mark(node, start));
                }
                self.expect(&Tok::LParen)?;
                let mut args = vec![self.expr()?];
                while self.peek() == &Tok::Comma {
                    self.bump();
                    args.push(self.expr()?);
                }
                self.expect(&Tok::RParen)?;
                if args.len() == arity {
                    let node = self.b.con(con, args);
                    Ok(self.mark(node, start))
                } else if arity == 1 && args.len() > 1 {
                    // C(a, b) for a unary constructor takes one tuple.
                    let tuple = self.b.record(args);
                    self.mark(tuple, start);
                    let node = self.b.con(con, vec![tuple]);
                    Ok(self.mark(node, start))
                } else {
                    self.err(format!(
                        "constructor `{name}` has arity {arity}, got {} arguments",
                        args.len()
                    ))
                }
            }
            Tok::Int(n) => {
                self.bump();
                let node = self.b.int(n);
                Ok(self.mark(node, start))
            }
            Tok::Kw(Kw::True) => {
                self.bump();
                let node = self.b.bool(true);
                Ok(self.mark(node, start))
            }
            Tok::Kw(Kw::False) => {
                self.bump();
                let node = self.b.bool(false);
                Ok(self.mark(node, start))
            }
            Tok::Kw(Kw::Not) => {
                self.bump();
                let a = self.atom()?;
                let node = self.b.prim(PrimOp::Not, vec![a]);
                Ok(self.mark(node, start))
            }
            Tok::Kw(Kw::Print) => {
                self.bump();
                let a = self.atom()?;
                let node = self.b.prim(PrimOp::Print, vec![a]);
                Ok(self.mark(node, start))
            }
            Tok::Kw(Kw::Readint) => {
                self.bump();
                // Allow an optional `()` argument for readability.
                if self.peek() == &Tok::LParen && self.peek2() == &Tok::RParen {
                    self.bump();
                    self.bump();
                }
                let node = self.b.prim(PrimOp::ReadInt, Vec::new());
                Ok(self.mark(node, start))
            }
            Tok::Hash => {
                self.bump();
                let index = match self.peek().clone() {
                    Tok::Int(n) if n >= 1 => {
                        self.bump();
                        n as u32
                    }
                    other => {
                        return self.err(format!(
                            "expected positive field index after `#`, found {other}"
                        ))
                    }
                };
                let tuple = self.atom()?;
                let node = self.b.proj(index - 1, tuple);
                Ok(self.mark(node, start))
            }
            Tok::LParen => {
                self.bump();
                if self.peek() == &Tok::RParen {
                    self.bump();
                    let node = self.b.unit();
                    return Ok(self.mark(node, start));
                }
                let mut items = vec![self.expr()?];
                while self.peek() == &Tok::Comma {
                    self.bump();
                    items.push(self.expr()?);
                }
                self.expect(&Tok::RParen)?;
                if items.len() == 1 {
                    // A parenthesized expression keeps its own (inner) span.
                    Ok(items.pop().expect("one item"))
                } else {
                    let node = self.b.record(items);
                    Ok(self.mark(node, start))
                }
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ExprKind, Literal};

    fn parse_ok(src: &str) -> Program {
        match parse(src) {
            Ok(p) => p,
            Err(e) => panic!("parse of {src:?} failed: {e}"),
        }
    }

    #[test]
    fn parses_self_application() {
        let p = parse_ok("(fn x => x x) (fn y => y)");
        assert_eq!(p.label_count(), 2);
        assert!(matches!(p.kind(p.root()), ExprKind::App { .. }));
    }

    #[test]
    fn application_is_left_associative() {
        let p = parse_ok("fn f => fn x => f x x");
        // body of inner lam: ((f x) x)
        let ExprKind::Lam { body: outer, .. } = p.kind(p.root()) else {
            panic!()
        };
        let ExprKind::Lam { body, .. } = p.kind(*outer) else {
            panic!()
        };
        let ExprKind::App { func, .. } = p.kind(*body) else {
            panic!()
        };
        assert!(matches!(p.kind(*func), ExprKind::App { .. }));
    }

    #[test]
    fn parses_top_level_decls() {
        let p = parse_ok(
            "fun id x = x;\n\
             val y = id id;\n\
             y",
        );
        assert!(matches!(p.kind(p.root()), ExprKind::LetRec { .. }));
    }

    #[test]
    fn fun_curries() {
        let p = parse_ok("fun k x y = x; k");
        let ExprKind::LetRec { lambda, .. } = p.kind(p.root()) else {
            panic!()
        };
        let ExprKind::Lam { body, .. } = p.kind(*lambda) else {
            panic!()
        };
        assert!(matches!(p.kind(*body), ExprKind::Lam { .. }));
    }

    #[test]
    fn parses_let_blocks() {
        let p = parse_ok("let val x = 1 fun f y = y in f x end");
        assert!(matches!(p.kind(p.root()), ExprKind::Let { .. }));
    }

    #[test]
    fn parses_datatypes_and_case() {
        let p = parse_ok(
            "datatype intlist = Nil | Cons of int * intlist;\n\
             val xs = Cons(1, Cons(2, Nil));\n\
             case xs of Cons(h, t) => h | Nil => 0",
        );
        assert_eq!(p.data_env().data_count(), 1);
        assert_eq!(p.data_env().con_count(), 2);
    }

    #[test]
    fn rejects_unbound_variable() {
        assert!(parse("x").is_err());
    }

    #[test]
    fn rejects_unknown_constructor() {
        assert!(parse("Mystery(1)").is_err());
    }

    #[test]
    fn rejects_wrong_pattern_arity() {
        let src = "datatype t = C of int; case C(1) of C => 2";
        assert!(parse(src).is_err());
    }

    #[test]
    fn shadowing_resolves_to_innermost() {
        let p = parse_ok("fn x => fn x => x");
        let ExprKind::Lam {
            param: outer_param,
            body,
            ..
        } = p.kind(p.root())
        else {
            panic!()
        };
        let ExprKind::Lam {
            param: inner_param,
            body: inner_body,
            ..
        } = p.kind(*body)
        else {
            panic!()
        };
        assert_ne!(outer_param, inner_param);
        let ExprKind::Var(v) = p.kind(*inner_body) else {
            panic!()
        };
        assert_eq!(v, inner_param);
    }

    #[test]
    fn parses_arithmetic_with_precedence() {
        let p = parse_ok("1 + 2 * 3 < 10");
        let ExprKind::Prim {
            op: PrimOp::Lt,
            args,
        } = p.kind(p.root())
        else {
            panic!()
        };
        let ExprKind::Prim {
            op: PrimOp::Add,
            args: add_args,
        } = p.kind(args[0])
        else {
            panic!()
        };
        assert!(
            matches!(
                p.kind(add_args[1]),
                ExprKind::Prim {
                    op: PrimOp::Mul,
                    ..
                }
            ),
            "multiplication should bind tighter than addition"
        );
    }

    #[test]
    fn parses_records_and_projection() {
        let p = parse_ok("#1 (1, true, ())");
        let ExprKind::Proj { index, tuple } = p.kind(p.root()) else {
            panic!()
        };
        assert_eq!(*index, 0);
        let ExprKind::Record(items) = p.kind(*tuple) else {
            panic!()
        };
        assert_eq!(items.len(), 3);
    }

    #[test]
    fn parses_effects() {
        let p = parse_ok("print (readint + 1)");
        assert!(matches!(
            p.kind(p.root()),
            ExprKind::Prim {
                op: PrimOp::Print,
                ..
            }
        ));
    }

    #[test]
    fn val_rec_requires_fn() {
        assert!(parse("val rec f = 1; f").is_err());
        assert!(parse("val rec f = fn x => f x; f").is_ok());
    }

    #[test]
    fn empty_program_is_unit() {
        let p = parse_ok("");
        assert!(matches!(p.kind(p.root()), ExprKind::Lit(Literal::Unit)));
    }

    #[test]
    fn comments_are_ignored() {
        let p = parse_ok("(* a comment *) 42 -- trailing");
        assert!(matches!(p.kind(p.root()), ExprKind::Lit(Literal::Int(42))));
    }

    #[test]
    fn unary_constructor_with_tuple_sugar() {
        let p = parse_ok("datatype t = Boxed of (int * bool); Boxed(1, true)");
        let ExprKind::Con { args, .. } = p.kind(p.root()) else {
            panic!()
        };
        assert_eq!(args.len(), 1);
        assert!(matches!(p.kind(args[0]), ExprKind::Record(_)));
    }

    #[test]
    fn if_then_else() {
        let p = parse_ok("if 1 < 2 then 3 else 4");
        assert!(matches!(p.kind(p.root()), ExprKind::If { .. }));
    }

    #[test]
    fn reports_position() {
        let err = parse("fn x =>\n  y").unwrap_err();
        assert_eq!(err.pos.line, 2);
    }

    const EVEN_ODD: &str = "\
        fun even n = if n = 0 then true else odd (n - 1)\n\
        and odd n = if n = 0 then false else even (n - 1);\n\
        even 10";

    #[test]
    fn parses_mutual_recursion() {
        let p = parse_ok(EVEN_ODD);
        // The desugaring introduces the pack letrec at the root.
        assert!(matches!(p.kind(p.root()), ExprKind::LetRec { .. }));
    }

    #[test]
    fn mutual_recursion_evaluates() {
        use crate::eval::{eval, EvalOptions, Value};
        let p = parse_ok(EVEN_ODD);
        let out = eval(&p, EvalOptions::default()).unwrap();
        assert!(matches!(out.value, Value::Bool(true)));
        let p2 = parse_ok(&EVEN_ODD.replace("even 10", "odd 10"));
        let out2 = eval(&p2, EvalOptions::default()).unwrap();
        assert!(matches!(out2.value, Value::Bool(false)));
    }

    #[test]
    fn three_way_mutual_group() {
        use crate::eval::{eval, EvalOptions, Value};
        let src = "\
            fun a n = if n = 0 then 0 else b (n - 1)\n\
            and b n = if n = 0 then 1 else c (n - 1)\n\
            and c n = if n = 0 then 2 else a (n - 1);\n\
            a 7";
        let p = parse_ok(src);
        // a 7 → b 6 → c 5 → a 4 → b 3 → c 2 → a 1 → b 0 = 1.
        let out = eval(&p, EvalOptions::default()).unwrap();
        assert!(matches!(out.value, Value::Int(1)));
    }

    #[test]
    fn and_inside_nested_let_blocks_is_scoped_correctly() {
        use crate::eval::{eval, EvalOptions, Value};
        // The outer group's first body contains a nested single `fun`
        // inside a let-block; the scanner must not treat the nested
        // declarations as group members.
        let src = "\
            fun outer n =\n\
              let fun helper k = k * 2 in\n\
                if n = 0 then helper 1 else partner (n - 1)\n\
              end\n\
            and partner n = outer n + 1;\n\
            outer 2";
        let p = parse_ok(src);
        // outer 2 → partner 1 → outer 1 + 1 → (partner 0) + 1 → (outer 0 + 1) + 1
        //        → (helper 1 + 1) + 1 = 4.
        let out = eval(&p, EvalOptions::default()).unwrap();
        assert!(matches!(out.value, Value::Int(4)));
    }

    #[test]
    fn mutual_recursion_in_let_blocks() {
        use crate::eval::{eval, EvalOptions, Value};
        let src = "\
            let fun ping n = if n = 0 then 1 else pong (n - 1)\n\
                and pong n = if n = 0 then 2 else ping (n - 1)\n\
            in ping 3 end";
        let p = parse_ok(src);
        let out = eval(&p, EvalOptions::default()).unwrap();
        assert!(matches!(out.value, Value::Int(2)));
    }

    #[test]
    fn and_group_round_trips_through_pretty() {
        let p = parse_ok(EVEN_ODD);
        let printed = p.to_source();
        let q = parse(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        assert_eq!(p.size(), q.size());
    }

    #[test]
    fn and_requires_function_name() {
        assert!(parse("fun f x = x and 3 y = y; 0").is_err());
    }

    #[test]
    fn every_node_carries_a_span() {
        let srcs = [
            "fun fact n = if n = 0 then 1 else n * fact (n - 1); fact 5",
            EVEN_ODD,
            "let val p = (1, true) in #1 p end",
            "datatype shape = Circle of int | Square of int;\n\
             case Circle(3) of Circle(r) => r | Square(s) => s",
            "fun twice f x = f (f x); twice (fn y => y + 1) 0",
        ];
        for src in srcs {
            let p = parse_ok(src);
            for e in p.exprs() {
                assert!(
                    p.span(e).is_some(),
                    "expr {:?} ({:?}) has no span in {src:?}",
                    e,
                    p.kind(e)
                );
            }
        }
    }

    #[test]
    fn spans_report_source_positions() {
        // The root letrec spans the whole program; the `fact 5` application
        // starts at the `fact` occurrence (col 17) and ends after the `5`.
        let src = "fun fact n = n; fact 5";
        let p = parse_ok(src);
        let root_span = p.span(p.root()).expect("root span");
        assert_eq!((root_span.start.line, root_span.start.col), (1, 1));
        assert_eq!(root_span.end.col, 23);
        let app = p
            .exprs()
            .find(|&e| matches!(p.kind(e), ExprKind::App { .. }))
            .expect("app node");
        let span = p.span(app).expect("app span");
        assert_eq!((span.start.line, span.start.col), (1, 17));
        assert_eq!(span.end.col, 23);
    }

    #[test]
    fn desugared_nodes_inherit_binding_spans() {
        // Curried `fun` bindings desugar into nested lambdas that have no
        // direct token; they inherit the binding's overall span.
        let src = "fun add a b = a + b; add 1 2";
        let p = parse_ok(src);
        for e in p.exprs() {
            let span = p.span(e).unwrap();
            assert!(span.start.line >= 1 && span.start.col >= 1);
        }
    }
}
