//! Pretty-printing back to surface syntax.
//!
//! The output of [`pretty`] re-parses to a structurally identical program
//! (same tree shape, labels and binder structure; ids may be renumbered),
//! which the round-trip tests rely on. Binder names are disambiguated with
//! a numeric suffix when a source name is reused.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::ast::{ExprId, ExprKind, Literal, PrimOp, Program, TyExpr, VarId};

/// Precedence levels, loosest (0) to tightest (5 = atom).
const LVL_EXPR: u8 = 0;
const LVL_CMP: u8 = 1;
const LVL_ADD: u8 = 2;
const LVL_MUL: u8 = 3;
const LVL_APP: u8 = 4;
const LVL_ATOM: u8 = 5;

/// Renders `program` as parseable surface syntax, including its `datatype`
/// declarations.
pub fn pretty(program: &Program) -> String {
    let names = binder_names(program);
    let mut out = String::new();
    let env = program.data_env();
    for d in env.datas() {
        let info = env.data(d);
        write!(out, "datatype {} = ", program.interner().resolve(info.name)).unwrap();
        for (i, &c) in info.cons.iter().enumerate() {
            if i > 0 {
                out.push_str(" | ");
            }
            let con = env.con(c);
            out.push_str(program.interner().resolve(con.name));
            if !con.arg_tys.is_empty() {
                out.push_str(" of ");
                for (j, t) in con.arg_tys.iter().enumerate() {
                    if j > 0 {
                        out.push_str(" * ");
                    }
                    ty_expr(program, t, &mut out);
                }
            }
        }
        out.push_str(";\n");
    }
    let mut p = Printer {
        program,
        names: &names,
        out,
    };
    p.expr(program.root(), LVL_EXPR);
    p.out
}

fn ty_expr(program: &Program, t: &TyExpr, out: &mut String) {
    match t {
        TyExpr::Int => out.push_str("int"),
        TyExpr::Bool => out.push_str("bool"),
        TyExpr::Unit => out.push_str("unit"),
        TyExpr::Data(d) => {
            out.push_str(program.interner().resolve(program.data_env().data(*d).name))
        }
        TyExpr::Arrow(a, b) => {
            out.push('(');
            ty_expr(program, a, out);
            out.push_str(" -> ");
            ty_expr(program, b, out);
            out.push(')');
        }
        TyExpr::Tuple(parts) => {
            out.push('(');
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    out.push_str(" * ");
                }
                ty_expr(program, p, out);
            }
            out.push(')');
        }
    }
}

/// Chooses a printable, collision-free name for every binder.
fn binder_names(program: &Program) -> Vec<String> {
    const KEYWORDS: &[&str] = &[
        "fn", "fun", "val", "rec", "let", "in", "end", "if", "then", "else", "case", "of",
        "datatype", "true", "false", "not", "print", "readint", "div", "and", "int", "bool",
        "unit",
    ];
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for v in program.vars() {
        *counts.entry(program.var_name(v)).or_default() += 1;
    }
    program
        .vars()
        .map(|v| {
            let raw = program.var_name(v);
            let base: String = if raw.is_empty()
                || raw.starts_with(|c: char| !c.is_ascii_lowercase())
                || KEYWORDS.contains(&raw)
                || !raw
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '\'')
            {
                format!("v_{raw}")
                    .chars()
                    .filter(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect()
            } else {
                raw.to_owned()
            };
            if counts.get(raw).copied().unwrap_or(0) > 1 || base != raw {
                format!("{base}_{}", v.index())
            } else {
                base
            }
        })
        .collect()
}

struct Printer<'a> {
    program: &'a Program,
    names: &'a [String],
    out: String,
}

impl Printer<'_> {
    fn name(&self, v: VarId) -> &str {
        &self.names[v.index()]
    }

    fn paren(&mut self, needed: bool, f: impl FnOnce(&mut Self)) {
        if needed {
            self.out.push('(');
        }
        f(self);
        if needed {
            self.out.push(')');
        }
    }

    fn expr(&mut self, id: ExprId, min_lvl: u8) {
        let program = self.program;
        match program.kind(id) {
            ExprKind::Var(v) => {
                let name = self.name(*v).to_owned();
                self.out.push_str(&name);
            }
            ExprKind::Lit(Literal::Int(n)) => {
                if *n < 0 {
                    // Negative literals need parens under application/ops.
                    self.paren(min_lvl > LVL_ADD, |p| {
                        write!(p.out, "0 - {}", n.unsigned_abs()).unwrap()
                    });
                } else {
                    write!(self.out, "{n}").unwrap();
                }
            }
            ExprKind::Lit(Literal::Bool(b)) => write!(self.out, "{b}").unwrap(),
            ExprKind::Lit(Literal::Unit) => self.out.push_str("()"),
            ExprKind::Lam { param, body, .. } => {
                let param = *param;
                let body = *body;
                self.paren(min_lvl > LVL_EXPR, |p| {
                    let name = p.name(param).to_owned();
                    write!(p.out, "fn {name} => ").unwrap();
                    p.expr(body, LVL_EXPR);
                });
            }
            ExprKind::App { func, arg } => {
                let (func, arg) = (*func, *arg);
                self.paren(min_lvl > LVL_APP, |p| {
                    p.expr(func, LVL_APP);
                    p.out.push(' ');
                    p.expr(arg, LVL_ATOM);
                });
            }
            ExprKind::Let { binder, rhs, body } => {
                let (binder, rhs, body) = (*binder, *rhs, *body);
                self.paren(min_lvl > LVL_EXPR, |p| {
                    let name = p.name(binder).to_owned();
                    write!(p.out, "let val {name} = ").unwrap();
                    p.expr(rhs, LVL_EXPR);
                    p.out.push_str(" in ");
                    p.expr(body, LVL_EXPR);
                    p.out.push_str(" end");
                });
            }
            ExprKind::LetRec {
                binder,
                lambda,
                body,
            } => {
                let (binder, lambda, body) = (*binder, *lambda, *body);
                self.paren(min_lvl > LVL_EXPR, |p| {
                    let name = p.name(binder).to_owned();
                    write!(p.out, "let val rec {name} = ").unwrap();
                    p.expr(lambda, LVL_EXPR);
                    p.out.push_str(" in ");
                    p.expr(body, LVL_EXPR);
                    p.out.push_str(" end");
                });
            }
            ExprKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let (c, t, e) = (*cond, *then_branch, *else_branch);
                self.paren(min_lvl > LVL_EXPR, |p| {
                    p.out.push_str("if ");
                    p.expr(c, LVL_EXPR);
                    p.out.push_str(" then ");
                    p.expr(t, LVL_EXPR);
                    p.out.push_str(" else ");
                    p.expr(e, LVL_EXPR);
                });
            }
            ExprKind::Record(items) => {
                let items: Vec<ExprId> = items.to_vec();
                self.out.push('(');
                for (i, e) in items.into_iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(e, LVL_EXPR);
                }
                self.out.push(')');
            }
            ExprKind::Proj { index, tuple } => {
                let (index, tuple) = (*index, *tuple);
                self.paren(min_lvl > LVL_APP, |p| {
                    write!(p.out, "#{} ", index + 1).unwrap();
                    p.expr(tuple, LVL_ATOM);
                });
            }
            ExprKind::Con { con, args } => {
                let name = self
                    .program
                    .interner()
                    .resolve(self.program.data_env().con(*con).name)
                    .to_owned();
                let args: Vec<ExprId> = args.to_vec();
                self.out.push_str(&name);
                if !args.is_empty() {
                    self.out.push('(');
                    for (i, a) in args.into_iter().enumerate() {
                        if i > 0 {
                            self.out.push_str(", ");
                        }
                        self.expr(a, LVL_EXPR);
                    }
                    self.out.push(')');
                }
            }
            ExprKind::Case {
                scrutinee,
                arms,
                default,
            } => {
                let scrutinee = *scrutinee;
                let arms = arms.clone();
                let default = *default;
                self.paren(min_lvl > LVL_EXPR, |p| {
                    p.out.push_str("case ");
                    p.expr(scrutinee, LVL_EXPR);
                    p.out.push_str(" of ");
                    for (i, arm) in arms.iter().enumerate() {
                        if i > 0 {
                            p.out.push_str(" | ");
                        }
                        let name = p
                            .program
                            .interner()
                            .resolve(p.program.data_env().con(arm.con).name)
                            .to_owned();
                        p.out.push_str(&name);
                        if !arm.binders.is_empty() {
                            p.out.push('(');
                            for (j, &b) in arm.binders.iter().enumerate() {
                                if j > 0 {
                                    p.out.push_str(", ");
                                }
                                let n = p.name(b).to_owned();
                                p.out.push_str(&n);
                            }
                            p.out.push(')');
                        }
                        p.out.push_str(" => ");
                        // Arm bodies that are themselves case/fn would
                        // swallow following `|`; parenthesize defensively.
                        p.expr(arm.body, LVL_CMP);
                    }
                    if let Some(d) = default {
                        if !arms.is_empty() {
                            p.out.push_str(" | ");
                        }
                        p.out.push_str("_ => ");
                        p.expr(d, LVL_EXPR);
                    }
                });
            }
            ExprKind::Prim { op, args } => {
                let op = *op;
                let args: Vec<ExprId> = args.to_vec();
                match op {
                    PrimOp::Add | PrimOp::Sub => self.paren(min_lvl > LVL_ADD, |p| {
                        p.expr(args[0], LVL_ADD);
                        write!(p.out, " {} ", op.name()).unwrap();
                        p.expr(args[1], LVL_MUL);
                    }),
                    PrimOp::Mul | PrimOp::Div => self.paren(min_lvl > LVL_MUL, |p| {
                        p.expr(args[0], LVL_MUL);
                        write!(p.out, " {} ", op.name()).unwrap();
                        p.expr(args[1], LVL_APP);
                    }),
                    PrimOp::Lt | PrimOp::Leq | PrimOp::IntEq => {
                        self.paren(min_lvl > LVL_CMP, |p| {
                            p.expr(args[0], LVL_ADD);
                            write!(p.out, " {} ", op.name()).unwrap();
                            p.expr(args[1], LVL_ADD);
                        })
                    }
                    PrimOp::Not | PrimOp::Print => self.paren(min_lvl > LVL_APP, |p| {
                        write!(p.out, "{} ", op.name()).unwrap();
                        p.expr(args[0], LVL_ATOM);
                    }),
                    PrimOp::ReadInt => self.out.push_str("readint"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Structural equality of two programs up to id renumbering: compare
    /// pretty-printed normal forms after one round trip.
    fn round_trip(src: &str) {
        let p1 = parse(src).unwrap_or_else(|e| panic!("{e}"));
        let printed1 = pretty(&p1);
        let p2 = parse(&printed1).unwrap_or_else(|e| panic!("re-parse of {printed1:?}: {e}"));
        let printed2 = pretty(&p2);
        assert_eq!(
            printed1, printed2,
            "pretty is not a normal form for {src:?}"
        );
        assert_eq!(p1.size(), p2.size(), "round trip changed size for {src:?}");
        assert_eq!(p1.label_count(), p2.label_count());
    }

    #[test]
    fn round_trips_lambda_core() {
        round_trip("(fn x => x x) (fn y => y)");
        round_trip("fn f => fn x => f (f x)");
        round_trip("let val x = 1 in x + x end");
    }

    #[test]
    fn round_trips_arith_precedence() {
        round_trip("1 + 2 * 3 - 4 div 2");
        round_trip("(1 + 2) * 3");
        round_trip("1 < 2");
        round_trip("not (1 = 2)");
    }

    #[test]
    fn round_trips_declarations() {
        round_trip("fun id x = x; val y = id id; y");
        round_trip("fun k x y = x; k 1 2");
        round_trip("val rec loop = fn x => loop x; loop");
    }

    #[test]
    fn round_trips_datatypes() {
        round_trip(
            "datatype intlist = Nil | Cons of int * intlist;\n\
             fun sum xs = case xs of Cons(h, t) => h + sum t | Nil => 0;\n\
             sum (Cons(1, Cons(2, Nil)))",
        );
    }

    #[test]
    fn round_trips_records_and_effects() {
        round_trip("#2 (1, (2, 3))");
        round_trip("print (readint + 1)");
        round_trip("(fn p => #1 p) (1, true)");
    }

    #[test]
    fn round_trips_shadowing() {
        round_trip("fn x => fn x => x x");
        round_trip("let val x = 1 in let val x = 2 in x end end");
    }

    #[test]
    fn round_trips_if() {
        round_trip("if true then 1 else 2");
        round_trip("(if true then fn x => x else fn y => y) 3");
    }
}
