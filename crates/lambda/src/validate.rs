//! Structural validation of [`Program`]s.
//!
//! Every [`Program`] that reaches an analysis satisfies the invariants
//! checked here; the parser and builder both funnel through
//! [`validate`]. The invariants are exactly the conventions the paper
//! assumes: programs are closed terms, bound variables are distinct, each
//! abstraction has a unique label, and constructors/primitives are
//! saturated.

use std::error::Error;
use std::fmt;

use crate::ast::{ExprId, ExprKind, Program, VarId};

/// A structural invariant violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidateError {
    /// A node is referenced as a child by more than one parent, or the root
    /// is referenced as a child: the arena is not a tree.
    NotATree(ExprId),
    /// A node in the arena is unreachable from the root.
    Orphan(ExprId),
    /// A variable occurrence is not in the scope of its binder.
    Unbound {
        /// The out-of-scope occurrence.
        occurrence: ExprId,
        /// The referenced binder.
        var: VarId,
        /// Source name of the binder.
        name: String,
    },
    /// A binder is introduced by more than one binding form.
    Rebound {
        /// The doubly-introduced binder.
        var: VarId,
        /// Source name of the binder.
        name: String,
    },
    /// A `letrec` right-hand side is not an abstraction.
    LetRecNotLambda(ExprId),
    /// An abstraction label points at the wrong expression.
    LabelMismatch(ExprId),
    /// A case expression mixes constructors from different datatypes, or
    /// repeats a constructor.
    MalformedCase(ExprId),
    /// A constructor or case arm has the wrong number of arguments/binders.
    ArityMismatch(ExprId),
    /// A record has fewer than two fields.
    SmallRecord(ExprId),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::NotATree(e) => {
                write!(
                    f,
                    "expression {e:?} has multiple parents (arena is not a tree)"
                )
            }
            ValidateError::Orphan(e) => write!(f, "expression {e:?} is unreachable from the root"),
            ValidateError::Unbound {
                occurrence, name, ..
            } => {
                write!(f, "variable `{name}` at {occurrence:?} is not in scope")
            }
            ValidateError::Rebound { name, .. } => {
                write!(f, "binder `{name}` is introduced more than once")
            }
            ValidateError::LetRecNotLambda(e) => {
                write!(f, "letrec right-hand side at {e:?} is not an abstraction")
            }
            ValidateError::LabelMismatch(e) => {
                write!(f, "label table does not match abstraction at {e:?}")
            }
            ValidateError::MalformedCase(e) => {
                write!(f, "case at {e:?} mixes datatypes or repeats a constructor")
            }
            ValidateError::ArityMismatch(e) => {
                write!(f, "arity mismatch at {e:?}")
            }
            ValidateError::SmallRecord(e) => {
                write!(f, "record at {e:?} has fewer than two fields")
            }
        }
    }
}

impl Error for ValidateError {}

/// Checks all structural invariants of `program`.
pub fn validate(program: &Program) -> Result<(), ValidateError> {
    check_tree(program)?;
    check_scopes(program)?;
    check_labels(program)?;
    check_shapes(program)?;
    Ok(())
}

/// Validates the *new trees* of a forest (incremental-session) program:
/// each given root's subtree must be a proper tree, disjoint from the
/// others; scoping is checked with the session binders in `ambient`
/// treated as bound; local shapes are checked for the subtree nodes.
/// Nodes outside the given subtrees are not inspected (they were validated
/// when their own fragment was accepted).
pub fn validate_forest(
    program: &Program,
    roots: &[ExprId],
    ambient: &[VarId],
) -> Result<(), ValidateError> {
    // Tree-shape: single parent within the union of subtrees; disjoint.
    let mut seen = vec![false; program.size()];
    for &root in roots {
        if seen[root.index()] {
            return Err(ValidateError::NotATree(root));
        }
        let mut stack = vec![root];
        seen[root.index()] = true;
        while let Some(e) = stack.pop() {
            let mut dup = None;
            program.for_each_child(e, |c| {
                if seen[c.index()] {
                    dup = Some(c);
                } else {
                    seen[c.index()] = true;
                    stack.push(c);
                }
            });
            if let Some(c) = dup {
                return Err(ValidateError::NotATree(c));
            }
        }
    }
    // Scoping with ambient binders, shared "introduced once" across roots.
    let mut in_scope = vec![false; program.var_count()];
    let mut ever_bound = vec![false; program.var_count()];
    for &v in ambient {
        in_scope[v.index()] = true;
        ever_bound[v.index()] = true;
    }
    for &root in roots {
        scope_walk(program, root, &mut in_scope, &mut ever_bound)?;
    }
    // Local shapes and label consistency for the new nodes.
    for e in program.exprs().filter(|e| seen[e.index()]) {
        check_shape_at(program, e)?;
        if let crate::ast::ExprKind::Lam { label, .. } = program.kind(e) {
            if program.lam_of_label(*label) != e {
                return Err(ValidateError::LabelMismatch(e));
            }
        }
    }
    Ok(())
}

/// Each node has exactly one parent (except the root, which has none), and
/// every node is reachable from the root.
fn check_tree(program: &Program) -> Result<(), ValidateError> {
    let n = program.size();
    let mut parents = vec![0u8; n];
    for id in program.exprs() {
        program.for_each_child(id, |c| {
            parents[c.index()] = parents[c.index()].saturating_add(1);
        });
    }
    if parents[program.root().index()] != 0 {
        return Err(ValidateError::NotATree(program.root()));
    }
    for id in program.exprs() {
        if id != program.root() && parents[id.index()] == 0 {
            return Err(ValidateError::Orphan(id));
        }
        if parents[id.index()] > 1 {
            return Err(ValidateError::NotATree(id));
        }
    }
    Ok(())
}

/// Scope check: every variable occurrence is under its binder, and every
/// binder is introduced at most once.
fn check_scopes(program: &Program) -> Result<(), ValidateError> {
    let mut in_scope = vec![false; program.var_count()];
    let mut ever_bound = vec![false; program.var_count()];
    scope_walk(program, program.root(), &mut in_scope, &mut ever_bound)
}

fn bind_var(
    program: &Program,
    var: VarId,
    in_scope: &mut [bool],
    ever_bound: &mut [bool],
) -> Result<(), ValidateError> {
    if ever_bound[var.index()] {
        return Err(ValidateError::Rebound {
            var,
            name: program.var_name(var).to_owned(),
        });
    }
    ever_bound[var.index()] = true;
    in_scope[var.index()] = true;
    Ok(())
}

fn scope_walk(
    program: &Program,
    id: ExprId,
    in_scope: &mut Vec<bool>,
    ever_bound: &mut Vec<bool>,
) -> Result<(), ValidateError> {
    match program.kind(id) {
        ExprKind::Var(v) => {
            if !in_scope[v.index()] {
                return Err(ValidateError::Unbound {
                    occurrence: id,
                    var: *v,
                    name: program.var_name(*v).to_owned(),
                });
            }
        }
        ExprKind::Lam { param, body, .. } => {
            bind_var(program, *param, in_scope, ever_bound)?;
            scope_walk(program, *body, in_scope, ever_bound)?;
            in_scope[param.index()] = false;
        }
        ExprKind::Let { binder, rhs, body } => {
            scope_walk(program, *rhs, in_scope, ever_bound)?;
            bind_var(program, *binder, in_scope, ever_bound)?;
            scope_walk(program, *body, in_scope, ever_bound)?;
            in_scope[binder.index()] = false;
        }
        ExprKind::LetRec {
            binder,
            lambda,
            body,
        } => {
            bind_var(program, *binder, in_scope, ever_bound)?;
            scope_walk(program, *lambda, in_scope, ever_bound)?;
            scope_walk(program, *body, in_scope, ever_bound)?;
            in_scope[binder.index()] = false;
        }
        ExprKind::Case {
            scrutinee,
            arms,
            default,
        } => {
            scope_walk(program, *scrutinee, in_scope, ever_bound)?;
            for arm in arms.iter() {
                for &b in arm.binders.iter() {
                    bind_var(program, b, in_scope, ever_bound)?;
                }
                scope_walk(program, arm.body, in_scope, ever_bound)?;
                for &b in arm.binders.iter() {
                    in_scope[b.index()] = false;
                }
            }
            if let Some(d) = default {
                scope_walk(program, *d, in_scope, ever_bound)?;
            }
        }
        _ => {
            let mut children = Vec::new();
            program.for_each_child(id, |c| children.push(c));
            for c in children {
                scope_walk(program, c, in_scope, ever_bound)?;
            }
        }
    }
    Ok(())
}

/// Label table consistency: `labels[l]` is a `Lam` carrying label `l`.
fn check_labels(program: &Program) -> Result<(), ValidateError> {
    for l in program.all_labels() {
        let lam = program.lam_of_label(l);
        match program.kind(lam) {
            ExprKind::Lam { label, .. } if *label == l => {}
            _ => return Err(ValidateError::LabelMismatch(lam)),
        }
    }
    // Every lam appears in the table under its own label.
    for id in program.exprs() {
        if let ExprKind::Lam { label, .. } = program.kind(id) {
            if program.lam_of_label(*label) != id {
                return Err(ValidateError::LabelMismatch(id));
            }
        }
    }
    Ok(())
}

/// Local shape checks: letrec binds lambdas, cases are well-formed,
/// constructors/prims saturated, records non-trivial.
fn check_shapes(program: &Program) -> Result<(), ValidateError> {
    for id in program.exprs() {
        check_shape_at(program, id)?;
    }
    Ok(())
}

/// The shape check for one expression.
fn check_shape_at(program: &Program, id: ExprId) -> Result<(), ValidateError> {
    let env = program.data_env();
    match program.kind(id) {
        ExprKind::LetRec { lambda, .. }
            if !matches!(program.kind(*lambda), ExprKind::Lam { .. }) =>
        {
            return Err(ValidateError::LetRecNotLambda(id));
        }
        ExprKind::Con { con, args } if args.len() != env.arity(*con) => {
            return Err(ValidateError::ArityMismatch(id));
        }
        ExprKind::Prim { op, args } if args.len() != op.arity() => {
            return Err(ValidateError::ArityMismatch(id));
        }
        ExprKind::Record(items) if items.len() < 2 => {
            return Err(ValidateError::SmallRecord(id));
        }
        ExprKind::Case { arms, default, .. } => {
            if arms.is_empty() && default.is_none() {
                return Err(ValidateError::MalformedCase(id));
            }
            let mut seen = Vec::new();
            let mut datatype = None;
            for arm in arms.iter() {
                if arm.binders.len() != env.arity(arm.con) {
                    return Err(ValidateError::ArityMismatch(id));
                }
                if seen.contains(&arm.con) {
                    return Err(ValidateError::MalformedCase(id));
                }
                seen.push(arm.con);
                let d = env.con(arm.con).data;
                match datatype {
                    None => datatype = Some(d),
                    Some(prev) if prev == d => {}
                    Some(_) => return Err(ValidateError::MalformedCase(id)),
                }
            }
        }
        _ => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn validates_well_formed_case() {
        let mut b = ProgramBuilder::new();
        let list = b.declare_data("intlist");
        let nil = b.declare_con(list, "Nil", vec![]);
        let cons = b.declare_con(
            list,
            "Cons",
            vec![crate::ast::TyExpr::Int, crate::ast::TyExpr::Data(list)],
        );
        let n = b.con(nil, vec![]);
        let h = b.fresh_var("h");
        let t = b.fresh_var("t");
        let hv = b.var(h);
        let zero = b.int(0);
        let root = b.case(n, vec![(cons, vec![h, t], hv)], Some(zero));
        assert!(b.finish(root).is_ok());
    }

    #[test]
    fn rejects_duplicate_case_arm() {
        let mut b = ProgramBuilder::new();
        let d = b.declare_data("t");
        let c = b.declare_con(d, "C", vec![]);
        let scrut = b.con(c, vec![]);
        let one = b.int(1);
        let two = b.int(2);
        let root = b.case(scrut, vec![(c, vec![], one), (c, vec![], two)], None);
        assert_eq!(
            b.finish(root).unwrap_err(),
            ValidateError::MalformedCase(root)
        );
    }

    #[test]
    fn rejects_cross_datatype_case() {
        let mut b = ProgramBuilder::new();
        let d1 = b.declare_data("t1");
        let c1 = b.declare_con(d1, "C1", vec![]);
        let d2 = b.declare_data("t2");
        let c2 = b.declare_con(d2, "C2", vec![]);
        let scrut = b.con(c1, vec![]);
        let one = b.int(1);
        let two = b.int(2);
        let root = b.case(scrut, vec![(c1, vec![], one), (c2, vec![], two)], None);
        assert!(matches!(
            b.finish(root),
            Err(ValidateError::MalformedCase(_))
        ));
    }

    #[test]
    fn rejects_var_escaping_scope() {
        let mut b = ProgramBuilder::new();
        let x = b.fresh_var("x");
        let xv1 = b.var(x);
        let lam = b.lam(x, xv1);
        let xv2 = b.var(x); // x used outside the lambda
        let root = b.app(lam, xv2);
        assert!(matches!(b.finish(root), Err(ValidateError::Unbound { .. })));
    }

    #[test]
    fn rejects_rebound_binder() {
        let mut b = ProgramBuilder::new();
        let x = b.fresh_var("x");
        let xv = b.var(x);
        let inner = b.lam(x, xv); // binds x
        let outer = b.lam(x, inner); // binds x again
        assert!(matches!(
            b.finish(outer),
            Err(ValidateError::Rebound { .. })
        ));
    }
}
