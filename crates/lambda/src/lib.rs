//! The input language for subtransitive control-flow analysis: a labelled
//! lambda calculus extended to a core-ML subset.
//!
//! This crate is the front end shared by every analysis in the workspace
//! (the standard cubic CFA, set-based analysis, unification CFA, and the
//! paper's linear-time subtransitive algorithm). It provides:
//!
//! - [`ast`] — the arena-based AST. Every syntactic occurrence has its own
//!   [`ast::ExprId`] and every abstraction a unique [`ast::Label`], exactly
//!   the conventions of Heintze & McAllester (PLDI 1997).
//! - [`parser`] / [`lexer`] — an ML-flavoured surface syntax.
//! - [`builder`] — programmatic construction (used by workload generators).
//! - [`pretty`] — printing back to parseable surface syntax.
//! - [`eval`] — a call-by-value evaluator that records which closures were
//!   actually applied where, the ground truth for CFA soundness tests.
//! - [`session`] — incremental (REPL-style) program growth, backing the
//!   incremental analysis in `stcfa-core`.
//! - [`validate`] — the structural invariants every analysis may assume.
//!
//! # Example
//!
//! ```
//! use stcfa_lambda::{Program, eval::{eval, EvalOptions, Value}};
//!
//! let p = Program::parse("fun fact n = if n = 0 then 1 else n * fact (n - 1); fact 5")
//!     .expect("parses");
//! let out = eval(&p, EvalOptions::default()).expect("terminates");
//! assert!(matches!(out.value, Value::Int(120)));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod builder;
pub mod eval;
pub mod intern;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod session;
pub mod validate;

pub use ast::{
    CaseArm, ConId, DataEnv, DataId, ExprId, ExprKind, Label, Literal, PrimOp, Program, TyExpr,
    VarId,
};
pub use builder::ProgramBuilder;
pub use lexer::{Pos, Span};
pub use parser::{parse, ParseError};
