//! A call-by-value evaluator with label-preserving closures.
//!
//! The paper defines control-flow soundness against arbitrary-order
//! β-reduction; call-by-value executions are a subset of those reductions,
//! so any dynamic behaviour observed here must be predicted by a sound CFA.
//! The evaluator therefore records an [`EvalTrace`]: for every application
//! `(e₁ e₂)` that actually fires, the label of the applied closure — the
//! ground truth that `label ∈ L(e₁)` for property tests.

use std::error::Error;
use std::fmt;
use std::rc::Rc;

use crate::ast::{ConId, ExprId, ExprKind, Label, Literal, PrimOp, Program, VarId};

/// A runtime value.
#[derive(Clone, Debug)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Unit.
    Unit,
    /// A function closure; carries the label of its abstraction.
    Closure(Rc<Closure>),
    /// A record (tuple) value.
    Record(Rc<[Value]>),
    /// A constructed datatype value.
    Con {
        /// The constructor.
        con: ConId,
        /// Constructor arguments.
        args: Rc<[Value]>,
    },
}

impl Value {
    /// The abstraction label, if this is a closure.
    pub fn label(&self) -> Option<Label> {
        match self {
            Value::Closure(c) => Some(c.label),
            _ => None,
        }
    }
}

/// A function closure.
#[derive(Debug)]
pub struct Closure {
    /// Label of the abstraction this closure came from.
    pub label: Label,
    /// Parameter binder.
    pub param: VarId,
    /// Body expression.
    pub body: ExprId,
    env: Env,
}

/// Persistent environment: a linked list of bindings. Recursive bindings
/// are represented lazily so no interior mutability (or `Rc` cycle) is
/// needed.
#[derive(Clone, Debug, Default)]
struct Env(Option<Rc<EnvNode>>);

#[derive(Debug)]
enum EnvNode {
    Bind {
        var: VarId,
        value: Value,
        next: Env,
    },
    /// `letrec f = λ…`: looking up `f` re-creates the closure with this
    /// same environment, so the recursion is tied lazily.
    Rec {
        var: VarId,
        label: Label,
        param: VarId,
        body: ExprId,
        next: Env,
    },
}

impl Env {
    fn bind(&self, var: VarId, value: Value) -> Env {
        Env(Some(Rc::new(EnvNode::Bind {
            var,
            value,
            next: self.clone(),
        })))
    }

    fn bind_rec(&self, var: VarId, label: Label, param: VarId, body: ExprId) -> Env {
        Env(Some(Rc::new(EnvNode::Rec {
            var,
            label,
            param,
            body,
            next: self.clone(),
        })))
    }

    fn lookup(&self, var: VarId) -> Option<Value> {
        let mut cur = self;
        loop {
            match cur.0.as_deref()? {
                EnvNode::Bind {
                    var: v,
                    value,
                    next,
                } => {
                    if *v == var {
                        return Some(value.clone());
                    }
                    cur = next;
                }
                EnvNode::Rec {
                    var: v,
                    label,
                    param,
                    body,
                    next,
                } => {
                    if *v == var {
                        return Some(Value::Closure(Rc::new(Closure {
                            label: *label,
                            param: *param,
                            body: *body,
                            env: cur.clone(),
                        })));
                    }
                    cur = next;
                }
            }
        }
    }
}

/// Why evaluation stopped abnormally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// The step budget was exhausted (the program may diverge).
    OutOfFuel,
    /// The recursion depth limit was exceeded (the program may diverge,
    /// or simply nest deeper than the host stack can afford).
    DepthExceeded(usize),
    /// A dynamic type error (applying a non-function, projecting a
    /// non-record, …). Well-typed programs never hit this.
    TypeError {
        /// Where it happened.
        at: ExprId,
        /// What went wrong.
        message: String,
    },
    /// Integer division by zero.
    DivByZero(ExprId),
    /// A `case` with no matching arm and no wildcard.
    MatchFailure(ExprId),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::OutOfFuel => write!(f, "evaluation ran out of fuel"),
            EvalError::DepthExceeded(limit) => {
                write!(
                    f,
                    "evaluation exceeded the recursion depth limit of {limit}"
                )
            }
            EvalError::TypeError { at, message } => {
                write!(f, "dynamic type error at {at:?}: {message}")
            }
            EvalError::DivByZero(at) => write!(f, "division by zero at {at:?}"),
            EvalError::MatchFailure(at) => write!(f, "no matching case arm at {at:?}"),
        }
    }
}

impl Error for EvalError {}

/// What actually happened during one evaluation, for checking analyses
/// against ground truth.
#[derive(Clone, Debug, Default)]
pub struct EvalTrace {
    /// For each application that fired: the operator occurrence `e₁` of the
    /// application `(e₁ e₂)` and the label of the closure that was applied.
    pub calls: Vec<(ExprId, Label)>,
    /// Expression occurrences at which a side effect executed.
    pub effects: Vec<ExprId>,
    /// Every expression occurrence that was evaluated at least once, in
    /// id order — ground truth for liveness/dead-code analyses.
    pub evaluated: Vec<ExprId>,
}

/// Evaluation knobs.
#[derive(Clone, Debug)]
pub struct EvalOptions {
    /// Maximum number of evaluation steps before [`EvalError::OutOfFuel`].
    pub fuel: u64,
    /// Values returned by successive `readint`s (then zeros).
    pub inputs: Vec<i64>,
    /// Maximum recursion depth of the interpreter before
    /// [`EvalError::DepthExceeded`] (`None` = unlimited). The evaluator
    /// recurses on the host stack, so harnesses that run untrusted or
    /// property-generated programs should set a bound well under the
    /// platform stack budget.
    pub max_depth: Option<usize>,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            fuel: 100_000,
            inputs: Vec::new(),
            max_depth: None,
        }
    }
}

/// Result of a successful evaluation.
#[derive(Clone, Debug)]
pub struct EvalOutcome {
    /// Final value of the root expression.
    pub value: Value,
    /// Integers printed, in order.
    pub outputs: Vec<i64>,
    /// Ground-truth call/effect trace.
    pub trace: EvalTrace,
}

struct Machine<'a> {
    program: &'a Program,
    fuel: u64,
    max_depth: usize,
    inputs: std::vec::IntoIter<i64>,
    outputs: Vec<i64>,
    trace: EvalTrace,
    evaluated: Vec<bool>,
}

/// Evaluates `program` under call-by-value with the given options.
pub fn eval(program: &Program, options: EvalOptions) -> Result<EvalOutcome, EvalError> {
    let mut m = Machine {
        program,
        fuel: options.fuel,
        max_depth: options.max_depth.unwrap_or(usize::MAX),
        inputs: options.inputs.into_iter(),
        outputs: Vec::new(),
        trace: EvalTrace::default(),
        evaluated: vec![false; program.size()],
    };
    let value = m.eval(program.root(), &Env::default(), 0)?;
    m.trace.evaluated = m
        .evaluated
        .iter()
        .enumerate()
        .filter(|&(_i, &v)| v)
        .map(|(i, &_v)| ExprId::from_index(i))
        .collect();
    Ok(EvalOutcome {
        value,
        outputs: m.outputs,
        trace: m.trace,
    })
}

impl Machine<'_> {
    fn tick(&mut self) -> Result<(), EvalError> {
        if self.fuel == 0 {
            return Err(EvalError::OutOfFuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    fn type_error<T>(&self, at: ExprId, message: impl Into<String>) -> Result<T, EvalError> {
        Err(EvalError::TypeError {
            at,
            message: message.into(),
        })
    }

    fn eval(&mut self, id: ExprId, env: &Env, depth: usize) -> Result<Value, EvalError> {
        self.tick()?;
        if depth >= self.max_depth {
            return Err(EvalError::DepthExceeded(self.max_depth));
        }
        self.evaluated[id.index()] = true;
        match self.program.kind(id) {
            ExprKind::Var(v) => match env.lookup(*v) {
                Some(val) => Ok(val),
                None => self.type_error(id, "unbound variable at runtime"),
            },
            ExprKind::Lit(Literal::Int(n)) => Ok(Value::Int(*n)),
            ExprKind::Lit(Literal::Bool(b)) => Ok(Value::Bool(*b)),
            ExprKind::Lit(Literal::Unit) => Ok(Value::Unit),
            ExprKind::Lam { label, param, body } => Ok(Value::Closure(Rc::new(Closure {
                label: *label,
                param: *param,
                body: *body,
                env: env.clone(),
            }))),
            ExprKind::App { func, arg } => {
                let fv = self.eval(*func, env, depth + 1)?;
                let av = self.eval(*arg, env, depth + 1)?;
                match fv {
                    Value::Closure(c) => {
                        self.trace.calls.push((*func, c.label));
                        let inner = c.env.bind(c.param, av);
                        self.eval(c.body, &inner, depth + 1)
                    }
                    other => self.type_error(id, format!("applied non-function {other:?}")),
                }
            }
            ExprKind::Let { binder, rhs, body } => {
                let rv = self.eval(*rhs, env, depth + 1)?;
                let inner = env.bind(*binder, rv);
                self.eval(*body, &inner, depth + 1)
            }
            ExprKind::LetRec {
                binder,
                lambda,
                body,
            } => {
                let ExprKind::Lam {
                    label,
                    param,
                    body: lam_body,
                } = self.program.kind(*lambda)
                else {
                    return self.type_error(id, "letrec rhs is not a lambda");
                };
                let inner = env.bind_rec(*binder, *label, *param, *lam_body);
                self.eval(*body, &inner, depth + 1)
            }
            ExprKind::If {
                cond,
                then_branch,
                else_branch,
            } => match self.eval(*cond, env, depth + 1)? {
                Value::Bool(true) => self.eval(*then_branch, env, depth + 1),
                Value::Bool(false) => self.eval(*else_branch, env, depth + 1),
                other => self.type_error(id, format!("if on non-boolean {other:?}")),
            },
            ExprKind::Record(items) => {
                let mut vals = Vec::with_capacity(items.len());
                for &e in items.iter() {
                    vals.push(self.eval(e, env, depth + 1)?);
                }
                Ok(Value::Record(vals.into()))
            }
            ExprKind::Proj { index, tuple } => match self.eval(*tuple, env, depth + 1)? {
                Value::Record(vals) => match vals.get(*index as usize) {
                    Some(v) => Ok(v.clone()),
                    None => self.type_error(id, "projection index out of range"),
                },
                other => self.type_error(id, format!("projection from non-record {other:?}")),
            },
            ExprKind::Con { con, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for &e in args.iter() {
                    vals.push(self.eval(e, env, depth + 1)?);
                }
                Ok(Value::Con {
                    con: *con,
                    args: vals.into(),
                })
            }
            ExprKind::Case {
                scrutinee,
                arms,
                default,
            } => {
                let sv = self.eval(*scrutinee, env, depth + 1)?;
                let Value::Con { con, args } = &sv else {
                    return self.type_error(id, format!("case on non-datatype {sv:?}"));
                };
                for arm in arms.iter() {
                    if arm.con == *con {
                        let mut inner = env.clone();
                        for (&b, v) in arm.binders.iter().zip(args.iter()) {
                            inner = inner.bind(b, v.clone());
                        }
                        return self.eval(arm.body, &inner, depth + 1);
                    }
                }
                match default {
                    Some(d) => self.eval(*d, env, depth + 1),
                    None => Err(EvalError::MatchFailure(id)),
                }
            }
            ExprKind::Prim { op, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for &e in args.iter() {
                    vals.push(self.eval(e, env, depth + 1)?);
                }
                self.prim(id, *op, &vals)
            }
        }
    }

    fn int_arg(&self, at: ExprId, v: &Value) -> Result<i64, EvalError> {
        match v {
            Value::Int(n) => Ok(*n),
            other => self.type_error(at, format!("expected int, got {other:?}")),
        }
    }

    fn prim(&mut self, at: ExprId, op: PrimOp, args: &[Value]) -> Result<Value, EvalError> {
        if op.is_effectful() {
            self.trace.effects.push(at);
        }
        match op {
            PrimOp::Add => {
                let (a, b) = (self.int_arg(at, &args[0])?, self.int_arg(at, &args[1])?);
                Ok(Value::Int(a.wrapping_add(b)))
            }
            PrimOp::Sub => {
                let (a, b) = (self.int_arg(at, &args[0])?, self.int_arg(at, &args[1])?);
                Ok(Value::Int(a.wrapping_sub(b)))
            }
            PrimOp::Mul => {
                let (a, b) = (self.int_arg(at, &args[0])?, self.int_arg(at, &args[1])?);
                Ok(Value::Int(a.wrapping_mul(b)))
            }
            PrimOp::Div => {
                let (a, b) = (self.int_arg(at, &args[0])?, self.int_arg(at, &args[1])?);
                if b == 0 {
                    Err(EvalError::DivByZero(at))
                } else {
                    Ok(Value::Int(a.wrapping_div(b)))
                }
            }
            PrimOp::Lt => {
                let (a, b) = (self.int_arg(at, &args[0])?, self.int_arg(at, &args[1])?);
                Ok(Value::Bool(a < b))
            }
            PrimOp::Leq => {
                let (a, b) = (self.int_arg(at, &args[0])?, self.int_arg(at, &args[1])?);
                Ok(Value::Bool(a <= b))
            }
            PrimOp::IntEq => {
                let (a, b) = (self.int_arg(at, &args[0])?, self.int_arg(at, &args[1])?);
                Ok(Value::Bool(a == b))
            }
            PrimOp::Not => match &args[0] {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                other => self.type_error(at, format!("not on {other:?}")),
            },
            PrimOp::Print => {
                let n = self.int_arg(at, &args[0])?;
                self.outputs.push(n);
                Ok(Value::Unit)
            }
            PrimOp::ReadInt => Ok(Value::Int(self.inputs.next().unwrap_or(0))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run(src: &str) -> EvalOutcome {
        let p = parse(src).unwrap();
        eval(&p, EvalOptions::default()).unwrap()
    }

    fn run_int(src: &str) -> i64 {
        match run(src).value {
            Value::Int(n) => n,
            other => panic!("expected int, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic() {
        assert_eq!(run_int("1 + 2 * 3"), 7);
        assert_eq!(run_int("10 div 3"), 3);
        assert_eq!(run_int("10 - 2 - 3"), 5);
    }

    #[test]
    fn higher_order_functions() {
        assert_eq!(run_int("(fn f => f (f 1)) (fn x => x + 1)"), 3);
        assert_eq!(
            run_int("let val twice = fn f => fn x => f (f x) in twice (fn n => n * 2) 3 end"),
            12
        );
    }

    #[test]
    fn recursion() {
        assert_eq!(
            run_int("fun fact n = if n = 0 then 1 else n * fact (n - 1); fact 6"),
            720
        );
    }

    #[test]
    fn nested_recursion() {
        // even/odd encoded with an inner recursive helper.
        assert_eq!(
            run_int(
                "fun even n = \n\
                   let fun odd m = if m = 0 then false else even (m - 1) in\n\
                     if n = 0 then true else odd (n - 1)\n\
                   end;\n\
                 if even 10 then 1 else 0"
            ),
            1
        );
    }

    #[test]
    fn datatypes() {
        assert_eq!(
            run_int(
                "datatype intlist = Nil | Cons of int * intlist;\n\
                 fun sum xs = case xs of Cons(h, t) => h + sum t | Nil => 0;\n\
                 sum (Cons(1, Cons(2, Cons(3, Nil))))"
            ),
            6
        );
    }

    #[test]
    fn records() {
        assert_eq!(run_int("#2 (1, 42, true)"), 42);
        assert_eq!(run_int("let val p = (1, (2, 3)) in #1 (#2 p) end"), 2);
    }

    #[test]
    fn effects_are_traced() {
        let out = run("val u = print 1; val v = print 2; 3");
        assert_eq!(out.outputs, vec![1, 2]);
        assert_eq!(out.trace.effects.len(), 2);
    }

    #[test]
    fn readint_consumes_inputs() {
        let p = parse("readint + readint").unwrap();
        let out = eval(
            &p,
            EvalOptions {
                fuel: 1000,
                inputs: vec![10, 20],
                max_depth: None,
            },
        )
        .unwrap();
        match out.value {
            Value::Int(30) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn calls_are_traced_with_labels() {
        let p = parse("(fn x => x) 5").unwrap();
        let out = eval(&p, EvalOptions::default()).unwrap();
        assert_eq!(out.trace.calls.len(), 1);
        let (func_occ, label) = out.trace.calls[0];
        // The operator occurrence is the lambda itself here.
        assert_eq!(p.label_of(func_occ), Some(label));
    }

    #[test]
    fn divergence_runs_out_of_fuel() {
        let p = parse("val rec loop = fn x => loop x; loop 1").unwrap();
        assert_eq!(
            eval(
                &p,
                EvalOptions {
                    fuel: 1000,
                    inputs: vec![],
                    max_depth: None,
                }
            )
            .unwrap_err(),
            EvalError::OutOfFuel
        );
    }

    #[test]
    fn depth_limit_is_a_structured_error() {
        // Deep recursion that plain fuel would let run much further.
        let p = parse("fun down n = if n = 0 then 0 else down (n - 1); down 200").unwrap();
        assert_eq!(
            eval(
                &p,
                EvalOptions {
                    fuel: 1_000_000,
                    inputs: vec![],
                    max_depth: Some(64),
                }
            )
            .unwrap_err(),
            EvalError::DepthExceeded(64)
        );
        // The same program under a generous limit still finishes.
        let out = eval(
            &p,
            EvalOptions {
                fuel: 1_000_000,
                inputs: vec![],
                max_depth: Some(10_000),
            },
        )
        .unwrap();
        assert!(matches!(out.value, Value::Int(0)));
    }

    #[test]
    fn self_application_of_identity() {
        let out = run("(fn x => x x) (fn y => y)");
        assert!(matches!(out.value, Value::Closure(_)));
        assert_eq!(out.trace.calls.len(), 2);
    }

    #[test]
    fn match_failure() {
        let p = parse("datatype t = A | B; case A of B => 1").unwrap();
        assert!(matches!(
            eval(&p, EvalOptions::default()).unwrap_err(),
            EvalError::MatchFailure(_)
        ));
    }

    #[test]
    fn div_by_zero() {
        let p = parse("1 div 0").unwrap();
        assert!(matches!(
            eval(&p, EvalOptions::default()).unwrap_err(),
            EvalError::DivByZero(_)
        ));
    }

    #[test]
    fn shadowed_binders_evaluate_innermost() {
        assert_eq!(run_int("let val x = 1 in let val x = 2 in x end end"), 2);
        assert_eq!(run_int("(fn x => (fn x => x) 9) 1"), 9);
    }
}
