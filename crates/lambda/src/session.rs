//! Incremental (REPL-style) program growth.
//!
//! A [`SessionProgram`] accumulates *fragments* — batches of top-level
//! declarations and/or a value expression — into one append-only arena.
//! Names defined by earlier fragments are visible to later ones (with
//! shadowing); each fragment's trees are validated on entry. Unlike
//! [`crate::Program`]'s single rooted tree, a session is a *forest*: one
//! root per binding right-hand side and per value expression, plus a
//! table of session bindings. The subtransitive analysis is flow-based and
//! never needs a distinguished root, which is what makes the paper's
//! "incremental" remark practical: see `stcfa-core`'s `IncrementalAnalysis`.

use std::collections::HashMap;

use crate::ast::{ExprId, Program, VarId};
use crate::lexer::Pos;
use crate::parser::{parse_fragment, ParseError};
use crate::validate;

/// One accepted fragment: what it defined, and its value expression.
#[derive(Clone, Debug)]
pub struct Fragment {
    /// Bindings introduced, in order.
    pub bindings: Vec<SessionBinding>,
    /// The trailing value expression, if the fragment had one.
    pub value: Option<ExprId>,
}

/// A top-level session binding.
#[derive(Clone, Debug)]
pub struct SessionBinding {
    /// Source name.
    pub name: String,
    /// The binder (referenced by later fragments).
    pub binder: VarId,
    /// The bound expression.
    pub rhs: ExprId,
    /// Whether the binding is recursive (`fun` / `val rec`).
    pub recursive: bool,
}

/// An append-only program plus its top-level scope.
#[derive(Clone, Debug)]
pub struct SessionProgram {
    program: Program,
    /// Latest binder for each top-level name.
    scope: HashMap<String, VarId>,
    /// Journal of scope insertions: `(name, previous binder)` — popping
    /// in reverse restores any shadowed binding on rewind.
    scope_log: Vec<(String, Option<VarId>)>,
    /// All session bindings in definition order.
    bindings: Vec<SessionBinding>,
    /// Value expressions of fragments, in order.
    values: Vec<ExprId>,
}

/// A rewind point for a [`SessionProgram`] (see [`SessionProgram::mark`]).
///
/// Everything a fragment adds — expressions, binders, labels, datatype
/// declarations, interned symbols, scope entries — is appended, so a mark
/// is just the extent of each table.
#[derive(Clone, Copy, Debug)]
pub struct SessionMark {
    exprs: usize,
    vars: usize,
    labels: usize,
    datatypes: usize,
    cons: usize,
    interned: usize,
    bindings: usize,
    values: usize,
    scope_log: usize,
    root: ExprId,
}

impl Default for SessionProgram {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionProgram {
    /// Creates an empty session.
    pub fn new() -> SessionProgram {
        let program = crate::builder::ProgramBuilder::new().finish_unchecked(None);
        SessionProgram {
            program,
            scope: HashMap::new(),
            scope_log: Vec::new(),
            bindings: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The current (forest) program. Its `root()` is meaningless; use the
    /// fragment records instead.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// All bindings defined so far.
    pub fn bindings(&self) -> &[SessionBinding] {
        &self.bindings
    }

    /// Looks up a top-level name.
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.scope.get(name).copied()
    }

    /// The session's current extent, for [`SessionProgram::rewind`].
    pub fn mark(&self) -> SessionMark {
        SessionMark {
            exprs: self.program.size(),
            vars: self.program.var_count(),
            labels: self.program.label_count(),
            datatypes: self.program.data.data_count(),
            cons: self.program.data.con_count(),
            interned: self.program.interner.len(),
            bindings: self.bindings.len(),
            values: self.values.len(),
            scope_log: self.scope_log.len(),
            root: self.program.root(),
        }
    }

    /// Rewinds the session to an earlier [`SessionMark`], exactly
    /// undoing every fragment defined since: the arena, scope, binding
    /// and value tables are restored, and a replay of the same sources
    /// rebuilds a byte-identical arena. `mark` must come from this
    /// session and must not predate an earlier rewind's target.
    pub fn rewind(&mut self, mark: SessionMark) {
        while self.scope_log.len() > mark.scope_log {
            let (name, prev) = self.scope_log.pop().expect("len checked");
            match prev {
                Some(var) => self.scope.insert(name, var),
                None => self.scope.remove(&name),
            };
        }
        self.bindings.truncate(mark.bindings);
        self.values.truncate(mark.values);
        self.program.rewind(
            mark.exprs,
            mark.vars,
            mark.labels,
            mark.datatypes,
            mark.cons,
            mark.interned,
            mark.root,
        );
    }

    /// Parses and appends one fragment (declarations and/or an
    /// expression). On error the session is unchanged.
    pub fn define(&mut self, source: &str) -> Result<Fragment, ParseError> {
        // Parse in place — fragment parsing only ever appends — and
        // rewind on error, so failures cannot corrupt the arena and the
        // success path never clones it.
        let mark = self.mark();
        let raw = match parse_fragment(&mut self.program, &self.scope, source) {
            Ok(raw) => raw,
            Err(e) => {
                self.rewind(mark);
                return Err(e);
            }
        };
        // Validate the new trees (scope/shape checks for the new exprs,
        // with session binders ambient).
        let mut ambient: Vec<VarId> = self.bindings.iter().map(|b| b.binder).collect();
        ambient.extend(raw.bindings.iter().map(|b| b.binder));
        let mut roots: Vec<ExprId> = raw.bindings.iter().map(|b| b.rhs).collect();
        roots.extend(raw.value);
        if let Err(e) = validate::validate_forest(&self.program, &roots, &ambient) {
            self.rewind(mark);
            return Err(ParseError {
                pos: Pos {
                    offset: 0,
                    line: 0,
                    col: 0,
                },
                message: e.to_string(),
            });
        }
        for b in &raw.bindings {
            let prev = self.scope.insert(b.name.clone(), b.binder);
            self.scope_log.push((b.name.clone(), prev));
        }
        let fragment = Fragment {
            bindings: raw
                .bindings
                .iter()
                .map(|b| SessionBinding {
                    name: b.name.clone(),
                    binder: b.binder,
                    rhs: b.rhs,
                    recursive: b.recursive,
                })
                .collect(),
            value: raw.value,
        };
        self.bindings.extend(fragment.bindings.iter().cloned());
        self.values.extend(raw.value);
        Ok(fragment)
    }

    /// Value expressions of all fragments so far.
    pub fn values(&self) -> &[ExprId] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defines_and_references_across_fragments() {
        let mut s = SessionProgram::new();
        let f1 = s.define("fun id x = x;").unwrap();
        assert_eq!(f1.bindings.len(), 1);
        assert!(f1.value.is_none());
        let f2 = s.define("id (fn u => u)").unwrap();
        assert!(f2.value.is_some());
        assert_eq!(s.bindings().len(), 1);
        assert_eq!(s.values().len(), 1);
    }

    #[test]
    fn shadowing_rebinds_for_later_fragments() {
        let mut s = SessionProgram::new();
        s.define("val x = 1;").unwrap();
        let first = s.lookup("x").unwrap();
        s.define("val x = 2;").unwrap();
        let second = s.lookup("x").unwrap();
        assert_ne!(first, second);
    }

    #[test]
    fn unknown_names_are_rejected_without_corruption() {
        let mut s = SessionProgram::new();
        let size_before = s.program().size();
        assert!(s.define("missing 1").is_err());
        assert_eq!(
            s.program().size(),
            size_before,
            "failed define must not grow the arena"
        );
        // The session still works afterwards.
        s.define("val ok = 3;").unwrap();
    }

    #[test]
    fn datatypes_persist_across_fragments() {
        let mut s = SessionProgram::new();
        s.define("datatype t = A | B of int;").unwrap();
        let f = s.define("case B(1) of B(n) => n | A => 0").unwrap();
        assert!(f.value.is_some());
    }

    #[test]
    fn recursive_bindings() {
        let mut s = SessionProgram::new();
        let f = s
            .define("fun fact n = if n = 0 then 1 else n * fact (n - 1);")
            .unwrap();
        assert!(f.bindings[0].recursive);
        s.define("fact 5").unwrap();
    }

    #[test]
    fn mutual_recursion_fragments() {
        let mut s = SessionProgram::new();
        let f = s
            .define(
                "fun even n = if n = 0 then true else odd (n - 1)\n\
                 and odd n = if n = 0 then false else even (n - 1);",
            )
            .unwrap();
        // The pack plus the two wrappers.
        assert_eq!(f.bindings.len(), 3);
        assert!(s.lookup("even").is_some());
        assert!(s.lookup("odd").is_some());
        s.define("even 4").unwrap();
    }
}
