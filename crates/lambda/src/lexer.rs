//! Lexer for the ML-flavoured surface syntax.
//!
//! Comments are `(* ... *)` (nesting) and `-- ...` to end of line.

use std::fmt;

/// A source position (byte offset plus 1-based line/column).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pos {
    /// Byte offset into the source.
    pub offset: usize,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A half-open source range `[start, end)`, in byte offsets (both bounds
/// carry the full line/column information). Every token gets one from the
/// lexer; the parser joins token spans into expression spans, which travel
/// on the [`crate::ast::Program`] so downstream diagnostics can point back
/// into the source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// First byte of the range.
    pub start: Pos,
    /// One past the last byte of the range.
    pub end: Pos,
}

impl Span {
    /// The smallest span covering both `self` and `other`.
    pub fn join(self, other: Span) -> Span {
        Span {
            start: if other.start.offset < self.start.offset {
                other.start
            } else {
                self.start
            },
            end: if other.end.offset > self.end.offset {
                other.end
            } else {
                self.end
            },
        }
    }

    /// Length of the range in bytes.
    pub fn len(&self) -> usize {
        self.end.offset - self.start.offset
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.start)
    }
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Lower-case identifier (variables, datatype names).
    LIdent(String),
    /// Upper-case identifier (constructors).
    UIdent(String),
    /// Integer literal.
    Int(i64),
    /// Keyword.
    Kw(Kw),
    /// `=>`
    FatArrow,
    /// `->`
    Arrow,
    /// `=`
    Equals,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `|`
    Bar,
    /// `#`
    Hash,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `<`
    Lt,
    /// `<=`
    Leq,
    /// `;`
    Semi,
    /// `_`
    Underscore,
    /// End of input.
    Eof,
}

/// Reserved words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Kw {
    Fn,
    Fun,
    Val,
    Rec,
    Let,
    In,
    End,
    If,
    Then,
    Else,
    Case,
    Of,
    Datatype,
    True,
    False,
    Not,
    Print,
    Readint,
    Div,
    And,
    Int,
    Bool,
    Unit,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::LIdent(s) | Tok::UIdent(s) => write!(f, "`{s}`"),
            Tok::Int(n) => write!(f, "`{n}`"),
            Tok::Kw(k) => write!(f, "`{k:?}`"),
            Tok::FatArrow => write!(f, "`=>`"),
            Tok::Arrow => write!(f, "`->`"),
            Tok::Equals => write!(f, "`=`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Bar => write!(f, "`|`"),
            Tok::Hash => write!(f, "`#`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Leq => write!(f, "`<=`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Underscore => write!(f, "`_`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A lexical error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Where the error occurred.
    pub pos: Pos,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `source`, returning tokens with their source spans. The final
/// token is always [`Tok::Eof`] (with an empty span at end of input).
pub fn lex(source: &str) -> Result<Vec<(Tok, Span)>, LexError> {
    let bytes = source.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! pos {
        () => {
            Pos {
                offset: i,
                line,
                col,
            }
        };
    }
    macro_rules! advance {
        ($n:expr) => {{
            for _ in 0..$n {
                if i < bytes.len() {
                    if bytes[i] == b'\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        }};
    }
    // Consume `$n` bytes and push the token spanning them.
    macro_rules! emit {
        ($t:expr, $n:expr) => {{
            let start = pos!();
            advance!($n);
            toks.push(($t, Span { start, end: pos!() }));
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => advance!(1),
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    advance!(1);
                }
            }
            b'(' if bytes.get(i + 1) == Some(&b'*') => {
                let start = pos!();
                let mut depth = 1usize;
                advance!(2);
                while depth > 0 {
                    if i >= bytes.len() {
                        return Err(LexError {
                            pos: start,
                            message: "unterminated comment".into(),
                        });
                    }
                    if bytes[i] == b'(' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        advance!(2);
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b')') {
                        depth -= 1;
                        advance!(2);
                    } else {
                        advance!(1);
                    }
                }
            }
            b'(' => emit!(Tok::LParen, 1),
            b')' => emit!(Tok::RParen, 1),
            b',' => emit!(Tok::Comma, 1),
            b'|' => emit!(Tok::Bar, 1),
            b'#' => emit!(Tok::Hash, 1),
            b'*' => emit!(Tok::Star, 1),
            b'+' => emit!(Tok::Plus, 1),
            b';' => emit!(Tok::Semi, 1),
            b'_' if !matches!(bytes.get(i + 1), Some(&b) if b.is_ascii_alphanumeric() || b == b'_') =>
            {
                emit!(Tok::Underscore, 1);
            }
            b'-' if bytes.get(i + 1) == Some(&b'>') => emit!(Tok::Arrow, 2),
            b'-' => emit!(Tok::Minus, 1),
            b'=' if bytes.get(i + 1) == Some(&b'>') => emit!(Tok::FatArrow, 2),
            b'=' => emit!(Tok::Equals, 1),
            b'<' if bytes.get(i + 1) == Some(&b'=') => emit!(Tok::Leq, 2),
            b'<' => emit!(Tok::Lt, 1),
            b'0'..=b'9' => {
                let p = pos!();
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    advance!(1);
                }
                let text = &source[start..i];
                let value: i64 = text.parse().map_err(|_| LexError {
                    pos: p,
                    message: format!("integer literal `{text}` out of range"),
                })?;
                toks.push((
                    Tok::Int(value),
                    Span {
                        start: p,
                        end: pos!(),
                    },
                ));
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let p = pos!();
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'\'')
                {
                    advance!(1);
                }
                let text = &source[start..i];
                let tok = match text {
                    "fn" => Tok::Kw(Kw::Fn),
                    "fun" => Tok::Kw(Kw::Fun),
                    "val" => Tok::Kw(Kw::Val),
                    "rec" => Tok::Kw(Kw::Rec),
                    "let" => Tok::Kw(Kw::Let),
                    "in" => Tok::Kw(Kw::In),
                    "end" => Tok::Kw(Kw::End),
                    "if" => Tok::Kw(Kw::If),
                    "then" => Tok::Kw(Kw::Then),
                    "else" => Tok::Kw(Kw::Else),
                    "case" => Tok::Kw(Kw::Case),
                    "of" => Tok::Kw(Kw::Of),
                    "datatype" => Tok::Kw(Kw::Datatype),
                    "true" => Tok::Kw(Kw::True),
                    "false" => Tok::Kw(Kw::False),
                    "not" => Tok::Kw(Kw::Not),
                    "print" => Tok::Kw(Kw::Print),
                    "readint" => Tok::Kw(Kw::Readint),
                    "div" => Tok::Kw(Kw::Div),
                    "and" => Tok::Kw(Kw::And),
                    "int" => Tok::Kw(Kw::Int),
                    "bool" => Tok::Kw(Kw::Bool),
                    "unit" => Tok::Kw(Kw::Unit),
                    _ if text.starts_with(|c: char| c.is_ascii_uppercase()) => {
                        Tok::UIdent(text.to_owned())
                    }
                    _ => Tok::LIdent(text.to_owned()),
                };
                toks.push((
                    tok,
                    Span {
                        start: p,
                        end: pos!(),
                    },
                ));
            }
            other => {
                return Err(LexError {
                    pos: pos!(),
                    message: format!("unexpected character `{}`", other as char),
                });
            }
        }
    }
    let eof = pos!();
    toks.push((
        Tok::Eof,
        Span {
            start: eof,
            end: eof,
        },
    ));
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn lexes_lambda() {
        assert_eq!(
            kinds("fn x => x"),
            vec![
                Tok::Kw(Kw::Fn),
                Tok::LIdent("x".into()),
                Tok::FatArrow,
                Tok::LIdent("x".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn distinguishes_arrows_and_minus() {
        assert_eq!(
            kinds("- -> =>"),
            vec![Tok::Minus, Tok::Arrow, Tok::FatArrow, Tok::Eof]
        );
    }

    #[test]
    fn distinguishes_lt_leq_eq() {
        assert_eq!(
            kinds("< <= ="),
            vec![Tok::Lt, Tok::Leq, Tok::Equals, Tok::Eof]
        );
    }

    #[test]
    fn lexes_comments() {
        assert_eq!(
            kinds("1 (* hi (* nested *) there *) 2 -- line\n3"),
            vec![Tok::Int(1), Tok::Int(2), Tok::Int(3), Tok::Eof]
        );
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("(* oops").is_err());
    }

    #[test]
    fn tracks_positions() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].1.start.line, 1);
        assert_eq!(toks[0].1.start.col, 1);
        assert_eq!(toks[1].1.start.line, 2);
        assert_eq!(toks[1].1.start.col, 3);
    }

    #[test]
    fn spans_cover_exact_source_ranges() {
        let src = "val xs = 123 <= foo";
        let toks = lex(src).unwrap();
        for (tok, sp) in &toks {
            if *tok == Tok::Eof {
                assert!(sp.is_empty());
                continue;
            }
            let text = &src[sp.start.offset..sp.end.offset];
            // The raw text must re-lex to the same single token.
            let again = lex(text).unwrap();
            assert_eq!(&again[0].0, tok, "span {sp:?} covers {text:?}");
        }
        // Multi-byte tokens report true end columns.
        let leq = toks.iter().find(|(t, _)| *t == Tok::Leq).unwrap();
        assert_eq!(leq.1.len(), 2);
        assert_eq!(leq.1.end.col, leq.1.start.col + 2);
    }

    #[test]
    fn span_join_orders_endpoints() {
        let toks = lex("a + b").unwrap();
        let a = toks[0].1;
        let b = toks[2].1;
        let j = a.join(b);
        assert_eq!(j.start, a.start);
        assert_eq!(j.end, b.end);
        assert_eq!(b.join(a), j, "join is symmetric");
    }

    #[test]
    fn underscore_vs_identifier() {
        assert_eq!(
            kinds("_ _x x_"),
            vec![
                Tok::Underscore,
                Tok::LIdent("_x".into()),
                Tok::LIdent("x_".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn uident_vs_lident() {
        assert_eq!(
            kinds("Cons nil"),
            vec![
                Tok::UIdent("Cons".into()),
                Tok::LIdent("nil".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn primes_in_identifiers() {
        assert_eq!(
            kinds("x' f''"),
            vec![
                Tok::LIdent("x'".into()),
                Tok::LIdent("f''".into()),
                Tok::Eof
            ]
        );
    }
}
