//! Core abstract syntax.
//!
//! The input language is the labelled lambda calculus of the paper extended,
//! as in its Section 6, with `let`/`letrec`, records (tuples), monomorphic
//! datatypes with constructors and single-depth `case` patterns, literals,
//! and fully-applied primitive operators (some of which are side-effecting,
//! for the Section 8 effects analysis).
//!
//! A [`Program`] owns an arena of expression *occurrences*: every syntactic
//! occurrence of a sub-expression has its own [`ExprId`], matching the
//! paper's footnote that control-flow information is associated with
//! occurrences, not with expressions up to equality. Every abstraction
//! carries a unique [`Label`], and all bound variables are distinct by
//! construction ([`VarId`]s are binder identities, not names).

use std::collections::HashMap;
use std::fmt;

use crate::intern::{Interner, Symbol};
use crate::lexer::Span;

macro_rules! define_index {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an id from a dense index.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("index overflow"))
            }

            /// Returns the dense index of this id.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

define_index!(
    /// Identity of one expression occurrence in a [`Program`] arena.
    ExprId
);
define_index!(
    /// Identity of one binder. Distinct binders are distinct `VarId`s even
    /// when their source names collide, so programs satisfy the paper's
    /// "bound variables are distinct" convention by construction.
    VarId
);
define_index!(
    /// The unique label of one abstraction, as in `λˡx.e`.
    Label
);
define_index!(
    /// Identity of a data constructor.
    ConId
);
define_index!(
    /// Identity of a datatype declaration.
    DataId
);

/// Literal constants.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Literal {
    /// Machine integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// The unit value `()`.
    Unit,
}

/// Primitive operators. All primitives are *fully applied* in the AST, as
/// the paper assumes ("all side-effecting primitives are fully applied").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PrimOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (division by zero is an evaluation error).
    Div,
    /// Integer less-than.
    Lt,
    /// Integer less-or-equal.
    Leq,
    /// Integer equality.
    IntEq,
    /// Boolean negation.
    Not,
    /// Side effect: print an integer.
    Print,
    /// Side effect: read an integer from the environment.
    ReadInt,
}

impl PrimOp {
    /// Number of arguments the operator takes.
    pub fn arity(self) -> usize {
        match self {
            PrimOp::Add
            | PrimOp::Sub
            | PrimOp::Mul
            | PrimOp::Div
            | PrimOp::Lt
            | PrimOp::Leq
            | PrimOp::IntEq => 2,
            PrimOp::Not | PrimOp::Print => 1,
            PrimOp::ReadInt => 0,
        }
    }

    /// Whether applying the operator has an observable side effect.
    ///
    /// This is the seed set for the linear-time effects analysis
    /// (paper, Section 8).
    pub fn is_effectful(self) -> bool {
        matches!(self, PrimOp::Print | PrimOp::ReadInt)
    }

    /// Surface-syntax name of the operator.
    pub fn name(self) -> &'static str {
        match self {
            PrimOp::Add => "+",
            PrimOp::Sub => "-",
            PrimOp::Mul => "*",
            PrimOp::Div => "div",
            PrimOp::Lt => "<",
            PrimOp::Leq => "<=",
            PrimOp::IntEq => "=",
            PrimOp::Not => "not",
            PrimOp::Print => "print",
            PrimOp::ReadInt => "readint",
        }
    }

    /// All primitive operators.
    pub const ALL: [PrimOp; 10] = [
        PrimOp::Add,
        PrimOp::Sub,
        PrimOp::Mul,
        PrimOp::Div,
        PrimOp::Lt,
        PrimOp::Leq,
        PrimOp::IntEq,
        PrimOp::Not,
        PrimOp::Print,
        PrimOp::ReadInt,
    ];
}

/// One arm of a `case` expression: a single-depth constructor pattern
/// `c(x₁, …, xₙ) => body`, the form the paper's de-constructor treatment
/// (Section 6) covers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CaseArm {
    /// The matched constructor.
    pub con: ConId,
    /// Fresh binders for the constructor's arguments.
    pub binders: Box<[VarId]>,
    /// The arm body.
    pub body: ExprId,
}

/// The shape of one expression occurrence.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExprKind {
    /// A variable occurrence referring to its binder.
    Var(VarId),
    /// A labelled abstraction `λˡx.e` (`fn x => e`).
    Lam {
        /// Unique label of this abstraction.
        label: Label,
        /// The bound variable.
        param: VarId,
        /// The function body.
        body: ExprId,
    },
    /// Application `(e₁ e₂)`.
    App {
        /// The operator position.
        func: ExprId,
        /// The operand position.
        arg: ExprId,
    },
    /// Non-recursive `let val x = rhs in body end`.
    Let {
        /// The bound variable.
        binder: VarId,
        /// The bound expression.
        rhs: ExprId,
        /// The let body.
        body: ExprId,
    },
    /// Recursive binding `letrec f = λˡx.e in body` (paper, Section 6).
    /// The bound expression must be an abstraction.
    LetRec {
        /// The recursive variable.
        binder: VarId,
        /// The recursive abstraction (always [`ExprKind::Lam`]).
        lambda: ExprId,
        /// The letrec body.
        body: ExprId,
    },
    /// Two-way conditional on a boolean.
    If {
        /// Condition.
        cond: ExprId,
        /// `then` branch.
        then_branch: ExprId,
        /// `else` branch.
        else_branch: ExprId,
    },
    /// Record (tuple) creation `(e₁, …, eₙ)` with `n ≥ 2`.
    Record(Box<[ExprId]>),
    /// Record projection `#j e` (1-based in surface syntax, 0-based here).
    Proj {
        /// Zero-based field index.
        index: u32,
        /// The record expression.
        tuple: ExprId,
    },
    /// Saturated constructor application `c(e₁, …, eₙ)`.
    Con {
        /// The constructor.
        con: ConId,
        /// Constructor arguments (length equals the declared arity).
        args: Box<[ExprId]>,
    },
    /// Single-depth pattern match
    /// `case e of c₁(xs) => e₁ | … | _ => d`.
    Case {
        /// The scrutinee.
        scrutinee: ExprId,
        /// Constructor arms (distinct constructors of one datatype).
        arms: Box<[CaseArm]>,
        /// Optional wildcard arm.
        default: Option<ExprId>,
    },
    /// A literal constant.
    Lit(Literal),
    /// Fully-applied primitive `op(e₁, …, eₙ)`.
    Prim {
        /// The operator.
        op: PrimOp,
        /// Arguments (length equals [`PrimOp::arity`]).
        args: Box<[ExprId]>,
    },
}

/// Surface-level (monomorphic) type expressions, used in datatype
/// declarations to give constructor argument types.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TyExpr {
    /// `int`
    Int,
    /// `bool`
    Bool,
    /// `unit`
    Unit,
    /// A declared datatype.
    Data(DataId),
    /// `t₁ -> t₂`
    Arrow(Box<TyExpr>, Box<TyExpr>),
    /// `t₁ * … * tₙ`
    Tuple(Box<[TyExpr]>),
}

/// A constructor declaration.
#[derive(Clone, Debug)]
pub struct ConInfo {
    /// Source name.
    pub name: Symbol,
    /// Owning datatype.
    pub data: DataId,
    /// Declared argument types (the arity is `arg_tys.len()`).
    pub arg_tys: Box<[TyExpr]>,
}

/// A datatype declaration.
#[derive(Clone, Debug)]
pub struct DataInfo {
    /// Source name.
    pub name: Symbol,
    /// Constructors belonging to this datatype, in declaration order.
    pub cons: Vec<ConId>,
}

/// The datatype environment of a program: all `datatype` declarations.
#[derive(Clone, Debug, Default)]
pub struct DataEnv {
    datatypes: Vec<DataInfo>,
    cons: Vec<ConInfo>,
    con_by_name: HashMap<Symbol, ConId>,
    data_by_name: HashMap<Symbol, DataId>,
}

impl DataEnv {
    /// Declares a datatype with no constructors yet; constructors are added
    /// with [`DataEnv::declare_con`].
    ///
    /// Returns `None` if the name is already taken by another datatype.
    pub fn declare_data(&mut self, name: Symbol) -> Option<DataId> {
        if self.data_by_name.contains_key(&name) {
            return None;
        }
        let id = DataId::from_index(self.datatypes.len());
        self.datatypes.push(DataInfo {
            name,
            cons: Vec::new(),
        });
        self.data_by_name.insert(name, id);
        Some(id)
    }

    /// Declares a constructor for `data`.
    ///
    /// Returns `None` if the constructor name is already taken.
    pub fn declare_con(
        &mut self,
        data: DataId,
        name: Symbol,
        arg_tys: impl Into<Box<[TyExpr]>>,
    ) -> Option<ConId> {
        if self.con_by_name.contains_key(&name) {
            return None;
        }
        let id = ConId::from_index(self.cons.len());
        self.cons.push(ConInfo {
            name,
            data,
            arg_tys: arg_tys.into(),
        });
        self.datatypes[data.index()].cons.push(id);
        self.con_by_name.insert(name, id);
        Some(id)
    }

    /// Looks up a constructor by name.
    pub fn con_by_name(&self, name: Symbol) -> Option<ConId> {
        self.con_by_name.get(&name).copied()
    }

    /// Looks up a datatype by name.
    pub fn data_by_name(&self, name: Symbol) -> Option<DataId> {
        self.data_by_name.get(&name).copied()
    }

    /// Constructor metadata.
    pub fn con(&self, id: ConId) -> &ConInfo {
        &self.cons[id.index()]
    }

    /// Datatype metadata.
    pub fn data(&self, id: DataId) -> &DataInfo {
        &self.datatypes[id.index()]
    }

    /// Number of declared constructors.
    pub fn con_count(&self) -> usize {
        self.cons.len()
    }

    /// Number of declared datatypes.
    pub fn data_count(&self) -> usize {
        self.datatypes.len()
    }

    /// Forgets every datatype and constructor declared at or beyond the
    /// given counts. Declarations are append-only (a fragment's
    /// constructors always belong to datatypes of the same fragment), so
    /// truncation restores an earlier extent exactly.
    pub(crate) fn rewind(&mut self, datatypes: usize, cons: usize) {
        for d in &self.datatypes[datatypes..] {
            self.data_by_name.remove(&d.name);
        }
        for c in &self.cons[cons..] {
            self.con_by_name.remove(&c.name);
        }
        self.datatypes.truncate(datatypes);
        self.cons.truncate(cons);
        for d in &mut self.datatypes {
            d.cons.retain(|c| c.index() < cons);
        }
    }

    /// Iterates over all constructor ids.
    pub fn cons(&self) -> impl Iterator<Item = ConId> + '_ {
        (0..self.cons.len()).map(ConId::from_index)
    }

    /// Iterates over all datatype ids.
    pub fn datas(&self) -> impl Iterator<Item = DataId> + '_ {
        (0..self.datatypes.len()).map(DataId::from_index)
    }

    /// Arity of a constructor.
    pub fn arity(&self, id: ConId) -> usize {
        self.con(id).arg_tys.len()
    }

    /// Datatype *nesting levels* (paper, Section 6): "label a datatype
    /// definition that does not mention other datatypes with 0, and label
    /// any other datatype definition with the maximum of the labels of all
    /// datatypes it uses, plus 1". Self-references do not raise the level.
    /// Bounded nesting makes the ≈₂ congruence linear.
    pub fn nesting_levels(&self) -> Vec<usize> {
        fn mentioned(t: &TyExpr, out: &mut Vec<DataId>) {
            match t {
                TyExpr::Data(d) => out.push(*d),
                TyExpr::Arrow(a, b) => {
                    mentioned(a, out);
                    mentioned(b, out);
                }
                TyExpr::Tuple(parts) => {
                    for p in parts.iter() {
                        mentioned(p, out);
                    }
                }
                TyExpr::Int | TyExpr::Bool | TyExpr::Unit => {}
            }
        }
        let n = self.datatypes.len();
        let mut uses: Vec<Vec<DataId>> = vec![Vec::new(); n];
        for (i, info) in self.datatypes.iter().enumerate() {
            let mut ms = Vec::new();
            for &c in &info.cons {
                for t in self.con(c).arg_tys.iter() {
                    mentioned(t, &mut ms);
                }
            }
            ms.sort_unstable();
            ms.dedup();
            ms.retain(|d| d.index() != i); // self-reference is free
            uses[i] = ms;
        }
        // Declarations can only reference earlier (or own) datatypes, so a
        // single pass in declaration order suffices.
        let mut level = vec![0usize; n];
        for i in 0..n {
            level[i] = uses[i]
                .iter()
                .map(|d| level[d.index()] + 1)
                .max()
                .unwrap_or(0);
        }
        level
    }

    /// The maximum datatype nesting level (0 when there are no datatypes).
    pub fn max_nesting_level(&self) -> usize {
        self.nesting_levels().into_iter().max().unwrap_or(0)
    }
}

/// A complete, closed program: an expression arena, binder table, label
/// table and datatype environment.
///
/// Programs are built by the [`crate::parser`] or the
/// [`crate::builder::ProgramBuilder`]; both guarantee the invariants that
/// the analyses rely on (closedness, distinct binders, unique labels,
/// saturated constructors and primitives).
#[derive(Clone, Debug)]
pub struct Program {
    pub(crate) interner: Interner,
    pub(crate) exprs: Vec<ExprKind>,
    /// Source span per occurrence, parallel to `exprs`. `None` for
    /// programmatically built nodes (workload generators, inliner output).
    pub(crate) spans: Vec<Option<Span>>,
    pub(crate) vars: Vec<Symbol>,
    pub(crate) labels: Vec<ExprId>,
    pub(crate) data: DataEnv,
    pub(crate) root: ExprId,
}

impl Program {
    /// Parses a program from surface syntax. Convenience for
    /// [`crate::parser::parse`].
    pub fn parse(source: &str) -> Result<Program, crate::parser::ParseError> {
        crate::parser::parse(source)
    }

    /// The root (top-level) expression.
    pub fn root(&self) -> ExprId {
        self.root
    }

    /// The shape of expression `id`.
    #[inline]
    pub fn kind(&self, id: ExprId) -> &ExprKind {
        &self.exprs[id.index()]
    }

    /// Number of expression occurrences — the paper's program-size measure
    /// `n` ("number of syntax nodes").
    pub fn size(&self) -> usize {
        self.exprs.len()
    }

    /// Iterates over every expression occurrence.
    pub fn exprs(&self) -> impl Iterator<Item = ExprId> + '_ {
        (0..self.exprs.len()).map(ExprId::from_index)
    }

    /// Number of binders.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Iterates over every binder.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.vars.len()).map(VarId::from_index)
    }

    /// Source name of a binder.
    pub fn var_name(&self, var: VarId) -> &str {
        self.interner.resolve(self.vars[var.index()])
    }

    /// Number of abstraction labels (= number of abstractions).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Restores the arena to an earlier extent: every table is
    /// append-only during fragment parsing (see
    /// [`crate::parser::parse_fragment`]), so truncating the parallel
    /// vectors — and un-interning the symbols and datatype declarations
    /// minted since — is an exact undo. Used by the session layer to
    /// rewind a failed or superseded fragment without cloning the arena.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn rewind(
        &mut self,
        exprs: usize,
        vars: usize,
        labels: usize,
        datatypes: usize,
        cons: usize,
        interned: usize,
        root: ExprId,
    ) {
        self.exprs.truncate(exprs);
        self.spans.truncate(exprs);
        self.vars.truncate(vars);
        self.labels.truncate(labels);
        self.data.rewind(datatypes, cons);
        self.interner.rewind(interned);
        self.root = root;
    }

    /// Iterates over every abstraction label.
    pub fn all_labels(&self) -> impl Iterator<Item = Label> + '_ {
        (0..self.labels.len()).map(Label::from_index)
    }

    /// The abstraction expression carrying `label`.
    pub fn lam_of_label(&self, label: Label) -> ExprId {
        self.labels[label.index()]
    }

    /// If `id` is an abstraction, its label.
    pub fn label_of(&self, id: ExprId) -> Option<Label> {
        match self.kind(id) {
            ExprKind::Lam { label, .. } => Some(*label),
            _ => None,
        }
    }

    /// The source span of occurrence `id`, if known. Parsed programs carry
    /// spans on every node (desugared nodes inherit their binding's span);
    /// programmatically built nodes have none.
    pub fn span(&self, id: ExprId) -> Option<Span> {
        self.spans[id.index()]
    }

    /// Returns an alpha-renamed copy: every binder's source name becomes
    /// `rename(current_name, binder_index)`. Because binders are identities
    /// rather than names ([`VarId`]), the structure, ids, labels and spans
    /// are untouched — renaming is purely a change of the name table, which
    /// is exactly alpha-conversion for this representation.
    pub fn rename_binders(&self, mut rename: impl FnMut(&str, usize) -> String) -> Program {
        let names: Vec<String> = (0..self.vars.len())
            .map(|i| rename(self.interner.resolve(self.vars[i]), i))
            .collect();
        let mut out = self.clone();
        for (i, name) in names.iter().enumerate() {
            out.vars[i] = out.interner.intern(name);
        }
        out
    }

    /// The datatype environment.
    pub fn data_env(&self) -> &DataEnv {
        &self.data
    }

    /// The interner used for names in this program.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Calls `f` on every direct child of `id`, in left-to-right order.
    pub fn for_each_child(&self, id: ExprId, mut f: impl FnMut(ExprId)) {
        match self.kind(id) {
            ExprKind::Var(_) | ExprKind::Lit(_) => {}
            ExprKind::Lam { body, .. } => f(*body),
            ExprKind::App { func, arg } => {
                f(*func);
                f(*arg);
            }
            ExprKind::Let { rhs, body, .. } => {
                f(*rhs);
                f(*body);
            }
            ExprKind::LetRec { lambda, body, .. } => {
                f(*lambda);
                f(*body);
            }
            ExprKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                f(*cond);
                f(*then_branch);
                f(*else_branch);
            }
            ExprKind::Record(items) => {
                for &e in items.iter() {
                    f(e);
                }
            }
            ExprKind::Proj { tuple, .. } => f(*tuple),
            ExprKind::Con { args, .. } => {
                for &e in args.iter() {
                    f(e);
                }
            }
            ExprKind::Case {
                scrutinee,
                arms,
                default,
            } => {
                f(*scrutinee);
                for arm in arms.iter() {
                    f(arm.body);
                }
                if let Some(d) = default {
                    f(*d);
                }
            }
            ExprKind::Prim { args, .. } => {
                for &e in args.iter() {
                    f(e);
                }
            }
        }
    }

    /// Direct children of `id`, in left-to-right order.
    pub fn children(&self, id: ExprId) -> Vec<ExprId> {
        let mut out = Vec::new();
        self.for_each_child(id, |c| out.push(c));
        out
    }

    /// Number of non-trivial applications, the query population used by the
    /// paper's benchmarks: applications `(e₁ e₂)` where `e₁` is neither a
    /// variable bound to a known function (`fun`/`letrec` identifier) nor a
    /// literal abstraction.
    pub fn nontrivial_apps(&self) -> Vec<ExprId> {
        // Variables bound by letrec are "function identifiers".
        let mut is_fun_ident = vec![false; self.vars.len()];
        for id in self.exprs() {
            if let ExprKind::LetRec { binder, .. } = self.kind(id) {
                is_fun_ident[binder.index()] = true;
            }
        }
        self.exprs()
            .filter(|&id| {
                if let ExprKind::App { func, .. } = self.kind(id) {
                    match self.kind(*func) {
                        ExprKind::Lam { .. } => false,
                        ExprKind::Var(v) => !is_fun_ident[v.index()],
                        _ => true,
                    }
                } else {
                    false
                }
            })
            .collect()
    }

    /// All application sites `(e₁ e₂)`.
    pub fn app_sites(&self) -> Vec<ExprId> {
        self.exprs()
            .filter(|&id| matches!(self.kind(id), ExprKind::App { .. }))
            .collect()
    }

    /// Pretty-prints the program to surface syntax. Convenience for
    /// [`crate::pretty::pretty`].
    pub fn to_source(&self) -> String {
        crate::pretty::pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prim_arities_are_consistent_with_names() {
        for op in PrimOp::ALL {
            assert!(op.arity() <= 2);
            assert!(!op.name().is_empty());
        }
    }

    #[test]
    fn effectful_prims() {
        assert!(PrimOp::Print.is_effectful());
        assert!(PrimOp::ReadInt.is_effectful());
        assert!(!PrimOp::Add.is_effectful());
        assert!(!PrimOp::IntEq.is_effectful());
    }

    #[test]
    fn data_env_declarations() {
        let mut interner = Interner::new();
        let mut env = DataEnv::default();
        let list = env.declare_data(interner.intern("intlist")).unwrap();
        let nil = env
            .declare_con(list, interner.intern("Nil"), Vec::new())
            .unwrap();
        let cons = env
            .declare_con(
                list,
                interner.intern("Cons"),
                vec![TyExpr::Int, TyExpr::Data(list)],
            )
            .unwrap();
        assert_eq!(env.arity(nil), 0);
        assert_eq!(env.arity(cons), 2);
        assert_eq!(env.data(list).cons, vec![nil, cons]);
        assert_eq!(env.con_by_name(interner.intern("Cons")), Some(cons));
        // duplicate names are rejected
        assert!(env.declare_data(interner.intern("intlist")).is_none());
        assert!(env
            .declare_con(list, interner.intern("Nil"), Vec::new())
            .is_none());
    }

    #[test]
    fn index_round_trip() {
        let e = ExprId::from_index(42);
        assert_eq!(e.index(), 42);
        assert_eq!(format!("{e:?}"), "ExprId(42)");
    }

    #[test]
    fn nesting_levels_follow_the_papers_definition() {
        let mut interner = Interner::new();
        let mut env = DataEnv::default();
        // level 0: a self-recursive list of ints.
        let ilist = env.declare_data(interner.intern("ilist")).unwrap();
        env.declare_con(ilist, interner.intern("INil"), Vec::new())
            .unwrap();
        env.declare_con(
            ilist,
            interner.intern("ICons"),
            vec![TyExpr::Int, TyExpr::Data(ilist)],
        )
        .unwrap();
        // level 1: a list of int-lists.
        let llist = env.declare_data(interner.intern("llist")).unwrap();
        env.declare_con(llist, interner.intern("LNil"), Vec::new())
            .unwrap();
        env.declare_con(
            llist,
            interner.intern("LCons"),
            vec![TyExpr::Data(ilist), TyExpr::Data(llist)],
        )
        .unwrap();
        // level 2: wraps the level-1 datatype.
        let wrap = env.declare_data(interner.intern("wrap")).unwrap();
        env.declare_con(wrap, interner.intern("W"), vec![TyExpr::Data(llist)])
            .unwrap();

        assert_eq!(env.nesting_levels(), vec![0, 1, 2]);
        assert_eq!(env.max_nesting_level(), 2);
    }
}
