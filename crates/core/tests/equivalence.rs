//! Propositions 1 & 2 (paper, Section 3): the transitive closure of the
//! subtransitive graph gives *exactly* the results of standard CFA.
//!
//! For every expression occurrence and every binder, `labels_of` computed
//! by reachability on the LC′ graph must equal the label sets of the cubic
//! algorithm — on the lambda/let/letrec/if/record fragment under any
//! policy, and on datatype programs under [`DatatypePolicy::Exact`]. The
//! congruences ≈₁/≈₂ and `Forget` must over-approximate (never lose a
//! label standard CFA finds).

use stcfa_cfa0::Cfa0;
use stcfa_core::{Analysis, AnalysisOptions, DatatypePolicy};
use stcfa_lambda::Program;

/// Programs in the lambda/let/letrec/if/record fragment (no datatypes):
/// every policy must match standard CFA exactly.
const EXACT_FRAGMENT: &[&str] = &[
    "(fn x => x x) (fn y => y)",
    "(fn i => i) (fn z => z)",
    "fn f => fn x => f (f x)",
    "fun id x = x; val a = id (fn u => u); val b = id (fn v => v); a",
    "(fn f => fn g => f (g (fn z => z))) (fn p => p) (fn q => q)",
    "if true then fn a => a else fn b => b",
    "let val t = fn s => s s in t (fn w => w) end",
    "fun loop x = loop x; loop (fn n => n)",
    "fun compose f = fn g => fn x => f (g x);\
     compose (fn a => a) (fn b => b) (fn c => c)",
    "#1 ((fn x => x), (fn y => y))",
    "#2 ((fn x => x), (fn y => y))",
    "let val p = ((fn a => a), ((fn b => b), (fn c => c))) in #1 (#2 p) end",
    "(fn p => #1 p) ((fn x => x), (fn y => y))",
    "fun twice f = fn x => f (f x); twice (fn h => h) (fn k => k)",
    "val church2 = fn f => fn x => f (f x); church2 (fn s => s) (fn z => z)",
    "fun apply f = fn x => f x; apply (fn m => m) (fn n => n)",
    "(fn cond => if true then cond (fn l => l) else cond (fn r => r)) (fn h => h)",
    "fun fact n = if n = 0 then 1 else n * fact (n - 1); fact 5",
    "val u = print 1; (fn x => x) (fn y => y)",
    // Deep record nesting with functions inside.
    "let val q = ((fn a => a), (fn b => b)) in (#1 q) (#2 q) end",
    // The paper's cubic-benchmark cell, size 1.
    "fun fs x = x; fun bs x = x; fun f1 x = x; fun b1 x = x;\
     val x1 = b1 (fs f1); val y1 = (bs b1) f1; y1",
    // Mutual recursion through the `and` desugaring (pack + wrappers).
    "fun even n = if n = 0 then true else odd (n - 1)\n\
     and odd n = if n = 0 then false else even (n - 1);\n\
     if even 4 then fn t => t else fn f => f",
    // Higher-order result positions.
    "fun const k = fn u => k; (const (fn a => a)) (fn b => b)",
    "(fn f => (f (fn x => x), f (fn y => y))) (fn z => z)",
];

/// Non-recursive datatype programs: `Exact` must match standard CFA.
const EXACT_DATATYPES: &[&str] = &[
    "datatype wrap = W of (int -> int); case W(fn x => x) of W(f) => f",
    "datatype choice = L of (int -> int) | R of (int -> int);\n\
     case L(fn a => a) of L(f) => f | R(g) => g",
    "datatype pairbox = P of (int -> int) * (int -> int);\n\
     case P(fn a => a, fn b => b) of P(f, g) => f",
    "datatype pairbox = P of (int -> int) * (int -> int);\n\
     case P(fn a => a, fn b => b) of P(f, g) => g",
    "datatype opt = None | Some of (int -> int);\n\
     fun get o = case o of Some(f) => f | None => fn d => d;\n\
     get (Some(fn x => x + 1))",
];

/// Recursive datatype programs whose *exact* de-constructor closure is
/// finite: Exact must match standard CFA.
const RECURSIVE_DATATYPES: &[&str] = &[
    "datatype flist = FNil | FCons of (int -> int) * flist;\n\
     fun head xs = case xs of FCons(f, t) => f | FNil => fn z => z;\n\
     head (FCons(fn a => a + 1, FCons(fn b => b * 2, FNil)))",
    "datatype flist = FNil | FCons of (int -> int) * flist;\n\
     val xs = FCons(fn a => a, FCons(fn b => b, FNil));\n\
     case xs of FCons(f, t) => (case t of FCons(g, u) => g | FNil => f) | FNil => fn z => z",
];

/// Recursive-traversal programs whose exact closure is *infinite* (the
/// de-constructor chains keep growing — the 2-NPDA-hardness territory of
/// Section 6): only the congruences terminate, and they must be sound.
const UNBOUNDED_DATATYPES: &[&str] = &[
    "datatype flist = FNil | FCons of (int -> int) * flist;\n\
     fun nth xs = case xs of FCons(f, t) => nth t | FNil => fn z => z;\n\
     nth (FCons(fn a => a, FNil))",
    "datatype tree = Leaf of (int -> int) | Node of tree * tree;\n\
     fun left t = case t of Node(l, r) => left l | Leaf(f) => f;\n\
     left (Node(Leaf(fn a => a), Leaf(fn b => b)))",
];

fn assert_exact(src: &str, policy: DatatypePolicy) {
    let p = Program::parse(src).unwrap_or_else(|e| panic!("parse {src:?}: {e}"));
    let a = Analysis::run_with(
        &p,
        AnalysisOptions {
            policy,
            max_nodes: None,
        },
    )
    .unwrap_or_else(|e| panic!("analysis {src:?}: {e}"));
    a.check_invariants()
        .unwrap_or_else(|e| panic!("closure invariants violated for {src:?}: {e}"));
    let cfa = Cfa0::analyze(&p);
    for e in p.exprs() {
        assert_eq!(
            a.labels_of(e),
            cfa.labels(&p, e),
            "label sets differ at {e:?} ({:?}) under {policy:?} in {src:?}",
            p.kind(e),
        );
    }
    for v in p.vars() {
        assert_eq!(
            a.labels_of_binder(v),
            cfa.var_labels(&p, v),
            "binder sets differ at {v:?} (`{}`) under {policy:?} in {src:?}",
            p.var_name(v),
        );
    }
}

fn assert_sound(src: &str, policy: DatatypePolicy) {
    let p = Program::parse(src).unwrap_or_else(|e| panic!("parse {src:?}: {e}"));
    let a = Analysis::run_with(
        &p,
        AnalysisOptions {
            policy,
            max_nodes: None,
        },
    )
    .unwrap_or_else(|e| panic!("analysis {src:?}: {e}"));
    let cfa = Cfa0::analyze(&p);
    for e in p.exprs() {
        let sub = a.labels_of(e);
        for l in cfa.labels(&p, e) {
            assert!(
                sub.contains(&l),
                "policy {policy:?} lost label {l:?} at {e:?} in {src:?}",
            );
        }
    }
}

#[test]
fn lambda_fragment_matches_standard_cfa_under_every_policy() {
    for src in EXACT_FRAGMENT {
        for policy in [
            DatatypePolicy::Forget,
            DatatypePolicy::Congruence1,
            DatatypePolicy::Congruence2,
            DatatypePolicy::Exact,
        ] {
            assert_exact(src, policy);
        }
    }
}

#[test]
fn nonrecursive_datatypes_match_under_exact_policy() {
    for src in EXACT_DATATYPES {
        assert_exact(src, DatatypePolicy::Exact);
    }
}

#[test]
fn nonrecursive_datatypes_are_sound_under_congruences() {
    for src in EXACT_DATATYPES {
        for policy in [
            DatatypePolicy::Forget,
            DatatypePolicy::Congruence1,
            DatatypePolicy::Congruence2,
        ] {
            assert_sound(src, policy);
        }
    }
}

#[test]
fn recursive_datatypes_match_under_exact_policy() {
    // These particular programs have finite exact closures.
    for src in RECURSIVE_DATATYPES {
        assert_exact(src, DatatypePolicy::Exact);
    }
}

#[test]
fn recursive_datatypes_are_sound_under_congruences() {
    for src in RECURSIVE_DATATYPES.iter().chain(UNBOUNDED_DATATYPES) {
        for policy in [
            DatatypePolicy::Forget,
            DatatypePolicy::Congruence1,
            DatatypePolicy::Congruence2,
        ] {
            assert_sound(src, policy);
        }
    }
}

#[test]
fn untyped_programs_exceed_the_budget_as_the_paper_predicts() {
    // Ω has no simple type; Section 4: "For untyped (or recursively typed)
    // programs, there is no bound, and our algorithm may not terminate."
    let p = Program::parse("(fn x => x x) (fn x => x x)").unwrap();
    let r = Analysis::run(&p);
    assert!(matches!(
        r,
        Err(stcfa_core::AnalysisError::BudgetExceeded { .. })
    ));
    // Same for exact traversal of a recursive datatype.
    for src in UNBOUNDED_DATATYPES {
        let p = Program::parse(src).unwrap();
        let r = Analysis::run_with(
            &p,
            AnalysisOptions {
                policy: DatatypePolicy::Exact,
                max_nodes: Some(10_000),
            },
        );
        assert!(matches!(
            r,
            Err(stcfa_core::AnalysisError::BudgetExceeded { .. })
        ));
    }
}

#[test]
fn congruence2_is_at_least_as_precise_as_congruence1() {
    for src in EXACT_DATATYPES.iter().chain(RECURSIVE_DATATYPES) {
        let p = Program::parse(src).unwrap();
        let a1 = Analysis::run_with(
            &p,
            AnalysisOptions {
                policy: DatatypePolicy::Congruence1,
                max_nodes: None,
            },
        )
        .unwrap();
        let a2 = Analysis::run_with(
            &p,
            AnalysisOptions {
                policy: DatatypePolicy::Congruence2,
                max_nodes: None,
            },
        )
        .unwrap();
        for e in p.exprs() {
            let l1 = a1.labels_of(e);
            let l2 = a2.labels_of(e);
            for l in &l2 {
                assert!(
                    l1.contains(l),
                    "≈₂ found {l:?} at {e:?} that ≈₁ missed in {src:?} — ≈₁ must be coarser",
                );
            }
        }
    }
}
