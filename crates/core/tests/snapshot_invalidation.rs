//! A frozen [`SessionSnapshot`] describes the incremental session *as of
//! one generation*: extending the session afterwards must turn every use
//! of the stale snapshot into a checked [`StaleSnapshot`] error — never a
//! silently under-approximate answer.

use stcfa_core::incremental::IncrementalAnalysis;
use stcfa_core::{QueryEngine, StaleSnapshot};
use stcfa_lambda::session::SessionProgram;

fn session_with(fragments: &[&str]) -> (SessionProgram, IncrementalAnalysis) {
    let mut session = SessionProgram::new();
    let mut analysis = IncrementalAnalysis::new(Default::default());
    for f in fragments {
        session.define(f).unwrap();
        analysis.update(&session).unwrap();
    }
    (session, analysis)
}

#[test]
fn fresh_snapshot_answers() {
    let (session, analysis) = session_with(&["fun id x = x;", "val a = id (fn u => u);"]);
    let snap = analysis.freeze(session.program());
    assert_eq!(snap.generation(), analysis.generation());
    let engine = snap.engine(&analysis).expect("snapshot is current");
    for e in session.program().exprs() {
        assert_eq!(
            engine.labels_of(e),
            analysis.labels_of(session.program(), e),
            "frozen session engine diverged at {e:?}"
        );
    }
}

#[test]
fn extending_the_session_stales_the_snapshot() {
    let (mut session, mut analysis) = session_with(&["fun id x = x;"]);
    let gen_before = analysis.generation();
    let snap = analysis.freeze(session.program());
    assert!(snap.engine(&analysis).is_ok());

    // Grow the session: the old snapshot no longer describes the graph
    // (the new fragment joins a second lambda into `id`'s flows).
    session.define("val b = id (fn v => v);").unwrap();
    let delta = analysis.update(&session).unwrap();
    assert!(delta.new_nodes > 0, "the fragment adds graph nodes");
    assert!(analysis.generation() > gen_before);

    let err = snap
        .engine(&analysis)
        .expect_err("stale snapshot must be refused");
    assert_eq!(
        err,
        StaleSnapshot {
            frozen_at: gen_before,
            current: analysis.generation()
        }
    );
    // The error is a real std error with both generations in the message.
    let msg = err.to_string();
    assert!(msg.contains("stale"), "got: {msg}");
    assert!(msg.contains(&gen_before.to_string()), "got: {msg}");
}

#[test]
fn refreezing_after_update_answers_again() {
    let (mut session, mut analysis) = session_with(&["fun id x = x;"]);
    let old = analysis.freeze(session.program());
    session.define("id (fn w => w)").unwrap();
    analysis.update(&session).unwrap();
    assert!(old.engine(&analysis).is_err());

    let fresh = analysis.freeze(session.program());
    let engine = fresh
        .engine(&analysis)
        .expect("refrozen snapshot is current");
    for e in session.program().exprs() {
        assert_eq!(
            engine.labels_of(e),
            analysis.labels_of(session.program(), e)
        );
    }
    // Both snapshots carry their generation tag on the engine itself too.
    assert_eq!(engine.generation(), Some(analysis.generation()));
}

#[test]
fn noop_update_keeps_snapshots_fresh() {
    let (session, mut analysis) = session_with(&["fun id x = x;", "id (fn u => u)"]);
    let snap = analysis.freeze(session.program());
    // Re-running update with nothing new defined adds nothing and must not
    // invalidate existing snapshots.
    let delta = analysis.update(&session).unwrap();
    assert_eq!(delta, Default::default());
    assert!(
        snap.engine(&analysis).is_ok(),
        "no-op update must not stale the snapshot"
    );
}

/// The server-shaped workload: one writer extends the session while many
/// readers keep consulting a snapshot frozen before the update. Every
/// consult must be a correct answer for generation `g` or a checked
/// [`StaleSnapshot`] carrying `frozen_at == g` — never a panic and never
/// an answer under a generation the snapshot does not describe.
#[test]
fn concurrent_readers_see_ok_or_stale_never_garbage() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::RwLock;

    let (mut session, analysis) = session_with(&["fun id x = x;"]);
    let frozen_at = analysis.generation();
    let snap = analysis.freeze(session.program());
    let root = session.program().root();
    let expected_labels = analysis.labels_of(session.program(), root);

    let shared = RwLock::new(analysis);
    let updated = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                // Spin until we have witnessed the post-update world: the
                // interesting interleavings are the ones racing the writer.
                loop {
                    let analysis = shared.read().unwrap();
                    match snap.engine(&analysis) {
                        Ok(engine) => {
                            // Ok is only legal while the generation still
                            // matches, and the answer must be the frozen
                            // generation's answer.
                            assert_eq!(analysis.generation(), frozen_at);
                            assert_eq!(
                                engine.labels_of(root),
                                expected_labels,
                                "fresh snapshot answered with wrong labels"
                            );
                        }
                        Err(err) => {
                            assert_eq!(err.frozen_at, frozen_at);
                            assert!(err.current > frozen_at);
                            return;
                        }
                    }
                    drop(analysis);
                    if updated.load(Ordering::SeqCst) {
                        // Writer finished and we still saw Ok: re-read once
                        // more; the next engine() call must observe Err.
                        let analysis = shared.read().unwrap();
                        assert!(snap.engine(&analysis).is_err());
                        return;
                    }
                    std::thread::yield_now();
                }
            });
        }
        scope.spawn(|| {
            session.define("val b = id (fn v => v);").unwrap();
            let mut analysis = shared.write().unwrap();
            analysis.update(&session).unwrap();
            assert!(analysis.generation() > frozen_at);
            updated.store(true, Ordering::SeqCst);
        });
    });

    let analysis = shared.read().unwrap();
    let err = snap
        .engine(&analysis)
        .expect_err("post-update use must be refused");
    assert_eq!(err.frozen_at, frozen_at);
}

#[test]
fn plain_freeze_is_untagged() {
    let p = stcfa_lambda::Program::parse("(fn x => x) (fn y => y)").unwrap();
    let a = stcfa_core::Analysis::run(&p).unwrap();
    assert_eq!(QueryEngine::freeze(&a).generation(), None);
}
