//! A frozen [`SessionSnapshot`] describes the incremental session *as of
//! one generation*: extending the session afterwards must turn every use
//! of the stale snapshot into a checked [`StaleSnapshot`] error — never a
//! silently under-approximate answer.

use stcfa_core::incremental::IncrementalAnalysis;
use stcfa_core::{QueryEngine, StaleSnapshot};
use stcfa_lambda::session::SessionProgram;

fn session_with(fragments: &[&str]) -> (SessionProgram, IncrementalAnalysis) {
    let mut session = SessionProgram::new();
    let mut analysis = IncrementalAnalysis::new(Default::default());
    for f in fragments {
        session.define(f).unwrap();
        analysis.update(&session).unwrap();
    }
    (session, analysis)
}

#[test]
fn fresh_snapshot_answers() {
    let (session, analysis) = session_with(&["fun id x = x;", "val a = id (fn u => u);"]);
    let snap = analysis.freeze(session.program());
    assert_eq!(snap.generation(), analysis.generation());
    let engine = snap.engine(&analysis).expect("snapshot is current");
    for e in session.program().exprs() {
        assert_eq!(
            engine.labels_of(e),
            analysis.labels_of(session.program(), e),
            "frozen session engine diverged at {e:?}"
        );
    }
}

#[test]
fn extending_the_session_stales_the_snapshot() {
    let (mut session, mut analysis) = session_with(&["fun id x = x;"]);
    let gen_before = analysis.generation();
    let snap = analysis.freeze(session.program());
    assert!(snap.engine(&analysis).is_ok());

    // Grow the session: the old snapshot no longer describes the graph
    // (the new fragment joins a second lambda into `id`'s flows).
    session.define("val b = id (fn v => v);").unwrap();
    let delta = analysis.update(&session).unwrap();
    assert!(delta.new_nodes > 0, "the fragment adds graph nodes");
    assert!(analysis.generation() > gen_before);

    let err = snap.engine(&analysis).expect_err("stale snapshot must be refused");
    assert_eq!(
        err,
        StaleSnapshot { frozen_at: gen_before, current: analysis.generation() }
    );
    // The error is a real std error with both generations in the message.
    let msg = err.to_string();
    assert!(msg.contains("stale"), "got: {msg}");
    assert!(msg.contains(&gen_before.to_string()), "got: {msg}");
}

#[test]
fn refreezing_after_update_answers_again() {
    let (mut session, mut analysis) = session_with(&["fun id x = x;"]);
    let old = analysis.freeze(session.program());
    session.define("id (fn w => w)").unwrap();
    analysis.update(&session).unwrap();
    assert!(old.engine(&analysis).is_err());

    let fresh = analysis.freeze(session.program());
    let engine = fresh.engine(&analysis).expect("refrozen snapshot is current");
    for e in session.program().exprs() {
        assert_eq!(engine.labels_of(e), analysis.labels_of(session.program(), e));
    }
    // Both snapshots carry their generation tag on the engine itself too.
    assert_eq!(engine.generation(), Some(analysis.generation()));
}

#[test]
fn noop_update_keeps_snapshots_fresh() {
    let (session, mut analysis) = session_with(&["fun id x = x;", "id (fn u => u)"]);
    let snap = analysis.freeze(session.program());
    // Re-running update with nothing new defined adds nothing and must not
    // invalidate existing snapshots.
    let delta = analysis.update(&session).unwrap();
    assert_eq!(delta, Default::default());
    assert!(snap.engine(&analysis).is_ok(), "no-op update must not stale the snapshot");
}

#[test]
fn plain_freeze_is_untagged() {
    let p = stcfa_lambda::Program::parse("(fn x => x) (fn y => y)").unwrap();
    let a = stcfa_core::Analysis::run(&p).unwrap();
    assert_eq!(QueryEngine::freeze(&a).generation(), None);
}
