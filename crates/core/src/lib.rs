//! Linear-time subtransitive control-flow analysis — the primary
//! contribution of Heintze & McAllester, *Linear-time Subtransitive Control
//! Flow Analysis* (PLDI 1997).
//!
//! The standard (inclusion-based, monovariant) CFA algorithm runs in
//! `O(n³)` because it intertwines transitive closure with the discovery of
//! new flow edges. This crate implements the paper's decoupling: a **build
//! phase** adds `O(n)` basic edges over program nodes extended with
//! `dom(·)`/`ran(·)` (and `proj_j(·)`, de-constructor) operator nodes, and a
//! demand-driven **close phase** applies the primed closure rules. For
//! bounded-type programs the resulting graph has `O(k·n)` nodes and edges,
//! and its *transitive closure* is exactly standard CFA — so:
//!
//! - `l ∈ L(e)`?, `L(e)`, and `{e : l ∈ L(e)}` are all single graph
//!   reachabilities (`O(n)`);
//! - listing all label sets is `O(n²)` (optimal — that is the output size);
//! - CFA-consuming applications (see `stcfa-apps`) run directly on the
//!   graph in linear time.
//!
//! # Quickstart
//!
//! ```
//! use stcfa_lambda::Program;
//! use stcfa_core::Analysis;
//!
//! let p = Program::parse("(fn x => x x) (fn y => y)").unwrap();
//! let analysis = Analysis::run(&p).unwrap();
//! let labels = analysis.labels_of(p.root());
//! assert_eq!(labels.len(), 1); // only λy.y can be the program's value
//! ```
//!
//! # Datatypes
//!
//! Recursive datatypes make the exact node space unbounded (the problem is
//! 2-NPDA-hard, per the paper's Section 6); choose a
//! [`DatatypePolicy`]: `Forget`, the linear congruence ≈₁ (default), the
//! finer congruence ≈₂, or `Exact` under a node budget.
//!
//! # Termination
//!
//! Types are never consulted, but they bound the construction: on programs
//! without simple types the close phase can diverge, so every run carries a
//! node budget and reports [`AnalysisError::BudgetExceeded`] instead of
//! hanging. [`hybrid::HybridCfa`] falls back to the cubic algorithm in that
//! case, giving the conclusion's "linear on bounded-type programs,
//! terminating on all programs" combination.

#![warn(missing_docs)]

pub mod analysis;
pub mod dot;
pub mod expand;
pub mod graph;
pub mod hybrid;
pub mod incremental;
pub mod node;
pub mod polyvariance;
pub mod queryeng;

pub use analysis::{Analysis, AnalysisError, AnalysisOptions, AnalysisStats};
pub use incremental::{SessionSnapshot, StaleSnapshot};
pub use node::{DatatypePolicy, NodeId, NodeKind, NodeTable};
pub use polyvariance::{PolyAnalysis, PolyOptions};
pub use queryeng::{Answer, EngineParts, EnginePartsRef, Query, QueryEngine, QueryStats};
