//! Graphviz (DOT) export of the subtransitive control-flow graph, for
//! inspection and documentation. Abstractions are drawn as boxes, operator
//! nodes (`dom`/`ran`/`proj`/de-constructors) as ellipses, class nodes as
//! diamonds.

use std::fmt::Write as _;

use stcfa_lambda::{ExprKind, Program};

use crate::analysis::Analysis;
use crate::node::{NodeId, NodeKind};

/// A short human-readable description of a node.
pub fn describe(analysis: &Analysis, program: &Program, n: NodeId) -> String {
    match analysis.nodes().kind(n) {
        NodeKind::Expr(e) => match program.kind(e) {
            ExprKind::Lam { label, param, .. } => {
                format!("λ{}#{}", program.var_name(*param), label.index())
            }
            ExprKind::App { .. } => format!("app@{}", e.index()),
            ExprKind::Record(_) => format!("record@{}", e.index()),
            ExprKind::Con { con, .. } => format!(
                "{}@{}",
                program
                    .interner()
                    .resolve(program.data_env().con(*con).name),
                e.index()
            ),
            ExprKind::Lit(l) => format!("{l:?}@{}", e.index()),
            other => {
                let mut name = format!("{other:?}");
                name.truncate(name.find([' ', '{']).unwrap_or(name.len()));
                format!("{}@{}", name.to_lowercase(), e.index())
            }
        },
        NodeKind::Binder(v) => format!("var {}", program.var_name(v)),
        NodeKind::Dom(p) => format!("dom({})", describe(analysis, program, p)),
        NodeKind::Ran(p) => format!("ran({})", describe(analysis, program, p)),
        NodeKind::Proj(j, p) => format!("proj{}({})", j + 1, describe(analysis, program, p)),
        NodeKind::DeCon { con, index, of } => format!(
            "{}⁻¹[{}]({})",
            program.interner().resolve(program.data_env().con(con).name),
            index,
            describe(analysis, program, of)
        ),
        NodeKind::DataClass(d) => format!(
            "class {}",
            program.interner().resolve(program.data_env().data(d).name)
        ),
        NodeKind::Slot(c, i) => format!(
            "slot {}[{}]",
            program.interner().resolve(program.data_env().con(c).name),
            i
        ),
        NodeKind::DeConClass { data, base } => format!(
            "chains {}@{}",
            program
                .interner()
                .resolve(program.data_env().data(data).name),
            base.index()
        ),
        NodeKind::TopFun => "⊤fun".into(),
    }
}

/// Renders the whole graph in DOT syntax.
pub fn render(analysis: &Analysis, program: &Program) -> String {
    let mut out = String::from("digraph subtransitive {\n  rankdir=LR;\n  node [fontsize=10];\n");
    for i in 0..analysis.node_count() {
        let n = NodeId::from_index(i);
        let shape = match analysis.nodes().kind(n) {
            NodeKind::Expr(e) if matches!(program.kind(e), ExprKind::Lam { .. }) => "box",
            NodeKind::Expr(_) | NodeKind::Binder(_) => "plaintext",
            NodeKind::DataClass(_)
            | NodeKind::Slot(..)
            | NodeKind::DeConClass { .. }
            | NodeKind::TopFun => "diamond",
            _ => "ellipse",
        };
        let label = describe(analysis, program, n).replace('"', "'");
        writeln!(out, "  n{i} [label=\"{label}\", shape={shape}];").unwrap();
    }
    for i in 0..analysis.node_count() {
        for &s in analysis.succs(NodeId::from_index(i)) {
            writeln!(out, "  n{i} -> n{s};").unwrap();
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_the_worked_example() {
        let p = Program::parse("(fn x => x x) (fn y => y)").unwrap();
        let a = Analysis::run(&p).unwrap();
        let dot = render(&a, &p);
        assert!(dot.starts_with("digraph subtransitive {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("λx#0"));
        assert!(dot.contains("dom(λx#0)"));
        assert!(dot.contains("->"));
        // One node statement per graph node.
        let node_lines = dot.lines().filter(|l| l.contains("[label=")).count();
        assert_eq!(node_lines, a.node_count());
    }

    #[test]
    fn describes_class_nodes() {
        let p = Program::parse(
            "datatype flist = FNil | FCons of (int -> int) * flist;\n\
             case FCons(fn a => a, FNil) of FCons(f, t) => f | FNil => fn z => z",
        )
        .unwrap();
        let a = Analysis::run(&p).unwrap();
        let dot = render(&a, &p);
        assert!(dot.contains("class flist") || dot.contains("slot FCons"));
    }
}
