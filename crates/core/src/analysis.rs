//! The linear-time subtransitive CFA: build phase, demand-driven close
//! phase, and reachability queries.
//!
//! The build phase makes one linear pass over the program, adding the basic
//! edges of system LC′ (paper, Section 3) plus the Section 6 extensions:
//!
//! ```text
//! (ABS-1)   x → dom(λˡx.e)                 (ABS-2)  ran(λˡx.e) → e
//! (APP-1)   dom(e₁) → e₂                   (APP-2)  (e₁ e₂) → ran(e₁)
//! (LETREC)  letrec f = λˡx.e₁ in e₂ → e₂,  f → λˡx.e₁
//! (RECORD)  proj_j((e₁,…,eₙ)) → e_j        (PROJ)   #j e → proj_j(e)
//! (CON)     c_i⁻¹(c(e₁,…,eₙ)) → e_i        (CASE)   xᵢ → c_i⁻¹(scrutinee)
//! ```
//!
//! The close phase then applies the *demand-driven* closure rules — an
//! operator application `op(n)` participates only once it has an incoming
//! edge:
//!
//! ```text
//! (CLOSE-DOM′)  n₁ → n₂, m → dom(n₂)  ⟹  dom(n₂) → dom(n₁)
//! (CLOSE-RAN′)  n₁ → n₂, m → ran(n₁)  ⟹  ran(n₁) → ran(n₂)
//! ```
//!
//! plus covariant analogues for `proj_j` and de-constructors. The
//! transitive closure of the resulting graph is exactly standard CFA
//! (Propositions 1 and 2); every query below is plain reachability.
//!
//! Types are never consulted (except that datatype *declarations* name the
//! component types used by the ≈₁/≈₂ congruences): as in the paper, types
//! only bound the node count. For untyped or recursively-typed programs the
//! close phase may not terminate, so a configurable node budget aborts with
//! [`AnalysisError::BudgetExceeded`] — see `crate::hybrid` for the
//! fall-back driver.

use std::error::Error;
use std::fmt;

use stcfa_lambda::{ExprId, ExprKind, Label, Program, VarId};

use crate::graph::{DemandOp, SubGraph};
use crate::node::{DatatypePolicy, NodeId, NodeKind, NodeTable};

/// Knobs for one analysis run.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnalysisOptions {
    /// Datatype treatment (default: the paper's ≈₁ congruence).
    pub policy: DatatypePolicy,
    /// Node budget; `None` picks `64·|P| + 4096`, far above the `2–3·|P|`
    /// the paper reports for real programs, so only genuinely unbounded
    /// closures (untyped programs under [`DatatypePolicy::Exact`]) hit it.
    pub max_nodes: Option<usize>,
}

/// Why an analysis run failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnalysisError {
    /// The close phase exceeded the node budget; the program is (or behaves
    /// like) an unbounded-type program.
    BudgetExceeded {
        /// Nodes created when the run aborted.
        nodes: usize,
        /// The budget in force.
        budget: usize,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::BudgetExceeded { nodes, budget } => write!(
                f,
                "subtransitive close phase exceeded its node budget ({nodes} nodes > {budget}); \
                 the program likely has unbounded types"
            ),
        }
    }
}

impl Error for AnalysisError {}

/// Size and work counters, matching the build/close split the paper's
/// Tables 1–2 report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Nodes after the build phase (≈ syntax nodes).
    pub build_nodes: usize,
    /// Edges after the build phase.
    pub build_edges: usize,
    /// Nodes added by the close phase (the paper's key constant-factor
    /// measure: "typically no more than the number of nodes in the build
    /// phase").
    pub close_nodes: usize,
    /// Edges added by the close phase.
    pub close_edges: usize,
    /// Edges popped and examined by the closure loop.
    pub edges_processed: u64,
    /// Demand registrations performed.
    pub demand_registrations: u64,
    /// Queries answered by a frozen [`QueryEngine`](crate::QueryEngine)
    /// over this analysis (zero until one is frozen and consulted).
    pub queries_answered: u64,
    /// Query-engine cache hits: answers served from the completed summary
    /// sweep or from a memoized demand-mode component.
    pub query_cache_hits: u64,
    /// Query-engine cache misses: demand-mode components computed plus
    /// full summary sweeps performed.
    pub query_cache_misses: u64,
}

impl AnalysisStats {
    /// Total nodes.
    pub fn nodes(&self) -> usize {
        self.build_nodes + self.close_nodes
    }

    /// Total edges.
    pub fn edges(&self) -> usize {
        self.build_edges + self.close_edges
    }
}

/// A finished subtransitive control-flow graph with its query interface.
///
/// The graph is *subtransitive*: its transitive closure — not the edge set
/// itself — is the standard-CFA flow relation, and queries are formulated
/// as reachability:
///
/// - [`Analysis::labels_of`] — `L(e)` in `O(graph)` (paper, Algorithm 2);
/// - [`Analysis::label_reaches`] — `l ∈ L(e)?` in `O(graph)` (Algorithm 1);
/// - [`Analysis::exprs_with_label`] — `{e : l ∈ L(e)}` in `O(graph)`;
/// - [`Analysis::all_label_sets`] — all of `L` in `O(n·graph)` (optimal
///   quadratic output size).
#[derive(Clone, Debug)]
pub struct Analysis {
    nodes: NodeTable,
    pub(crate) graph: SubGraph,
    policy: DatatypePolicy,
    stats: AnalysisStats,
    /// Expression occurrence → node (variable occurrences share their
    /// binder's node).
    pub(crate) expr_nodes: Vec<NodeId>,
    /// Binder → node.
    pub(crate) binder_nodes: Vec<NodeId>,
    /// Node → abstraction label (`u32::MAX` = none).
    pub(crate) node_label: Vec<u32>,
    /// Label → the abstraction's node.
    pub(crate) label_nodes: Vec<NodeId>,
    /// Binder → its variable occurrences, for inverse queries.
    pub(crate) occurrences: Vec<Vec<ExprId>>,
}

impl Analysis {
    /// Runs the analysis with default options (≈₁ datatype congruence,
    /// default node budget).
    pub fn run(program: &Program) -> Result<Analysis, AnalysisError> {
        Self::run_with(program, AnalysisOptions::default())
    }

    /// Runs the analysis with explicit options.
    pub fn run_with(
        program: &Program,
        options: AnalysisOptions,
    ) -> Result<Analysis, AnalysisError> {
        let mut engine = Engine::new(program, options);
        engine.build();
        engine.finish_build_stats();
        engine.close()?;
        Ok(engine.finish())
    }

    /// Runs the analysis but, on budget exhaustion, returns the *partial*
    /// graph together with the error instead of discarding it. The partial
    /// result is **not sound** (closure consequences are missing); it
    /// exists for diagnostics — inspecting what grew when a program turns
    /// out not to be bounded-type.
    #[doc(hidden)]
    pub fn run_partial(
        program: &Program,
        options: AnalysisOptions,
    ) -> (Analysis, Option<AnalysisError>) {
        let mut engine = Engine::new(program, options);
        engine.build();
        engine.finish_build_stats();
        let err = engine.close().err();
        (engine.finish(), err)
    }

    /// The datatype policy the analysis ran with.
    pub fn policy(&self) -> DatatypePolicy {
        self.policy
    }

    /// Size and work counters.
    pub fn stats(&self) -> AnalysisStats {
        self.stats
    }

    /// Total number of graph nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of graph edges.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// The node representing expression occurrence `e`.
    pub fn node_of_expr(&self, e: ExprId) -> NodeId {
        self.expr_nodes[e.index()]
    }

    /// The node representing binder `v`.
    pub fn node_of_binder(&self, v: VarId) -> NodeId {
        self.binder_nodes[v.index()]
    }

    /// The node table (for consumers that walk the graph directly, such as
    /// the linear-time applications in `stcfa-apps`).
    pub fn nodes(&self) -> &NodeTable {
        &self.nodes
    }

    /// Successors of a node (towards value *sources*).
    pub fn succs(&self, n: NodeId) -> &[u32] {
        self.graph.succs(n)
    }

    /// Predecessors of a node (towards value *consumers*).
    pub fn preds(&self, n: NodeId) -> &[u32] {
        self.graph.preds(n)
    }

    /// The abstraction label carried by node `n`, if it is an abstraction.
    pub fn label_of_node(&self, n: NodeId) -> Option<Label> {
        match self.node_label[n.index()] {
            u32::MAX => None,
            l => Some(Label::from_index(l as usize)),
        }
    }

    /// The node of the abstraction labelled `l`.
    pub fn node_of_label(&self, l: Label) -> NodeId {
        self.label_nodes[l.index()]
    }

    /// Every node carrying label `l` — the abstraction itself plus, in a
    /// polyvariant analysis, its instance roots.
    pub fn nodes_with_label(&self, l: Label) -> Vec<NodeId> {
        self.node_label
            .iter()
            .enumerate()
            .filter(|&(_i, &v)| v == l.index() as u32)
            .map(|(i, &_v)| NodeId::from_index(i))
            .collect()
    }

    /// Algorithm 2: `L(e)` — the labels of all abstractions reachable from
    /// `e`'s node, sorted. Linear in the (linear-sized) graph.
    pub fn labels_of(&self, e: ExprId) -> Vec<Label> {
        self.labels_from_node(self.node_of_expr(e))
    }

    /// `L(x)` for a binder.
    pub fn labels_of_binder(&self, v: VarId) -> Vec<Label> {
        self.labels_from_node(self.node_of_binder(v))
    }

    /// Labels reachable from an arbitrary graph node.
    pub fn labels_from_node(&self, start: NodeId) -> Vec<Label> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![start];
        seen[start.index()] = true;
        let mut out = Vec::new();
        while let Some(n) = stack.pop() {
            if let Some(l) = self.label_of_node(n) {
                out.push(l);
            }
            for &s in self.graph.succs(n) {
                if !seen[s as usize] {
                    seen[s as usize] = true;
                    stack.push(NodeId::from_index(s as usize));
                }
            }
        }
        out.sort_unstable();
        out.dedup(); // several nodes may carry one label under polyvariance
        out
    }

    /// Algorithm 1: is `l ∈ L(e)`? Early-exit reachability.
    pub fn label_reaches(&self, e: ExprId, l: Label) -> bool {
        let target = self.label_nodes[l.index()];
        let start = self.node_of_expr(e);
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![start];
        seen[start.index()] = true;
        while let Some(n) = stack.pop() {
            if n == target {
                return true;
            }
            for &s in self.graph.succs(n) {
                if !seen[s as usize] {
                    seen[s as usize] = true;
                    stack.push(NodeId::from_index(s as usize));
                }
            }
        }
        false
    }

    /// A *witness path* for `l ∈ L(e)`: the sequence of graph nodes from
    /// `e`'s node to the abstraction's node, or `None` if `l ∉ L(e)`.
    ///
    /// This is exactly the paper's Proposition 1 in the concrete: the
    /// single DTC transition `e → λˡx.e′` spelled out as the multi-step
    /// LC path `e → n₁ → … → nₖ → λˡx.e′`.
    pub fn witness_path(&self, e: ExprId, l: Label) -> Option<Vec<NodeId>> {
        let start = self.node_of_expr(e);
        let target = self.label_nodes[l.index()];
        let mut parent: Vec<u32> = vec![u32::MAX; self.nodes.len()];
        let mut seen = vec![false; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[start.index()] = true;
        queue.push_back(start);
        while let Some(n) = queue.pop_front() {
            if n == target {
                let mut path = vec![n];
                let mut cur = n;
                while cur != start {
                    cur = NodeId::from_index(parent[cur.index()] as usize);
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            for &s in self.graph.succs(n) {
                if !seen[s as usize] {
                    seen[s as usize] = true;
                    parent[s as usize] = n.index() as u32;
                    queue.push_back(NodeId::from_index(s as usize));
                }
            }
        }
        None
    }

    /// Inverse query: `{e : l ∈ L(e)}` — all expression occurrences that
    /// may evaluate to the abstraction labelled `l`. Reverse reachability;
    /// linear in the graph.
    pub fn exprs_with_label(&self, l: Label) -> Vec<ExprId> {
        let mut seen = vec![false; self.nodes.len()];
        let start = self.label_nodes[l.index()];
        let mut stack = vec![start];
        seen[start.index()] = true;
        let mut out = Vec::new();
        while let Some(n) = stack.pop() {
            match self.nodes.kind(n) {
                NodeKind::Expr(e) => out.push(e),
                NodeKind::Binder(v) => out.extend(self.occurrences[v.index()].iter().copied()),
                _ => {}
            }
            for &p in self.graph.preds(n) {
                if !seen[p as usize] {
                    seen[p as usize] = true;
                    stack.push(NodeId::from_index(p as usize));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All label sets (complete CFA information): one [`Analysis::labels_of`]
    /// per occurrence — the optimal quadratic-time listing.
    pub fn all_label_sets(&self, program: &Program) -> Vec<(ExprId, Vec<Label>)> {
        program.exprs().map(|e| (e, self.labels_of(e))).collect()
    }

    /// The functions callable from application site `app` (`L(e₁)` for
    /// `app = (e₁ e₂)`), or `None` if `app` is not an application.
    pub fn call_targets(&self, program: &Program, app: ExprId) -> Option<Vec<Label>> {
        match program.kind(app) {
            ExprKind::App { func, .. } => Some(self.labels_of(*func)),
            _ => None,
        }
    }

    /// Verifies the closure invariants of the finished graph:
    ///
    /// 1. **demand registration** — every operator node with an incoming
    ///    edge has the corresponding demand registered on its operand;
    /// 2. **saturation** — for every flow edge `n₁ → n₂` and every
    ///    registered demand, the primed closure rule's conclusion edge is
    ///    present (so the close phase really reached its fixpoint).
    ///
    /// `O(edges × ops)`; intended for tests and post-incremental-update
    /// audits, not production paths. Returns a description of the first
    /// violation, if any.
    pub fn check_invariants(&self) -> Result<(), String> {
        let op_of = |kind: NodeKind| -> Option<(NodeId, DemandOp)> {
            match kind {
                NodeKind::Dom(n) => Some((n, DemandOp::Dom)),
                NodeKind::Ran(n) => Some((n, DemandOp::Ran)),
                NodeKind::Proj(j, n) => Some((n, DemandOp::Proj(j))),
                NodeKind::DeCon { con, index, of } => Some((of, DemandOp::Decon(con, index))),
                NodeKind::DeConClass { data, base } => Some((base, DemandOp::DeconData(data))),
                _ => None,
            }
        };
        // 1. Demand registration.
        for id in self.nodes.ids() {
            if self.graph.preds(id).is_empty() {
                continue;
            }
            if let Some((base, op)) = op_of(self.nodes.kind(id)) {
                if !self.graph.is_demanded(base, op) {
                    return Err(format!(
                        "operator node {id:?} has in-edges but no demand {op:?} on {base:?}"
                    ));
                }
            }
        }
        // 2. Saturation of the primed rules. Reconstruct each conclusion
        // node by *lookup* (never creation): a missing node means the rule
        // did not fire.
        let lookup = |op: DemandOp, base: NodeId| -> Option<NodeId> {
            match op {
                DemandOp::Dom => self.nodes.get(NodeKind::Dom(base)),
                DemandOp::Ran => self.nodes.get(NodeKind::Ran(base)),
                DemandOp::Proj(j) => self.nodes.get(NodeKind::Proj(j, base)),
                // De-constructor conclusions depend on the policy's
                // canonicalization; checked only for exact nodes.
                DemandOp::Decon(con, index) => self.nodes.get(NodeKind::DeCon {
                    con,
                    index,
                    of: base,
                }),
                DemandOp::DeconData(data) => self.nodes.get(NodeKind::DeConClass {
                    data,
                    base: self.nodes.base(base),
                }),
            }
        };
        for u in self.nodes.ids() {
            for &sv in self.graph.succs(u) {
                let v = NodeId::from_index(sv as usize);
                // Contravariant: demanded dom(v) ⟹ dom(v) → dom(u).
                if self.graph.is_demanded(v, DemandOp::Dom) {
                    let (Some(src), Some(dst)) =
                        (lookup(DemandOp::Dom, v), lookup(DemandOp::Dom, u))
                    else {
                        return Err(format!(
                            "CLOSE-DOM conclusion nodes missing for edge {u:?} → {v:?}"
                        ));
                    };
                    if src != dst && !self.graph.has_edge(src, dst) {
                        return Err(format!(
                            "unsaturated CLOSE-DOM: {u:?} → {v:?} demands {src:?} → {dst:?}"
                        ));
                    }
                }
                // Covariant rules on u.
                for &op in self.graph.demands(u) {
                    if matches!(op, DemandOp::Dom) {
                        continue;
                    }
                    let (Some(src), Some(dst)) = (lookup(op, u), lookup(op, v)) else {
                        return Err(format!(
                            "covariant conclusion nodes missing for {op:?} on {u:?} → {v:?}"
                        ));
                    };
                    if src != dst && !self.graph.has_edge(src, dst) {
                        return Err(format!(
                            "unsaturated {op:?}: {u:?} → {v:?} demands {src:?} → {dst:?}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// The analysis engine. `pub(crate)` so that the polyvariant driver
/// (`crate::polyvariance`) can interleave its instance-copying step between
/// the build and close phases.
pub(crate) struct Engine<'a> {
    pub(crate) program: &'a Program,
    pub(crate) nodes: NodeTable,
    pub(crate) graph: SubGraph,
    policy: DatatypePolicy,
    budget: usize,
    stats: AnalysisStats,
    pub(crate) expr_nodes: Vec<NodeId>,
    pub(crate) binder_nodes: Vec<NodeId>,
    top_fun: Option<NodeId>,
    /// Variable occurrences that receive their *own* node (not their
    /// binder's) and no flow edge — the polyvariant instantiation points.
    pub(crate) poly_split: std::collections::HashSet<ExprId>,
    /// Extra label carriers applied at `finish` (instance roots carry the
    /// label of the abstraction they instantiate).
    pub(crate) extra_labels: Vec<(NodeId, Label)>,
}

/// The program-independent state of an [`Engine`], detachable so that an
/// incremental analysis (see [`crate::incremental`]) can persist it across
/// program growth.
#[derive(Clone, Debug)]
pub(crate) struct EngineParts {
    pub(crate) nodes: NodeTable,
    pub(crate) graph: SubGraph,
    pub(crate) expr_nodes: Vec<NodeId>,
    pub(crate) binder_nodes: Vec<NodeId>,
    pub(crate) top_fun: Option<NodeId>,
    pub(crate) stats: AnalysisStats,
}

impl Default for EngineParts {
    fn default() -> Self {
        EngineParts {
            nodes: NodeTable::new(),
            graph: SubGraph::new(),
            expr_nodes: Vec::new(),
            binder_nodes: Vec::new(),
            top_fun: None,
            stats: AnalysisStats::default(),
        }
    }
}

impl<'a> Engine<'a> {
    pub(crate) fn new(program: &'a Program, options: AnalysisOptions) -> Engine<'a> {
        Self::resume(program, options, EngineParts::default())
    }

    /// Re-attaches persisted state to a (grown) program.
    pub(crate) fn resume(
        program: &'a Program,
        options: AnalysisOptions,
        parts: EngineParts,
    ) -> Engine<'a> {
        let budget = options.max_nodes.unwrap_or(64 * program.size() + 4096);
        Engine {
            program,
            nodes: parts.nodes,
            graph: parts.graph,
            policy: options.policy,
            budget,
            stats: parts.stats,
            expr_nodes: parts.expr_nodes,
            binder_nodes: parts.binder_nodes,
            top_fun: parts.top_fun,
            poly_split: std::collections::HashSet::new(),
            extra_labels: Vec::new(),
        }
    }

    /// Detaches the persistent state.
    pub(crate) fn into_parts(self) -> EngineParts {
        EngineParts {
            nodes: self.nodes,
            graph: self.graph,
            expr_nodes: self.expr_nodes,
            binder_nodes: self.binder_nodes,
            top_fun: self.top_fun,
            stats: self.stats,
        }
    }

    pub(crate) fn finish_build_stats(&mut self) {
        self.stats.build_nodes = self.nodes.len();
        self.stats.build_edges = self.graph.edge_count();
    }

    // --- build phase --------------------------------------------------------

    pub(crate) fn build(&mut self) {
        self.build_delta();
    }

    /// Adds nodes and basic edges for every binder/expression not yet
    /// covered (all of them on a fresh engine; only the new suffix when
    /// resuming over a grown arena).
    pub(crate) fn build_delta(&mut self) {
        let program = self.program;
        let expr_start = self.expr_nodes.len();
        // Binder nodes first, then expression nodes (variable occurrences
        // share their binder's node).
        for i in self.binder_nodes.len()..program.var_count() {
            let v = VarId::from_index(i);
            let n = self.nodes.intern(NodeKind::Binder(v));
            self.binder_nodes.push(n);
        }
        for i in expr_start..program.size() {
            let e = ExprId::from_index(i);
            let n = match program.kind(e) {
                ExprKind::Var(v) if !self.poly_split.contains(&e) => self.binder_nodes[v.index()],
                _ => self.nodes.intern(NodeKind::Expr(e)),
            };
            self.expr_nodes.push(n);
        }
        self.graph.ensure_nodes(self.nodes.len());

        for e in program.exprs().skip(expr_start) {
            let en = self.expr_nodes[e.index()];
            match program.kind(e) {
                ExprKind::Var(_) | ExprKind::Lit(_) | ExprKind::Prim { .. } => {}
                ExprKind::Lam { param, body, .. } => {
                    // ABS-1: x → dom(λ) — this edge *demands* dom on λ.
                    let dom = self.nodes.intern(NodeKind::Dom(en));
                    self.demand(en, DemandOp::Dom);
                    self.graph.add_edge(self.binder_nodes[param.index()], dom);
                    // ABS-2: ran(λ) → body (no demand: ran(λ) only gains
                    // meaning once some application asks for it).
                    let ran = self.nodes.intern(NodeKind::Ran(en));
                    self.graph.add_edge(ran, self.expr_nodes[body.index()]);
                }
                ExprKind::App { func, arg } => {
                    let fnode = self.expr_nodes[func.index()];
                    // APP-1: dom(e₁) → e₂.
                    let dom = self.nodes.intern(NodeKind::Dom(fnode));
                    self.graph.add_edge(dom, self.expr_nodes[arg.index()]);
                    // APP-2: (e₁ e₂) → ran(e₁) — demands ran on e₁.
                    let ran = self.nodes.intern(NodeKind::Ran(fnode));
                    self.demand(fnode, DemandOp::Ran);
                    self.graph.add_edge(en, ran);
                }
                ExprKind::Let { binder, rhs, body } => {
                    self.graph.add_edge(
                        self.binder_nodes[binder.index()],
                        self.expr_nodes[rhs.index()],
                    );
                    self.graph.add_edge(en, self.expr_nodes[body.index()]);
                }
                ExprKind::LetRec {
                    binder,
                    lambda,
                    body,
                } => {
                    self.graph.add_edge(
                        self.binder_nodes[binder.index()],
                        self.expr_nodes[lambda.index()],
                    );
                    self.graph.add_edge(en, self.expr_nodes[body.index()]);
                }
                ExprKind::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    self.graph
                        .add_edge(en, self.expr_nodes[then_branch.index()]);
                    self.graph
                        .add_edge(en, self.expr_nodes[else_branch.index()]);
                }
                ExprKind::Record(items) => {
                    // proj_j((e₁,…,eₙ)) → e_j.
                    for (j, &item) in items.iter().enumerate() {
                        let proj = self.nodes.intern(NodeKind::Proj(j as u32, en));
                        self.graph.add_edge(proj, self.expr_nodes[item.index()]);
                    }
                }
                ExprKind::Proj { index, tuple } => {
                    // #j e → proj_j(e) — demands proj_j on e.
                    let tnode = self.expr_nodes[tuple.index()];
                    let proj = self.nodes.intern(NodeKind::Proj(*index, tnode));
                    self.demand(tnode, DemandOp::Proj(*index));
                    self.graph.add_edge(en, proj);
                }
                ExprKind::Con { con, args } => {
                    // c_i⁻¹(c(…)) → e_i (under Forget, contents are simply
                    // not tracked).
                    for (i, &arg) in args.iter().enumerate() {
                        if let Some(d) =
                            self.nodes
                                .decon(self.program, self.policy, *con, i as u32, en)
                        {
                            self.graph.add_edge(d, self.expr_nodes[arg.index()]);
                        }
                    }
                }
                ExprKind::Case {
                    scrutinee,
                    arms,
                    default,
                } => {
                    let snode = self.expr_nodes[scrutinee.index()];
                    for arm in arms.iter() {
                        self.graph.add_edge(en, self.expr_nodes[arm.body.index()]);
                        for (i, &b) in arm.binders.iter().enumerate() {
                            let bn = self.binder_nodes[b.index()];
                            match self.nodes.decon(
                                self.program,
                                self.policy,
                                arm.con,
                                i as u32,
                                snode,
                            ) {
                                Some(d) => {
                                    // xᵢ → c_i⁻¹(scrutinee) — demands the
                                    // de-constructor on the scrutinee.
                                    if let Some(op) = self.decon_demand_op(d, arm.con, i as u32) {
                                        self.demand(snode, op);
                                    }
                                    self.graph.add_edge(bn, d);
                                }
                                None => {
                                    // Forget: the extracted value could be
                                    // any abstraction in the program.
                                    let top = self.top_fun();
                                    self.graph.add_edge(bn, top);
                                }
                            }
                        }
                    }
                    if let Some(d) = default {
                        self.graph.add_edge(en, self.expr_nodes[d.index()]);
                    }
                }
            }
        }
    }

    /// The demand operator to register on the operand of a de-constructor
    /// node, or `None` when the node is a global class (≈₁) that needs no
    /// flow propagation.
    fn decon_demand_op(
        &self,
        decon_node: NodeId,
        con: stcfa_lambda::ConId,
        i: u32,
    ) -> Option<DemandOp> {
        match self.nodes.kind(decon_node) {
            NodeKind::DataClass(_) | NodeKind::Slot(..) | NodeKind::TopFun => None,
            NodeKind::DeConClass { data, .. } => Some(DemandOp::DeconData(data)),
            _ => Some(DemandOp::Decon(con, i)),
        }
    }

    pub(crate) fn top_fun(&mut self) -> NodeId {
        if let Some(t) = self.top_fun {
            return t;
        }
        let t = self.nodes.intern(NodeKind::TopFun);
        // TopFun reaches every abstraction in the program.
        for e in self.program.exprs() {
            if matches!(self.program.kind(e), ExprKind::Lam { .. }) {
                let lam = self.expr_nodes[e.index()];
                self.graph.add_edge(t, lam);
            }
        }
        self.top_fun = Some(t);
        t
    }

    pub(crate) fn demand(&mut self, n: NodeId, op: DemandOp) {
        self.graph.pending_demands.push_back((n, op));
    }

    /// Adds an edge, registering the demand implied by the target's shape
    /// (used when copying summary edges in the polyvariant driver; the
    /// normal build/close paths register demands at their creation sites).
    pub(crate) fn add_edge_demanding(&mut self, u: NodeId, v: NodeId) {
        match self.nodes.kind(v) {
            NodeKind::Dom(n) => self.demand(n, DemandOp::Dom),
            NodeKind::Ran(n) => self.demand(n, DemandOp::Ran),
            NodeKind::Proj(j, n) => self.demand(n, DemandOp::Proj(j)),
            NodeKind::DeCon { con, index, of } => self.demand(of, DemandOp::Decon(con, index)),
            NodeKind::DeConClass { data, base } => self.demand(base, DemandOp::DeconData(data)),
            NodeKind::Expr(_)
            | NodeKind::Binder(_)
            | NodeKind::DataClass(_)
            | NodeKind::Slot(..)
            | NodeKind::TopFun => {}
        }
        self.graph.add_edge(u, v);
    }

    // --- close phase --------------------------------------------------------

    pub(crate) fn close(&mut self) -> Result<(), AnalysisError> {
        let res = self.close_inner();
        self.stats.close_nodes = self.nodes.len() - self.stats.build_nodes;
        self.stats.close_edges = self.graph.edge_count() - self.stats.build_edges;
        res
    }

    fn close_inner(&mut self) -> Result<(), AnalysisError> {
        loop {
            if self.nodes.len() > self.budget {
                return Err(AnalysisError::BudgetExceeded {
                    nodes: self.nodes.len(),
                    budget: self.budget,
                });
            }
            if let Some((n, op)) = self.graph.pending_demands.pop_front() {
                if self.graph.register_demand(n, op) {
                    self.stats.demand_registrations += 1;
                    self.retro_fire(n, op);
                }
            } else if let Some((u, v)) = self.graph.pending_edges.pop_front() {
                self.stats.edges_processed += 1;
                self.fire_edge(u, v);
            } else {
                break;
            }
        }
        Ok(())
    }

    /// A new demand `(n, op)`: apply the closure rule over the edges already
    /// adjacent to `n`.
    fn retro_fire(&mut self, n: NodeId, op: DemandOp) {
        match op {
            DemandOp::Dom => {
                // CLOSE-DOM′ is contravariant: edges n₁ → n (into n).
                let preds: Vec<u32> = self.graph.preds(n).to_vec();
                for p in preds {
                    self.conclude(DemandOp::Dom, n, NodeId::from_index(p as usize));
                }
            }
            _ => {
                // Covariant rules: edges n → n₂ (out of n).
                let succs: Vec<u32> = self.graph.succs(n).to_vec();
                for s in succs {
                    self.conclude(op, n, NodeId::from_index(s as usize));
                }
            }
        }
    }

    /// A new edge `u → v`: apply every closure rule whose demand is already
    /// registered.
    fn fire_edge(&mut self, u: NodeId, v: NodeId) {
        if self.graph.is_demanded(v, DemandOp::Dom) {
            self.conclude(DemandOp::Dom, v, u);
        }
        let ops: Vec<DemandOp> = self
            .graph
            .demands(u)
            .iter()
            .copied()
            .filter(|op| !matches!(op, DemandOp::Dom))
            .collect();
        for op in ops {
            self.conclude(op, u, v);
        }
    }

    /// Adds the conclusion `op(src_base) → op(dst_base)` and propagates the
    /// demand to `dst_base`. For `Dom`, callers pass `(n₂, n₁)` so that the
    /// conclusion is `dom(n₂) → dom(n₁)`.
    fn conclude(&mut self, op: DemandOp, src_base: NodeId, dst_base: NodeId) {
        let src = self.apply_op(op, src_base);
        let dst = self.apply_op(op, dst_base);
        let (Some(src), Some(dst)) = (src, dst) else {
            return;
        };
        if src == dst {
            return;
        }
        // The new edge lands *into* an operator node: the demand travels.
        if let Some(next) = self.transferred_demand(op, dst) {
            self.demand(dst_base, next);
            // ≈₂ class nodes are keyed by the *canonical* base, which can
            // differ from `dst_base` when deconstruction chains through
            // another operator node (recursive datatypes). The value also
            // flows along the canonical node's own edges, so the demand
            // must sit there too or those conclusions never fire.
            if matches!(next, DemandOp::DeconData(_)) {
                let canonical = self.nodes.base(dst_base);
                if canonical != dst_base {
                    self.demand(canonical, next);
                }
            }
        }
        self.graph.add_edge(src, dst);
    }

    /// Materializes `op(base)`.
    fn apply_op(&mut self, op: DemandOp, base: NodeId) -> Option<NodeId> {
        match op {
            DemandOp::Dom => Some(self.nodes.intern(NodeKind::Dom(base))),
            DemandOp::Ran => Some(self.nodes.intern(NodeKind::Ran(base))),
            DemandOp::Proj(j) => Some(self.nodes.intern(NodeKind::Proj(j, base))),
            DemandOp::Decon(c, i) => self.nodes.decon(self.program, self.policy, c, i, base),
            DemandOp::DeconData(d) => {
                let b = self.nodes.base(base);
                Some(self.nodes.intern(NodeKind::DeConClass { data: d, base: b }))
            }
        }
    }

    /// The demand to register on the destination base so the closure keeps
    /// propagating; `None` when the destination is a global class node.
    fn transferred_demand(&self, op: DemandOp, dst_node: NodeId) -> Option<DemandOp> {
        match self.nodes.kind(dst_node) {
            NodeKind::DataClass(_) | NodeKind::Slot(..) | NodeKind::TopFun => None,
            NodeKind::DeConClass { data, .. } => Some(DemandOp::DeconData(data)),
            _ => Some(op),
        }
    }

    pub(crate) fn finish(self) -> Analysis {
        let program = self.program;
        let mut node_label = vec![u32::MAX; self.nodes.len()];
        let mut label_nodes = vec![NodeId::from_index(0); program.label_count()];
        for l in program.all_labels() {
            let lam = program.lam_of_label(l);
            let n = self.expr_nodes[lam.index()];
            node_label[n.index()] = l.index() as u32;
            label_nodes[l.index()] = n;
        }
        for (n, l) in &self.extra_labels {
            node_label[n.index()] = l.index() as u32;
        }
        let mut occurrences: Vec<Vec<ExprId>> = vec![Vec::new(); program.var_count()];
        for e in program.exprs() {
            if let ExprKind::Var(v) = program.kind(e) {
                occurrences[v.index()].push(e);
            }
        }
        let mut graph = self.graph;
        graph.ensure_nodes(self.nodes.len());
        Analysis {
            nodes: self.nodes,
            graph,
            policy: self.policy,
            stats: self.stats,
            expr_nodes: self.expr_nodes,
            binder_nodes: self.binder_nodes,
            node_label,
            label_nodes,
            occurrences,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_lambda::Program;

    fn labels_at_root(src: &str) -> Vec<usize> {
        let p = Program::parse(src).unwrap();
        let a = Analysis::run(&p).unwrap();
        a.labels_of(p.root())
            .into_iter()
            .map(|l| l.index())
            .collect()
    }

    #[test]
    fn paper_example_self_application() {
        // Section 3's worked example: (λx.(x x)) (λ'x'.x') — the multi-step
        // LC path must reach λ'.
        assert_eq!(labels_at_root("(fn x => x x) (fn y => y)"), vec![1]);
    }

    #[test]
    fn identity_application() {
        assert_eq!(labels_at_root("(fn i => i) (fn z => z)"), vec![1]);
    }

    #[test]
    fn nested_application_chain() {
        // (λf.λg.f (g (λz.z))) id id — the result is λz.z.
        let labels = labels_at_root("(fn f => fn g => f (g (fn z => z))) (fn p => p) (fn q => q)");
        assert_eq!(labels.len(), 1);
    }

    #[test]
    fn monovariant_join_point() {
        let src = "\
            fun id x = x;\n\
            val a = id (fn u => u);\n\
            val b = id (fn v => v);\n\
            a";
        assert_eq!(labels_at_root(src).len(), 2);
    }

    #[test]
    fn records_are_field_precise() {
        assert_eq!(labels_at_root("#1 ((fn x => x), (fn y => y))").len(), 1);
    }

    #[test]
    fn inverse_query_finds_occurrences() {
        let p = Program::parse("(fn x => x x) (fn y => y)").unwrap();
        let a = Analysis::run(&p).unwrap();
        let id_label = Label::from_index(1);
        let exprs = a.exprs_with_label(id_label);
        // λ'y.y flows to: itself, x (both occurrences), (x x), the root.
        assert!(exprs.len() >= 4, "got {exprs:?}");
        assert!(exprs.contains(&p.root()));
    }

    #[test]
    fn label_reaches_is_consistent_with_labels_of() {
        let p = Program::parse("fun id x = x; val a = id (fn u => u); a").unwrap();
        let a = Analysis::run(&p).unwrap();
        for e in p.exprs() {
            let ls = a.labels_of(e);
            for l in p.all_labels() {
                assert_eq!(a.label_reaches(e, l), ls.contains(&l));
            }
        }
    }

    #[test]
    fn build_phase_is_linear_sized() {
        let p = Program::parse("fun id x = x; val a = id id; val b = id id; b").unwrap();
        let a = Analysis::run(&p).unwrap();
        let s = a.stats();
        assert!(
            s.build_nodes <= 3 * p.size(),
            "build nodes {} vs size {}",
            s.build_nodes,
            p.size()
        );
        assert!(
            s.close_nodes <= 4 * s.build_nodes,
            "close should stay small"
        );
    }

    #[test]
    fn untyped_self_application_stays_within_budget_or_errors() {
        // ω ω has no simple type; with a tiny budget the analysis either
        // finishes (it may — ω ω is small) or reports budget exhaustion,
        // but never hangs.
        let p = Program::parse("(fn x => x x) (fn x => x x)").unwrap();
        let r = Analysis::run_with(
            &p,
            AnalysisOptions {
                max_nodes: Some(50),
                ..Default::default()
            },
        );
        match r {
            Ok(a) => assert!(a.node_count() <= 50),
            Err(AnalysisError::BudgetExceeded { budget, .. }) => assert_eq!(budget, 50),
        }
    }

    #[test]
    fn datatype_extraction_congruence1() {
        let src = "\
            datatype flist = FNil | FCons of (int -> int) * flist;\n\
            fun head xs = case xs of FCons(f, t) => f | FNil => fn z => z;\n\
            head (FCons(fn a => a + 1, FNil))";
        let labels = labels_at_root(src);
        // Both the stored function and the FNil fallback can emerge.
        assert_eq!(labels.len(), 2);
    }

    #[test]
    fn call_targets() {
        let p = Program::parse("(fn x => x) 1").unwrap();
        let a = Analysis::run(&p).unwrap();
        assert_eq!(a.call_targets(&p, p.root()).unwrap().len(), 1);
    }

    #[test]
    fn witness_paths_are_real_graph_paths() {
        let p = Program::parse("(fn x => x x) (fn y => y)").unwrap();
        let a = Analysis::run(&p).unwrap();
        let l = Label::from_index(1); // λy.y
        let path = a.witness_path(p.root(), l).expect("l ∈ L(root)");
        assert!(
            path.len() >= 3,
            "Proposition 1: a multi-step path, got {}",
            path.len()
        );
        // Every hop is an actual edge.
        for w in path.windows(2) {
            assert!(
                a.succs(w[0]).contains(&(w[1].index() as u32)),
                "non-edge in witness path"
            );
        }
        assert_eq!(path.first().copied(), Some(a.node_of_expr(p.root())));
        assert_eq!(a.label_of_node(*path.last().unwrap()), Some(l));
        // No witness when the label is unreachable.
        assert!(a.witness_path(p.root(), Label::from_index(0)).is_none());
    }
}
