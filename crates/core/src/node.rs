//! Nodes of the subtransitive control-flow graph.
//!
//! Section 3 of the paper extends the program's expression nodes with
//! *constructed* nodes `dom(n)` and `ran(n)`; Section 6 adds record
//! projections `proj_j(n)` and per-constructor de-constructors `c_i⁻¹(n)`.
//! This module hash-conses all of them into a dense [`NodeId`] space and
//! implements the two datatype node *congruences* (≈₁ and ≈₂) the paper
//! uses to bound the node count in the presence of recursive datatypes.

use std::collections::HashMap;

use stcfa_lambda::{ConId, DataId, ExprId, Program, TyExpr, VarId};

/// Identity of one node in the subtransitive graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(u32);

impl NodeId {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a node id from a dense index (as returned in adjacency
    /// lists by [`crate::Analysis::succs`]/[`crate::Analysis::preds`]).
    pub fn from_index(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node count overflow"))
    }
}

/// How to treat (recursive) datatypes — the Section 6 accuracy/complexity
/// trade-off.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DatatypePolicy {
    /// Ignore datatypes: a function stored in a data structure and later
    /// extracted could be *any* abstraction in the program. Linear, very
    /// coarse ("One possibility is to ignore recursive data types…").
    Forget,
    /// The paper's coarser congruence ≈₁: de-constructor nodes are merged
    /// by the *type* of the extracted component (datatype-typed components
    /// collapse to one node per datatype; other components to one node per
    /// constructor slot). Linear node count for bounded-type programs.
    ///
    /// This is the default: it matches the paper's recommended operating
    /// point for a linear-time analysis with datatypes.
    #[default]
    Congruence1,
    /// The paper's finer congruence ≈₂: de-constructor chains are merged
    /// only when they extract the same datatype from the same *base node*.
    /// Strictly more accurate than ≈₁; up to quadratic nodes in general,
    /// linear if datatype nesting depth is bounded.
    Congruence2,
    /// No congruence at all: exact de-constructor nodes. Matches standard
    /// CFA precision but need not terminate on recursive datatypes — use
    /// together with a node budget (see `AnalysisOptions::max_nodes`).
    Exact,
}

/// The shape of one node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NodeKind {
    /// A program expression occurrence. Variable occurrences are
    /// canonicalized to their [`NodeKind::Binder`] instead.
    Expr(ExprId),
    /// A binder `x` (the paper treats each distinct bound variable as a
    /// node).
    Binder(VarId),
    /// `dom(n)` — the arguments of the abstractions `n` may evaluate to.
    Dom(NodeId),
    /// `ran(n)` — the results of the abstractions `n` may evaluate to.
    Ran(NodeId),
    /// `proj_j(n)` — field `j` of the records `n` may evaluate to.
    Proj(u32, NodeId),
    /// `c_i⁻¹(n)` — argument `i` of constructor `c` of the constructions
    /// `n` may evaluate to (policy [`DatatypePolicy::Exact`], or ≈₂ when
    /// the component type is not a datatype).
    DeCon {
        /// The constructor.
        con: ConId,
        /// Zero-based argument index.
        index: u32,
        /// The node being de-constructed.
        of: NodeId,
    },
    /// ≈₁ class node: *all* datatype-typed positions of datatype `D`.
    DataClass(DataId),
    /// ≈₁ class node: the non-datatype-typed slot `(c, i)` of a
    /// constructor.
    Slot(ConId, u32),
    /// ≈₂ class node: all datatype-typed de-constructor chains of datatype
    /// `D` hanging off the same base node.
    DeConClass {
        /// The extracted datatype.
        data: DataId,
        /// The base (expression/binder/class) node of the chain.
        base: NodeId,
    },
    /// [`DatatypePolicy::Forget`] sink: "could be any abstraction".
    TopFun,
}

/// Hash-consing table for nodes, plus the base-node map the ≈₂ congruence
/// needs.
#[derive(Clone, Debug, Default)]
pub struct NodeTable {
    kinds: Vec<NodeKind>,
    /// Base node of each node: for `α(n)` with `α` a (possibly empty)
    /// sequence of operators, the underlying basic node.
    bases: Vec<NodeId>,
    interned: HashMap<NodeKind, NodeId>,
}

impl NodeTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The shape of `id`.
    #[inline]
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.kinds[id.index()]
    }

    /// The base node of `id` (itself, for basic nodes).
    #[inline]
    pub fn base(&self, id: NodeId) -> NodeId {
        self.bases[id.index()]
    }

    /// Interns a node, computing its base from its shape.
    pub fn intern(&mut self, kind: NodeKind) -> NodeId {
        if let Some(&id) = self.interned.get(&kind) {
            return id;
        }
        let id = NodeId::from_index(self.kinds.len());
        let base = match kind {
            NodeKind::Expr(_)
            | NodeKind::Binder(_)
            | NodeKind::DataClass(_)
            | NodeKind::Slot(..)
            | NodeKind::TopFun => id,
            NodeKind::Dom(n) | NodeKind::Ran(n) | NodeKind::Proj(_, n) => self.base(n),
            NodeKind::DeCon { of, .. } => self.base(of),
            NodeKind::DeConClass { base, .. } => base,
        };
        self.kinds.push(kind);
        self.bases.push(base);
        self.interned.insert(kind, id);
        id
    }

    /// Looks a node up without creating it.
    pub fn get(&self, kind: NodeKind) -> Option<NodeId> {
        self.interned.get(&kind).copied()
    }

    /// Forgets every node at index `len` and above. Interning
    /// deduplicates, so each kind appears in `kinds` at most once and
    /// removing the truncated tail from the map exactly restores the
    /// earlier extent; replays then intern identical ids.
    pub fn rewind(&mut self, len: usize) {
        for kind in &self.kinds[len..] {
            self.interned.remove(kind);
        }
        self.kinds.truncate(len);
        self.bases.truncate(len);
    }

    /// Iterates over all node ids.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.kinds.len()).map(NodeId::from_index)
    }

    /// The canonical de-constructor node for extracting argument `index`
    /// of constructor `con` from node `of`, under `policy`.
    ///
    /// Under [`DatatypePolicy::Forget`] this returns `None` — extraction is
    /// not tracked (callers connect to [`NodeKind::TopFun`] instead).
    pub fn decon(
        &mut self,
        program: &Program,
        policy: DatatypePolicy,
        con: ConId,
        index: u32,
        of: NodeId,
    ) -> Option<NodeId> {
        let arg_ty = &program.data_env().con(con).arg_tys[index as usize];
        match policy {
            DatatypePolicy::Forget => None,
            DatatypePolicy::Congruence1 => Some(match arg_ty {
                TyExpr::Data(d) => self.intern(NodeKind::DataClass(*d)),
                _ => self.intern(NodeKind::Slot(con, index)),
            }),
            DatatypePolicy::Congruence2 => Some(match arg_ty {
                TyExpr::Data(d) => {
                    let base = self.base(of);
                    self.intern(NodeKind::DeConClass { data: *d, base })
                }
                _ => self.intern(NodeKind::DeCon { con, index, of }),
            }),
            DatatypePolicy::Exact => Some(self.intern(NodeKind::DeCon { con, index, of })),
        }
    }

    /// Whether a ≈₂-style congruence makes this node's de-constructor
    /// children independent of the flow of `of` (so no closure rule is
    /// needed through it). True exactly for ≈₁ canonical nodes.
    pub fn is_class(&self, id: NodeId) -> bool {
        matches!(
            self.kind(id),
            NodeKind::DataClass(_) | NodeKind::Slot(..) | NodeKind::TopFun
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_lambda::Program;

    fn list_program() -> Program {
        Program::parse(
            "datatype flist = FNil | FCons of (int -> int) * flist;\n\
             FCons(fn x => x, FNil)",
        )
        .unwrap()
    }

    #[test]
    fn interning_deduplicates() {
        let mut t = NodeTable::new();
        let e = t.intern(NodeKind::Expr(ExprId::from_index(0)));
        let d1 = t.intern(NodeKind::Dom(e));
        let d2 = t.intern(NodeKind::Dom(e));
        assert_eq!(d1, d2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(NodeKind::Dom(e)), Some(d1));
        assert_eq!(t.get(NodeKind::Ran(e)), None);
    }

    #[test]
    fn bases_follow_operator_chains() {
        let mut t = NodeTable::new();
        let e = t.intern(NodeKind::Expr(ExprId::from_index(7)));
        let d = t.intern(NodeKind::Dom(e));
        let rd = t.intern(NodeKind::Ran(d));
        let p = t.intern(NodeKind::Proj(0, rd));
        assert_eq!(t.base(e), e);
        assert_eq!(t.base(d), e);
        assert_eq!(t.base(rd), e);
        assert_eq!(t.base(p), e);
    }

    #[test]
    fn congruence1_merges_by_type() {
        let p = list_program();
        let env = p.data_env();
        let fcons = env.con_by_name(p.interner().get("FCons").unwrap()).unwrap();
        let mut t = NodeTable::new();
        let a = t.intern(NodeKind::Expr(ExprId::from_index(0)));
        let b = t.intern(NodeKind::Expr(ExprId::from_index(1)));
        // Tail slots (datatype) merge into one class regardless of parent.
        let ta = t
            .decon(&p, DatatypePolicy::Congruence1, fcons, 1, a)
            .unwrap();
        let tb = t
            .decon(&p, DatatypePolicy::Congruence1, fcons, 1, b)
            .unwrap();
        assert_eq!(ta, tb);
        assert!(t.is_class(ta));
        // Head slots (function type) merge per constructor slot.
        let ha = t
            .decon(&p, DatatypePolicy::Congruence1, fcons, 0, a)
            .unwrap();
        let hb = t
            .decon(&p, DatatypePolicy::Congruence1, fcons, 0, b)
            .unwrap();
        assert_eq!(ha, hb);
        assert_ne!(ha, ta);
    }

    #[test]
    fn congruence2_merges_per_base() {
        let p = list_program();
        let env = p.data_env();
        let fcons = env.con_by_name(p.interner().get("FCons").unwrap()).unwrap();
        let mut t = NodeTable::new();
        let a = t.intern(NodeKind::Expr(ExprId::from_index(0)));
        let b = t.intern(NodeKind::Expr(ExprId::from_index(1)));
        let pol = DatatypePolicy::Congruence2;
        // cdr(a) and cdr(cdr(a)) merge (same base), cdr(b) stays apart.
        let ta = t.decon(&p, pol, fcons, 1, a).unwrap();
        let tta = t.decon(&p, pol, fcons, 1, ta).unwrap();
        let tb = t.decon(&p, pol, fcons, 1, b).unwrap();
        assert_eq!(ta, tta);
        assert_ne!(ta, tb);
        // Heads off merged tails are distinguished by base via the parent.
        let ha = t.decon(&p, pol, fcons, 0, ta).unwrap();
        let hb = t.decon(&p, pol, fcons, 0, tb).unwrap();
        assert_ne!(ha, hb);
    }

    #[test]
    fn exact_never_merges_distinct_parents() {
        let p = list_program();
        let env = p.data_env();
        let fcons = env.con_by_name(p.interner().get("FCons").unwrap()).unwrap();
        let mut t = NodeTable::new();
        let a = t.intern(NodeKind::Expr(ExprId::from_index(0)));
        let pol = DatatypePolicy::Exact;
        let ta = t.decon(&p, pol, fcons, 1, a).unwrap();
        let tta = t.decon(&p, pol, fcons, 1, ta).unwrap();
        assert_ne!(ta, tta, "exact policy keeps the chain growing");
    }

    #[test]
    fn forget_tracks_nothing() {
        let p = list_program();
        let env = p.data_env();
        let fcons = env.con_by_name(p.interner().get("FCons").unwrap()).unwrap();
        let mut t = NodeTable::new();
        let a = t.intern(NodeKind::Expr(ExprId::from_index(0)));
        assert_eq!(t.decon(&p, DatatypePolicy::Forget, fcons, 1, a), None);
    }
}
