//! Polyvariant analysis by graph-fragment summarization (paper, Section 7).
//!
//! "We analyze the function once, and build a summary of the analysis of
//! its code body. The resulting parameterized and simplified graph can then
//! be instantiated (copied) at the points of the function where it is
//! mentioned, much like polymorphic type inference in ML."
//!
//! Pipeline, following the paper's sketch:
//!
//! 1. run the monovariant analysis once;
//! 2. for each `let`/`letrec`-bound abstraction `L` used at several sites,
//!    extract a **summary**: the *critical nodes* are the operator chains
//!    over `L` (`dom(L)`, `ran(L)`, `dom(dom(L))`, …); graph reachability
//!    from them *through the body's internal nodes only* is compressed to
//!    direct edges onto other critical chains, abstraction (label) nodes,
//!    free-variable nodes, and shared class nodes — internal plumbing like
//!    `nil` or intermediate variables disappears, exactly as in the
//!    paper's `λz.((λy.z) nil) ⇒ ran(e) → dom(e)` example;
//! 3. re-run the build phase with each outer occurrence of the function
//!    *split* into its own node, instantiate a fresh copy of the summary
//!    at every occurrence, add union edges so the (single, shared) body
//!    still sees the join of all instances, and close.
//!
//! Precision recovered: `id` applied to two different functions yields a
//! singleton label set at each use site, while the shared body's parameter
//! still reports the sound union. As the paper notes, duplication must be
//! bounded for linearity — [`PolyOptions::max_instances`] is that global
//! bound; functions beyond it stay monovariant. Copies are one level deep
//! (summaries are not instantiated inside other summaries), so an inner
//! abstraction shared by several instances behaves monovariantly — the
//! same trade-off the paper accepts by selecting "functions where
//! polyvariance pays off".
//!
//! The implementation is differentially tested against explicit syntactic
//! let-expansion ([`crate::expand`]), the reference semantics the paper
//! gives for the construction.

use std::collections::{HashMap, HashSet};

use stcfa_lambda::{ExprId, ExprKind, Label, Program, VarId};

use crate::analysis::{Analysis, AnalysisError, AnalysisOptions, Engine};
use crate::expand::{expandable_binders, subtree};
use crate::node::{NodeId, NodeKind};

/// Options for the polyvariant run.
#[derive(Clone, Copy, Debug)]
pub struct PolyOptions {
    /// Options for the underlying analyses.
    pub base: AnalysisOptions,
    /// Global bound on summary instantiations (the paper's linearity
    /// condition: "a global bound on the number of times each graph
    /// fragment is effectively duplicated").
    pub max_instances: usize,
    /// Minimum number of outer uses for a function to be worth splitting.
    pub min_uses: usize,
}

impl Default for PolyOptions {
    fn default() -> Self {
        PolyOptions {
            base: AnalysisOptions::default(),
            max_instances: 256,
            min_uses: 2,
        }
    }
}

/// One extracted function summary.
#[derive(Clone, Debug)]
struct Summary {
    /// The summarized abstraction.
    lam: ExprId,
    /// Its label.
    label: Label,
    /// Occurrences to instantiate at.
    occurrences: Vec<ExprId>,
    /// Critical chains over the lambda's node (mono-analysis node ids).
    chains: Vec<NodeId>,
    /// Compressed edges `chain → target` (mono-analysis node ids; targets
    /// are chains over the lambda, label nodes, free-variable chains or
    /// shared class nodes).
    edges: Vec<(NodeId, NodeId)>,
}

/// A polyvariant analysis result.
#[derive(Clone, Debug)]
pub struct PolyAnalysis {
    inner: Analysis,
    /// Number of summary instances created.
    instances: usize,
    /// Number of functions summarized.
    summarized: usize,
}

impl PolyAnalysis {
    /// Runs the polyvariant analysis with default options.
    pub fn run(program: &Program) -> Result<PolyAnalysis, AnalysisError> {
        Self::run_with(program, PolyOptions::default())
    }

    /// Runs the polyvariant analysis.
    pub fn run_with(
        program: &Program,
        options: PolyOptions,
    ) -> Result<PolyAnalysis, AnalysisError> {
        // Phase 1: monovariant analysis (also the summary source).
        let mono = Analysis::run_with(program, options.base)?;

        // Phase 2: choose targets and extract summaries.
        let mut summaries = Vec::new();
        let mut instances = 0usize;
        for (binder, lam) in expandable_binders(program, options.min_uses) {
            let inside = subtree(program, lam);
            let occurrences: Vec<ExprId> = program
                .exprs()
                .filter(|&o| {
                    matches!(program.kind(o), ExprKind::Var(v) if *v == binder)
                        && !inside.contains(&o)
                })
                .collect();
            if instances + occurrences.len() > options.max_instances {
                continue; // stays monovariant: the global duplication bound
            }
            instances += occurrences.len();
            summaries.push(extract_summary(program, &mono, binder, lam, occurrences));
        }

        // Phase 3: rebuild with split occurrences and instantiate.
        let mut engine = Engine::new(program, options.base);
        for s in &summaries {
            engine.poly_split.extend(s.occurrences.iter().copied());
        }
        engine.build();
        let summarized = summaries.len();
        for s in &summaries {
            instantiate(&mut engine, &mono, s);
        }
        engine.finish_build_stats();
        engine.close()?;
        Ok(PolyAnalysis {
            inner: engine.finish(),
            instances,
            summarized,
        })
    }

    /// The underlying graph analysis (instance roots carry the labels of
    /// the abstractions they copy).
    pub fn analysis(&self) -> &Analysis {
        &self.inner
    }

    /// `L(e)` under the polyvariant analysis.
    pub fn labels_of(&self, e: ExprId) -> Vec<Label> {
        self.inner.labels_of(e)
    }

    /// `L(x)` for a binder.
    pub fn labels_of_binder(&self, v: VarId) -> Vec<Label> {
        self.inner.labels_of_binder(v)
    }

    /// Is `l ∈ L(e)`? (Overridden from the base analysis: any carrier of
    /// `l`, including instance roots, counts.)
    pub fn label_reaches(&self, e: ExprId, l: Label) -> bool {
        self.labels_of(e).contains(&l)
    }

    /// `{e : l ∈ L(e)}` — one multi-source reverse reachability pass seeded
    /// from every carrier of `l` at once, with the binder → occurrences map
    /// built a single time up front. (Previously this looped over the
    /// carriers, rebuilding the occurrence map and re-walking shared
    /// predecessors per carrier.)
    pub fn exprs_with_label(&self, program: &Program, l: Label) -> Vec<ExprId> {
        let n = self.inner.node_count();
        let mut seen = vec![false; n];
        let mut stack: Vec<NodeId> = Vec::new();
        for carrier in self.inner.nodes_with_label(l) {
            if !seen[carrier.index()] {
                seen[carrier.index()] = true;
                stack.push(carrier);
            }
        }
        let mut occ: Vec<Vec<ExprId>> = vec![Vec::new(); program.var_count()];
        for e in program.exprs() {
            if let ExprKind::Var(v) = program.kind(e) {
                occ[v.index()].push(e);
            }
        }
        let mut out = Vec::new();
        while let Some(nid) = stack.pop() {
            match self.inner.nodes().kind(nid) {
                NodeKind::Expr(e) => out.push(e),
                NodeKind::Binder(v) => out.extend(occ[v.index()].iter().copied()),
                _ => {}
            }
            for &p in self.inner.preds(nid) {
                if !seen[p as usize] {
                    seen[p as usize] = true;
                    stack.push(NodeId::from_index(p as usize));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of summary instances created.
    pub fn instance_count(&self) -> usize {
        self.instances
    }

    /// Number of functions summarized.
    pub fn summarized_count(&self) -> usize {
        self.summarized
    }
}

/// Extracts the compressed summary of `lam` from the monovariant graph.
fn extract_summary(
    program: &Program,
    mono: &Analysis,
    binder: VarId,
    lam: ExprId,
    occurrences: Vec<ExprId>,
) -> Summary {
    let inside = subtree(program, lam);
    let mut inner_binders: HashSet<VarId> = HashSet::new();
    for &e in &inside {
        match program.kind(e) {
            ExprKind::Lam { param, .. } => {
                inner_binders.insert(*param);
            }
            ExprKind::Let { binder, .. } | ExprKind::LetRec { binder, .. } => {
                inner_binders.insert(*binder);
            }
            ExprKind::Case { arms, .. } => {
                for arm in arms.iter() {
                    inner_binders.extend(arm.binders.iter().copied());
                }
            }
            _ => {}
        }
    }

    let lam_node = mono.node_of_expr(lam);
    let nodes = mono.nodes();

    // A node is *internal plumbing* (traversed through and compressed away)
    // iff it is a plain expression/binder of the body. Operator chains over
    // internal nodes are shared sinks (inner functions stay monovariant).
    let is_plumbing = |n: NodeId| -> bool {
        match nodes.kind(n) {
            NodeKind::Expr(e) => e != lam && inside.contains(&e),
            NodeKind::Binder(v) => inner_binders.contains(&v),
            _ => false,
        }
    };
    // Summary targets we record edges to; anything else is dropped (it is
    // monovariant context mixing that instantiation replaces).
    let is_target = |n: NodeId| -> bool {
        if nodes.base(n) == lam_node && n != lam_node {
            return true; // critical chain
        }
        match nodes.kind(n) {
            NodeKind::Expr(_) => mono.label_of_node(n).is_some(),
            NodeKind::Binder(v) => v != binder && !inner_binders.contains(&v),
            NodeKind::DataClass(_) | NodeKind::Slot(..) | NodeKind::TopFun => true,
            NodeKind::DeConClass { .. } => true,
            // Chains over internal or free nodes: shared sinks.
            NodeKind::Dom(_) | NodeKind::Ran(_) | NodeKind::Proj(..) | NodeKind::DeCon { .. } => {
                nodes.base(n) != lam_node
                    && !matches!(nodes.kind(nodes.base(n)), NodeKind::Binder(v) if v == binder)
            }
        }
    };

    let chains: Vec<NodeId> = nodes
        .ids()
        .filter(|&n| nodes.base(n) == lam_node && n != lam_node)
        .collect();

    let mut edges = Vec::new();
    for &c in &chains {
        // BFS from the chain through plumbing; record first non-plumbing
        // hits that are valid targets.
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut stack: Vec<NodeId> = vec![c];
        seen.insert(c);
        while let Some(u) = stack.pop() {
            for &sv in mono.succs(u) {
                let s = NodeId::from_index(sv as usize);
                if !seen.insert(s) {
                    continue;
                }
                // Targets are recorded even when internal (an abstraction
                // of the body is a value sink, not plumbing).
                if is_target(s) {
                    edges.push((c, s));
                } else if is_plumbing(s) {
                    stack.push(s);
                }
            }
        }
    }

    Summary {
        lam,
        label: program
            .label_of(lam)
            .expect("summarized expression is an abstraction"),
        occurrences,
        chains,
        edges,
    }
}

/// Copies the summary into the new engine, once per occurrence, plus the
/// union edges that keep the shared body sound.
fn instantiate(engine: &mut Engine<'_>, mono: &Analysis, summary: &Summary) {
    let mono_lam_node = mono.node_of_expr(summary.lam);

    for &occ in &summary.occurrences {
        let root = engine.expr_nodes[occ.index()];
        engine.extra_labels.push((root, summary.label));
        let mut cache: HashMap<NodeId, NodeId> = HashMap::new();
        cache.insert(mono_lam_node, root);
        for &(src, dst) in &summary.edges {
            let ns = transfer(engine, mono, src, &mut cache);
            let nd = transfer(engine, mono, dst, &mut cache);
            if ns != nd {
                engine.add_edge_demanding(ns, nd);
            }
        }
        // Union edges: the shared body's chains absorb each instance's, so
        // queries at internal nodes stay sound (they see the join of all
        // call sites, exactly as in the let-expanded program's union).
        let mut shared_cache: HashMap<NodeId, NodeId> = HashMap::new();
        for &c in &summary.chains {
            let shared = transfer(engine, mono, c, &mut shared_cache);
            let inst = transfer(engine, mono, c, &mut cache);
            if shared != inst {
                engine.add_edge_demanding(shared, inst);
            }
        }
    }
}

/// Maps a mono-analysis node into the new engine's node space, honouring
/// the instance-root override in `cache`.
fn transfer(
    engine: &mut Engine<'_>,
    mono: &Analysis,
    n: NodeId,
    cache: &mut HashMap<NodeId, NodeId>,
) -> NodeId {
    if let Some(&m) = cache.get(&n) {
        return m;
    }
    let new = match mono.nodes().kind(n) {
        NodeKind::Expr(e) => engine.expr_nodes[e.index()],
        NodeKind::Binder(v) => engine.binder_nodes[v.index()],
        NodeKind::Dom(p) => {
            let np = transfer(engine, mono, p, cache);
            engine.nodes.intern(NodeKind::Dom(np))
        }
        NodeKind::Ran(p) => {
            let np = transfer(engine, mono, p, cache);
            engine.nodes.intern(NodeKind::Ran(np))
        }
        NodeKind::Proj(j, p) => {
            let np = transfer(engine, mono, p, cache);
            engine.nodes.intern(NodeKind::Proj(j, np))
        }
        NodeKind::DeCon { con, index, of } => {
            let np = transfer(engine, mono, of, cache);
            engine.nodes.intern(NodeKind::DeCon { con, index, of: np })
        }
        NodeKind::DeConClass { data, base } => {
            let nb = transfer(engine, mono, base, cache);
            let nb = engine.nodes.base(nb);
            engine.nodes.intern(NodeKind::DeConClass { data, base: nb })
        }
        NodeKind::DataClass(d) => engine.nodes.intern(NodeKind::DataClass(d)),
        NodeKind::Slot(c, i) => engine.nodes.intern(NodeKind::Slot(c, i)),
        NodeKind::TopFun => engine.top_fun(),
    };
    cache.insert(n, new);
    new
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::{expandable_binders, let_expand};

    const ID_TWO_USES: &str = "fun id x = x; val a = id (fn u => u); val b = id (fn v => v); a";

    #[test]
    fn recovers_let_polymorphic_precision() {
        let p = Program::parse(ID_TWO_USES).unwrap();
        let mono = Analysis::run(&p).unwrap();
        assert_eq!(mono.labels_of(p.root()).len(), 2, "mono merges");
        let poly = PolyAnalysis::run(&p).unwrap();
        assert_eq!(
            poly.labels_of(p.root()).len(),
            1,
            "poly separates the two id applications"
        );
        assert_eq!(poly.instance_count(), 2);
        assert_eq!(poly.summarized_count(), 1);
    }

    #[test]
    fn shared_body_still_sees_the_union() {
        let p = Program::parse(ID_TWO_USES).unwrap();
        let poly = PolyAnalysis::run(&p).unwrap();
        let x = p.vars().find(|&v| p.var_name(v) == "x").unwrap();
        assert_eq!(
            poly.labels_of_binder(x).len(),
            2,
            "body parameter joins all sites"
        );
    }

    #[test]
    fn matches_or_over_approximates_let_expansion() {
        let corpus = [
            ID_TWO_USES,
            "fun id x = x; val a = id (fn u => u); val b = id (fn v => v); b",
            "fun apply f = fn y => f y;\n\
             val r1 = apply (fn p => p) (fn q => q);\n\
             val r2 = apply (fn s => s) (fn t => t);\n\
             r1",
            "fun id x = x; (id id) (fn w => w)",
            "fun compose f = fn g => fn x => f (g x);\n\
             val once = compose (fn a => a) (fn b => b);\n\
             val twice = compose (fn c => c) (fn d => d);\n\
             once (fn e => e)",
        ];
        for src in corpus {
            let p = Program::parse(src).unwrap();
            let poly = PolyAnalysis::run(&p).unwrap();
            let mono = Analysis::run(&p).unwrap();
            let targets = expandable_binders(&p, 2);
            let ex = let_expand(&p, &targets);
            let ref_analysis = Analysis::run(&ex.program).unwrap();
            let replaced: std::collections::HashSet<ExprId> = {
                // Occurrences replaced by copies have no matching position.
                let mut s = std::collections::HashSet::new();
                for (binder, lam) in &targets {
                    let inside = subtree(&p, *lam);
                    for o in p.exprs() {
                        if matches!(p.kind(o), ExprKind::Var(v) if v == binder)
                            && !inside.contains(&o)
                        {
                            s.insert(o);
                        }
                    }
                }
                s
            };
            for e in p.exprs() {
                if replaced.contains(&e) {
                    continue;
                }
                let truth = ex.originals(&ref_analysis.labels_of(ex.expr_map[e.index()]));
                let got = poly.labels_of(e);
                let mono_labels = mono.labels_of(e);
                // Soundness: never below the expanded reference.
                for l in &truth {
                    assert!(
                        got.contains(l),
                        "poly lost {l:?} at {e:?} ({:?}) in {src:?}\n  truth={truth:?}\n  got={got:?}",
                        p.kind(e),
                    );
                }
                // Precision: never worse than monovariant.
                for l in &got {
                    assert!(
                        mono_labels.contains(l),
                        "poly invented {l:?} at {e:?} beyond mono in {src:?}",
                    );
                }
            }
        }
    }

    #[test]
    fn budget_disables_splitting() {
        let p = Program::parse(ID_TWO_USES).unwrap();
        let poly = PolyAnalysis::run_with(
            &p,
            PolyOptions {
                max_instances: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            poly.instance_count(),
            0,
            "budget of 1 cannot fit 2 instances"
        );
        // Falls back to monovariant behaviour.
        assert_eq!(poly.labels_of(p.root()).len(), 2);
    }

    #[test]
    fn inverse_queries_see_instances() {
        let p = Program::parse(ID_TWO_USES).unwrap();
        let poly = PolyAnalysis::run(&p).unwrap();
        // The `fn u => u` lambda flows to `a` (and the root) but not `b`.
        let u_label = p
            .all_labels()
            .find(|&l| {
                let lam = p.lam_of_label(l);
                matches!(p.kind(lam), ExprKind::Lam { param, .. } if p.var_name(*param) == "u")
            })
            .unwrap();
        let exprs = poly.exprs_with_label(&p, u_label);
        assert!(exprs.contains(&p.root()));
    }

    #[test]
    fn recursive_functions_are_summarized_safely() {
        let p = Program::parse(
            "fun f n = if n = 0 then fn z => z else f (n - 1);\n\
             val a = f 1; val b = f 2; a",
        )
        .unwrap();
        let poly = PolyAnalysis::run(&p).unwrap();
        let mono = Analysis::run(&p).unwrap();
        for e in p.exprs() {
            let pl = poly.labels_of(e);
            for l in mono.labels_of(e) {
                // Recursion keeps the shared body monovariant, so poly and
                // mono agree here; at minimum poly must stay sound.
                if !pl.contains(&l) {
                    // The split occurrences themselves carry f's label
                    // instead of routing through Binder(f); allow only
                    // strictly-more-precise answers at those occurrences.
                    assert!(
                        matches!(p.kind(e), ExprKind::Var(_)),
                        "poly lost {l:?} at non-occurrence {e:?}"
                    );
                }
            }
        }
    }
}
