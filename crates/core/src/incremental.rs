//! Incremental subtransitive analysis over a growing program.
//!
//! The paper remarks that its algorithm is "simple, incremental,
//! demand-driven". This module makes the incrementality concrete: because
//! the subtransitive graph is built by *local* rules (one basic edge per
//! syntax construct, closure rules that only ever add edges), analyzing a
//! program that has **grown** — a REPL session that gained a fragment, a
//! compilation unit added to a library — only requires adding the new
//! nodes' basic edges and resuming the (monotone) close phase. Nothing
//! computed for the old program is revisited; the cost of an update is
//! proportional to the delta, not the program.
//!
//! Works with [`stcfa_lambda::session::SessionProgram`]:
//!
//! ```
//! use stcfa_lambda::session::SessionProgram;
//! use stcfa_core::incremental::IncrementalAnalysis;
//!
//! let mut session = SessionProgram::new();
//! let mut analysis = IncrementalAnalysis::new(Default::default());
//!
//! session.define("fun id x = x;").unwrap();
//! analysis.update(&session).unwrap();
//!
//! let f = session.define("id (fn u => u)").unwrap();
//! let delta = analysis.update(&session).unwrap();
//! assert!(delta.new_edges > 0);
//!
//! let labels = analysis.labels_of(session.program(), f.value.unwrap());
//! assert_eq!(labels.len(), 1);
//! ```

use stcfa_lambda::session::SessionProgram;
use stcfa_lambda::{ExprId, Label, Program, VarId};

use crate::analysis::{
    Analysis, AnalysisError, AnalysisOptions, AnalysisStats, Engine, EngineParts,
};
use crate::graph::GraphMark;
use crate::node::{NodeId, NodeKind};
use crate::queryeng::QueryEngine;

/// What one [`IncrementalAnalysis::update`] added.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateDelta {
    /// Graph nodes created by this update.
    pub new_nodes: usize,
    /// Graph edges created by this update.
    pub new_edges: usize,
    /// Expressions newly covered.
    pub new_exprs: usize,
}

/// A persistent analysis that follows a [`SessionProgram`] as it grows.
#[derive(Clone, Debug)]
pub struct IncrementalAnalysis {
    options: AnalysisOptions,
    parts: EngineParts,
    processed_bindings: usize,
    /// Bumped by every [`IncrementalAnalysis::update`] that changes the
    /// graph; frozen into [`SessionSnapshot`]s for staleness checks.
    generation: u64,
}

/// A rewind point for an [`IncrementalAnalysis`] (see
/// [`IncrementalAnalysis::mark`]).
///
/// Every structure an update touches is append-only — the node table, the
/// journaled graph, the per-expr/per-binder node maps — so a mark is the
/// extent of each plus the few scalar fields, and rewinding then replaying
/// the same session suffix reproduces the analysis bit for bit (including
/// the generation counter, so snapshot staleness checks stay
/// deterministic).
#[derive(Clone, Copy, Debug)]
pub struct AnalysisMark {
    nodes: usize,
    graph: GraphMark,
    exprs: usize,
    binders: usize,
    top_fun: Option<NodeId>,
    stats: AnalysisStats,
    processed_bindings: usize,
    generation: u64,
}

/// Use of a [`SessionSnapshot`] whose session has since been updated.
///
/// A frozen query engine describes the graph *as of one generation*; using
/// it after the session grew would silently return under-approximate label
/// sets. [`SessionSnapshot::engine`] turns that hazard into this checked
/// error instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StaleSnapshot {
    /// The generation the snapshot was frozen at.
    pub frozen_at: u64,
    /// The session's current generation.
    pub current: u64,
}

impl std::fmt::Display for StaleSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stale session snapshot: frozen at generation {}, session is at generation {}",
            self.frozen_at, self.current
        )
    }
}

impl std::error::Error for StaleSnapshot {}

/// A [`QueryEngine`] frozen from an [`IncrementalAnalysis`] at a specific
/// generation. Access the engine only through
/// [`SessionSnapshot::engine`], which re-checks the generation against the
/// live session — extending the session after freezing makes the snapshot
/// a checked error, never a silently wrong answer.
pub struct SessionSnapshot {
    engine: QueryEngine,
    frozen_at: u64,
}

impl SessionSnapshot {
    /// The generation this snapshot was frozen at.
    pub fn generation(&self) -> u64 {
        self.frozen_at
    }

    /// The frozen engine, if `analysis` has not been updated since the
    /// freeze.
    pub fn engine(&self, analysis: &IncrementalAnalysis) -> Result<&QueryEngine, StaleSnapshot> {
        if analysis.generation != self.frozen_at {
            return Err(StaleSnapshot {
                frozen_at: self.frozen_at,
                current: analysis.generation,
            });
        }
        Ok(&self.engine)
    }
}

impl IncrementalAnalysis {
    /// Creates an analysis with the given options; nothing is analyzed
    /// until the first [`IncrementalAnalysis::update`].
    pub fn new(options: AnalysisOptions) -> IncrementalAnalysis {
        let mut parts = EngineParts::default();
        // Incremental analyses journal the graph so the session linker can
        // rewind to an edit point instead of cloning checkpoints. One-shot
        // analyses (`Analysis::run`) never enable this and pay nothing.
        parts.graph.enable_journal();
        IncrementalAnalysis {
            options,
            parts,
            processed_bindings: 0,
            generation: 0,
        }
    }

    /// The analysis's current extent, for [`IncrementalAnalysis::rewind`].
    pub fn mark(&self) -> AnalysisMark {
        AnalysisMark {
            nodes: self.parts.nodes.len(),
            graph: self.parts.graph.mark(),
            exprs: self.parts.expr_nodes.len(),
            binders: self.parts.binder_nodes.len(),
            top_fun: self.parts.top_fun,
            stats: self.parts.stats,
            processed_bindings: self.processed_bindings,
            generation: self.generation,
        }
    }

    /// Rewinds to an earlier [`AnalysisMark`], exactly undoing every
    /// update since; re-applying the same session suffix then reproduces
    /// the pre-rewind state bit for bit. The caller must rewind the
    /// session program to the matching extent (see
    /// [`SessionProgram::rewind`](stcfa_lambda::session::SessionProgram))
    /// before the next [`IncrementalAnalysis::update`].
    pub fn rewind(&mut self, mark: AnalysisMark) {
        self.parts.nodes.rewind(mark.nodes);
        self.parts.graph.rewind(mark.graph);
        self.parts.expr_nodes.truncate(mark.exprs);
        self.parts.binder_nodes.truncate(mark.binders);
        self.parts.top_fun = mark.top_fun;
        self.parts.stats = mark.stats;
        self.processed_bindings = mark.processed_bindings;
        self.generation = mark.generation;
    }

    /// The current generation: the number of graph-changing updates so
    /// far. Snapshots frozen at an older generation are stale.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The options the analysis was created with.
    pub fn options(&self) -> AnalysisOptions {
        self.options
    }

    /// Whether `session` is a *forward extension* of what this analysis
    /// has processed: every expression and session binding already
    /// analyzed is still present. Updates are only sound for forward
    /// extensions — an analysis can never "un-see" a fragment. The
    /// session linker (`stcfa-session`) relies on this to decide when a
    /// checkpointed prefix analysis can resume against an edited
    /// workspace and when it must fall back to an earlier checkpoint.
    pub fn covers(&self, session: &SessionProgram) -> bool {
        self.parts.expr_nodes.len() <= session.program().size()
            && self.processed_bindings <= session.bindings().len()
    }

    /// Catches up with everything defined in `session` since the last
    /// update. Cost is proportional to the new fragments (plus whatever
    /// closure they transitively demand), not to the whole session.
    pub fn update(&mut self, session: &SessionProgram) -> Result<UpdateDelta, AnalysisError> {
        debug_assert!(
            self.covers(session),
            "update on a rewound session: the analysis has processed more \
             than the session contains"
        );
        let program = session.program();
        let parts = std::mem::take(&mut self.parts);
        let nodes_before = parts.nodes.len();
        let edges_before = parts.graph.edge_count();
        let exprs_before = parts.expr_nodes.len();

        let mut engine = Engine::resume(program, self.options, parts);
        engine.build_delta();
        // Session bindings are not `let` expressions; add their flow edges
        // (binder → rhs, the same edge a `let` would induce).
        for b in &session.bindings()[self.processed_bindings..] {
            let binder = engine.binder_nodes[b.binder.index()];
            let rhs = engine.expr_nodes[b.rhs.index()];
            engine.graph.add_edge(binder, rhs);
        }
        self.processed_bindings = session.bindings().len();
        let result = engine.close();
        self.parts = engine.into_parts();
        result?;
        let delta = UpdateDelta {
            new_nodes: self.parts.nodes.len() - nodes_before,
            new_edges: self.parts.graph.edge_count() - edges_before,
            new_exprs: self.parts.expr_nodes.len() - exprs_before,
        };
        if delta != UpdateDelta::default() {
            self.generation += 1;
        }
        Ok(delta)
    }

    /// `L(e)` on the current graph. `program` must be the session's
    /// program as of the last update.
    pub fn labels_of(&self, program: &Program, e: ExprId) -> Vec<Label> {
        self.labels_from(program, self.parts.expr_nodes[e.index()])
    }

    /// `L(x)` for a binder.
    pub fn labels_of_binder(&self, program: &Program, v: VarId) -> Vec<Label> {
        self.labels_from(program, self.parts.binder_nodes[v.index()])
    }

    fn labels_from(&self, program: &Program, start: NodeId) -> Vec<Label> {
        let mut seen = vec![false; self.parts.nodes.len()];
        let mut stack = vec![start];
        seen[start.index()] = true;
        let mut out = Vec::new();
        while let Some(n) = stack.pop() {
            if let NodeKind::Expr(e) = self.parts.nodes.kind(n) {
                if let Some(l) = program.label_of(e) {
                    out.push(l);
                }
            }
            for &s in self.parts.graph.succs(n) {
                if !seen[s as usize] {
                    seen[s as usize] = true;
                    stack.push(NodeId::from_index(s as usize));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Total graph nodes so far.
    pub fn node_count(&self) -> usize {
        self.parts.nodes.len()
    }

    /// Total graph edges so far.
    pub fn edge_count(&self) -> usize {
        self.parts.graph.edge_count()
    }

    /// Materializes a full [`Analysis`] view of the current state (clones
    /// the graph; use the direct queries for cheap per-fragment lookups).
    pub fn snapshot(&self, program: &Program) -> Analysis {
        let mut parts = self.parts.clone();
        // The materialized view is never rewound; keep it lean.
        parts.graph.drop_journal();
        let engine = Engine::resume(program, self.options, parts);
        engine.finish()
    }

    /// Freezes the current state into a generation-tagged [`QueryEngine`]
    /// (see [`SessionSnapshot`]). The engine answers queries for the
    /// session *as of now*; after the next graph-changing
    /// [`IncrementalAnalysis::update`] the snapshot reports
    /// [`StaleSnapshot`] instead of stale answers.
    pub fn freeze(&self, program: &Program) -> SessionSnapshot {
        let analysis = self.snapshot(program);
        SessionSnapshot {
            engine: QueryEngine::freeze_tagged(&analysis, Some(self.generation)),
            frozen_at: self.generation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A from-scratch analysis of a session forest: build everything, add
    /// all binding edges, close — for equivalence checks.
    fn from_scratch(session: &SessionProgram, options: AnalysisOptions) -> IncrementalAnalysis {
        let mut a = IncrementalAnalysis::new(options);
        a.update(session).unwrap();
        a
    }

    #[test]
    fn incremental_equals_from_scratch_at_every_step() {
        let fragments = [
            "fun id x = x;",
            "val a = id (fn u => u);",
            "fun apply f = fn y => f y;",
            "val b = apply (fn v => v) (fn w => w);",
            "a",
        ];
        let mut session = SessionProgram::new();
        let mut incremental = IncrementalAnalysis::new(AnalysisOptions::default());
        for (i, frag) in fragments.iter().enumerate() {
            session.define(frag).unwrap();
            incremental.update(&session).unwrap();
            let scratch = from_scratch(&session, AnalysisOptions::default());
            let program = session.program();
            for e in program.exprs() {
                assert_eq!(
                    incremental.labels_of(program, e),
                    scratch.labels_of(program, e),
                    "divergence after fragment {i} at {e:?}"
                );
            }
        }
    }

    #[test]
    fn updates_cost_only_the_delta() {
        let mut session = SessionProgram::new();
        let mut a = IncrementalAnalysis::new(AnalysisOptions::default());
        session.define("fun id x = x;").unwrap();
        let d1 = a.update(&session).unwrap();
        // A big second fragment...
        let mut big = String::new();
        for i in 0..50 {
            big.push_str(&format!("val v{i} = id (fn q{i} => q{i});\n"));
        }
        session.define(&big).unwrap();
        let d2 = a.update(&session).unwrap();
        // ...then a tiny third one.
        session.define("val last = id (fn z => z);").unwrap();
        let d3 = a.update(&session).unwrap();
        assert!(d2.new_exprs > 10 * d3.new_exprs, "{d2:?} vs {d3:?}");
        assert!(
            d3.new_nodes < d2.new_nodes / 5,
            "third update should be delta-sized: {d3:?} vs {d2:?}"
        );
        let _ = d1;
    }

    #[test]
    fn cross_fragment_flow_is_seen() {
        let mut session = SessionProgram::new();
        let mut a = IncrementalAnalysis::new(AnalysisOptions::default());
        session.define("fun id x = x;").unwrap();
        a.update(&session).unwrap();
        let f = session.define("id (fn u => u)").unwrap();
        a.update(&session).unwrap();
        let labels = a.labels_of(session.program(), f.value.unwrap());
        assert_eq!(
            labels.len(),
            1,
            "the identity returns the fragment-2 lambda"
        );
        // The shared binder joins flows from both fragments.
        let x = session
            .program()
            .vars()
            .find(|&v| session.program().var_name(v) == "x")
            .unwrap();
        assert_eq!(a.labels_of_binder(session.program(), x).len(), 1);
    }

    #[test]
    fn monovariant_join_across_fragments() {
        let mut session = SessionProgram::new();
        let mut a = IncrementalAnalysis::new(AnalysisOptions::default());
        session.define("fun id x = x;").unwrap();
        session.define("val p = id (fn u => u);").unwrap();
        a.update(&session).unwrap();
        let f = session.define("id (fn v => v)").unwrap();
        a.update(&session).unwrap();
        // Monovariant: both arguments joined at the shared id.
        let labels = a.labels_of(session.program(), f.value.unwrap());
        assert_eq!(labels.len(), 2);
    }

    #[test]
    fn snapshot_agrees_with_direct_queries() {
        let mut session = SessionProgram::new();
        let mut a = IncrementalAnalysis::new(AnalysisOptions::default());
        session
            .define("fun id x = x; val r = id (fn u => u);")
            .unwrap();
        a.update(&session).unwrap();
        let program = session.program();
        let snap = a.snapshot(program);
        for e in program.exprs() {
            assert_eq!(a.labels_of(program, e), snap.labels_of(e));
        }
    }

    #[test]
    fn closure_invariants_hold_after_every_update() {
        let mut session = SessionProgram::new();
        let mut a = IncrementalAnalysis::new(AnalysisOptions::default());
        for frag in [
            "fun apply f = fn y => f y;",
            "val p = apply (fn u => u);",
            "val q = p (fn v => v);",
            "q 0",
        ] {
            session.define(frag).unwrap();
            a.update(&session).unwrap();
            a.snapshot(session.program())
                .check_invariants()
                .unwrap_or_else(|e| panic!("after {frag:?}: {e}"));
        }
    }

    #[test]
    fn rewind_then_replay_is_bit_identical() {
        let fragments = ["fun id x = x;", "val a = id (fn u => u);", "id (fn v => v)"];
        // Straight-through reference.
        let mut s1 = SessionProgram::new();
        let mut a1 = IncrementalAnalysis::new(AnalysisOptions::default());
        for f in fragments {
            s1.define(f).unwrap();
            a1.update(&s1).unwrap();
        }
        // Detour: analyze an extra fragment, rewind it away, replay the
        // real suffix — must match the reference exactly.
        let mut s2 = SessionProgram::new();
        let mut a2 = IncrementalAnalysis::new(AnalysisOptions::default());
        s2.define(fragments[0]).unwrap();
        a2.update(&s2).unwrap();
        let sm = s2.mark();
        let am = a2.mark();
        s2.define("fun detour y = id (id y);").unwrap();
        a2.update(&s2).unwrap();
        s2.rewind(sm);
        a2.rewind(am);
        for f in &fragments[1..] {
            s2.define(f).unwrap();
            a2.update(&s2).unwrap();
        }
        assert_eq!(a1.node_count(), a2.node_count());
        assert_eq!(a1.edge_count(), a2.edge_count());
        assert_eq!(a1.generation(), a2.generation());
        let p1 = s1.program();
        let p2 = s2.program();
        assert_eq!(p1.size(), p2.size());
        for e in p1.exprs() {
            assert_eq!(a1.labels_of(p1, e), a2.labels_of(p2, e));
        }
    }

    #[test]
    fn datatypes_defined_incrementally() {
        let mut session = SessionProgram::new();
        let mut a = IncrementalAnalysis::new(AnalysisOptions::default());
        session.define("datatype box = B of (int -> int);").unwrap();
        a.update(&session).unwrap();
        let f = session
            .define("case B(fn n => n + 1) of B(g) => g")
            .unwrap();
        a.update(&session).unwrap();
        assert_eq!(a.labels_of(session.program(), f.value.unwrap()).len(), 1);
    }
}
