//! Incremental subtransitive analysis over a growing program.
//!
//! The paper remarks that its algorithm is "simple, incremental,
//! demand-driven". This module makes the incrementality concrete: because
//! the subtransitive graph is built by *local* rules (one basic edge per
//! syntax construct, closure rules that only ever add edges), analyzing a
//! program that has **grown** — a REPL session that gained a fragment, a
//! compilation unit added to a library — only requires adding the new
//! nodes' basic edges and resuming the (monotone) close phase. Nothing
//! computed for the old program is revisited; the cost of an update is
//! proportional to the delta, not the program.
//!
//! Works with [`stcfa_lambda::session::SessionProgram`]:
//!
//! ```
//! use stcfa_lambda::session::SessionProgram;
//! use stcfa_core::incremental::IncrementalAnalysis;
//!
//! let mut session = SessionProgram::new();
//! let mut analysis = IncrementalAnalysis::new(Default::default());
//!
//! session.define("fun id x = x;").unwrap();
//! analysis.update(&session).unwrap();
//!
//! let f = session.define("id (fn u => u)").unwrap();
//! let delta = analysis.update(&session).unwrap();
//! assert!(delta.new_edges > 0);
//!
//! let labels = analysis.labels_of(session.program(), f.value.unwrap());
//! assert_eq!(labels.len(), 1);
//! ```

use stcfa_lambda::session::SessionProgram;
use stcfa_lambda::{ExprId, Label, Program, VarId};

use crate::analysis::{Analysis, AnalysisError, AnalysisOptions, Engine, EngineParts};
use crate::node::{NodeId, NodeKind};
use crate::queryeng::QueryEngine;

/// What one [`IncrementalAnalysis::update`] added.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateDelta {
    /// Graph nodes created by this update.
    pub new_nodes: usize,
    /// Graph edges created by this update.
    pub new_edges: usize,
    /// Expressions newly covered.
    pub new_exprs: usize,
}

/// A persistent analysis that follows a [`SessionProgram`] as it grows.
#[derive(Clone, Debug)]
pub struct IncrementalAnalysis {
    options: AnalysisOptions,
    parts: EngineParts,
    processed_bindings: usize,
    /// Bumped by every [`IncrementalAnalysis::update`] that changes the
    /// graph; frozen into [`SessionSnapshot`]s for staleness checks.
    generation: u64,
}

/// Use of a [`SessionSnapshot`] whose session has since been updated.
///
/// A frozen query engine describes the graph *as of one generation*; using
/// it after the session grew would silently return under-approximate label
/// sets. [`SessionSnapshot::engine`] turns that hazard into this checked
/// error instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StaleSnapshot {
    /// The generation the snapshot was frozen at.
    pub frozen_at: u64,
    /// The session's current generation.
    pub current: u64,
}

impl std::fmt::Display for StaleSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stale session snapshot: frozen at generation {}, session is at generation {}",
            self.frozen_at, self.current
        )
    }
}

impl std::error::Error for StaleSnapshot {}

/// A [`QueryEngine`] frozen from an [`IncrementalAnalysis`] at a specific
/// generation. Access the engine only through
/// [`SessionSnapshot::engine`], which re-checks the generation against the
/// live session — extending the session after freezing makes the snapshot
/// a checked error, never a silently wrong answer.
pub struct SessionSnapshot {
    engine: QueryEngine,
    frozen_at: u64,
}

impl SessionSnapshot {
    /// The generation this snapshot was frozen at.
    pub fn generation(&self) -> u64 {
        self.frozen_at
    }

    /// The frozen engine, if `analysis` has not been updated since the
    /// freeze.
    pub fn engine(&self, analysis: &IncrementalAnalysis) -> Result<&QueryEngine, StaleSnapshot> {
        if analysis.generation != self.frozen_at {
            return Err(StaleSnapshot {
                frozen_at: self.frozen_at,
                current: analysis.generation,
            });
        }
        Ok(&self.engine)
    }
}

impl IncrementalAnalysis {
    /// Creates an analysis with the given options; nothing is analyzed
    /// until the first [`IncrementalAnalysis::update`].
    pub fn new(options: AnalysisOptions) -> IncrementalAnalysis {
        IncrementalAnalysis {
            options,
            parts: EngineParts::default(),
            processed_bindings: 0,
            generation: 0,
        }
    }

    /// The current generation: the number of graph-changing updates so
    /// far. Snapshots frozen at an older generation are stale.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Catches up with everything defined in `session` since the last
    /// update. Cost is proportional to the new fragments (plus whatever
    /// closure they transitively demand), not to the whole session.
    pub fn update(&mut self, session: &SessionProgram) -> Result<UpdateDelta, AnalysisError> {
        let program = session.program();
        let parts = std::mem::take(&mut self.parts);
        let nodes_before = parts.nodes.len();
        let edges_before = parts.graph.edge_count();
        let exprs_before = parts.expr_nodes.len();

        let mut engine = Engine::resume(program, self.options, parts);
        engine.build_delta();
        // Session bindings are not `let` expressions; add their flow edges
        // (binder → rhs, the same edge a `let` would induce).
        for b in &session.bindings()[self.processed_bindings..] {
            let binder = engine.binder_nodes[b.binder.index()];
            let rhs = engine.expr_nodes[b.rhs.index()];
            engine.graph.add_edge(binder, rhs);
        }
        self.processed_bindings = session.bindings().len();
        let result = engine.close();
        self.parts = engine.into_parts();
        result?;
        let delta = UpdateDelta {
            new_nodes: self.parts.nodes.len() - nodes_before,
            new_edges: self.parts.graph.edge_count() - edges_before,
            new_exprs: self.parts.expr_nodes.len() - exprs_before,
        };
        if delta != UpdateDelta::default() {
            self.generation += 1;
        }
        Ok(delta)
    }

    /// `L(e)` on the current graph. `program` must be the session's
    /// program as of the last update.
    pub fn labels_of(&self, program: &Program, e: ExprId) -> Vec<Label> {
        self.labels_from(program, self.parts.expr_nodes[e.index()])
    }

    /// `L(x)` for a binder.
    pub fn labels_of_binder(&self, program: &Program, v: VarId) -> Vec<Label> {
        self.labels_from(program, self.parts.binder_nodes[v.index()])
    }

    fn labels_from(&self, program: &Program, start: NodeId) -> Vec<Label> {
        let mut seen = vec![false; self.parts.nodes.len()];
        let mut stack = vec![start];
        seen[start.index()] = true;
        let mut out = Vec::new();
        while let Some(n) = stack.pop() {
            if let NodeKind::Expr(e) = self.parts.nodes.kind(n) {
                if let Some(l) = program.label_of(e) {
                    out.push(l);
                }
            }
            for &s in self.parts.graph.succs(n) {
                if !seen[s as usize] {
                    seen[s as usize] = true;
                    stack.push(NodeId::from_index(s as usize));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Total graph nodes so far.
    pub fn node_count(&self) -> usize {
        self.parts.nodes.len()
    }

    /// Total graph edges so far.
    pub fn edge_count(&self) -> usize {
        self.parts.graph.edge_count()
    }

    /// Materializes a full [`Analysis`] view of the current state (clones
    /// the graph; use the direct queries for cheap per-fragment lookups).
    pub fn snapshot(&self, program: &Program) -> Analysis {
        let engine = Engine::resume(program, self.options, self.parts.clone());
        engine.finish()
    }

    /// Freezes the current state into a generation-tagged [`QueryEngine`]
    /// (see [`SessionSnapshot`]). The engine answers queries for the
    /// session *as of now*; after the next graph-changing
    /// [`IncrementalAnalysis::update`] the snapshot reports
    /// [`StaleSnapshot`] instead of stale answers.
    pub fn freeze(&self, program: &Program) -> SessionSnapshot {
        let analysis = self.snapshot(program);
        SessionSnapshot {
            engine: QueryEngine::freeze_tagged(&analysis, Some(self.generation)),
            frozen_at: self.generation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A from-scratch analysis of a session forest: build everything, add
    /// all binding edges, close — for equivalence checks.
    fn from_scratch(session: &SessionProgram, options: AnalysisOptions) -> IncrementalAnalysis {
        let mut a = IncrementalAnalysis::new(options);
        a.update(session).unwrap();
        a
    }

    #[test]
    fn incremental_equals_from_scratch_at_every_step() {
        let fragments = [
            "fun id x = x;",
            "val a = id (fn u => u);",
            "fun apply f = fn y => f y;",
            "val b = apply (fn v => v) (fn w => w);",
            "a",
        ];
        let mut session = SessionProgram::new();
        let mut incremental = IncrementalAnalysis::new(AnalysisOptions::default());
        for (i, frag) in fragments.iter().enumerate() {
            session.define(frag).unwrap();
            incremental.update(&session).unwrap();
            let scratch = from_scratch(&session, AnalysisOptions::default());
            let program = session.program();
            for e in program.exprs() {
                assert_eq!(
                    incremental.labels_of(program, e),
                    scratch.labels_of(program, e),
                    "divergence after fragment {i} at {e:?}"
                );
            }
        }
    }

    #[test]
    fn updates_cost_only_the_delta() {
        let mut session = SessionProgram::new();
        let mut a = IncrementalAnalysis::new(AnalysisOptions::default());
        session.define("fun id x = x;").unwrap();
        let d1 = a.update(&session).unwrap();
        // A big second fragment...
        let mut big = String::new();
        for i in 0..50 {
            big.push_str(&format!("val v{i} = id (fn q{i} => q{i});\n"));
        }
        session.define(&big).unwrap();
        let d2 = a.update(&session).unwrap();
        // ...then a tiny third one.
        session.define("val last = id (fn z => z);").unwrap();
        let d3 = a.update(&session).unwrap();
        assert!(d2.new_exprs > 10 * d3.new_exprs, "{d2:?} vs {d3:?}");
        assert!(
            d3.new_nodes < d2.new_nodes / 5,
            "third update should be delta-sized: {d3:?} vs {d2:?}"
        );
        let _ = d1;
    }

    #[test]
    fn cross_fragment_flow_is_seen() {
        let mut session = SessionProgram::new();
        let mut a = IncrementalAnalysis::new(AnalysisOptions::default());
        session.define("fun id x = x;").unwrap();
        a.update(&session).unwrap();
        let f = session.define("id (fn u => u)").unwrap();
        a.update(&session).unwrap();
        let labels = a.labels_of(session.program(), f.value.unwrap());
        assert_eq!(
            labels.len(),
            1,
            "the identity returns the fragment-2 lambda"
        );
        // The shared binder joins flows from both fragments.
        let x = session
            .program()
            .vars()
            .find(|&v| session.program().var_name(v) == "x")
            .unwrap();
        assert_eq!(a.labels_of_binder(session.program(), x).len(), 1);
    }

    #[test]
    fn monovariant_join_across_fragments() {
        let mut session = SessionProgram::new();
        let mut a = IncrementalAnalysis::new(AnalysisOptions::default());
        session.define("fun id x = x;").unwrap();
        session.define("val p = id (fn u => u);").unwrap();
        a.update(&session).unwrap();
        let f = session.define("id (fn v => v)").unwrap();
        a.update(&session).unwrap();
        // Monovariant: both arguments joined at the shared id.
        let labels = a.labels_of(session.program(), f.value.unwrap());
        assert_eq!(labels.len(), 2);
    }

    #[test]
    fn snapshot_agrees_with_direct_queries() {
        let mut session = SessionProgram::new();
        let mut a = IncrementalAnalysis::new(AnalysisOptions::default());
        session
            .define("fun id x = x; val r = id (fn u => u);")
            .unwrap();
        a.update(&session).unwrap();
        let program = session.program();
        let snap = a.snapshot(program);
        for e in program.exprs() {
            assert_eq!(a.labels_of(program, e), snap.labels_of(e));
        }
    }

    #[test]
    fn closure_invariants_hold_after_every_update() {
        let mut session = SessionProgram::new();
        let mut a = IncrementalAnalysis::new(AnalysisOptions::default());
        for frag in [
            "fun apply f = fn y => f y;",
            "val p = apply (fn u => u);",
            "val q = p (fn v => v);",
            "q 0",
        ] {
            session.define(frag).unwrap();
            a.update(&session).unwrap();
            a.snapshot(session.program())
                .check_invariants()
                .unwrap_or_else(|e| panic!("after {frag:?}: {e}"));
        }
    }

    #[test]
    fn datatypes_defined_incrementally() {
        let mut session = SessionProgram::new();
        let mut a = IncrementalAnalysis::new(AnalysisOptions::default());
        session.define("datatype box = B of (int -> int);").unwrap();
        a.update(&session).unwrap();
        let f = session
            .define("case B(fn n => n + 1) of B(g) => g")
            .unwrap();
        a.update(&session).unwrap();
        assert_eq!(a.labels_of(session.program(), f.value.unwrap()).len(), 1);
    }
}
