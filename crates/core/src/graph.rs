//! Storage for the subtransitive control-flow graph: adjacency in both
//! directions, edge deduplication, the pending work queues of the
//! demand-driven close phase, and per-node demand registrations.

use std::collections::{HashSet, VecDeque};

use stcfa_lambda::{ConId, DataId};

use crate::node::NodeId;

/// An operator whose application to a node has been *demanded* (received an
/// incoming edge), in the sense of the primed closure rules CLOSE-DOM′ /
/// CLOSE-RAN′ (and their record/datatype analogues).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DemandOp {
    /// `dom(·)` — contravariant.
    Dom,
    /// `ran(·)` — covariant.
    Ran,
    /// `proj_j(·)` — covariant.
    Proj(u32),
    /// `c_i⁻¹(·)` — covariant (Exact policy, or ≈₂ non-datatype slots).
    Decon(ConId, u32),
    /// Merged datatype extraction for datatype `D` — covariant (≈₂ class
    /// chains).
    DeconData(DataId),
}

/// Mutable graph state shared by the build and close phases.
#[derive(Clone, Debug, Default)]
pub struct SubGraph {
    succs: Vec<Vec<u32>>,
    preds: Vec<Vec<u32>>,
    edge_set: HashSet<u64>,
    /// Edges whose closure consequences have not been drawn yet.
    pub(crate) pending_edges: VecDeque<(NodeId, NodeId)>,
    /// Demand registrations not yet retro-fired.
    pub(crate) pending_demands: VecDeque<(NodeId, DemandOp)>,
    /// Per node: operators demanded on it (small vectors; bounded by the
    /// type size in bounded-type programs).
    demands: Vec<Vec<DemandOp>>,
    edge_count: usize,
}

impl SubGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows per-node storage to cover `n` nodes.
    pub fn ensure_nodes(&mut self, n: usize) {
        if self.succs.len() < n {
            self.succs.resize(n, Vec::new());
            self.preds.resize(n, Vec::new());
            self.demands.resize(n, Vec::new());
        }
    }

    /// Number of nodes currently covered.
    pub fn node_count(&self) -> usize {
        self.succs.len()
    }

    /// Number of distinct edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds `u → v` if new, enqueueing it for closure processing.
    /// Self-loops are ignored. Returns `true` if the edge was new.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        let key = ((u.index() as u64) << 32) | v.index() as u64;
        if !self.edge_set.insert(key) {
            return false;
        }
        self.ensure_nodes(u.index().max(v.index()) + 1);
        self.succs[u.index()].push(v.index() as u32);
        self.preds[v.index()].push(u.index() as u32);
        self.edge_count += 1;
        self.pending_edges.push_back((u, v));
        true
    }

    /// Whether `u → v` is present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let key = ((u.index() as u64) << 32) | v.index() as u64;
        self.edge_set.contains(&key)
    }

    /// Successors of `u` (value sources: reachability along `succs` finds
    /// the values of `u`).
    pub fn succs(&self, u: NodeId) -> &[u32] {
        &self.succs[u.index()]
    }

    /// Predecessors of `u` (value consumers).
    pub fn preds(&self, u: NodeId) -> &[u32] {
        &self.preds[u.index()]
    }

    /// Records that `op` is demanded on `n`. Returns `true` if this is a
    /// new registration (the caller must then retro-fire over the current
    /// adjacency).
    pub fn register_demand(&mut self, n: NodeId, op: DemandOp) -> bool {
        self.ensure_nodes(n.index() + 1);
        let list = &mut self.demands[n.index()];
        if list.contains(&op) {
            return false;
        }
        list.push(op);
        true
    }

    /// Whether `op` is demanded on `n`.
    pub fn is_demanded(&self, n: NodeId, op: DemandOp) -> bool {
        self.demands.get(n.index()).is_some_and(|l| l.contains(&op))
    }

    /// The operators demanded on `n`.
    pub fn demands(&self, n: NodeId) -> &[DemandOp] {
        static EMPTY: [DemandOp; 0] = [];
        self.demands
            .get(n.index())
            .map_or(&EMPTY[..], |l| l.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn edges_deduplicate_and_enqueue() {
        let mut g = SubGraph::new();
        assert!(g.add_edge(n(0), n(1)));
        assert!(!g.add_edge(n(0), n(1)));
        assert!(!g.add_edge(n(2), n(2)), "self loops ignored");
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.pending_edges.len(), 1);
        assert!(g.has_edge(n(0), n(1)));
        assert!(!g.has_edge(n(1), n(0)));
    }

    #[test]
    fn adjacency_both_directions() {
        let mut g = SubGraph::new();
        g.add_edge(n(0), n(1));
        g.add_edge(n(2), n(1));
        assert_eq!(g.succs(n(0)), &[1]);
        assert_eq!(g.preds(n(1)), &[0, 2]);
        assert!(g.succs(n(1)).is_empty());
    }

    #[test]
    fn demand_registration_deduplicates() {
        let mut g = SubGraph::new();
        assert!(g.register_demand(n(3), DemandOp::Dom));
        assert!(!g.register_demand(n(3), DemandOp::Dom));
        assert!(g.register_demand(n(3), DemandOp::Proj(0)));
        assert!(g.register_demand(n(3), DemandOp::Proj(1)));
        assert!(g.is_demanded(n(3), DemandOp::Dom));
        assert!(!g.is_demanded(n(3), DemandOp::Ran));
        assert_eq!(g.demands(n(3)).len(), 3);
        assert!(g.demands(n(99)).is_empty());
    }
}
