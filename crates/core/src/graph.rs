//! Storage for the subtransitive control-flow graph: adjacency in both
//! directions, edge deduplication, the pending work queues of the
//! demand-driven close phase, and per-node demand registrations.

use std::collections::{HashSet, VecDeque};

use stcfa_lambda::{ConId, DataId};

use crate::node::NodeId;

/// An operator whose application to a node has been *demanded* (received an
/// incoming edge), in the sense of the primed closure rules CLOSE-DOM′ /
/// CLOSE-RAN′ (and their record/datatype analogues).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DemandOp {
    /// `dom(·)` — contravariant.
    Dom,
    /// `ran(·)` — covariant.
    Ran,
    /// `proj_j(·)` — covariant.
    Proj(u32),
    /// `c_i⁻¹(·)` — covariant (Exact policy, or ≈₂ non-datatype slots).
    Decon(ConId, u32),
    /// Merged datatype extraction for datatype `D` — covariant (≈₂ class
    /// chains).
    DeconData(DataId),
}

/// Mutable graph state shared by the build and close phases.
#[derive(Clone, Debug, Default)]
pub struct SubGraph {
    succs: Vec<Vec<u32>>,
    preds: Vec<Vec<u32>>,
    edge_set: HashSet<u64>,
    /// Edges whose closure consequences have not been drawn yet.
    pub(crate) pending_edges: VecDeque<(NodeId, NodeId)>,
    /// Demand registrations not yet retro-fired.
    pub(crate) pending_demands: VecDeque<(NodeId, DemandOp)>,
    /// Per node: operators demanded on it (small vectors; bounded by the
    /// type size in bounded-type programs).
    demands: Vec<Vec<DemandOp>>,
    edge_count: usize,
    /// Mutation journal, present only after [`SubGraph::enable_journal`].
    journal: Option<Journal>,
}

/// Append-only record of graph mutations, enabling [`SubGraph::rewind`].
///
/// Edges and demands are only ever *added* (both `add_edge` and
/// `register_demand` deduplicate), and each addition pushes onto the tail
/// of exactly one adjacency/demand vector — so popping the journal in
/// reverse undoes mutations exactly.
#[derive(Clone, Debug, Default)]
struct Journal {
    edges: Vec<(u32, u32)>,
    demands: Vec<(u32, DemandOp)>,
}

/// A rewind point for a journaled [`SubGraph`] (see [`SubGraph::mark`]).
#[derive(Clone, Copy, Debug)]
pub struct GraphMark {
    nodes: usize,
    edges: usize,
    demand_entries: usize,
}

impl SubGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows per-node storage to cover `n` nodes.
    pub fn ensure_nodes(&mut self, n: usize) {
        if self.succs.len() < n {
            self.succs.resize(n, Vec::new());
            self.preds.resize(n, Vec::new());
            self.demands.resize(n, Vec::new());
        }
    }

    /// Number of nodes currently covered.
    pub fn node_count(&self) -> usize {
        self.succs.len()
    }

    /// Number of distinct edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds `u → v` if new, enqueueing it for closure processing.
    /// Self-loops are ignored. Returns `true` if the edge was new.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        let key = ((u.index() as u64) << 32) | v.index() as u64;
        if !self.edge_set.insert(key) {
            return false;
        }
        self.ensure_nodes(u.index().max(v.index()) + 1);
        self.succs[u.index()].push(v.index() as u32);
        self.preds[v.index()].push(u.index() as u32);
        self.edge_count += 1;
        self.pending_edges.push_back((u, v));
        if let Some(j) = &mut self.journal {
            j.edges.push((u.index() as u32, v.index() as u32));
        }
        true
    }

    /// Starts journaling mutations so the graph can be [rewound]
    /// (`SubGraph::rewind`). Must be called while the graph is empty;
    /// one-shot analyses never enable it and pay nothing.
    pub fn enable_journal(&mut self) {
        debug_assert_eq!(self.node_count(), 0, "enable_journal on a used graph");
        self.journal = Some(Journal::default());
    }

    /// Drops the mutation journal (e.g. on a snapshot clone that will
    /// never be rewound), freeing its memory.
    pub fn drop_journal(&mut self) {
        self.journal = None;
    }

    /// The graph's current extent, for [`SubGraph::rewind`]. Requires
    /// [`SubGraph::enable_journal`].
    pub fn mark(&self) -> GraphMark {
        let j = self.journal.as_ref().expect("mark requires a journal");
        GraphMark {
            nodes: self.node_count(),
            edges: j.edges.len(),
            demand_entries: j.demands.len(),
        }
    }

    /// Rewinds the graph to an earlier [`GraphMark`], exactly undoing
    /// every edge, demand and node added since. Pending queues are
    /// cleared: at a fixpoint they are empty anyway, and after a budget
    /// abort their contents are about to be discarded with the rest of
    /// the suffix.
    pub fn rewind(&mut self, mark: GraphMark) {
        let j = self.journal.as_mut().expect("rewind requires a journal");
        while j.edges.len() > mark.edges {
            let (u, v) = j.edges.pop().expect("len checked");
            let popped_succ = self.succs[u as usize].pop();
            let popped_pred = self.preds[v as usize].pop();
            debug_assert_eq!(popped_succ, Some(v));
            debug_assert_eq!(popped_pred, Some(u));
            let key = ((u as u64) << 32) | v as u64;
            let removed = self.edge_set.remove(&key);
            debug_assert!(removed);
            self.edge_count -= 1;
        }
        while j.demands.len() > mark.demand_entries {
            let (n, op) = j.demands.pop().expect("len checked");
            let popped = self.demands[n as usize].pop();
            debug_assert_eq!(popped, Some(op));
        }
        self.pending_edges.clear();
        self.pending_demands.clear();
        self.succs.truncate(mark.nodes);
        self.preds.truncate(mark.nodes);
        self.demands.truncate(mark.nodes);
    }

    /// Whether `u → v` is present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let key = ((u.index() as u64) << 32) | v.index() as u64;
        self.edge_set.contains(&key)
    }

    /// Successors of `u` (value sources: reachability along `succs` finds
    /// the values of `u`).
    pub fn succs(&self, u: NodeId) -> &[u32] {
        &self.succs[u.index()]
    }

    /// Predecessors of `u` (value consumers).
    pub fn preds(&self, u: NodeId) -> &[u32] {
        &self.preds[u.index()]
    }

    /// Records that `op` is demanded on `n`. Returns `true` if this is a
    /// new registration (the caller must then retro-fire over the current
    /// adjacency).
    pub fn register_demand(&mut self, n: NodeId, op: DemandOp) -> bool {
        self.ensure_nodes(n.index() + 1);
        let list = &mut self.demands[n.index()];
        if list.contains(&op) {
            return false;
        }
        list.push(op);
        if let Some(j) = &mut self.journal {
            j.demands.push((n.index() as u32, op));
        }
        true
    }

    /// Whether `op` is demanded on `n`.
    pub fn is_demanded(&self, n: NodeId, op: DemandOp) -> bool {
        self.demands.get(n.index()).is_some_and(|l| l.contains(&op))
    }

    /// The operators demanded on `n`.
    pub fn demands(&self, n: NodeId) -> &[DemandOp] {
        static EMPTY: [DemandOp; 0] = [];
        self.demands
            .get(n.index())
            .map_or(&EMPTY[..], |l| l.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn edges_deduplicate_and_enqueue() {
        let mut g = SubGraph::new();
        assert!(g.add_edge(n(0), n(1)));
        assert!(!g.add_edge(n(0), n(1)));
        assert!(!g.add_edge(n(2), n(2)), "self loops ignored");
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.pending_edges.len(), 1);
        assert!(g.has_edge(n(0), n(1)));
        assert!(!g.has_edge(n(1), n(0)));
    }

    #[test]
    fn adjacency_both_directions() {
        let mut g = SubGraph::new();
        g.add_edge(n(0), n(1));
        g.add_edge(n(2), n(1));
        assert_eq!(g.succs(n(0)), &[1]);
        assert_eq!(g.preds(n(1)), &[0, 2]);
        assert!(g.succs(n(1)).is_empty());
    }

    #[test]
    fn demand_registration_deduplicates() {
        let mut g = SubGraph::new();
        assert!(g.register_demand(n(3), DemandOp::Dom));
        assert!(!g.register_demand(n(3), DemandOp::Dom));
        assert!(g.register_demand(n(3), DemandOp::Proj(0)));
        assert!(g.register_demand(n(3), DemandOp::Proj(1)));
        assert!(g.is_demanded(n(3), DemandOp::Dom));
        assert!(!g.is_demanded(n(3), DemandOp::Ran));
        assert_eq!(g.demands(n(3)).len(), 3);
        assert!(g.demands(n(99)).is_empty());
    }

    #[test]
    fn rewind_restores_an_earlier_extent_exactly() {
        let mut g = SubGraph::new();
        g.enable_journal();
        g.add_edge(n(0), n(1));
        g.register_demand(n(1), DemandOp::Dom);
        g.pending_edges.clear();
        let mark = g.mark();
        g.add_edge(n(1), n(2));
        g.add_edge(n(0), n(2));
        g.register_demand(n(1), DemandOp::Ran);
        g.register_demand(n(2), DemandOp::Dom);
        g.rewind(mark);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(n(0), n(1)));
        assert!(!g.has_edge(n(1), n(2)));
        assert!(!g.has_edge(n(0), n(2)));
        assert_eq!(g.succs(n(0)), &[1]);
        assert_eq!(g.preds(n(1)), &[0]);
        assert_eq!(g.demands(n(1)), &[DemandOp::Dom]);
        assert!(g.pending_edges.is_empty());
        // Replaying the same additions reproduces the same state.
        g.add_edge(n(1), n(2));
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.succs(n(1)), &[2]);
    }
}
