//! Syntactic let-expansion — the reference semantics for polyvariance.
//!
//! Section 7 of the paper defines the goal of its polyvariant extension as
//! "equivalent to doing a monomorphic analysis of the let-expanded P,
//! without doing the explicit let-expansion". This module *does* the
//! explicit expansion (one level: every outer use of a `let`/`letrec`-bound
//! abstraction is replaced by a fresh copy of that abstraction), together
//! with the label- and occurrence-provenance maps needed to project the
//! expanded analysis back onto the original program. The polyvariant
//! analysis is differentially tested against it.

use std::collections::HashMap;

use stcfa_lambda::{ExprId, ExprKind, Label, Literal, Program, ProgramBuilder, TyExpr, VarId};

/// A let-expanded program with provenance back to the original.
#[derive(Clone, Debug)]
pub struct Expanded {
    /// The expanded program.
    pub program: Program,
    /// For each label of the expanded program: the original label it copies
    /// (originals map to themselves).
    pub label_origin: Vec<Label>,
    /// For each original expression occurrence: its copy in the expanded
    /// program. `None` for the replaced variable occurrences (they became
    /// whole lambda copies) — their node is the new lambda itself, also
    /// recorded here.
    pub expr_map: Vec<ExprId>,
}

impl Expanded {
    /// Projects a set of expanded-program labels back to original labels
    /// (sorted, deduplicated).
    pub fn originals(&self, labels: &[Label]) -> Vec<Label> {
        let mut out: Vec<Label> = labels
            .iter()
            .map(|l| self.label_origin[l.index()])
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Which binders should be expanded: `let`/`letrec`-bound abstractions
/// with at least `min_uses` variable occurrences outside their own body.
pub fn expandable_binders(program: &Program, min_uses: usize) -> Vec<(VarId, ExprId)> {
    let mut out = Vec::new();
    for e in program.exprs() {
        let (binder, lam) = match program.kind(e) {
            ExprKind::Let { binder, rhs, .. }
                if matches!(program.kind(*rhs), ExprKind::Lam { .. }) =>
            {
                (*binder, *rhs)
            }
            ExprKind::LetRec { binder, lambda, .. } => (*binder, *lambda),
            _ => continue,
        };
        let inside = subtree(program, lam);
        let uses = program
            .exprs()
            .filter(|&o| {
                matches!(program.kind(o), ExprKind::Var(v) if *v == binder) && !inside.contains(&o)
            })
            .count();
        if uses >= min_uses {
            out.push((binder, lam));
        }
    }
    out
}

/// The set of expressions in the subtree rooted at `root`.
pub fn subtree(program: &Program, root: ExprId) -> std::collections::HashSet<ExprId> {
    let mut set = std::collections::HashSet::new();
    let mut stack = vec![root];
    while let Some(e) = stack.pop() {
        if set.insert(e) {
            program.for_each_child(e, |c| stack.push(c));
        }
    }
    set
}

/// Expands every binder in `targets` (see [`expandable_binders`]): each
/// outer occurrence of the binder becomes a fresh copy of its abstraction
/// (fresh binders, fresh labels, recorded provenance).
pub fn let_expand(program: &Program, targets: &[(VarId, ExprId)]) -> Expanded {
    // occurrence -> lambda to copy there
    let mut replace: HashMap<ExprId, ExprId> = HashMap::new();
    for &(binder, lam) in targets {
        let inside = subtree(program, lam);
        for o in program.exprs() {
            if matches!(program.kind(o), ExprKind::Var(v) if *v == binder) && !inside.contains(&o) {
                replace.insert(o, lam);
            }
        }
    }

    let mut c = ExpandCopier {
        src: program,
        b: ProgramBuilder::new(),
        var_map: vec![None; program.var_count()],
        replace,
        label_origin: Vec::new(),
        expr_map: vec![ExprId::from_index(0); program.size()],
        origin_stack: Vec::new(),
    };
    // Copy the datatype environment verbatim.
    let env = program.data_env();
    for d in env.datas() {
        let name = program.interner().resolve(env.data(d).name).to_owned();
        let nd = c.b.declare_data(&name);
        debug_assert_eq!(nd, d);
        for &con in &env.data(d).cons.clone() {
            let cname = program.interner().resolve(env.con(con).name).to_owned();
            let tys: Vec<TyExpr> = env.con(con).arg_tys.to_vec();
            c.b.declare_con(nd, &cname, tys);
        }
    }
    let root = c.copy(program.root());
    let expanded = c.b.finish(root).expect("expansion preserves validity");
    Expanded {
        program: expanded,
        label_origin: c.label_origin,
        expr_map: c.expr_map,
    }
}

struct ExpandCopier<'a> {
    src: &'a Program,
    b: ProgramBuilder,
    var_map: Vec<Option<VarId>>,
    replace: HashMap<ExprId, ExprId>,
    /// New label index -> original label.
    label_origin: Vec<Label>,
    expr_map: Vec<ExprId>,
    /// While copying a replacement lambda, the occurrence does not record
    /// positions for inner nodes (they are copies, not originals).
    origin_stack: Vec<()>,
}

impl ExpandCopier<'_> {
    fn record(&mut self, old: ExprId, new: ExprId) -> ExprId {
        if self.origin_stack.is_empty() {
            self.expr_map[old.index()] = new;
        }
        new
    }

    fn copy(&mut self, e: ExprId) -> ExprId {
        if let Some(&lam) = self.replace.get(&e) {
            // Replace the occurrence with a fresh copy of the lambda.
            // Save/restore the binder substitutions it introduces.
            self.origin_stack.push(());
            let saved = self.var_map.clone();
            let new = self.copy_structural(lam);
            self.var_map = saved;
            self.origin_stack.pop();
            return self.record(e, new);
        }
        let new = self.copy_structural(e);
        self.record(e, new)
    }

    fn copy_structural(&mut self, e: ExprId) -> ExprId {
        match self.src.kind(e).clone() {
            ExprKind::Var(v) => {
                let nv = self.var_map[v.index()].expect("scoped variable");
                self.b.var(nv)
            }
            ExprKind::Lam { label, param, body } => {
                let np = self.fresh_like(param);
                let nb = self.copy(body);
                let new = self.b.lam(np, nb);
                // The builder assigned the next label; record provenance.
                let orig = self.original_of(label);
                self.label_origin.push(orig);
                new
            }
            ExprKind::App { func, arg } => {
                let nf = self.copy(func);
                let na = self.copy(arg);
                self.b.app(nf, na)
            }
            ExprKind::Let { binder, rhs, body } => {
                let nr = self.copy(rhs);
                let nb = self.fresh_like(binder);
                let nbody = self.copy(body);
                self.b.let_(nb, nr, nbody)
            }
            ExprKind::LetRec {
                binder,
                lambda,
                body,
            } => {
                let nb = self.fresh_like(binder);
                let nl = self.copy(lambda);
                let nbody = self.copy(body);
                self.b.letrec(nb, nl, nbody)
            }
            ExprKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let nc = self.copy(cond);
                let nt = self.copy(then_branch);
                let ne = self.copy(else_branch);
                self.b.if_(nc, nt, ne)
            }
            ExprKind::Record(items) => {
                let n: Vec<ExprId> = items.iter().map(|&i| self.copy(i)).collect();
                self.b.record(n)
            }
            ExprKind::Proj { index, tuple } => {
                let nt = self.copy(tuple);
                self.b.proj(index, nt)
            }
            ExprKind::Con { con, args } => {
                let n: Vec<ExprId> = args.iter().map(|&a| self.copy(a)).collect();
                self.b.con(con, n)
            }
            ExprKind::Case {
                scrutinee,
                arms,
                default,
            } => {
                let ns = self.copy(scrutinee);
                let narms: Vec<_> = arms
                    .iter()
                    .map(|arm| {
                        let nb: Vec<VarId> =
                            arm.binders.iter().map(|&b| self.fresh_like(b)).collect();
                        let nbody = self.copy(arm.body);
                        (arm.con, nb, nbody)
                    })
                    .collect();
                let nd = default.map(|d| self.copy(d));
                self.b.case(ns, narms, nd)
            }
            ExprKind::Lit(Literal::Int(n)) => self.b.int(n),
            ExprKind::Lit(Literal::Bool(v)) => self.b.bool(v),
            ExprKind::Lit(Literal::Unit) => self.b.unit(),
            ExprKind::Prim { op, args } => {
                let n: Vec<ExprId> = args.iter().map(|&a| self.copy(a)).collect();
                self.b.prim(op, n)
            }
        }
    }

    /// The original label behind `label` of the *source* program (sources
    /// map to themselves).
    fn original_of(&self, label: Label) -> Label {
        label
    }

    fn fresh_like(&mut self, old: VarId) -> VarId {
        let name = self.src.var_name(old).to_owned();
        let nv = self.b.fresh_var(&name);
        self.var_map[old.index()] = Some(nv);
        nv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analysis;

    #[test]
    fn expansion_duplicates_the_lambda() {
        let p = Program::parse("fun id x = x; val a = id (fn u => u); val b = id (fn v => v); a")
            .unwrap();
        let targets = expandable_binders(&p, 2);
        assert_eq!(targets.len(), 1);
        let ex = let_expand(&p, &targets);
        // Two extra copies of id's lambda.
        assert_eq!(ex.program.label_count(), p.label_count() + 2);
        // All copied labels trace back to id's label.
        let id_label = p.label_of(targets[0].1).unwrap();
        let copies = ex.label_origin.iter().filter(|&&o| o == id_label).count();
        assert_eq!(copies, 3, "the original plus two copies");
    }

    #[test]
    fn expanded_analysis_is_more_precise() {
        let p = Program::parse("fun id x = x; val a = id (fn u => u); val b = id (fn v => v); a")
            .unwrap();
        let mono = Analysis::run(&p).unwrap();
        assert_eq!(mono.labels_of(p.root()).len(), 2, "monovariant merges");
        let targets = expandable_binders(&p, 2);
        let ex = let_expand(&p, &targets);
        let expanded_analysis = Analysis::run(&ex.program).unwrap();
        let root_labels = expanded_analysis.labels_of(ex.program.root());
        let originals = ex.originals(&root_labels);
        assert_eq!(originals.len(), 1, "expansion separates the two calls");
    }

    #[test]
    fn expansion_keeps_recursion_intact() {
        let p = Program::parse(
            "fun f n = if n = 0 then 0 else f (n - 1); val a = f 1; val b = f 2; a + b",
        )
        .unwrap();
        let targets = expandable_binders(&p, 2);
        let ex = let_expand(&p, &targets);
        // The copies contain the recursive call to the *shared* binder.
        let out = stcfa_lambda::eval::eval(&ex.program, stcfa_lambda::eval::EvalOptions::default())
            .unwrap();
        assert!(matches!(out.value, stcfa_lambda::eval::Value::Int(0)));
    }

    #[test]
    fn no_targets_is_identity_modulo_ids() {
        let p = Program::parse("(fn x => x) 1").unwrap();
        let ex = let_expand(&p, &[]);
        assert_eq!(ex.program.size(), p.size());
        assert_eq!(ex.program.label_count(), p.label_count());
    }
}
