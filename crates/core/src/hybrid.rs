//! The hybrid driver sketched in the paper's conclusion: "Our algorithm
//! could potentially be combined with the standard cubic-time CFA algorithm
//! to obtain a hybrid algorithm that terminates for arbitrary programs but
//! is linear for bounded-type programs."
//!
//! [`HybridCfa::run`] first attempts the subtransitive analysis under its
//! node budget; if the budget is exceeded (the program behaves like an
//! unbounded-type program) it falls back to the standard cubic algorithm,
//! which always terminates.

use stcfa_cfa0::Cfa0;
use stcfa_lambda::{ExprId, Label, Program};

use crate::analysis::{Analysis, AnalysisError, AnalysisOptions};

/// Result of the hybrid analysis: which engine answered.
// The size asymmetry between the two variants is inherent (a whole graph vs
// a set table) and HybridCfa values are created once per analysis, never
// stored in bulk.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum HybridCfa {
    /// The linear-time subtransitive analysis succeeded.
    Subtransitive(Analysis),
    /// The node budget was exceeded; answers come from the cubic baseline.
    Fallback {
        /// The error that triggered the fallback.
        reason: AnalysisError,
        /// The cubic-analysis result.
        cfa: Cfa0,
    },
}

impl HybridCfa {
    /// Runs the subtransitive analysis, falling back to standard CFA if the
    /// node budget is exceeded.
    pub fn run(program: &Program, options: AnalysisOptions) -> HybridCfa {
        match Analysis::run_with(program, options) {
            Ok(a) => HybridCfa::Subtransitive(a),
            Err(reason) => HybridCfa::Fallback {
                reason,
                cfa: Cfa0::analyze(program),
            },
        }
    }

    /// `L(e)`, from whichever engine ran.
    pub fn labels_of(&self, program: &Program, e: ExprId) -> Vec<Label> {
        match self {
            HybridCfa::Subtransitive(a) => a.labels_of(e),
            HybridCfa::Fallback { cfa, .. } => cfa.labels(program, e),
        }
    }

    /// Whether the linear engine answered.
    pub fn is_linear(&self) -> bool {
        matches!(self, HybridCfa::Subtransitive(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::DatatypePolicy;

    #[test]
    fn bounded_programs_use_the_linear_engine() {
        let p = Program::parse("fun id x = x; id (fn u => u)").unwrap();
        let h = HybridCfa::run(&p, AnalysisOptions::default());
        assert!(h.is_linear());
        assert_eq!(h.labels_of(&p, p.root()).len(), 1);
    }

    #[test]
    fn fallback_answers_when_budget_is_tiny() {
        let p = Program::parse("(fn x => x x) (fn y => y y)").unwrap();
        let h = HybridCfa::run(
            &p,
            AnalysisOptions {
                policy: DatatypePolicy::Exact,
                max_nodes: Some(8), // far below even the build-phase size
            },
        );
        assert!(
            !h.is_linear(),
            "an 8-node budget cannot fit the build phase"
        );
        // The cubic engine answers: Ω never returns, so the root set is
        // empty, but every expression agrees with a direct Cfa0 run.
        let cfa = Cfa0::analyze(&p);
        for e in p.exprs() {
            assert_eq!(h.labels_of(&p, e), cfa.labels(&p, e));
        }
        assert!(h.labels_of(&p, p.root()).is_empty(), "Ω has no value");
    }
}
