//! The frozen batch query engine over a finished subtransitive graph.
//!
//! After the build and close phases every CFA question is *graph
//! reachability* (paper, Section 2) — but [`Analysis`] answers each query
//! with a fresh BFS over growable adjacency lists, so the quadratic
//! "all label sets" listing pays `n` independent traversals with the worst
//! possible constants. [`QueryEngine`] freezes the analysis into an
//! immutable snapshot tuned for answering *many* queries:
//!
//! 1. the graph is packed into a [`Csr`] (plus its cheap transpose);
//! 2. strongly connected components are condensed
//!    ([`Condensation`]) — every node in an SCC has the same label set;
//! 3. one **reverse-topological bit-parallel sweep** computes every
//!    component's label set in `O(E·L/64)` — after which `labels_of`,
//!    `label_reaches`, `exprs_with_label`, `call_targets` and
//!    `all_label_sets` are table lookups.
//!
//! Before (or instead of) the full sweep, demand-mode queries resolve
//! through a **memoized per-component cache**: only the components
//! reachable from the queried node are summarized, and never twice.
//!
//! [`QueryEngine::batch`] shards a query list across
//! `std::thread::scope` workers over the shared immutable snapshot; the
//! answer vector is in input order, byte-identical at every worker count.
//!
//! The engine is a *snapshot*: it does not follow later growth of an
//! incremental session. Snapshots taken through
//! [`IncrementalAnalysis::freeze`](crate::incremental::IncrementalAnalysis::freeze)
//! carry a generation tag and refuse to answer once stale (see
//! [`crate::incremental::SessionSnapshot`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use stcfa_graph::{Condensation, Csr};
use stcfa_lambda::{ExprId, ExprKind, Label, Program, VarId};

use crate::analysis::{Analysis, AnalysisStats};
use crate::node::NodeId;

/// One question for [`QueryEngine::batch`] (single-shot methods exist for
/// all of them too).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Query {
    /// `L(e)` for an expression occurrence.
    LabelsOf(ExprId),
    /// `L(x)` for a binder.
    LabelsOfBinder(VarId),
    /// `l ∈ L(e)`?
    Member(ExprId, Label),
    /// `{e : l ∈ L(e)}`.
    ExprsWithLabel(Label),
}

impl Query {
    /// The call-targets question for application site `app` (`L(e₁)` for
    /// `app = (e₁ e₂)`), or `None` if `app` is not an application.
    pub fn call_targets(program: &Program, app: ExprId) -> Option<Query> {
        match program.kind(app) {
            ExprKind::App { func, .. } => Some(Query::LabelsOf(*func)),
            _ => None,
        }
    }
}

/// One answer, in the same position as its [`Query`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Answer {
    /// For [`Query::LabelsOf`]/[`Query::LabelsOfBinder`]: the sorted label
    /// set.
    Labels(Vec<Label>),
    /// For [`Query::Member`].
    Member(bool),
    /// For [`Query::ExprsWithLabel`]: the sorted occurrence list.
    Exprs(Vec<ExprId>),
}

/// Work and cache-hit counters of one engine (monotone; read them with
/// [`QueryEngine::query_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Queries answered (single-shot and batched).
    pub queries: u64,
    /// Answers served from the completed full sweep.
    pub summary_hits: u64,
    /// Demand-mode answers served from an already-memoized component.
    pub demand_hits: u64,
    /// Components summarized on demand (the demand cache's misses).
    pub demand_misses: u64,
    /// Full bit-parallel sweeps performed (0 or 1).
    pub sweeps: u64,
    /// `batch` invocations.
    pub batches: u64,
}

#[derive(Default)]
struct Counters {
    queries: AtomicU64,
    summary_hits: AtomicU64,
    demand_hits: AtomicU64,
    demand_misses: AtomicU64,
    sweeps: AtomicU64,
    batches: AtomicU64,
}

/// Demand-mode state: per-component label rows computed so far.
struct DemandMemo {
    rows: Vec<Option<Box<[u64]>>>,
}

/// A borrowed view of an engine's frozen arrays, for serialization
/// (see [`QueryEngine::to_parts`]). Only the forward CSR and the
/// node → component assignment are exported: the reverse CSR, the DAG,
/// the member lists and the inverse index are all rederivable in
/// `O(V + E)` and are rebuilt on decode rather than trusted off disk.
#[derive(Clone, Copy, Debug)]
pub struct EnginePartsRef<'a> {
    /// Forward CSR (offsets + targets via its accessors).
    pub csr: &'a Csr,
    /// Node → SCC id, reverse-topological.
    pub comp_of: &'a [u32],
    /// Node → label index (`u32::MAX` = none).
    pub node_label: &'a [u32],
    /// Expression occurrence → node.
    pub expr_nodes: &'a [u32],
    /// Binder → node.
    pub binder_nodes: &'a [u32],
    /// Binder → occurrence-list offsets (CSR-style over `occ_exprs`).
    pub occ_offsets: &'a [u32],
    /// Flattened variable-occurrence expression ids.
    pub occ_exprs: &'a [u32],
    /// Number of abstraction labels.
    pub label_count: usize,
    /// Completed full-sweep label rows (`comp_count × words` `u64`s), if
    /// the sweep has run.
    pub summaries: Option<&'a [u64]>,
    /// The frozen analysis' build-phase statistics.
    pub base_stats: AnalysisStats,
    /// The session generation tag, if any.
    pub generation: Option<u64>,
}

/// Owned decoded arrays for [`QueryEngine::from_parts`] (the persistence
/// tier's decode path). Field meanings match [`EnginePartsRef`].
#[derive(Clone, Debug, Default)]
pub struct EngineParts {
    /// Forward CSR offsets (`node_count + 1` entries).
    pub csr_offsets: Vec<u32>,
    /// Forward CSR targets.
    pub csr_targets: Vec<u32>,
    /// Node → SCC id, reverse-topological.
    pub comp_of: Vec<u32>,
    /// Node → label index (`u32::MAX` = none).
    pub node_label: Vec<u32>,
    /// Expression occurrence → node.
    pub expr_nodes: Vec<u32>,
    /// Binder → node.
    pub binder_nodes: Vec<u32>,
    /// Binder → occurrence-list offsets.
    pub occ_offsets: Vec<u32>,
    /// Flattened variable-occurrence expression ids.
    pub occ_exprs: Vec<u32>,
    /// Number of abstraction labels.
    pub label_count: usize,
    /// Completed full-sweep label rows, if persisted.
    pub summaries: Option<Vec<u64>>,
    /// The frozen analysis' build-phase statistics.
    pub base_stats: AnalysisStats,
    /// The session generation tag, if any.
    pub generation: Option<u64>,
}

/// An immutable, thread-shareable query snapshot of a finished
/// [`Analysis`]. See the [module docs](self) for the design.
pub struct QueryEngine {
    /// Forward CSR (towards value sources, like [`Analysis::succs`]).
    csr: Csr,
    /// Transposed CSR (towards consumers), for demand-mode inverse queries.
    rev: Csr,
    cond: Condensation,
    /// Node → label index (`u32::MAX` = none).
    node_label: Vec<u32>,
    /// Expression occurrence → node.
    expr_nodes: Vec<u32>,
    /// Binder → node.
    binder_nodes: Vec<u32>,
    /// Binder → variable occurrences (flattened), for demand-mode inverse
    /// queries.
    occ_offsets: Vec<u32>,
    occ_exprs: Vec<u32>,
    label_count: usize,
    /// `u64` words per label row.
    words: usize,
    /// Component label rows from the full sweep (`comp_count × words`).
    summaries: OnceLock<Vec<u64>>,
    /// Label → occurrences, derived from the sweep (the inverse index).
    inverse: OnceLock<Vec<Vec<ExprId>>>,
    demand: Mutex<DemandMemo>,
    counters: Counters,
    base_stats: AnalysisStats,
    generation: Option<u64>,
}

impl std::fmt::Debug for QueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryEngine")
            .field("nodes", &self.csr.node_count())
            .field("edges", &self.csr.edge_count())
            .field("comps", &self.cond.comp_count())
            .field("labels", &self.label_count)
            .field("swept", &self.summaries.get().is_some())
            .field("generation", &self.generation)
            .finish()
    }
}

impl QueryEngine {
    /// Freezes a finished analysis into an immutable snapshot. `O(V + E)`.
    pub fn freeze(analysis: &Analysis) -> QueryEngine {
        Self::freeze_tagged(analysis, None)
    }

    /// Like [`QueryEngine::freeze`], but tags the snapshot with an
    /// externally managed generation counter (reported by
    /// [`QueryEngine::generation`]). Used by the session workspace
    /// (`stcfa-session`), whose linked snapshots carry the workspace
    /// generation for the same staleness discipline the REPL's
    /// [`crate::incremental::SessionSnapshot`] enforces.
    pub fn freeze_with_generation(analysis: &Analysis, generation: u64) -> QueryEngine {
        Self::freeze_tagged(analysis, Some(generation))
    }

    pub(crate) fn freeze_tagged(analysis: &Analysis, generation: Option<u64>) -> QueryEngine {
        let n = analysis.node_count();
        let csr = Csr::from_succs(n, |u| analysis.graph.succs(NodeId::from_index(u)));
        let rev = csr.reverse();
        let cond = Condensation::build(&csr);
        // Debug-mode foundation audit: the snapshot consumers (lint rules,
        // batch queries) assume the graph is rule-saturated, the CSR arrays
        // are well-formed, and condensation ids are reverse-topological.
        // Verify all three before handing out the frozen view.
        #[cfg(debug_assertions)]
        {
            if let Err(e) = analysis.check_invariants() {
                panic!("freeze audit: analysis not rule-saturated: {e}");
            }
            if let Err(e) = csr.audit() {
                panic!("freeze audit: forward CSR malformed: {e}");
            }
            if let Err(e) = rev.audit() {
                panic!("freeze audit: reverse CSR malformed: {e}");
            }
            if let Err(e) = cond.check_order() {
                panic!("freeze audit: condensation order violated: {e}");
            }
        }
        let label_count = analysis.label_nodes.len();
        let words = label_count.div_ceil(64).max(1);
        let mut occ_offsets = Vec::with_capacity(analysis.occurrences.len() + 1);
        occ_offsets.push(0u32);
        let mut occ_exprs = Vec::new();
        for occ in &analysis.occurrences {
            occ_exprs.extend(occ.iter().map(|e| e.index() as u32));
            occ_offsets.push(occ_exprs.len() as u32);
        }
        QueryEngine {
            csr,
            rev,
            cond,
            node_label: analysis.node_label.clone(),
            expr_nodes: analysis
                .expr_nodes
                .iter()
                .map(|n| n.index() as u32)
                .collect(),
            binder_nodes: analysis
                .binder_nodes
                .iter()
                .map(|n| n.index() as u32)
                .collect(),
            occ_offsets,
            occ_exprs,
            label_count,
            words,
            summaries: OnceLock::new(),
            inverse: OnceLock::new(),
            demand: Mutex::new(DemandMemo { rows: Vec::new() }),
            counters: Counters::default(),
            base_stats: analysis.stats(),
            generation,
        }
    }

    // --- persistence --------------------------------------------------------

    /// Borrows the engine's frozen arrays for serialization (the
    /// persistence tier's encode path). The parts round-trip exactly
    /// through [`QueryEngine::from_parts`]: a decoded engine answers every
    /// query identically, node for node.
    pub fn to_parts(&self) -> EnginePartsRef<'_> {
        EnginePartsRef {
            csr: &self.csr,
            comp_of: self.cond.comp_of_slice(),
            node_label: &self.node_label,
            expr_nodes: &self.expr_nodes,
            binder_nodes: &self.binder_nodes,
            occ_offsets: &self.occ_offsets,
            occ_exprs: &self.occ_exprs,
            label_count: self.label_count,
            summaries: self.summaries.get().map(Vec::as_slice),
            base_stats: self.base_stats,
            generation: self.generation,
        }
    }

    /// Reassembles an engine from decoded parts (the persistence tier's
    /// decode path). The input is *untrusted* — it may come off disk — so
    /// every structural invariant the query paths rely on is re-verified:
    /// a malformed shape is a structured error, never a panic and never a
    /// wrong answer. The reverse CSR and (if absent) the summary rows and
    /// inverse index are rederived rather than trusted.
    pub fn from_parts(parts: EngineParts) -> Result<QueryEngine, String> {
        let csr = Csr::from_raw_parts(parts.csr_offsets, parts.csr_targets)?;
        let cond = Condensation::from_comp_of(&csr, parts.comp_of)?;
        let n = csr.node_count();
        if parts.node_label.len() != n {
            return Err(format!(
                "engine: node_label has {} entries for {n} nodes",
                parts.node_label.len()
            ));
        }
        for (i, &l) in parts.node_label.iter().enumerate() {
            if l != u32::MAX && l as usize >= parts.label_count {
                return Err(format!(
                    "engine: node {i} carries label {l}, out of range {}",
                    parts.label_count
                ));
            }
        }
        for (what, nodes) in [
            ("expr_nodes", &parts.expr_nodes),
            ("binder_nodes", &parts.binder_nodes),
        ] {
            if let Some(&bad) = nodes.iter().find(|&&v| v as usize >= n) {
                return Err(format!(
                    "engine: {what} references node {bad}, out of range {n}"
                ));
            }
        }
        if parts.occ_offsets.len() != parts.binder_nodes.len() + 1 {
            return Err(format!(
                "engine: occ_offsets has {} entries for {} binders",
                parts.occ_offsets.len(),
                parts.binder_nodes.len()
            ));
        }
        if parts.occ_offsets.first() != Some(&0) {
            return Err("engine: occ_offsets must start at 0".to_owned());
        }
        if parts.occ_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("engine: occ_offsets not monotone".to_owned());
        }
        if *parts.occ_offsets.last().expect("non-empty") as usize != parts.occ_exprs.len() {
            return Err(format!(
                "engine: final occ_offset {} != occurrence count {}",
                parts.occ_offsets.last().expect("non-empty"),
                parts.occ_exprs.len()
            ));
        }
        if let Some(&bad) = parts
            .occ_exprs
            .iter()
            .find(|&&e| e as usize >= parts.expr_nodes.len())
        {
            return Err(format!(
                "engine: occurrence references expression {bad}, out of range {}",
                parts.expr_nodes.len()
            ));
        }
        let words = parts.label_count.div_ceil(64).max(1);
        let summaries = OnceLock::new();
        if let Some(rows) = parts.summaries {
            if rows.len() != cond.comp_count() * words {
                return Err(format!(
                    "engine: {} summary words for {} components × {words} words",
                    rows.len(),
                    cond.comp_count()
                ));
            }
            summaries.set(rows).expect("fresh OnceLock");
        }
        let rev = csr.reverse();
        Ok(QueryEngine {
            csr,
            rev,
            cond,
            node_label: parts.node_label,
            expr_nodes: parts.expr_nodes,
            binder_nodes: parts.binder_nodes,
            occ_offsets: parts.occ_offsets,
            occ_exprs: parts.occ_exprs,
            label_count: parts.label_count,
            words,
            summaries,
            inverse: OnceLock::new(),
            demand: Mutex::new(DemandMemo { rows: Vec::new() }),
            counters: Counters::default(),
            base_stats: parts.base_stats,
            generation: parts.generation,
        })
    }

    // --- snapshot shape -----------------------------------------------------

    /// Number of graph nodes frozen into the snapshot.
    pub fn node_count(&self) -> usize {
        self.csr.node_count()
    }

    /// Number of graph edges frozen into the snapshot.
    pub fn edge_count(&self) -> usize {
        self.csr.edge_count()
    }

    /// Number of strongly connected components.
    pub fn comp_count(&self) -> usize {
        self.cond.comp_count()
    }

    /// Number of abstraction labels.
    pub fn label_count(&self) -> usize {
        self.label_count
    }

    /// The generation of the incremental session this snapshot was frozen
    /// from, if any (see [`crate::incremental::SessionSnapshot`]).
    pub fn generation(&self) -> Option<u64> {
        self.generation
    }

    /// An estimate of this snapshot's resident heap weight, in bytes:
    /// both CSR directions, the condensation, the node/expression index
    /// arrays, and — when materialized — the summary rows and inverse
    /// index. Cache layers use it for byte-accounted capacity decisions;
    /// it deliberately over-counts slightly rather than under-counting.
    pub fn approx_bytes(&self) -> usize {
        let nodes = self.csr.node_count();
        let edges = self.csr.edge_count();
        // Forward + reverse CSR: offsets (nodes+1 each) and targets.
        let csr = 2 * (4 * (nodes + 1) + 4 * edges);
        // Condensation: comp-of array, member lists, DAG edges (bounded
        // by the graph's edges).
        let cond = 4 * nodes + 4 * nodes + 8 * (self.cond.comp_count() + 1) + 4 * edges;
        let indexes = 4 * self.node_label.len()
            + 4 * self.expr_nodes.len()
            + 4 * self.binder_nodes.len()
            + 4 * self.occ_offsets.len()
            + 4 * self.occ_exprs.len();
        let summaries = self
            .summaries
            .get()
            .map_or(0, |rows| rows.len() * std::mem::size_of::<u64>());
        let inverse = self
            .inverse
            .get()
            .map_or(0, |idx| idx.iter().map(|v| 24 + 4 * v.len()).sum());
        csr + cond + indexes + summaries + inverse
    }

    /// The frozen forward CSR.
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// The frozen reverse CSR.
    pub fn rev_csr(&self) -> &Csr {
        &self.rev
    }

    /// The SCC condensation.
    pub fn condensation(&self) -> &Condensation {
        &self.cond
    }

    // --- relation views -----------------------------------------------------
    //
    // Zero-copy accessors for the rule engine (`stcfa-rules`): its
    // extensional relations are views over these frozen arrays, so a rule
    // program evaluates against the same memory the hand-fused analyses
    // read — no copies, no re-derivation.

    /// `u64` words per component label row (`⌈label_count/64⌉`, min 1).
    pub fn row_words(&self) -> usize {
        self.words
    }

    /// The completed-sweep label row of component `c`, as raw bit words
    /// ([`QueryEngine::row_words`] of them). Forces the full sweep on
    /// first call. Bit `l` set means label `l` reaches the component.
    pub fn summary_row(&self, c: usize) -> &[u64] {
        let rows = self.summaries();
        &rows[c * self.words..(c + 1) * self.words]
    }

    /// The graph node carrying expression occurrence `e`.
    pub fn node_of_expr(&self, e: ExprId) -> NodeId {
        NodeId::from_index(self.expr_nodes[e.index()] as usize)
    }

    /// The graph node carrying binder `v`.
    pub fn node_of_binder(&self, v: VarId) -> NodeId {
        NodeId::from_index(self.binder_nodes[v.index()] as usize)
    }

    /// The abstraction label introduced *at* `node` (its own bit in the
    /// sweep), if any. Several nodes may carry the same label under
    /// polyvariant instantiation.
    pub fn own_label(&self, node: NodeId) -> Option<Label> {
        match self.node_label[node.index()] {
            u32::MAX => None,
            l => Some(Label::from_index(l as usize)),
        }
    }

    // --- label rows ---------------------------------------------------------

    /// Seeds `row` with the labels carried by the members of component `c`.
    fn own_bits(&self, c: usize, row: &mut [u64]) {
        for &m in self.cond.members(c) {
            let l = self.node_label[m as usize];
            if l != u32::MAX {
                row[(l / 64) as usize] |= 1u64 << (l % 64);
            }
        }
    }

    /// The full sweep: every component's label row, computed bottom-up in
    /// one pass. Component ids are in reverse topological order (edges go
    /// to smaller ids), so processing `0, 1, 2, …` sees every successor
    /// finished.
    fn summaries(&self) -> &[u64] {
        self.summaries.get_or_init(|| {
            self.counters.sweeps.fetch_add(1, Ordering::Relaxed);
            let cc = self.cond.comp_count();
            let w = self.words;
            let mut rows = vec![0u64; cc * w];
            for c in 0..cc {
                let (done, current) = rows.split_at_mut(c * w);
                let row = &mut current[..w];
                for &s in self.cond.dag().succs(c) {
                    let s = s as usize;
                    debug_assert!(s < c, "condensation order violated");
                    let src = &done[s * w..(s + 1) * w];
                    for (a, b) in row.iter_mut().zip(src) {
                        *a |= b;
                    }
                }
                self.own_bits(c, row);
            }
            rows
        })
    }

    /// Forces the full summary sweep now (it otherwise runs lazily on the
    /// first whole-graph query or batch). Call before a long run of
    /// single-shot queries to skip demand mode entirely.
    pub fn prepare(&self) {
        self.summaries();
    }

    /// The label row of `node`'s component, preferring the completed sweep
    /// and falling back to the memoized demand cache.
    fn row_of_node(&self, node: usize) -> Box<[u64]> {
        let c = self.cond.comp_of(node);
        if let Some(rows) = self.summaries.get() {
            self.counters.summary_hits.fetch_add(1, Ordering::Relaxed);
            return rows[c * self.words..(c + 1) * self.words].into();
        }
        self.demand_row(c)
    }

    /// Demand mode: summarize only the components reachable from `c`,
    /// memoizing every row computed along the way.
    fn demand_row(&self, c: usize) -> Box<[u64]> {
        let w = self.words;
        let mut memo = self.demand.lock().expect("demand cache poisoned");
        if memo.rows.is_empty() {
            memo.rows = (0..self.cond.comp_count()).map(|_| None).collect();
        }
        if let Some(row) = &memo.rows[c] {
            self.counters.demand_hits.fetch_add(1, Ordering::Relaxed);
            return row.clone();
        }
        // Collect the unmemoized components reachable from `c`. Their ids
        // are all ≤ c (reverse-topological numbering), so computing them in
        // increasing id order sees every dependency finished.
        let mut todo: Vec<usize> = Vec::new();
        let mut stack = vec![c];
        let mut seen = vec![false; self.cond.comp_count()];
        seen[c] = true;
        while let Some(x) = stack.pop() {
            if memo.rows[x].is_some() {
                continue;
            }
            todo.push(x);
            for &s in self.cond.dag().succs(x) {
                if !seen[s as usize] {
                    seen[s as usize] = true;
                    stack.push(s as usize);
                }
            }
        }
        todo.sort_unstable();
        self.counters
            .demand_misses
            .fetch_add(todo.len() as u64, Ordering::Relaxed);
        for &x in &todo {
            let mut row = vec![0u64; w].into_boxed_slice();
            for &s in self.cond.dag().succs(x) {
                let src = memo.rows[s as usize].as_ref().expect("dependency computed");
                for (a, b) in row.iter_mut().zip(src.iter()) {
                    *a |= b;
                }
            }
            self.own_bits(x, &mut row);
            memo.rows[x] = Some(row);
        }
        memo.rows[c].as_ref().expect("just computed").clone()
    }

    fn row_to_labels(&self, row: &[u64]) -> Vec<Label> {
        let mut out = Vec::new();
        for (wi, &word) in row.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                out.push(Label::from_index(wi * 64 + b));
            }
        }
        out
    }

    // --- queries ------------------------------------------------------------

    /// `L(e)`, sorted — identical to [`Analysis::labels_of`].
    pub fn labels_of(&self, e: ExprId) -> Vec<Label> {
        self.labels_from_node(NodeId::from_index(self.expr_nodes[e.index()] as usize))
    }

    /// `L(x)` for a binder — identical to [`Analysis::labels_of_binder`].
    pub fn labels_of_binder(&self, v: VarId) -> Vec<Label> {
        self.labels_from_node(NodeId::from_index(self.binder_nodes[v.index()] as usize))
    }

    /// Labels reachable from an arbitrary graph node.
    pub fn labels_from_node(&self, start: NodeId) -> Vec<Label> {
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        let row = self.row_of_node(start.index());
        self.row_to_labels(&row)
    }

    /// Is `l ∈ L(e)`? — identical to [`Analysis::label_reaches`].
    pub fn label_reaches(&self, e: ExprId, l: Label) -> bool {
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        let row = self.row_of_node(self.expr_nodes[e.index()] as usize);
        let i = l.index();
        row[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// The label → occurrences inverse index, derived from the sweep: one
    /// scan over the expressions, `O(n·L/64 + output)` once, `O(1)` per
    /// query after.
    fn inverse_index(&self) -> &Vec<Vec<ExprId>> {
        self.inverse.get_or_init(|| {
            let rows = self.summaries();
            let w = self.words;
            let mut index: Vec<Vec<ExprId>> = vec![Vec::new(); self.label_count];
            for (i, &node) in self.expr_nodes.iter().enumerate() {
                let c = self.cond.comp_of(node as usize);
                let row = &rows[c * w..(c + 1) * w];
                for (wi, &word) in row.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        index[wi * 64 + b].push(ExprId::from_index(i));
                    }
                }
            }
            index
        })
    }

    /// `{e : l ∈ L(e)}`, sorted — identical to
    /// [`Analysis::exprs_with_label`]. First call builds the full inverse
    /// index; every later call is a table lookup.
    pub fn exprs_with_label(&self, l: Label) -> Vec<ExprId> {
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        if self.inverse.get().is_some() {
            self.counters.summary_hits.fetch_add(1, Ordering::Relaxed);
        }
        self.inverse_index()[l.index()].clone()
    }

    /// Demand-mode inverse query: reverse reachability over the transposed
    /// CSR from every carrier of `l`, without building the full index.
    /// Identical answers to [`QueryEngine::exprs_with_label`]; linear in
    /// the graph per call. Exposed for consumers that ask about one or two
    /// labels and then throw the snapshot away.
    pub fn exprs_with_label_demand(&self, l: Label) -> Vec<ExprId> {
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        let n = self.csr.node_count();
        let mut seen = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        // Every carrier of `l` (the abstraction, plus instance roots under
        // polyvariance) seeds the reverse traversal.
        for (node, &lab) in self.node_label.iter().enumerate() {
            if lab as usize == l.index() && !seen[node] {
                seen[node] = true;
                stack.push(node as u32);
            }
        }
        let mut out: Vec<ExprId> = Vec::new();
        let mut hit = vec![false; self.expr_nodes.len().max(1)];
        while let Some(u) = stack.pop() {
            for &p in self.rev.succs(u as usize) {
                if !seen[p as usize] {
                    seen[p as usize] = true;
                    stack.push(p);
                }
            }
        }
        // One pass over the occurrences: an expression is in the answer iff
        // its node was reached.
        for (i, &node) in self.expr_nodes.iter().enumerate() {
            if seen[node as usize] && !hit[i] {
                hit[i] = true;
                out.push(ExprId::from_index(i));
            }
        }
        out
    }

    /// All label sets — one row lookup per occurrence after a single
    /// `O(E·L/64)` sweep, against `n` BFS traversals on the unfrozen
    /// analysis.
    pub fn all_label_sets(&self) -> Vec<(ExprId, Vec<Label>)> {
        let rows = self.summaries();
        let w = self.words;
        self.counters
            .queries
            .fetch_add(self.expr_nodes.len() as u64, Ordering::Relaxed);
        self.counters
            .summary_hits
            .fetch_add(self.expr_nodes.len() as u64, Ordering::Relaxed);
        self.expr_nodes
            .iter()
            .enumerate()
            .map(|(i, &node)| {
                let c = self.cond.comp_of(node as usize);
                let labels = self.row_to_labels(&rows[c * w..(c + 1) * w]);
                (ExprId::from_index(i), labels)
            })
            .collect()
    }

    /// The functions callable from application site `app`, or `None` if
    /// `app` is not an application — identical to
    /// [`Analysis::call_targets`].
    pub fn call_targets(&self, program: &Program, app: ExprId) -> Option<Vec<Label>> {
        match program.kind(app) {
            ExprKind::App { func, .. } => Some(self.labels_of(*func)),
            _ => None,
        }
    }

    /// Known-call evidence for the optimizer backend: every application
    /// site whose engine target set is a *singleton*, with that sole
    /// target. Answered as one positional batch at `threads` workers, so
    /// the result is deterministic (site order) at any thread count.
    pub fn singleton_call_targets(
        &self,
        program: &Program,
        threads: usize,
    ) -> Vec<(ExprId, Label)> {
        let apps = program.app_sites();
        let queries: Vec<Query> = apps
            .iter()
            .filter_map(|&a| Query::call_targets(program, a))
            .collect();
        let answers = self.batch(&queries, threads.max(1));
        apps.iter()
            .zip(&answers)
            .filter_map(|(&app, answer)| match answer {
                Answer::Labels(labels) if labels.len() == 1 => Some((app, labels[0])),
                _ => None,
            })
            .collect()
    }

    /// The number of distinct variable occurrences of binder `v` — the
    /// sole-occurrence test behind called-once inlining, without
    /// materializing the occurrence list.
    pub fn occurrence_count(&self, v: VarId) -> usize {
        self.occ_offsets[v.index() + 1] as usize - self.occ_offsets[v.index()] as usize
    }

    /// The variable occurrences of binder `v` (frozen from the analysis;
    /// used by consumers that walk inverse results back to source).
    pub fn occurrences_of(&self, v: VarId) -> impl Iterator<Item = ExprId> + '_ {
        self.occ_exprs
            [self.occ_offsets[v.index()] as usize..self.occ_offsets[v.index() + 1] as usize]
            .iter()
            .map(|&e| ExprId::from_index(e as usize))
    }

    // --- batch --------------------------------------------------------------

    /// The worker count [`QueryEngine::batch_default`] uses: the
    /// `STCFA_QUERY_THREADS` environment variable if set, else the host's
    /// available parallelism capped at 8.
    pub fn default_threads() -> usize {
        std::env::var("STCFA_QUERY_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get().min(8)))
    }

    /// [`QueryEngine::batch`] at [`QueryEngine::default_threads`].
    pub fn batch_default(&self, queries: &[Query]) -> Vec<Answer> {
        self.batch(queries, Self::default_threads())
    }

    fn answer(&self, q: &Query) -> Answer {
        match *q {
            Query::LabelsOf(e) => Answer::Labels(self.labels_of(e)),
            Query::LabelsOfBinder(v) => Answer::Labels(self.labels_of_binder(v)),
            Query::Member(e, l) => Answer::Member(self.label_reaches(e, l)),
            Query::ExprsWithLabel(l) => Answer::Exprs(self.exprs_with_label(l)),
        }
    }

    /// Answers `queries` with up to `threads` workers sharing the snapshot
    /// through `std::thread::scope` (no new dependencies). Answers come
    /// back in input order and are **byte-identical at every worker
    /// count**: the full sweep (and, if needed, the inverse index) is
    /// completed up front, after which every answer is a pure read.
    pub fn batch(&self, queries: &[Query], threads: usize) -> Vec<Answer> {
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        // Make the shared state read-only before sharding.
        self.summaries();
        if queries
            .iter()
            .any(|q| matches!(q, Query::ExprsWithLabel(_)))
        {
            self.inverse_index();
        }
        let threads = threads.clamp(1, queries.len().max(1));
        if threads == 1 {
            return queries.iter().map(|q| self.answer(q)).collect();
        }
        let chunk = queries.len().div_ceil(threads);
        let mut out = Vec::with_capacity(queries.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .chunks(chunk)
                .map(|qs| {
                    scope.spawn(move || qs.iter().map(|q| self.answer(q)).collect::<Vec<_>>())
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("batch worker panicked"));
            }
        });
        out
    }

    // --- counters -----------------------------------------------------------

    /// A snapshot of the work/cache counters.
    pub fn query_stats(&self) -> QueryStats {
        QueryStats {
            queries: self.counters.queries.load(Ordering::Relaxed),
            summary_hits: self.counters.summary_hits.load(Ordering::Relaxed),
            demand_hits: self.counters.demand_hits.load(Ordering::Relaxed),
            demand_misses: self.counters.demand_misses.load(Ordering::Relaxed),
            sweeps: self.counters.sweeps.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
        }
    }

    /// The frozen analysis' [`AnalysisStats`] with this engine's query
    /// counters filled in.
    pub fn stats(&self) -> AnalysisStats {
        let q = self.query_stats();
        AnalysisStats {
            queries_answered: q.queries,
            query_cache_hits: q.summary_hits + q.demand_hits,
            query_cache_misses: q.demand_misses + q.sweeps,
            ..self.base_stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_lambda::Program;

    fn engine_for(src: &str) -> (Program, Analysis, QueryEngine) {
        let p = Program::parse(src).unwrap();
        let a = Analysis::run(&p).unwrap();
        let q = QueryEngine::freeze(&a);
        (p, a, q)
    }

    const SELF_APP: &str = "(fn x => x x) (fn y => y)";
    const JOIN: &str = "fun id x = x;\nval a = id (fn u => u);\nval b = id (fn v => v);\na";

    #[test]
    fn labels_match_bfs_reference() {
        for src in [SELF_APP, JOIN, "#1 ((fn x => x), (fn y => y)) 4"] {
            let (p, a, q) = engine_for(src);
            for e in p.exprs() {
                assert_eq!(q.labels_of(e), a.labels_of(e), "at {e:?} in {src:?}");
            }
            for v in p.vars() {
                assert_eq!(q.labels_of_binder(v), a.labels_of_binder(v));
            }
        }
    }

    #[test]
    fn member_and_inverse_match_bfs_reference() {
        for src in [SELF_APP, JOIN] {
            let (p, a, q) = engine_for(src);
            for l in p.all_labels() {
                assert_eq!(q.exprs_with_label(l), a.exprs_with_label(l), "{l:?}");
                assert_eq!(q.exprs_with_label_demand(l), a.exprs_with_label(l));
                for e in p.exprs() {
                    assert_eq!(q.label_reaches(e, l), a.label_reaches(e, l));
                }
            }
        }
    }

    #[test]
    fn all_label_sets_matches_bfs_reference() {
        let (p, a, q) = engine_for(JOIN);
        assert_eq!(q.all_label_sets(), a.all_label_sets(&p));
    }

    #[test]
    fn call_targets_match() {
        let (p, a, q) = engine_for("(fn x => x) (fn y => y)");
        for e in p.exprs() {
            assert_eq!(q.call_targets(&p, e), a.call_targets(&p, e));
        }
    }

    #[test]
    fn demand_mode_memoizes() {
        let (p, _, q) = engine_for(JOIN);
        let e = p.root();
        let first = q.labels_of(e);
        let s1 = q.query_stats();
        assert!(s1.demand_misses > 0, "first query computes components");
        assert_eq!(s1.sweeps, 0, "no full sweep in demand mode");
        let second = q.labels_of(e);
        let s2 = q.query_stats();
        assert_eq!(first, second);
        assert_eq!(
            s2.demand_misses, s1.demand_misses,
            "second query is a cache hit"
        );
        assert_eq!(s2.demand_hits, s1.demand_hits + 1);
    }

    #[test]
    fn batch_is_input_ordered_and_thread_invariant() {
        let (p, _, q) = engine_for(JOIN);
        let mut queries: Vec<Query> = p.exprs().map(Query::LabelsOf).collect();
        queries.extend(p.all_labels().map(Query::ExprsWithLabel));
        queries.extend(
            p.exprs()
                .flat_map(|e| p.all_labels().map(move |l| Query::Member(e, l))),
        );
        let one = q.batch(&queries, 1);
        for t in [2, 3, 8, 64] {
            assert_eq!(q.batch(&queries, t), one, "thread count {t}");
        }
        assert!(q.query_stats().batches >= 5);
    }

    fn owned_parts(q: &QueryEngine) -> EngineParts {
        let p = q.to_parts();
        EngineParts {
            csr_offsets: p.csr.offsets().to_vec(),
            csr_targets: p.csr.targets().to_vec(),
            comp_of: p.comp_of.to_vec(),
            node_label: p.node_label.to_vec(),
            expr_nodes: p.expr_nodes.to_vec(),
            binder_nodes: p.binder_nodes.to_vec(),
            occ_offsets: p.occ_offsets.to_vec(),
            occ_exprs: p.occ_exprs.to_vec(),
            label_count: p.label_count,
            summaries: p.summaries.map(<[u64]>::to_vec),
            base_stats: p.base_stats,
            generation: p.generation,
        }
    }

    #[test]
    fn parts_round_trip_answers_identically() {
        for src in [SELF_APP, JOIN, "#1 ((fn x => x), (fn y => y)) 4"] {
            let (p, _, q) = engine_for(src);
            q.prepare(); // persist the swept rows too
            let r = QueryEngine::from_parts(owned_parts(&q)).expect("round trip");
            for e in p.exprs() {
                assert_eq!(q.labels_of(e), r.labels_of(e), "at {e:?} in {src:?}");
            }
            for v in p.vars() {
                assert_eq!(q.labels_of_binder(v), r.labels_of_binder(v));
                assert_eq!(
                    q.occurrences_of(v).collect::<Vec<_>>(),
                    r.occurrences_of(v).collect::<Vec<_>>()
                );
            }
            for l in p.all_labels() {
                assert_eq!(q.exprs_with_label(l), r.exprs_with_label(l));
            }
            assert_eq!(q.all_label_sets(), r.all_label_sets());
            assert_eq!(q.base_stats, r.base_stats);
            assert_eq!(q.generation(), r.generation());
            // The decoded engine starts with the persisted sweep: no
            // demand-mode misses, no second sweep.
            assert_eq!(r.query_stats().sweeps, 0);
            assert_eq!(r.query_stats().demand_misses, 0);
        }
    }

    #[test]
    fn from_parts_rejects_malformed_shapes() {
        let (_, _, q) = engine_for(JOIN);
        q.prepare();
        let good = owned_parts(&q);
        assert!(QueryEngine::from_parts(good.clone()).is_ok());
        type Mutation = Box<dyn Fn(&mut EngineParts)>;
        let cases: Vec<(&str, Mutation)> = vec![
            (
                "truncated node_label",
                Box::new(|p| {
                    p.node_label.pop();
                }),
            ),
            (
                "label out of range",
                Box::new(|p| p.node_label[0] = 1 << 20),
            ),
            (
                "expr node out of range",
                Box::new(|p| p.expr_nodes[0] = u32::MAX - 1),
            ),
            (
                "binder node out of range",
                Box::new(|p| p.binder_nodes[0] = u32::MAX - 1),
            ),
            (
                "occ_offsets non-monotone",
                Box::new(|p| p.occ_offsets[0] = 9),
            ),
            (
                "occurrence out of range",
                Box::new(|p| {
                    if p.occ_exprs.is_empty() {
                        p.occ_exprs.push(u32::MAX);
                        p.occ_offsets.pop();
                    } else {
                        p.occ_exprs[0] = u32::MAX;
                    }
                }),
            ),
            (
                "summary rows wrong size",
                Box::new(|p| {
                    p.summaries.as_mut().expect("prepared").pop();
                }),
            ),
            (
                "comp_of length mismatch",
                Box::new(|p| {
                    p.comp_of.pop();
                }),
            ),
            ("csr offsets corrupted", Box::new(|p| p.csr_offsets[0] = 3)),
        ];
        for (what, mutate) in cases {
            let mut parts = good.clone();
            mutate(&mut parts);
            assert!(
                QueryEngine::from_parts(parts).is_err(),
                "{what}: malformed parts must be a structured error"
            );
        }
    }

    #[test]
    fn stats_merge_into_analysis_stats() {
        let (p, a, q) = engine_for(SELF_APP);
        let _ = q.labels_of(p.root());
        let s = q.stats();
        assert_eq!(s.build_nodes, a.stats().build_nodes);
        assert_eq!(s.queries_answered, 1);
        assert!(s.query_cache_misses > 0);
    }
}
