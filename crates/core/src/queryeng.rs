//! The frozen batch query engine over a finished subtransitive graph.
//!
//! After the build and close phases every CFA question is *graph
//! reachability* (paper, Section 2) — but [`Analysis`] answers each query
//! with a fresh BFS over growable adjacency lists, so the quadratic
//! "all label sets" listing pays `n` independent traversals with the worst
//! possible constants. [`QueryEngine`] freezes the analysis into an
//! immutable snapshot tuned for answering *many* queries:
//!
//! 1. the graph is packed into a [`Csr`] (plus its cheap transpose);
//! 2. strongly connected components are condensed
//!    ([`Condensation`]) — every node in an SCC has the same label set;
//! 3. one **reverse-topological bit-parallel sweep** computes every
//!    component's label set in `O(E·L/64)` — after which `labels_of`,
//!    `label_reaches`, `exprs_with_label`, `call_targets` and
//!    `all_label_sets` are table lookups.
//!
//! Before (or instead of) the full sweep, demand-mode queries resolve
//! through a **memoized per-component cache**: only the components
//! reachable from the queried node are summarized, and never twice.
//!
//! [`QueryEngine::batch`] shards a query list across
//! `std::thread::scope` workers over the shared immutable snapshot; the
//! answer vector is in input order, byte-identical at every worker count.
//!
//! The engine is a *snapshot*: it does not follow later growth of an
//! incremental session. Snapshots taken through
//! [`IncrementalAnalysis::freeze`](crate::incremental::IncrementalAnalysis::freeze)
//! carry a generation tag and refuse to answer once stale (see
//! [`crate::incremental::SessionSnapshot`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use stcfa_graph::{Condensation, Csr};
use stcfa_lambda::{ExprId, ExprKind, Label, Program, VarId};

use crate::analysis::{Analysis, AnalysisStats};
use crate::node::NodeId;

/// One question for [`QueryEngine::batch`] (single-shot methods exist for
/// all of them too).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Query {
    /// `L(e)` for an expression occurrence.
    LabelsOf(ExprId),
    /// `L(x)` for a binder.
    LabelsOfBinder(VarId),
    /// `l ∈ L(e)`?
    Member(ExprId, Label),
    /// `{e : l ∈ L(e)}`.
    ExprsWithLabel(Label),
}

impl Query {
    /// The call-targets question for application site `app` (`L(e₁)` for
    /// `app = (e₁ e₂)`), or `None` if `app` is not an application.
    pub fn call_targets(program: &Program, app: ExprId) -> Option<Query> {
        match program.kind(app) {
            ExprKind::App { func, .. } => Some(Query::LabelsOf(*func)),
            _ => None,
        }
    }
}

/// One answer, in the same position as its [`Query`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Answer {
    /// For [`Query::LabelsOf`]/[`Query::LabelsOfBinder`]: the sorted label
    /// set.
    Labels(Vec<Label>),
    /// For [`Query::Member`].
    Member(bool),
    /// For [`Query::ExprsWithLabel`]: the sorted occurrence list.
    Exprs(Vec<ExprId>),
}

/// Work and cache-hit counters of one engine (monotone; read them with
/// [`QueryEngine::query_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Queries answered (single-shot and batched).
    pub queries: u64,
    /// Answers served from the completed full sweep.
    pub summary_hits: u64,
    /// Demand-mode answers served from an already-memoized component.
    pub demand_hits: u64,
    /// Components summarized on demand (the demand cache's misses).
    pub demand_misses: u64,
    /// Full bit-parallel sweeps performed (0 or 1).
    pub sweeps: u64,
    /// `batch` invocations.
    pub batches: u64,
}

#[derive(Default)]
struct Counters {
    queries: AtomicU64,
    summary_hits: AtomicU64,
    demand_hits: AtomicU64,
    demand_misses: AtomicU64,
    sweeps: AtomicU64,
    batches: AtomicU64,
}

/// Demand-mode state: per-component label rows computed so far.
struct DemandMemo {
    rows: Vec<Option<Box<[u64]>>>,
}

/// An immutable, thread-shareable query snapshot of a finished
/// [`Analysis`]. See the [module docs](self) for the design.
pub struct QueryEngine {
    /// Forward CSR (towards value sources, like [`Analysis::succs`]).
    csr: Csr,
    /// Transposed CSR (towards consumers), for demand-mode inverse queries.
    rev: Csr,
    cond: Condensation,
    /// Node → label index (`u32::MAX` = none).
    node_label: Vec<u32>,
    /// Expression occurrence → node.
    expr_nodes: Vec<u32>,
    /// Binder → node.
    binder_nodes: Vec<u32>,
    /// Binder → variable occurrences (flattened), for demand-mode inverse
    /// queries.
    occ_offsets: Vec<u32>,
    occ_exprs: Vec<u32>,
    label_count: usize,
    /// `u64` words per label row.
    words: usize,
    /// Component label rows from the full sweep (`comp_count × words`).
    summaries: OnceLock<Vec<u64>>,
    /// Label → occurrences, derived from the sweep (the inverse index).
    inverse: OnceLock<Vec<Vec<ExprId>>>,
    demand: Mutex<DemandMemo>,
    counters: Counters,
    base_stats: AnalysisStats,
    generation: Option<u64>,
}

impl std::fmt::Debug for QueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryEngine")
            .field("nodes", &self.csr.node_count())
            .field("edges", &self.csr.edge_count())
            .field("comps", &self.cond.comp_count())
            .field("labels", &self.label_count)
            .field("swept", &self.summaries.get().is_some())
            .field("generation", &self.generation)
            .finish()
    }
}

impl QueryEngine {
    /// Freezes a finished analysis into an immutable snapshot. `O(V + E)`.
    pub fn freeze(analysis: &Analysis) -> QueryEngine {
        Self::freeze_tagged(analysis, None)
    }

    /// Like [`QueryEngine::freeze`], but tags the snapshot with an
    /// externally managed generation counter (reported by
    /// [`QueryEngine::generation`]). Used by the session workspace
    /// (`stcfa-session`), whose linked snapshots carry the workspace
    /// generation for the same staleness discipline the REPL's
    /// [`crate::incremental::SessionSnapshot`] enforces.
    pub fn freeze_with_generation(analysis: &Analysis, generation: u64) -> QueryEngine {
        Self::freeze_tagged(analysis, Some(generation))
    }

    pub(crate) fn freeze_tagged(analysis: &Analysis, generation: Option<u64>) -> QueryEngine {
        let n = analysis.node_count();
        let csr = Csr::from_succs(n, |u| analysis.graph.succs(NodeId::from_index(u)));
        let rev = csr.reverse();
        let cond = Condensation::build(&csr);
        // Debug-mode foundation audit: the snapshot consumers (lint rules,
        // batch queries) assume the graph is rule-saturated, the CSR arrays
        // are well-formed, and condensation ids are reverse-topological.
        // Verify all three before handing out the frozen view.
        #[cfg(debug_assertions)]
        {
            if let Err(e) = analysis.check_invariants() {
                panic!("freeze audit: analysis not rule-saturated: {e}");
            }
            if let Err(e) = csr.audit() {
                panic!("freeze audit: forward CSR malformed: {e}");
            }
            if let Err(e) = rev.audit() {
                panic!("freeze audit: reverse CSR malformed: {e}");
            }
            if let Err(e) = cond.check_order() {
                panic!("freeze audit: condensation order violated: {e}");
            }
        }
        let label_count = analysis.label_nodes.len();
        let words = label_count.div_ceil(64).max(1);
        let mut occ_offsets = Vec::with_capacity(analysis.occurrences.len() + 1);
        occ_offsets.push(0u32);
        let mut occ_exprs = Vec::new();
        for occ in &analysis.occurrences {
            occ_exprs.extend(occ.iter().map(|e| e.index() as u32));
            occ_offsets.push(occ_exprs.len() as u32);
        }
        QueryEngine {
            csr,
            rev,
            cond,
            node_label: analysis.node_label.clone(),
            expr_nodes: analysis
                .expr_nodes
                .iter()
                .map(|n| n.index() as u32)
                .collect(),
            binder_nodes: analysis
                .binder_nodes
                .iter()
                .map(|n| n.index() as u32)
                .collect(),
            occ_offsets,
            occ_exprs,
            label_count,
            words,
            summaries: OnceLock::new(),
            inverse: OnceLock::new(),
            demand: Mutex::new(DemandMemo { rows: Vec::new() }),
            counters: Counters::default(),
            base_stats: analysis.stats(),
            generation,
        }
    }

    // --- snapshot shape -----------------------------------------------------

    /// Number of graph nodes frozen into the snapshot.
    pub fn node_count(&self) -> usize {
        self.csr.node_count()
    }

    /// Number of graph edges frozen into the snapshot.
    pub fn edge_count(&self) -> usize {
        self.csr.edge_count()
    }

    /// Number of strongly connected components.
    pub fn comp_count(&self) -> usize {
        self.cond.comp_count()
    }

    /// Number of abstraction labels.
    pub fn label_count(&self) -> usize {
        self.label_count
    }

    /// The generation of the incremental session this snapshot was frozen
    /// from, if any (see [`crate::incremental::SessionSnapshot`]).
    pub fn generation(&self) -> Option<u64> {
        self.generation
    }

    /// An estimate of this snapshot's resident heap weight, in bytes:
    /// both CSR directions, the condensation, the node/expression index
    /// arrays, and — when materialized — the summary rows and inverse
    /// index. Cache layers use it for byte-accounted capacity decisions;
    /// it deliberately over-counts slightly rather than under-counting.
    pub fn approx_bytes(&self) -> usize {
        let nodes = self.csr.node_count();
        let edges = self.csr.edge_count();
        // Forward + reverse CSR: offsets (nodes+1 each) and targets.
        let csr = 2 * (4 * (nodes + 1) + 4 * edges);
        // Condensation: comp-of array, member lists, DAG edges (bounded
        // by the graph's edges).
        let cond = 4 * nodes + 4 * nodes + 8 * (self.cond.comp_count() + 1) + 4 * edges;
        let indexes = 4 * self.node_label.len()
            + 4 * self.expr_nodes.len()
            + 4 * self.binder_nodes.len()
            + 4 * self.occ_offsets.len()
            + 4 * self.occ_exprs.len();
        let summaries = self
            .summaries
            .get()
            .map_or(0, |rows| rows.len() * std::mem::size_of::<u64>());
        let inverse = self
            .inverse
            .get()
            .map_or(0, |idx| idx.iter().map(|v| 24 + 4 * v.len()).sum());
        csr + cond + indexes + summaries + inverse
    }

    /// The frozen forward CSR.
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// The frozen reverse CSR.
    pub fn rev_csr(&self) -> &Csr {
        &self.rev
    }

    /// The SCC condensation.
    pub fn condensation(&self) -> &Condensation {
        &self.cond
    }

    // --- label rows ---------------------------------------------------------

    /// Seeds `row` with the labels carried by the members of component `c`.
    fn own_bits(&self, c: usize, row: &mut [u64]) {
        for &m in self.cond.members(c) {
            let l = self.node_label[m as usize];
            if l != u32::MAX {
                row[(l / 64) as usize] |= 1u64 << (l % 64);
            }
        }
    }

    /// The full sweep: every component's label row, computed bottom-up in
    /// one pass. Component ids are in reverse topological order (edges go
    /// to smaller ids), so processing `0, 1, 2, …` sees every successor
    /// finished.
    fn summaries(&self) -> &[u64] {
        self.summaries.get_or_init(|| {
            self.counters.sweeps.fetch_add(1, Ordering::Relaxed);
            let cc = self.cond.comp_count();
            let w = self.words;
            let mut rows = vec![0u64; cc * w];
            for c in 0..cc {
                let (done, current) = rows.split_at_mut(c * w);
                let row = &mut current[..w];
                for &s in self.cond.dag().succs(c) {
                    let s = s as usize;
                    debug_assert!(s < c, "condensation order violated");
                    let src = &done[s * w..(s + 1) * w];
                    for (a, b) in row.iter_mut().zip(src) {
                        *a |= b;
                    }
                }
                self.own_bits(c, row);
            }
            rows
        })
    }

    /// Forces the full summary sweep now (it otherwise runs lazily on the
    /// first whole-graph query or batch). Call before a long run of
    /// single-shot queries to skip demand mode entirely.
    pub fn prepare(&self) {
        self.summaries();
    }

    /// The label row of `node`'s component, preferring the completed sweep
    /// and falling back to the memoized demand cache.
    fn row_of_node(&self, node: usize) -> Box<[u64]> {
        let c = self.cond.comp_of(node);
        if let Some(rows) = self.summaries.get() {
            self.counters.summary_hits.fetch_add(1, Ordering::Relaxed);
            return rows[c * self.words..(c + 1) * self.words].into();
        }
        self.demand_row(c)
    }

    /// Demand mode: summarize only the components reachable from `c`,
    /// memoizing every row computed along the way.
    fn demand_row(&self, c: usize) -> Box<[u64]> {
        let w = self.words;
        let mut memo = self.demand.lock().expect("demand cache poisoned");
        if memo.rows.is_empty() {
            memo.rows = (0..self.cond.comp_count()).map(|_| None).collect();
        }
        if let Some(row) = &memo.rows[c] {
            self.counters.demand_hits.fetch_add(1, Ordering::Relaxed);
            return row.clone();
        }
        // Collect the unmemoized components reachable from `c`. Their ids
        // are all ≤ c (reverse-topological numbering), so computing them in
        // increasing id order sees every dependency finished.
        let mut todo: Vec<usize> = Vec::new();
        let mut stack = vec![c];
        let mut seen = vec![false; self.cond.comp_count()];
        seen[c] = true;
        while let Some(x) = stack.pop() {
            if memo.rows[x].is_some() {
                continue;
            }
            todo.push(x);
            for &s in self.cond.dag().succs(x) {
                if !seen[s as usize] {
                    seen[s as usize] = true;
                    stack.push(s as usize);
                }
            }
        }
        todo.sort_unstable();
        self.counters
            .demand_misses
            .fetch_add(todo.len() as u64, Ordering::Relaxed);
        for &x in &todo {
            let mut row = vec![0u64; w].into_boxed_slice();
            for &s in self.cond.dag().succs(x) {
                let src = memo.rows[s as usize].as_ref().expect("dependency computed");
                for (a, b) in row.iter_mut().zip(src.iter()) {
                    *a |= b;
                }
            }
            self.own_bits(x, &mut row);
            memo.rows[x] = Some(row);
        }
        memo.rows[c].as_ref().expect("just computed").clone()
    }

    fn row_to_labels(&self, row: &[u64]) -> Vec<Label> {
        let mut out = Vec::new();
        for (wi, &word) in row.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                out.push(Label::from_index(wi * 64 + b));
            }
        }
        out
    }

    // --- queries ------------------------------------------------------------

    /// `L(e)`, sorted — identical to [`Analysis::labels_of`].
    pub fn labels_of(&self, e: ExprId) -> Vec<Label> {
        self.labels_from_node(NodeId::from_index(self.expr_nodes[e.index()] as usize))
    }

    /// `L(x)` for a binder — identical to [`Analysis::labels_of_binder`].
    pub fn labels_of_binder(&self, v: VarId) -> Vec<Label> {
        self.labels_from_node(NodeId::from_index(self.binder_nodes[v.index()] as usize))
    }

    /// Labels reachable from an arbitrary graph node.
    pub fn labels_from_node(&self, start: NodeId) -> Vec<Label> {
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        let row = self.row_of_node(start.index());
        self.row_to_labels(&row)
    }

    /// Is `l ∈ L(e)`? — identical to [`Analysis::label_reaches`].
    pub fn label_reaches(&self, e: ExprId, l: Label) -> bool {
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        let row = self.row_of_node(self.expr_nodes[e.index()] as usize);
        let i = l.index();
        row[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// The label → occurrences inverse index, derived from the sweep: one
    /// scan over the expressions, `O(n·L/64 + output)` once, `O(1)` per
    /// query after.
    fn inverse_index(&self) -> &Vec<Vec<ExprId>> {
        self.inverse.get_or_init(|| {
            let rows = self.summaries();
            let w = self.words;
            let mut index: Vec<Vec<ExprId>> = vec![Vec::new(); self.label_count];
            for (i, &node) in self.expr_nodes.iter().enumerate() {
                let c = self.cond.comp_of(node as usize);
                let row = &rows[c * w..(c + 1) * w];
                for (wi, &word) in row.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        index[wi * 64 + b].push(ExprId::from_index(i));
                    }
                }
            }
            index
        })
    }

    /// `{e : l ∈ L(e)}`, sorted — identical to
    /// [`Analysis::exprs_with_label`]. First call builds the full inverse
    /// index; every later call is a table lookup.
    pub fn exprs_with_label(&self, l: Label) -> Vec<ExprId> {
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        if self.inverse.get().is_some() {
            self.counters.summary_hits.fetch_add(1, Ordering::Relaxed);
        }
        self.inverse_index()[l.index()].clone()
    }

    /// Demand-mode inverse query: reverse reachability over the transposed
    /// CSR from every carrier of `l`, without building the full index.
    /// Identical answers to [`QueryEngine::exprs_with_label`]; linear in
    /// the graph per call. Exposed for consumers that ask about one or two
    /// labels and then throw the snapshot away.
    pub fn exprs_with_label_demand(&self, l: Label) -> Vec<ExprId> {
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        let n = self.csr.node_count();
        let mut seen = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        // Every carrier of `l` (the abstraction, plus instance roots under
        // polyvariance) seeds the reverse traversal.
        for (node, &lab) in self.node_label.iter().enumerate() {
            if lab as usize == l.index() && !seen[node] {
                seen[node] = true;
                stack.push(node as u32);
            }
        }
        let mut out: Vec<ExprId> = Vec::new();
        let mut hit = vec![false; self.expr_nodes.len().max(1)];
        while let Some(u) = stack.pop() {
            for &p in self.rev.succs(u as usize) {
                if !seen[p as usize] {
                    seen[p as usize] = true;
                    stack.push(p);
                }
            }
        }
        // One pass over the occurrences: an expression is in the answer iff
        // its node was reached.
        for (i, &node) in self.expr_nodes.iter().enumerate() {
            if seen[node as usize] && !hit[i] {
                hit[i] = true;
                out.push(ExprId::from_index(i));
            }
        }
        out
    }

    /// All label sets — one row lookup per occurrence after a single
    /// `O(E·L/64)` sweep, against `n` BFS traversals on the unfrozen
    /// analysis.
    pub fn all_label_sets(&self) -> Vec<(ExprId, Vec<Label>)> {
        let rows = self.summaries();
        let w = self.words;
        self.counters
            .queries
            .fetch_add(self.expr_nodes.len() as u64, Ordering::Relaxed);
        self.counters
            .summary_hits
            .fetch_add(self.expr_nodes.len() as u64, Ordering::Relaxed);
        self.expr_nodes
            .iter()
            .enumerate()
            .map(|(i, &node)| {
                let c = self.cond.comp_of(node as usize);
                let labels = self.row_to_labels(&rows[c * w..(c + 1) * w]);
                (ExprId::from_index(i), labels)
            })
            .collect()
    }

    /// The functions callable from application site `app`, or `None` if
    /// `app` is not an application — identical to
    /// [`Analysis::call_targets`].
    pub fn call_targets(&self, program: &Program, app: ExprId) -> Option<Vec<Label>> {
        match program.kind(app) {
            ExprKind::App { func, .. } => Some(self.labels_of(*func)),
            _ => None,
        }
    }

    /// The variable occurrences of binder `v` (frozen from the analysis;
    /// used by consumers that walk inverse results back to source).
    pub fn occurrences_of(&self, v: VarId) -> impl Iterator<Item = ExprId> + '_ {
        self.occ_exprs
            [self.occ_offsets[v.index()] as usize..self.occ_offsets[v.index() + 1] as usize]
            .iter()
            .map(|&e| ExprId::from_index(e as usize))
    }

    // --- batch --------------------------------------------------------------

    /// The worker count [`QueryEngine::batch_default`] uses: the
    /// `STCFA_QUERY_THREADS` environment variable if set, else the host's
    /// available parallelism capped at 8.
    pub fn default_threads() -> usize {
        std::env::var("STCFA_QUERY_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get().min(8)))
    }

    /// [`QueryEngine::batch`] at [`QueryEngine::default_threads`].
    pub fn batch_default(&self, queries: &[Query]) -> Vec<Answer> {
        self.batch(queries, Self::default_threads())
    }

    fn answer(&self, q: &Query) -> Answer {
        match *q {
            Query::LabelsOf(e) => Answer::Labels(self.labels_of(e)),
            Query::LabelsOfBinder(v) => Answer::Labels(self.labels_of_binder(v)),
            Query::Member(e, l) => Answer::Member(self.label_reaches(e, l)),
            Query::ExprsWithLabel(l) => Answer::Exprs(self.exprs_with_label(l)),
        }
    }

    /// Answers `queries` with up to `threads` workers sharing the snapshot
    /// through `std::thread::scope` (no new dependencies). Answers come
    /// back in input order and are **byte-identical at every worker
    /// count**: the full sweep (and, if needed, the inverse index) is
    /// completed up front, after which every answer is a pure read.
    pub fn batch(&self, queries: &[Query], threads: usize) -> Vec<Answer> {
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        // Make the shared state read-only before sharding.
        self.summaries();
        if queries
            .iter()
            .any(|q| matches!(q, Query::ExprsWithLabel(_)))
        {
            self.inverse_index();
        }
        let threads = threads.clamp(1, queries.len().max(1));
        if threads == 1 {
            return queries.iter().map(|q| self.answer(q)).collect();
        }
        let chunk = queries.len().div_ceil(threads);
        let mut out = Vec::with_capacity(queries.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .chunks(chunk)
                .map(|qs| {
                    scope.spawn(move || qs.iter().map(|q| self.answer(q)).collect::<Vec<_>>())
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("batch worker panicked"));
            }
        });
        out
    }

    // --- counters -----------------------------------------------------------

    /// A snapshot of the work/cache counters.
    pub fn query_stats(&self) -> QueryStats {
        QueryStats {
            queries: self.counters.queries.load(Ordering::Relaxed),
            summary_hits: self.counters.summary_hits.load(Ordering::Relaxed),
            demand_hits: self.counters.demand_hits.load(Ordering::Relaxed),
            demand_misses: self.counters.demand_misses.load(Ordering::Relaxed),
            sweeps: self.counters.sweeps.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
        }
    }

    /// The frozen analysis' [`AnalysisStats`] with this engine's query
    /// counters filled in.
    pub fn stats(&self) -> AnalysisStats {
        let q = self.query_stats();
        AnalysisStats {
            queries_answered: q.queries,
            query_cache_hits: q.summary_hits + q.demand_hits,
            query_cache_misses: q.demand_misses + q.sweeps,
            ..self.base_stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_lambda::Program;

    fn engine_for(src: &str) -> (Program, Analysis, QueryEngine) {
        let p = Program::parse(src).unwrap();
        let a = Analysis::run(&p).unwrap();
        let q = QueryEngine::freeze(&a);
        (p, a, q)
    }

    const SELF_APP: &str = "(fn x => x x) (fn y => y)";
    const JOIN: &str = "fun id x = x;\nval a = id (fn u => u);\nval b = id (fn v => v);\na";

    #[test]
    fn labels_match_bfs_reference() {
        for src in [SELF_APP, JOIN, "#1 ((fn x => x), (fn y => y)) 4"] {
            let (p, a, q) = engine_for(src);
            for e in p.exprs() {
                assert_eq!(q.labels_of(e), a.labels_of(e), "at {e:?} in {src:?}");
            }
            for v in p.vars() {
                assert_eq!(q.labels_of_binder(v), a.labels_of_binder(v));
            }
        }
    }

    #[test]
    fn member_and_inverse_match_bfs_reference() {
        for src in [SELF_APP, JOIN] {
            let (p, a, q) = engine_for(src);
            for l in p.all_labels() {
                assert_eq!(q.exprs_with_label(l), a.exprs_with_label(l), "{l:?}");
                assert_eq!(q.exprs_with_label_demand(l), a.exprs_with_label(l));
                for e in p.exprs() {
                    assert_eq!(q.label_reaches(e, l), a.label_reaches(e, l));
                }
            }
        }
    }

    #[test]
    fn all_label_sets_matches_bfs_reference() {
        let (p, a, q) = engine_for(JOIN);
        assert_eq!(q.all_label_sets(), a.all_label_sets(&p));
    }

    #[test]
    fn call_targets_match() {
        let (p, a, q) = engine_for("(fn x => x) (fn y => y)");
        for e in p.exprs() {
            assert_eq!(q.call_targets(&p, e), a.call_targets(&p, e));
        }
    }

    #[test]
    fn demand_mode_memoizes() {
        let (p, _, q) = engine_for(JOIN);
        let e = p.root();
        let first = q.labels_of(e);
        let s1 = q.query_stats();
        assert!(s1.demand_misses > 0, "first query computes components");
        assert_eq!(s1.sweeps, 0, "no full sweep in demand mode");
        let second = q.labels_of(e);
        let s2 = q.query_stats();
        assert_eq!(first, second);
        assert_eq!(
            s2.demand_misses, s1.demand_misses,
            "second query is a cache hit"
        );
        assert_eq!(s2.demand_hits, s1.demand_hits + 1);
    }

    #[test]
    fn batch_is_input_ordered_and_thread_invariant() {
        let (p, _, q) = engine_for(JOIN);
        let mut queries: Vec<Query> = p.exprs().map(Query::LabelsOf).collect();
        queries.extend(p.all_labels().map(Query::ExprsWithLabel));
        queries.extend(
            p.exprs()
                .flat_map(|e| p.all_labels().map(move |l| Query::Member(e, l))),
        );
        let one = q.batch(&queries, 1);
        for t in [2, 3, 8, 64] {
            assert_eq!(q.batch(&queries, t), one, "thread count {t}");
        }
        assert!(q.query_stats().batches >= 5);
    }

    #[test]
    fn stats_merge_into_analysis_stats() {
        let (p, a, q) = engine_for(SELF_APP);
        let _ = q.labels_of(p.root());
        let s = q.stats();
        assert_eq!(s.build_nodes, a.stats().build_nodes);
        assert_eq!(s.queries_answered, 1);
        assert!(s.query_cache_misses > 0);
    }
}
