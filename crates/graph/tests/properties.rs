//! Property tests for the graph substrate: reachability, SCCs and the
//! transitive closure must agree with each other on random graphs.

// Index-based loops intentionally mirror the dense-id indexing the
// assertions compare; iterators would obscure the parallel access.
#![allow(clippy::needless_range_loop)]

use stcfa_devkit::prelude::*;
use stcfa_graph::{BitSet, DiGraph};

fn arb_graph() -> impl Strategy<Value = DiGraph> {
    (
        2usize..40,
        collection::vec((0usize..40, 0usize..40), 0..120),
    )
        .prop_map(|(n, edges)| {
            let mut g = DiGraph::with_nodes(n);
            for (u, v) in edges {
                g.add_edge(u % n, v % n);
            }
            g
        })
}

proptest! {
    #[test]
    fn closure_equals_reachability(g in arb_graph()) {
        let tc = g.transitive_closure();
        for u in 0..g.node_count() {
            let direct = g.reachable_from(u);
            prop_assert_eq!(
                tc[u].iter().collect::<Vec<_>>(),
                direct.iter().collect::<Vec<_>>(),
                "node {}", u
            );
        }
    }

    #[test]
    fn same_scc_iff_mutually_reachable(g in arb_graph()) {
        let (comp, _) = g.sccs();
        let tc = g.transitive_closure();
        for u in 0..g.node_count() {
            for v in 0..g.node_count() {
                let mutual = tc[u].contains(v) && tc[v].contains(u);
                prop_assert_eq!(comp[u] == comp[v], mutual, "nodes {} {}", u, v);
            }
        }
    }

    #[test]
    fn scc_numbering_is_reverse_topological(g in arb_graph()) {
        let (comp, _) = g.sccs();
        for u in 0..g.node_count() {
            for &v in g.succs(u) {
                // An edge can only go to an equal-or-smaller component id.
                prop_assert!(comp[u] >= comp[v as usize]);
            }
        }
    }

    #[test]
    fn reverse_preserves_edge_count_and_flips(g in arb_graph()) {
        let r = g.reverse();
        prop_assert_eq!(g.edge_count(), r.edge_count());
        for u in 0..g.node_count() {
            for &v in g.succs(u) {
                prop_assert!(r.has_edge(v as usize, u));
            }
        }
    }

    #[test]
    fn postorder_is_a_permutation(g in arb_graph()) {
        let order = g.postorder();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..g.node_count()).collect::<Vec<_>>());
    }

    #[test]
    fn bitset_union_is_idempotent_and_monotone(
        a in collection::vec(0usize..256, 0..64),
        b in collection::vec(0usize..256, 0..64),
    ) {
        let mut x = BitSet::new(256);
        for &i in &a { x.insert(i); }
        let mut y = BitSet::new(256);
        for &i in &b { y.insert(i); }
        let before = x.len();
        x.union_with(&y);
        prop_assert!(x.len() >= before);
        prop_assert!(x.len() >= y.len().max(before));
        let snapshot: Vec<usize> = x.iter().collect();
        prop_assert!(!x.union_with(&y), "second union must be a no-op");
        prop_assert_eq!(snapshot, x.iter().collect::<Vec<usize>>());
        for &i in a.iter().chain(&b) {
            prop_assert!(x.contains(i));
        }
    }
}
