//! A LIFO worklist with membership tracking over dense indices.

/// A worklist of dense `usize` items that never holds the same item twice.
///
/// Fixed-point loops (the cubic CFA, the SBA solver, the subtransitive
/// close phase) all share this shape: push an item when it becomes dirty,
/// pop until empty, never enqueue an item already pending.
#[derive(Clone, Debug)]
pub struct Worklist {
    stack: Vec<usize>,
    queued: Vec<bool>,
}

impl Worklist {
    /// Creates a worklist for items `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Worklist {
            stack: Vec::new(),
            queued: vec![false; capacity],
        }
    }

    /// Grows the capacity to at least `capacity`.
    pub fn ensure_capacity(&mut self, capacity: usize) {
        if self.queued.len() < capacity {
            self.queued.resize(capacity, false);
        }
    }

    /// Enqueues `item` unless already pending. Returns `true` if enqueued.
    pub fn push(&mut self, item: usize) -> bool {
        if self.queued[item] {
            return false;
        }
        self.queued[item] = true;
        self.stack.push(item);
        true
    }

    /// Pops the most recently pushed pending item.
    pub fn pop(&mut self) -> Option<usize> {
        let item = self.stack.pop()?;
        self.queued[item] = false;
        Some(item)
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }

    /// Number of pending items.
    pub fn len(&self) -> usize {
        self.stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deduplicates_pending_items() {
        let mut w = Worklist::new(4);
        assert!(w.push(1));
        assert!(!w.push(1));
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop(), Some(1));
        // After popping, the item may be pushed again.
        assert!(w.push(1));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn lifo_order() {
        let mut w = Worklist::new(4);
        w.push(0);
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(0));
    }

    #[test]
    fn grows() {
        let mut w = Worklist::new(1);
        w.ensure_capacity(10);
        assert!(w.push(9));
        assert_eq!(w.pop(), Some(9));
    }
}
