//! SCC condensation of a frozen [`Csr`] graph.
//!
//! Queries on the subtransitive control-flow graph are reachability
//! questions, and reachability factors through strongly connected
//! components: every node in an SCC reaches exactly what the component
//! reaches. [`Condensation`] computes the components (iterative Tarjan, so
//! deep graphs cannot overflow the stack) and the condensed DAG, again in
//! CSR form.
//!
//! # Ordering invariant
//!
//! Component ids come out of Tarjan in **reverse topological order**: every
//! edge of the condensed DAG goes from a *larger* component id to a
//! *smaller* one (a component can only reach components with smaller ids).
//! Bottom-up dataflow — union what your successors know, then add your own
//! — is therefore a single sweep over ids `0, 1, 2, …` with no explicit
//! topological sort. [`Condensation::check_order`] asserts the invariant.

use crate::csr::Csr;

/// The strongly-connected-component structure of a [`Csr`] graph.
#[derive(Clone, Debug)]
pub struct Condensation {
    /// Node → component id (reverse topological: edges go to smaller ids).
    comp_of: Vec<u32>,
    /// Number of components.
    comp_count: usize,
    /// Condensed DAG (deduplicated, self-edges removed) over component ids.
    dag: Csr,
    /// Members of each component, grouped CSR-style: component `c`'s nodes
    /// are `member_nodes[member_offsets[c]..member_offsets[c + 1]]`.
    member_offsets: Vec<u32>,
    member_nodes: Vec<u32>,
}

impl Condensation {
    /// Condenses `graph`.
    pub fn build(graph: &Csr) -> Condensation {
        let (comp_of, comp_count) = tarjan(graph);
        Self::assemble(graph, comp_of, comp_count)
    }

    /// Derives the condensed DAG and member lists from a node → component
    /// assignment. `comp_of` is trusted here; the public entry points are
    /// [`Condensation::build`] (Tarjan computed it) and
    /// [`Condensation::from_comp_of`] (validated first).
    fn assemble(graph: &Csr, comp_of: Vec<u32>, comp_count: usize) -> Condensation {
        // Condensed edges, deduplicated. Because each component's successors
        // all have smaller ids, sorting each adjacency slice and deduping is
        // exact; dedup per source keeps the DAG linear in the input.
        let mut cond_edges: Vec<(u32, u32)> = Vec::new();
        for u in 0..graph.node_count() {
            let cu = comp_of[u];
            for &v in graph.succs(u) {
                let cv = comp_of[v as usize];
                if cu != cv {
                    cond_edges.push((cu, cv));
                }
            }
        }
        cond_edges.sort_unstable();
        cond_edges.dedup();
        let dag = Csr::from_edges(comp_count, &cond_edges);

        // Members, by counting sort over component ids.
        let n = graph.node_count();
        let mut member_offsets = vec![0u32; comp_count + 1];
        for &c in &comp_of {
            member_offsets[c as usize + 1] += 1;
        }
        for i in 0..comp_count {
            member_offsets[i + 1] += member_offsets[i];
        }
        let mut cursor = member_offsets.clone();
        let mut member_nodes = vec![0u32; n];
        for (u, &c) in comp_of.iter().enumerate() {
            member_nodes[cursor[c as usize] as usize] = u as u32;
            cursor[c as usize] += 1;
        }

        Condensation {
            comp_of,
            comp_count,
            dag,
            member_offsets,
            member_nodes,
        }
    }

    /// Reassembles a condensation from a persisted node → component
    /// assignment (the persistence tier's decode path), skipping Tarjan.
    ///
    /// The input is *untrusted*: every id must be in range, every
    /// component in `0..max+1` must be inhabited, and the reassembled DAG
    /// must satisfy the reverse-topological numbering invariant
    /// ([`Condensation::check_order`]) — any violation is a structured
    /// error, never a panic. (Whether the partition is the *true* SCC
    /// partition is not re-proved here; the persistence layer's
    /// whole-file integrity digest guards against corrupted-but-
    /// well-formed assignments.)
    pub fn from_comp_of(graph: &Csr, comp_of: Vec<u32>) -> Result<Condensation, String> {
        if comp_of.len() != graph.node_count() {
            return Err(format!(
                "condensation: comp_of has {} entries for {} nodes",
                comp_of.len(),
                graph.node_count()
            ));
        }
        let comp_count = comp_of.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
        let mut inhabited = vec![false; comp_count];
        for &c in &comp_of {
            inhabited[c as usize] = true;
        }
        if let Some(empty) = inhabited.iter().position(|&b| !b) {
            return Err(format!("condensation: component {empty} has no members"));
        }
        let cond = Self::assemble(graph, comp_of, comp_count);
        cond.check_order()?;
        Ok(cond)
    }

    /// The raw node → component array, for serializers.
    #[inline]
    pub fn comp_of_slice(&self) -> &[u32] {
        &self.comp_of
    }

    /// The component of `node`.
    #[inline]
    pub fn comp_of(&self, node: usize) -> usize {
        self.comp_of[node] as usize
    }

    /// Number of components.
    #[inline]
    pub fn comp_count(&self) -> usize {
        self.comp_count
    }

    /// The condensed DAG. Edges go from larger to smaller component ids.
    #[inline]
    pub fn dag(&self) -> &Csr {
        &self.dag
    }

    /// The nodes of component `c`, in increasing node order.
    #[inline]
    pub fn members(&self, c: usize) -> &[u32] {
        &self.member_nodes[self.member_offsets[c] as usize..self.member_offsets[c + 1] as usize]
    }

    /// Whether component `c` contains a cycle (more than one node, or a
    /// self-loop in the original graph).
    pub fn is_cyclic(&self, c: usize, graph: &Csr) -> bool {
        let m = self.members(c);
        m.len() > 1 || graph.succs(m[0] as usize).contains(&m[0])
    }

    /// Verifies the reverse-topological numbering: every condensed edge
    /// goes from a larger id to a smaller one. `O(E)`; for tests.
    pub fn check_order(&self) -> Result<(), String> {
        for (u, v) in self.dag.edges() {
            if v >= u {
                return Err(format!(
                    "condensation edge {u} → {v} violates reverse-topo order"
                ));
            }
        }
        Ok(())
    }

    /// Reachable component set of `c` (including `c`) as a bit matrix row —
    /// the ground-truth helper differential tests diff the bit-parallel
    /// summary sweep against.
    pub fn comp_reachability(&self) -> Vec<crate::BitSet> {
        let mut reach: Vec<crate::BitSet> = Vec::with_capacity(self.comp_count);
        for c in 0..self.comp_count {
            let mut set = crate::BitSet::new(self.comp_count);
            set.insert(c);
            for &s in self.dag.succs(c) {
                debug_assert!((s as usize) < c);
                let prior = reach[s as usize].clone();
                set.union_with(&prior);
            }
            reach.push(set);
        }
        reach
    }
}

/// Iterative Tarjan over a CSR graph; returns `(component_of_node,
/// component_count)` with components numbered in reverse topological order.
fn tarjan(graph: &Csr) -> (Vec<u32>, usize) {
    const UNVISITED: u32 = u32::MAX;
    let n = graph.node_count();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = crate::BitSet::new(n);
    let mut stack: Vec<u32> = Vec::new();
    let mut comp = vec![UNVISITED; n];
    let mut next_index = 0u32;
    let mut comp_count = 0u32;
    // Call-stack frames: (node, next successor position).
    let mut frames: Vec<(u32, u32)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        frames.push((root as u32, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root as u32);
        on_stack.insert(root);

        while let Some(&mut (u, ref mut i)) = frames.last_mut() {
            let u = u as usize;
            let succs = graph.succs(u);
            if (*i as usize) < succs.len() {
                let v = succs[*i as usize] as usize;
                *i += 1;
                if index[v] == UNVISITED {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v as u32);
                    on_stack.insert(v);
                    frames.push((v as u32, 0));
                } else if on_stack.contains(v) {
                    lowlink[u] = lowlink[u].min(index[v]);
                }
            } else {
                if lowlink[u] == index[u] {
                    loop {
                        let w = stack.pop().expect("tarjan stack invariant");
                        on_stack.remove(w as usize);
                        comp[w as usize] = comp_count;
                        if w as usize == u {
                            break;
                        }
                    }
                    comp_count += 1;
                }
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[u]);
                }
            }
        }
    }
    (comp, comp_count as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiGraph;

    fn csr(n: usize, edges: &[(u32, u32)]) -> Csr {
        Csr::from_edges(n, edges)
    }

    #[test]
    fn cycle_collapses() {
        // 0 → 1 → 2 → 0, 2 → 3
        let g = csr(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let c = Condensation::build(&g);
        assert_eq!(c.comp_count(), 2);
        assert_eq!(c.comp_of(0), c.comp_of(1));
        assert_eq!(c.comp_of(1), c.comp_of(2));
        assert_ne!(c.comp_of(0), c.comp_of(3));
        // The sink {3} gets the smaller id.
        assert!(c.comp_of(3) < c.comp_of(0));
        c.check_order().unwrap();
        assert_eq!(c.members(c.comp_of(3)), &[3]);
        let mut cyc = c.members(c.comp_of(0)).to_vec();
        cyc.sort_unstable();
        assert_eq!(cyc, vec![0, 1, 2]);
        assert!(c.is_cyclic(c.comp_of(0), &g));
        assert!(!c.is_cyclic(c.comp_of(3), &g));
    }

    #[test]
    fn agrees_with_digraph_sccs() {
        // Same topology through both SCC implementations.
        let edges = [(0u32, 1u32), (1, 0), (1, 2), (2, 3), (3, 2), (4, 4), (5, 0)];
        let g = csr(7, &edges);
        let mut dg = DiGraph::with_nodes(7);
        for &(u, v) in &edges {
            dg.add_edge(u as usize, v as usize);
        }
        let c = Condensation::build(&g);
        let (comp, count) = dg.sccs();
        assert_eq!(c.comp_count(), count);
        for a in 0..7 {
            for b in 0..7 {
                assert_eq!(
                    c.comp_of(a) == c.comp_of(b),
                    comp[a] == comp[b],
                    "partition mismatch at {a}, {b}"
                );
            }
        }
    }

    #[test]
    fn self_loop_is_cyclic_single() {
        let g = csr(2, &[(0, 0), (0, 1)]);
        let c = Condensation::build(&g);
        assert_eq!(c.comp_count(), 2);
        assert!(c.is_cyclic(c.comp_of(0), &g));
        assert!(!c.is_cyclic(c.comp_of(1), &g));
    }

    #[test]
    fn comp_reachability_matches_node_reachability() {
        let edges = [(0u32, 1u32), (1, 2), (2, 0), (2, 3), (3, 4), (5, 3)];
        let g = csr(6, &edges);
        let mut dg = DiGraph::with_nodes(6);
        for &(u, v) in &edges {
            dg.add_edge(u as usize, v as usize);
        }
        let c = Condensation::build(&g);
        let reach = c.comp_reachability();
        for u in 0..6 {
            let direct = dg.reachable_from(u);
            for v in 0..6 {
                assert_eq!(
                    reach[c.comp_of(u)].contains(c.comp_of(v)),
                    direct.contains(v),
                    "reachability mismatch {u} → {v}"
                );
            }
        }
    }

    #[test]
    fn dag_is_deduplicated() {
        // Two parallel original edges between the same components.
        let g = csr(4, &[(0, 1), (1, 0), (0, 2), (1, 2), (2, 3)]);
        let c = Condensation::build(&g);
        assert_eq!(c.comp_count(), 3);
        let top = c.comp_of(0);
        assert_eq!(c.dag().succs(top).len(), 1, "parallel edges collapse");
        c.check_order().unwrap();
    }

    #[test]
    fn from_comp_of_round_trips_and_rejects_malformed() {
        let g = csr(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let built = Condensation::build(&g);
        let rebuilt = Condensation::from_comp_of(&g, built.comp_of_slice().to_vec()).unwrap();
        assert_eq!(rebuilt.comp_count(), built.comp_count());
        assert_eq!(rebuilt.comp_of_slice(), built.comp_of_slice());
        for c in 0..built.comp_count() {
            assert_eq!(rebuilt.members(c), built.members(c));
            assert_eq!(rebuilt.dag().succs(c), built.dag().succs(c));
        }
        // Malformed assignments are structured errors, never panics.
        assert!(
            Condensation::from_comp_of(&g, vec![0, 0, 0]).is_err(),
            "length mismatch"
        );
        assert!(
            Condensation::from_comp_of(&g, vec![0, 0, 0, 2]).is_err(),
            "uninhabited component id"
        );
        assert!(
            Condensation::from_comp_of(&g, vec![0, 0, 0, 1]).is_err(),
            "violates reverse-topological order: the sink must get the smaller id"
        );
    }

    #[test]
    fn empty_and_edgeless() {
        let c = Condensation::build(&csr(0, &[]));
        assert_eq!(c.comp_count(), 0);
        let c = Condensation::build(&csr(3, &[]));
        assert_eq!(c.comp_count(), 3);
        c.check_order().unwrap();
    }
}
