//! Directed-graph substrate for control-flow analyses.
//!
//! The subtransitive control-flow graph of Heintze & McAllester (PLDI 1997)
//! reduces every CFA query to plain graph reachability; this crate provides
//! that machinery: a compact adjacency-list [`DiGraph`], [`BitSet`]s for
//! frontiers and label sets, an SCC decomposition and a (deliberately
//! quadratic) transitive closure for the "all label sets" experiment, the
//! [`Worklist`] shared by all fixed-point solvers in the workspace, and —
//! for finished graphs — a frozen [`Csr`] snapshot with its SCC
//! [`Condensation`], the substrate of the batch query engine in
//! `stcfa-core`.
//!
//! ```
//! use stcfa_graph::DiGraph;
//!
//! let mut g = DiGraph::with_nodes(3);
//! g.add_edge(0, 1);
//! g.add_edge(1, 2);
//! assert!(g.reachable_from(0).contains(2));
//! assert!(!g.reachable_from(2).contains(0));
//! ```

#![warn(missing_docs)]

pub mod bitset;
pub mod condense;
pub mod csr;
pub mod digraph;
pub mod worklist;

pub use bitset::BitSet;
pub use condense::Condensation;
pub use csr::Csr;
pub use digraph::DiGraph;
pub use worklist::Worklist;
