//! A compact directed graph over dense `usize` node ids.

use crate::bitset::BitSet;

/// Adjacency-list directed graph. Nodes are `0..node_count()`.
///
/// `add_edge` does **not** deduplicate (the analyses deduplicate at a higher
/// level, where they must anyway to drive their worklists); use
/// [`DiGraph::add_edge_dedup`] or [`DiGraph::dedup_edges`] when set
/// semantics are needed.
#[derive(Clone, Debug, Default)]
pub struct DiGraph {
    succs: Vec<Vec<u32>>,
    edge_count: usize,
}

impl DiGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        DiGraph {
            succs: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Adds an isolated node, returning its id.
    pub fn add_node(&mut self) -> usize {
        self.succs.push(Vec::new());
        self.succs.len() - 1
    }

    /// Grows the graph to at least `n` nodes.
    pub fn ensure_nodes(&mut self, n: usize) {
        if self.succs.len() < n {
            self.succs.resize(n, Vec::new());
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.succs.len()
    }

    /// Number of edges (counting duplicates).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds the edge `from → to` without checking for duplicates.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    #[inline]
    pub fn add_edge(&mut self, from: usize, to: usize) {
        assert!(to < self.succs.len(), "edge target {to} out of range");
        self.succs[from].push(to as u32);
        self.edge_count += 1;
    }

    /// Adds `from → to` unless already present (linear scan of `from`'s
    /// successors). Returns `true` if the edge was added.
    pub fn add_edge_dedup(&mut self, from: usize, to: usize) -> bool {
        assert!(to < self.succs.len(), "edge target {to} out of range");
        if self.succs[from].contains(&(to as u32)) {
            return false;
        }
        self.succs[from].push(to as u32);
        self.edge_count += 1;
        true
    }

    /// Whether the edge `from → to` is present.
    pub fn has_edge(&self, from: usize, to: usize) -> bool {
        self.succs
            .get(from)
            .is_some_and(|s| s.contains(&(to as u32)))
    }

    /// Successors of `node`.
    #[inline]
    pub fn succs(&self, node: usize) -> &[u32] {
        &self.succs[node]
    }

    /// Removes duplicate edges.
    pub fn dedup_edges(&mut self) {
        let mut total = 0;
        for s in &mut self.succs {
            s.sort_unstable();
            s.dedup();
            total += s.len();
        }
        self.edge_count = total;
    }

    /// The reversed graph.
    pub fn reverse(&self) -> DiGraph {
        let mut rev = DiGraph::with_nodes(self.node_count());
        for (u, succs) in self.succs.iter().enumerate() {
            for &v in succs {
                rev.add_edge(v as usize, u);
            }
        }
        rev
    }

    /// Set of nodes reachable from `start` (including `start`), by BFS.
    pub fn reachable_from(&self, start: usize) -> BitSet {
        self.reachable_from_many([start])
    }

    /// Set of nodes reachable from any of `starts`.
    pub fn reachable_from_many(&self, starts: impl IntoIterator<Item = usize>) -> BitSet {
        let mut seen = BitSet::new(self.node_count());
        let mut queue: Vec<usize> = Vec::new();
        for s in starts {
            if seen.insert(s) {
                queue.push(s);
            }
        }
        while let Some(u) = queue.pop() {
            for &v in &self.succs[u] {
                if seen.insert(v as usize) {
                    queue.push(v as usize);
                }
            }
        }
        seen
    }

    /// A topological-ish DFS postorder over the whole graph (cycles allowed;
    /// each node appears exactly once).
    pub fn postorder(&self) -> Vec<usize> {
        let n = self.node_count();
        let mut order = Vec::with_capacity(n);
        let mut seen = BitSet::new(n);
        // Iterative DFS: (node, next-successor-index).
        let mut stack: Vec<(usize, usize)> = Vec::new();
        for root in 0..n {
            if !seen.insert(root) {
                continue;
            }
            stack.push((root, 0));
            while let Some(&mut (u, ref mut i)) = stack.last_mut() {
                if *i < self.succs[u].len() {
                    let v = self.succs[u][*i] as usize;
                    *i += 1;
                    if seen.insert(v) {
                        stack.push((v, 0));
                    }
                } else {
                    order.push(u);
                    stack.pop();
                }
            }
        }
        order
    }

    /// Strongly connected components (iterative Tarjan). Returns
    /// `(component_of_node, component_count)`; component ids are in reverse
    /// topological order of the condensation (a component's id is greater
    /// than those of components it can reach).
    pub fn sccs(&self) -> (Vec<usize>, usize) {
        const UNVISITED: usize = usize::MAX;
        let n = self.node_count();
        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = BitSet::new(n);
        let mut stack: Vec<usize> = Vec::new();
        let mut comp = vec![UNVISITED; n];
        let mut next_index = 0usize;
        let mut comp_count = 0usize;
        // call stack frames: (node, next successor position)
        let mut frames: Vec<(usize, usize)> = Vec::new();

        for root in 0..n {
            if index[root] != UNVISITED {
                continue;
            }
            frames.push((root, 0));
            index[root] = next_index;
            lowlink[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack.insert(root);

            while let Some(&mut (u, ref mut i)) = frames.last_mut() {
                if *i < self.succs[u].len() {
                    let v = self.succs[u][*i] as usize;
                    *i += 1;
                    if index[v] == UNVISITED {
                        index[v] = next_index;
                        lowlink[v] = next_index;
                        next_index += 1;
                        stack.push(v);
                        on_stack.insert(v);
                        frames.push((v, 0));
                    } else if on_stack.contains(v) {
                        lowlink[u] = lowlink[u].min(index[v]);
                    }
                } else {
                    if lowlink[u] == index[u] {
                        loop {
                            let w = stack.pop().expect("tarjan stack invariant");
                            on_stack.remove(w);
                            comp[w] = comp_count;
                            if w == u {
                                break;
                            }
                        }
                        comp_count += 1;
                    }
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        lowlink[parent] = lowlink[parent].min(lowlink[u]);
                    }
                }
            }
        }
        (comp, comp_count)
    }

    /// Full transitive closure as one reachability set per node (includes
    /// the node itself). `O(n²/64 · n + n·m)` time, `O(n²/64)` space —
    /// intended for ground-truth testing and the quadratic "all label sets"
    /// experiment, not for inner loops.
    pub fn transitive_closure(&self) -> Vec<BitSet> {
        let n = self.node_count();
        let (comp, comp_count) = self.sccs();
        // Condensation successors.
        let mut cond_succs: Vec<Vec<usize>> = vec![Vec::new(); comp_count];
        for u in 0..n {
            for &v in &self.succs[u] {
                let (cu, cv) = (comp[u], comp[v as usize]);
                if cu != cv {
                    cond_succs[cu].push(cv);
                }
            }
        }
        for s in &mut cond_succs {
            s.sort_unstable();
            s.dedup();
        }
        // Members per component.
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); comp_count];
        for u in 0..n {
            members[comp[u]].push(u);
        }
        // Tarjan numbers components in reverse topological order: component 0
        // can reach only itself, so process ids in increasing order.
        let mut comp_reach: Vec<BitSet> = (0..comp_count).map(|_| BitSet::new(n)).collect();
        for c in 0..comp_count {
            let mut set = BitSet::new(n);
            for &m in &members[c] {
                set.insert(m);
            }
            for &s in &cond_succs[c] {
                debug_assert!(s < c, "condensation order violated");
                set.union_with(&comp_reach[s]);
            }
            comp_reach[c] = set;
        }
        (0..n).map(|u| comp_reach[comp[u]].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn reachability_on_diamond() {
        let g = diamond();
        let r = g.reachable_from(0);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        let r1 = g.reachable_from(1);
        assert_eq!(r1.iter().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn reverse_flips_edges() {
        let g = diamond().reverse();
        assert!(g.has_edge(3, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn dedup() {
        let mut g = DiGraph::with_nodes(2);
        g.add_edge(0, 1);
        assert!(!g.add_edge_dedup(0, 1));
        g.add_edge(0, 1);
        assert_eq!(g.edge_count(), 2);
        g.dedup_edges();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn sccs_on_cycle() {
        // 0 -> 1 -> 2 -> 0, 2 -> 3
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(2, 3);
        let (comp, count) = g.sccs();
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[0], comp[3]);
        // reverse-topological numbering: the sink {3} gets the smaller id
        assert!(comp[3] < comp[0]);
    }

    #[test]
    fn transitive_closure_matches_reachability() {
        let mut g = DiGraph::with_nodes(6);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (5, 3)] {
            g.add_edge(u, v);
        }
        let tc = g.transitive_closure();
        for (u, closure) in tc.iter().enumerate() {
            let direct = g.reachable_from(u);
            assert_eq!(
                closure.iter().collect::<Vec<_>>(),
                direct.iter().collect::<Vec<_>>(),
                "closure mismatch at node {u}"
            );
        }
    }

    #[test]
    fn postorder_visits_all_once() {
        let g = diamond();
        let order = g.postorder();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        // 3 must come before 1 and 2 (its predecessors) in postorder.
        let pos = |x: usize| order.iter().position(|&u| u == x).unwrap();
        assert!(pos(3) < pos(1));
        assert!(pos(3) < pos(0));
    }

    #[test]
    fn self_loop_is_single_component() {
        let mut g = DiGraph::with_nodes(2);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        let (comp, count) = g.sccs();
        assert_eq!(count, 2);
        assert_ne!(comp[0], comp[1]);
        let tc = g.transitive_closure();
        assert!(tc[0].contains(0));
        assert!(tc[0].contains(1));
        assert!(!tc[1].contains(0));
    }

    #[test]
    fn ensure_and_add_nodes() {
        let mut g = DiGraph::new();
        assert_eq!(g.add_node(), 0);
        g.ensure_nodes(5);
        assert_eq!(g.node_count(), 5);
        g.ensure_nodes(2);
        assert_eq!(g.node_count(), 5);
    }

    #[test]
    fn reachable_from_many_unions_sources() {
        let mut g = DiGraph::with_nodes(5);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let r = g.reachable_from_many([0, 2]);
        assert!(r.contains(1) && r.contains(3) && !r.contains(4));
    }
}
