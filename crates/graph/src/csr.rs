//! A frozen compressed-sparse-row (CSR) view of a directed graph.
//!
//! The growable [`DiGraph`](crate::DiGraph) (and the analyses' own
//! adjacency stores) spend one heap allocation per node and chase a
//! pointer per neighbour list; once a graph stops changing, queries want
//! the opposite trade-off. [`Csr`] packs all adjacency into two flat
//! arrays (`offsets`, `targets`), so a full-graph sweep touches memory
//! strictly left to right and a node's neighbour slice costs two loads.
//!
//! Freezing is `O(V + E)` by counting sort, and [`Csr::reverse`] produces
//! the transposed CSR by the same counting pass — no per-node vectors are
//! ever materialized.

use crate::digraph::DiGraph;

/// An immutable directed graph in compressed-sparse-row form.
///
/// Nodes are `0..node_count()`; the successors of `u` are the slice
/// `targets[offsets[u]..offsets[u + 1]]`. Duplicate edges are preserved
/// exactly as given (freeze what you had; deduplicate upstream if needed).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    /// `node_count() + 1` cumulative degrees.
    offsets: Vec<u32>,
    /// Edge targets, grouped by source.
    targets: Vec<u32>,
}

impl Csr {
    /// Freezes an edge list over `n` nodes. Edges may arrive in any order;
    /// within one source, the original relative order is preserved.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n` or the edge count overflows `u32`.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Csr {
        let mut degree = vec![0u32; n + 1];
        for &(u, v) in edges {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u}, {v}) out of range {n}"
            );
            degree[u as usize + 1] += 1;
        }
        for i in 0..n {
            degree[i + 1] += degree[i];
        }
        let total = u32::try_from(edges.len()).expect("edge count overflow");
        debug_assert_eq!(degree[n], total);
        let mut cursor = degree.clone();
        let mut targets = vec![0u32; edges.len()];
        for &(u, v) in edges {
            let slot = cursor[u as usize];
            targets[slot as usize] = v;
            cursor[u as usize] += 1;
        }
        Csr {
            offsets: degree,
            targets,
        }
    }

    /// Freezes per-node successor slices (e.g. an analysis' adjacency
    /// lists) without an intermediate edge list.
    pub fn from_succs<'a>(n: usize, succs: impl Fn(usize) -> &'a [u32]) -> Csr {
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut total = 0usize;
        for u in 0..n {
            total += succs(u).len();
            offsets.push(u32::try_from(total).expect("edge count overflow"));
        }
        let mut targets = Vec::with_capacity(total);
        for u in 0..n {
            targets.extend_from_slice(succs(u));
        }
        Csr { offsets, targets }
    }

    /// Freezes a [`DiGraph`].
    pub fn from_digraph(g: &DiGraph) -> Csr {
        Self::from_succs(g.node_count(), |u| g.succs(u))
    }

    /// Reassembles a CSR from its two raw arrays (the persistence tier's
    /// decode path). Unlike the freezing constructors this input is
    /// *untrusted* — the arrays may come off disk — so the full
    /// [`Csr::audit`] runs and a malformed shape is a structured error,
    /// never a panic.
    pub fn from_raw_parts(offsets: Vec<u32>, targets: Vec<u32>) -> Result<Csr, String> {
        if offsets.is_empty() {
            return Err("csr: offsets array is empty (needs node_count + 1 entries)".to_owned());
        }
        let csr = Csr { offsets, targets };
        csr.audit()?;
        Ok(csr)
    }

    /// The raw offset array (`node_count() + 1` entries), for serializers.
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The raw target array, grouped by source, for serializers.
    #[inline]
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Successors of `u`.
    #[inline]
    pub fn succs(&self, u: usize) -> &[u32] {
        &self.targets[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    /// The transposed graph, built by one counting pass (`O(V + E)`, no
    /// per-node allocations). Within one target, sources appear in
    /// increasing order.
    pub fn reverse(&self) -> Csr {
        let n = self.node_count();
        let mut degree = vec![0u32; n + 1];
        for &v in &self.targets {
            degree[v as usize + 1] += 1;
        }
        for i in 0..n {
            degree[i + 1] += degree[i];
        }
        let mut cursor = degree.clone();
        let mut targets = vec![0u32; self.targets.len()];
        for u in 0..n {
            for &v in self.succs(u) {
                let slot = cursor[v as usize];
                targets[slot as usize] = u as u32;
                cursor[v as usize] += 1;
            }
        }
        Csr {
            offsets: degree,
            targets,
        }
    }

    /// Iterates over all edges as `(source, target)` pairs, grouped by
    /// source.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.node_count()).flat_map(move |u| self.succs(u).iter().map(move |&v| (u as u32, v)))
    }

    /// Structural audit of the frozen representation: offsets start at 0,
    /// are monotone non-decreasing, the final offset equals the target
    /// array length, and every target is a valid node id.
    ///
    /// Freezing already establishes these properties; the audit re-verifies
    /// them on the finished arrays so downstream consumers (e.g. the query
    /// engine's `debug_assertions` auditor) can assert on a self-checked
    /// foundation rather than trusting construction.
    pub fn audit(&self) -> Result<(), String> {
        if self.offsets.first() != Some(&0) {
            return Err(format!(
                "csr: first offset is {:?}, expected 0",
                self.offsets.first()
            ));
        }
        for (i, w) in self.offsets.windows(2).enumerate() {
            if w[0] > w[1] {
                return Err(format!(
                    "csr: offsets not monotone at node {i}: {} > {}",
                    w[0], w[1]
                ));
            }
        }
        let last = *self.offsets.last().expect("offsets non-empty") as usize;
        if last != self.targets.len() {
            return Err(format!(
                "csr: final offset {last} != target count {}",
                self.targets.len()
            ));
        }
        let n = self.node_count();
        for (i, &v) in self.targets.iter().enumerate() {
            if (v as usize) >= n {
                return Err(format!("csr: target {v} at slot {i} out of range {n}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        Csr::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn from_edges_groups_by_source() {
        let g = Csr::from_edges(4, &[(2, 3), (0, 1), (0, 2), (1, 3)]);
        assert_eq!(g.succs(0), &[1, 2]);
        assert_eq!(g.succs(1), &[3]);
        assert_eq!(g.succs(2), &[3]);
        assert!(g.succs(3).is_empty());
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn from_digraph_matches_adjacency() {
        let mut g = DiGraph::with_nodes(5);
        g.add_edge(4, 0);
        g.add_edge(1, 2);
        g.add_edge(1, 4);
        let c = Csr::from_digraph(&g);
        for u in 0..5 {
            assert_eq!(c.succs(u), g.succs(u), "node {u}");
        }
    }

    #[test]
    fn reverse_transposes() {
        let g = diamond();
        let r = g.reverse();
        assert_eq!(r.succs(3), &[1, 2]);
        assert_eq!(r.succs(1), &[0]);
        assert_eq!(r.succs(2), &[0]);
        assert!(r.succs(0).is_empty());
        // Reversing twice restores the edge multiset per node.
        let rr = r.reverse();
        for u in 0..g.node_count() {
            let mut a = g.succs(u).to_vec();
            let mut b = rr.succs(u).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn duplicate_edges_survive_freezing() {
        let g = Csr::from_edges(2, &[(0, 1), (0, 1)]);
        assert_eq!(g.succs(0), &[1, 1]);
        assert_eq!(g.reverse().succs(1), &[0, 0]);
    }

    #[test]
    fn edges_iterator_round_trips() {
        let g = diamond();
        let pairs: Vec<(u32, u32)> = g.edges().collect();
        assert_eq!(Csr::from_edges(4, &pairs), g);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.reverse().node_count(), 0);
    }

    #[test]
    fn audit_accepts_frozen_graphs() {
        assert_eq!(diamond().audit(), Ok(()));
        assert_eq!(diamond().reverse().audit(), Ok(()));
        assert_eq!(Csr::from_edges(0, &[]).audit(), Ok(()));
    }

    #[test]
    fn from_raw_parts_round_trips_and_rejects_malformed() {
        let g = diamond();
        let rebuilt = Csr::from_raw_parts(g.offsets().to_vec(), g.targets().to_vec()).unwrap();
        assert_eq!(rebuilt, g);
        // Malformed inputs are structured errors, never panics.
        assert!(Csr::from_raw_parts(vec![], vec![]).is_err());
        assert!(
            Csr::from_raw_parts(vec![1, 0], vec![0]).is_err(),
            "non-monotone"
        );
        assert!(
            Csr::from_raw_parts(vec![0, 1], vec![7]).is_err(),
            "target out of range"
        );
        assert!(
            Csr::from_raw_parts(vec![0, 2], vec![0]).is_err(),
            "final offset overshoots"
        );
    }

    #[test]
    fn audit_rejects_corrupted_offsets() {
        let mut g = diamond();
        g.offsets[1] = 99;
        assert!(g.audit().is_err());
        let mut g = diamond();
        g.targets[0] = 42;
        assert!(g.audit().is_err());
    }
}
