//! A fixed-capacity bit set over dense `usize` indices.

/// A fixed-capacity bit set.
///
/// Used for reachability frontiers and label sets; all operations the
/// analyses need (`insert`, `contains`, `union_with`, iteration) are
/// word-parallel where possible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The capacity this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `i`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        let (w, b) = (i / 64, i % 64);
        let mask = 1u64 << b;
        let fresh = self.words[w] & mask == 0;
        self.words[w] |= mask;
        fresh
    }

    /// Removes `i`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        let (w, b) = (i / 64, i % 64);
        let mask = 1u64 << b;
        let present = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        present
    }

    /// Membership test. Out-of-range indices are simply absent.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Unions `other` into `self`; returns `true` if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// The backing words, little-endian within each `u64`. Bit `i` of the
    /// set is bit `i % 64` of word `i / 64`. Exposed so relation joins can
    /// run word-parallel against externally owned rows (e.g. the query
    /// engine's summary rows) without copying either side.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// ORs a raw word row into `self`; returns `true` if `self` changed.
    /// `row` may be shorter than the set's word count (missing words are
    /// zero) but must not set bits at or beyond `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `row` carries a bit `>= capacity`.
    pub fn union_words(&mut self, row: &[u64]) -> bool {
        assert!(
            row.len() <= self.words.len() || row[self.words.len()..].iter().all(|&w| w == 0),
            "word row wider than capacity {}",
            self.capacity
        );
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(row) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        // Guard the final partial word: a row bit past `capacity` would
        // corrupt `len()` and iteration.
        if !self.capacity.is_multiple_of(64) {
            if let Some(last) = self.words.last() {
                let mask = (1u64 << (self.capacity % 64)) - 1;
                assert!(last & !mask == 0, "word row set bit >= capacity");
            }
        }
        changed
    }

    /// Intersects `other` into `self`; returns `true` if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set sized to the maximum element (plus one).
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "second insert reports not-fresh");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert!(!s.contains(1000), "out of range is absent");
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert!(!s.contains(64));
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        b.insert(3);
        b.insert(99);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "second union is a no-op");
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut s = BitSet::new(200);
        let elems = [0, 5, 63, 64, 65, 127, 128, 199];
        for &e in &elems {
            s.insert(e);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, elems);
        assert_eq!(s.len(), elems.len());
    }

    #[test]
    fn from_iterator() {
        let s: BitSet = [3usize, 1, 4, 1, 5].into_iter().collect();
        assert!(s.contains(5));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn empty_and_clear() {
        let mut s = BitSet::new(64);
        assert!(s.is_empty());
        s.insert(10);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn union_words_is_union_with_on_raw_rows() {
        let mut a = BitSet::new(130);
        a.insert(1);
        let row = [1u64 << 3, 0, 1u64 << 1]; // {3, 129}
        assert!(a.union_words(&row));
        assert!(!a.union_words(&row), "second union is a no-op");
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 3, 129]);
        // A short row leaves high words alone.
        let mut b = BitSet::new(130);
        b.insert(129);
        assert!(b.union_words(&[1u64]));
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![0, 129]);
    }

    #[test]
    #[should_panic(expected = "bit >= capacity")]
    fn union_words_rejects_out_of_capacity_bits() {
        BitSet::new(5).union_words(&[1u64 << 10]);
    }

    #[test]
    fn intersect_reports_change() {
        let mut a: BitSet = [1usize, 3, 64].iter().copied().collect();
        let mut b = BitSet::new(a.capacity());
        b.insert(3);
        b.insert(64);
        assert!(a.intersect_with(&b));
        assert!(!a.intersect_with(&b), "second intersect is a no-op");
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 64]);
    }
}
