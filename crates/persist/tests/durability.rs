//! Durability laws of the on-disk snapshot format, on randomly generated
//! well-typed programs:
//!
//! 1. **Round trip** — `decode(encode(s))` succeeds, and the decoded
//!    engine answers every query *identically, node for node*: forward
//!    label sets, binder sets, membership, the inverse index, call
//!    targets and the all-sets listing.
//! 2. **Fault injection** — any corruption of the byte stream (random
//!    truncation, random bit and byte flips, header tampering) decodes to
//!    a structured [`PersistError`]: never a panic, and — because every
//!    decode failure means "rebuild from source" — never a wrong answer.
//!
//! Shrunk failures persist to `tests/devkit-regressions.txt`.

use stcfa_core::{Analysis, QueryEngine};
use stcfa_devkit::hash::Fnv1a;
use stcfa_devkit::prelude::*;
use stcfa_lambda::Program;
use stcfa_persist::{decode, encode, PersistError, SnapshotImage};
use stcfa_workloads::synth::{generate, SynthConfig};

fn program_for(seed: u64, target_size: usize) -> Program {
    generate(&SynthConfig {
        seed,
        target_size,
        max_type_depth: 2,
        effect_prob: 0.05,
        max_tuple_width: 3,
        datatypes: true,
    })
}

fn snapshot_bytes(p: &Program, prepare: bool) -> (QueryEngine, Vec<u8>) {
    let a = Analysis::run(p).expect("generated programs are bounded-type");
    let engine = QueryEngine::freeze(&a);
    if prepare {
        engine.prepare();
    }
    let source = p.to_source();
    let bytes = encode(&SnapshotImage {
        digest: Fnv1a::digest_parts(source.as_bytes(), &[1, 0]),
        policy: 1,
        engine_disc: 0,
        source: &source,
        engine: &engine,
        suspicion: None,
        linked: false,
    });
    (engine, bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Law 1: encode → decode is the identity up to query answers.
    #[test]
    fn decoded_engine_answers_identically(seed in any::<u64>()) {
        let p = program_for(seed, 140);
        // Both flavors: summaries persisted (prepared) and demand-only.
        for prepare in [false, true] {
            let (cold, bytes) = snapshot_bytes(&p, prepare);
            let warm = match decode(&bytes) {
                Ok(d) => d,
                Err(e) => return Err(TestCaseError::Fail(format!("decode failed: {e} (seed {seed})"))),
            };
            prop_assert_eq!(warm.source, p.to_source(), "seed {}", seed);
            let q = warm.engine;
            for e in p.exprs() {
                prop_assert_eq!(q.labels_of(e), cold.labels_of(e), "at {:?} (seed {})", e, seed);
            }
            for v in p.vars() {
                prop_assert_eq!(q.labels_of_binder(v), cold.labels_of_binder(v), "seed {}", seed);
            }
            for l in p.all_labels() {
                prop_assert_eq!(q.exprs_with_label(l), cold.exprs_with_label(l), "seed {}", seed);
                for e in p.exprs().step_by(7) {
                    prop_assert_eq!(q.label_reaches(e, l), cold.label_reaches(e, l), "seed {}", seed);
                }
            }
            for app in p.app_sites() {
                prop_assert_eq!(q.call_targets(&p, app), cold.call_targets(&p, app), "seed {}", seed);
            }
            prop_assert_eq!(q.all_label_sets(), cold.all_label_sets(), "seed {}", seed);
            // The frozen build statistics survive the trip.
            prop_assert_eq!(q.stats().build_nodes, cold.stats().build_nodes);
            prop_assert_eq!(q.stats().build_edges, cold.stats().build_edges);
        }
    }

    /// Law 2a: every truncation point yields a structured error.
    #[test]
    fn random_truncation_never_panics(seed in any::<u64>()) {
        let p = program_for(seed, 100);
        let (_, bytes) = snapshot_bytes(&p, true);
        let mut rng = Rng::seed_from_u64(seed ^ 0x7ca7);
        for _ in 0..64 {
            let len = rng.gen_range(0..bytes.len());
            match decode(&bytes[..len]) {
                Ok(_) => return Err(TestCaseError::Fail(format!(
                    "prefix of {len}/{} bytes decoded (seed {seed})", bytes.len()
                ))),
                Err(e) => { let _ = e.kind(); let _ = e.to_string(); }
            }
        }
    }

    /// Law 2b: random bit flips and byte stomps yield structured errors.
    #[test]
    fn random_corruption_never_panics(seed in any::<u64>()) {
        let p = program_for(seed, 100);
        let (_, bytes) = snapshot_bytes(&p, seed % 2 == 0);
        let mut rng = Rng::seed_from_u64(seed ^ 0xbadc);
        for round in 0..64 {
            let mut evil = bytes.clone();
            // Escalating damage: single bit, whole byte, then a burst.
            match round % 3 {
                0 => {
                    let i = rng.gen_range(0..evil.len());
                    evil[i] ^= 1u8 << rng.gen_range(0..8u32);
                }
                1 => {
                    let i = rng.gen_range(0..evil.len());
                    evil[i] = evil[i].wrapping_add(rng.gen_range(1..=255u32) as u8);
                }
                _ => {
                    let i = rng.gen_range(0..evil.len());
                    let n = rng.gen_range(1..=16usize).min(evil.len() - i);
                    for b in &mut evil[i..i + n] {
                        *b = rng.next_u64() as u8;
                    }
                }
            }
            if evil == bytes {
                continue;
            }
            match decode(&evil) {
                Ok(_) => return Err(TestCaseError::Fail(format!(
                    "corrupted bytes decoded (seed {seed}, round {round})"
                ))),
                Err(e) => prop_assert!(
                    !matches!(e, PersistError::Io(_)),
                    "in-memory decode reported io (seed {})", seed
                ),
            }
        }
    }
}
