//! The on-disk snapshot tier: a zero-dependency persistent format for
//! frozen [`QueryEngine`]s.
//!
//! The server's snapshot store (`stcfa-server`) is content-addressed and
//! purely in-memory: a daemon restart forgets every build. This crate
//! gives each cache entry a durable twin — one file per snapshot key —
//! so a restarted daemon can answer a previously seen digest by decoding
//! arrays off disk (`O(V + E)`, no parse, no close phase) instead of
//! re-running the analysis.
//!
//! # Format
//!
//! A snapshot file is, in order (all integers little-endian):
//!
//! | part     | bytes | contents                                         |
//! |----------|-------|--------------------------------------------------|
//! | magic    | 8     | `STCFSNAP`                                       |
//! | version  | 4     | format version ([`FORMAT_VERSION`])              |
//! | header   | 44    | content digest, policy + engine discriminants, generation (+1, 0 = none), label count, section count |
//! | sections | —     | `section count` × (`u32` tag, `u64` byte length, payload) |
//! | trailer  | 8     | FNV-1a/64 integrity digest of every preceding byte |
//!
//! The sections carry the engine's frozen arrays exactly as exported by
//! [`QueryEngine::to_parts`] — forward CSR offsets/targets, the SCC
//! assignment, the node-table metadata (node → label, expression → node,
//! binder → node, the flattened occurrence index), the label-summary
//! bitsets if the full sweep has run, and the build-phase statistics —
//! plus the original source text, so the loader can re-derive anything
//! not persisted (the reverse CSR, the condensation DAG, the program
//! itself for lint). Version 2 adds two optional sections: the
//! precision detector's per-component **suspicion index** (so a warm
//! restart grades query precision without rebuilding the analysis) and
//! a **flavor** marker for *linked* session snapshots, whose "source"
//! is a module manifest rather than a single program text.
//!
//! # Versioning and corruption policy
//!
//! Two digests guard a file. The *trailer* is an integrity check over the
//! file's own bytes: any torn write, truncation or bit flip surfaces as
//! [`PersistError::Integrity`] before a single section is parsed. The
//! *header* digest is the snapshot's cache address
//! (`Fnv1a::digest_parts(source, [policy, engine])`); the decoder
//! recomputes it from the decoded source and discriminants, so a file
//! renamed over the wrong key — intact but mislabeled — surfaces as
//! [`PersistError::DigestMismatch`]. Linked session snapshots are the
//! one exception: their address is the *session digest*, a chain digest
//! over module names/contents/imports that only the linker can compute,
//! so for them the decoder relies on the integrity trailer plus the
//! cache layer's own key-vs-header check and manifest comparison.
//! Everything past those gates is still untrusted: section shapes are
//! re-validated structurally by [`QueryEngine::from_parts`].
//!
//! Decoding **never panics and never returns a wrong answer**: every
//! failure mode is a structured [`PersistError`], and the caller's
//! contract (see `stcfa-server`) is to treat any error as a cache miss —
//! delete the file and rebuild from source. There is no migration: a
//! version bump ([`PersistError::VersionSkew`]) also just means rebuild,
//! which is why the format can stay a dumb array dump.

#![warn(missing_docs)]

use std::fmt;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use stcfa_core::{AnalysisStats, EngineParts, QueryEngine};
use stcfa_devkit::hash::Fnv1a;

/// File magic: the first 8 bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"STCFSNAP";

/// Current format version. Bump on any layout change; old files then
/// decode to [`PersistError::VersionSkew`] and are rebuilt, not migrated.
/// Version 2: suspicion-index and linked-flavor sections.
pub const FORMAT_VERSION: u32 = 2;

/// File extension used by [`file_name`] (without the dot).
pub const EXTENSION: &str = "stcfa";

/// Byte length of magic + version + fixed header fields.
const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 8 + 8 + 8 + 4;

/// Byte length of the trailing integrity digest.
const TRAILER_LEN: usize = 8;

// Section tags. The encoder emits them in ascending order; the decoder
// accepts any order but rejects duplicates and unknown tags (an unknown
// tag under a known version is corruption, not an extension).
const SEC_SOURCE: u32 = 1;
const SEC_CSR_OFFSETS: u32 = 2;
const SEC_CSR_TARGETS: u32 = 3;
const SEC_COMP_OF: u32 = 4;
const SEC_NODE_LABEL: u32 = 5;
const SEC_EXPR_NODES: u32 = 6;
const SEC_BINDER_NODES: u32 = 7;
const SEC_OCC_OFFSETS: u32 = 8;
const SEC_OCC_EXPRS: u32 = 9;
const SEC_SUMMARIES: u32 = 10;
const SEC_STATS: u32 = 11;
const SEC_SUSPICION: u32 = 12;
const SEC_FLAVOR: u32 = 13;

/// [`SEC_FLAVOR`] payload marking a linked session snapshot.
const FLAVOR_LINKED: u32 = 1;

/// Number of `u64` fields in the persisted [`AnalysisStats`] record.
const STATS_FIELDS: usize = 9;

/// Why a snapshot file could not be decoded (or read).
///
/// Every variant maps to "treat as cache miss and rebuild"; the variants
/// exist so logs and counters can say *which* failure occurred.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PersistError {
    /// The underlying file could not be read.
    Io(String),
    /// The byte stream ended before a required part.
    Truncated {
        /// What was being read when the bytes ran out.
        what: &'static str,
    },
    /// The first 8 bytes are not [`MAGIC`] — not a snapshot file.
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    VersionSkew {
        /// The version found in the file.
        found: u32,
    },
    /// The trailing integrity digest does not match the file's bytes
    /// (torn write, truncation past the header, or bit rot).
    Integrity {
        /// Digest stored in the trailer.
        stored: u64,
        /// Digest recomputed over the file's bytes.
        computed: u64,
    },
    /// The header's content digest does not match one recomputed from the
    /// decoded source and discriminants — an intact file filed under the
    /// wrong cache address.
    DigestMismatch {
        /// Digest claimed by the header.
        header: u64,
        /// Digest recomputed from the decoded contents.
        computed: u64,
    },
    /// The sections are structurally invalid (bad tag, duplicate or
    /// missing section, misaligned length, or arrays that fail
    /// [`QueryEngine::from_parts`] validation).
    Malformed(String),
}

impl PersistError {
    /// A short stable tag for logs and counters.
    pub fn kind(&self) -> &'static str {
        match self {
            PersistError::Io(_) => "io",
            PersistError::Truncated { .. } => "truncated",
            PersistError::BadMagic => "bad-magic",
            PersistError::VersionSkew { .. } => "version-skew",
            PersistError::Integrity { .. } => "integrity",
            PersistError::DigestMismatch { .. } => "digest-mismatch",
            PersistError::Malformed(_) => "malformed",
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Truncated { what } => write!(f, "truncated while reading {what}"),
            PersistError::BadMagic => write!(f, "bad magic (not a snapshot file)"),
            PersistError::VersionSkew { found } => write!(
                f,
                "format version {found}, this build reads {FORMAT_VERSION}"
            ),
            PersistError::Integrity { stored, computed } => write!(
                f,
                "integrity digest mismatch: trailer {stored:016x}, bytes hash to {computed:016x}"
            ),
            PersistError::DigestMismatch { header, computed } => write!(
                f,
                "content digest mismatch: header claims {header:016x}, contents hash to {computed:016x}"
            ),
            PersistError::Malformed(e) => write!(f, "malformed sections: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// Everything [`encode`] needs from one cache entry, borrowed.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotImage<'a> {
    /// The entry's cache address:
    /// `Fnv1a::digest_parts(source, [policy, engine])`.
    pub digest: u64,
    /// Datatype-policy discriminant (part of the address).
    pub policy: u64,
    /// Engine discriminant (part of the address).
    pub engine_disc: u64,
    /// The exact source text the snapshot was built from (for linked
    /// snapshots: the module manifest).
    pub source: &'a str,
    /// The frozen engine to serialize.
    pub engine: &'a QueryEngine,
    /// The precision detector's per-component suspicion scores, when
    /// they were computed for this snapshot.
    pub suspicion: Option<&'a [u32]>,
    /// Whether this is a *linked* session snapshot: `source` is a
    /// module manifest and `digest` is the linker's session digest
    /// (not derivable from the manifest bytes alone).
    pub linked: bool,
}

/// A decoded snapshot file: the reassembled engine plus the metadata the
/// cache layer needs to re-admit it.
#[derive(Debug)]
pub struct DecodedSnapshot {
    /// The entry's cache address (verified against the contents).
    pub digest: u64,
    /// Datatype-policy discriminant.
    pub policy: u64,
    /// Engine discriminant.
    pub engine_disc: u64,
    /// The original source text (re-parse it for lint-style consumers);
    /// for linked snapshots, the module manifest.
    pub source: String,
    /// The reassembled, fully re-validated engine.
    pub engine: QueryEngine,
    /// Persisted suspicion scores, if the file carried them. Length is
    /// *not* validated against the engine here — the cache layer checks
    /// it against `comp_count` before use.
    pub suspicion: Option<Vec<u32>>,
    /// Whether the file marks itself as a linked session snapshot.
    pub linked: bool,
}

// --- encode ----------------------------------------------------------------

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_section_u32s(out: &mut Vec<u8>, tag: u32, vals: &[u32]) {
    push_u32(out, tag);
    push_u64(out, (vals.len() * 4) as u64);
    for &v in vals {
        push_u32(out, v);
    }
}

fn push_section_u64s(out: &mut Vec<u8>, tag: u32, vals: &[u64]) {
    push_u32(out, tag);
    push_u64(out, (vals.len() * 8) as u64);
    for &v in vals {
        push_u64(out, v);
    }
}

fn stats_words(s: &AnalysisStats) -> [u64; STATS_FIELDS] {
    [
        s.build_nodes as u64,
        s.build_edges as u64,
        s.close_nodes as u64,
        s.close_edges as u64,
        s.edges_processed,
        s.demand_registrations,
        s.queries_answered,
        s.query_cache_hits,
        s.query_cache_misses,
    ]
}

fn stats_from_words(w: &[u64]) -> AnalysisStats {
    AnalysisStats {
        build_nodes: w[0] as usize,
        build_edges: w[1] as usize,
        close_nodes: w[2] as usize,
        close_edges: w[3] as usize,
        edges_processed: w[4],
        demand_registrations: w[5],
        queries_answered: w[6],
        query_cache_hits: w[7],
        query_cache_misses: w[8],
    }
}

/// Serializes one snapshot into the on-disk byte format.
///
/// Infallible: the engine's own arrays are trusted (they came from
/// [`QueryEngine::freeze`] or a prior validated decode). The companion
/// [`decode`] inverts this exactly — see the round-trip law in this
/// crate's tests.
pub fn encode(image: &SnapshotImage<'_>) -> Vec<u8> {
    let parts = image.engine.to_parts();
    let section_count = 10
        + parts.summaries.is_some() as u32
        + image.suspicion.is_some() as u32
        + image.linked as u32;
    let mut out = Vec::with_capacity(
        HEADER_LEN
            + TRAILER_LEN
            + image.source.len()
            + 4 * (parts.csr.offsets().len()
                + parts.csr.targets().len()
                + parts.comp_of.len()
                + parts.node_label.len()
                + parts.expr_nodes.len()
                + parts.binder_nodes.len()
                + parts.occ_offsets.len()
                + parts.occ_exprs.len())
            + 8 * parts.summaries.map_or(0, <[u64]>::len)
            + 12 * section_count as usize,
    );
    out.extend_from_slice(&MAGIC);
    push_u32(&mut out, FORMAT_VERSION);
    push_u64(&mut out, image.digest);
    push_u64(&mut out, image.policy);
    push_u64(&mut out, image.engine_disc);
    push_u64(&mut out, parts.generation.map_or(0, |g| g + 1));
    push_u64(&mut out, parts.label_count as u64);
    push_u32(&mut out, section_count);

    push_u32(&mut out, SEC_SOURCE);
    push_u64(&mut out, image.source.len() as u64);
    out.extend_from_slice(image.source.as_bytes());
    push_section_u32s(&mut out, SEC_CSR_OFFSETS, parts.csr.offsets());
    push_section_u32s(&mut out, SEC_CSR_TARGETS, parts.csr.targets());
    push_section_u32s(&mut out, SEC_COMP_OF, parts.comp_of);
    push_section_u32s(&mut out, SEC_NODE_LABEL, parts.node_label);
    push_section_u32s(&mut out, SEC_EXPR_NODES, parts.expr_nodes);
    push_section_u32s(&mut out, SEC_BINDER_NODES, parts.binder_nodes);
    push_section_u32s(&mut out, SEC_OCC_OFFSETS, parts.occ_offsets);
    push_section_u32s(&mut out, SEC_OCC_EXPRS, parts.occ_exprs);
    if let Some(rows) = parts.summaries {
        push_section_u64s(&mut out, SEC_SUMMARIES, rows);
    }
    push_section_u64s(&mut out, SEC_STATS, &stats_words(&parts.base_stats));
    if let Some(scores) = image.suspicion {
        push_section_u32s(&mut out, SEC_SUSPICION, scores);
    }
    if image.linked {
        push_section_u32s(&mut out, SEC_FLAVOR, &[FLAVOR_LINKED]);
    }

    let mut h = Fnv1a::new();
    h.write(&out);
    push_u64(&mut out, h.finish());
    out
}

// --- decode ----------------------------------------------------------------

/// A bounds-checked little-endian cursor over untrusted bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], PersistError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(PersistError::Truncated { what })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, PersistError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, PersistError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
}

fn decode_u32s(payload: &[u8], what: &'static str) -> Result<Vec<u32>, PersistError> {
    if !payload.len().is_multiple_of(4) {
        return Err(PersistError::Malformed(format!(
            "{what}: byte length {} is not a multiple of 4",
            payload.len()
        )));
    }
    Ok(payload
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect())
}

fn decode_u64s(payload: &[u8], what: &'static str) -> Result<Vec<u64>, PersistError> {
    if !payload.len().is_multiple_of(8) {
        return Err(PersistError::Malformed(format!(
            "{what}: byte length {} is not a multiple of 8",
            payload.len()
        )));
    }
    Ok(payload
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect())
}

/// Decodes (and fully re-validates) a snapshot file's bytes.
///
/// The byte stream is untrusted end to end: magic, version, the whole-file
/// integrity trailer and the header's content digest are checked in that
/// order, then every array shape is re-verified by
/// [`QueryEngine::from_parts`]. Any failure is a structured
/// [`PersistError`] — never a panic, and (because a failed decode is a
/// rebuild) never a wrong answer.
pub fn decode(bytes: &[u8]) -> Result<DecodedSnapshot, PersistError> {
    let mut r = Reader { bytes, pos: 0 };
    let magic = r.take(8, "magic")?;
    if magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.u32("version")?;
    if version != FORMAT_VERSION {
        return Err(PersistError::VersionSkew { found: version });
    }
    // Integrity gate before any section parsing: the trailer covers every
    // byte up to itself, so truncation and bit flips die here.
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(PersistError::Truncated { what: "header" });
    }
    let body_end = bytes.len() - TRAILER_LEN;
    let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
    let mut h = Fnv1a::new();
    h.write(&bytes[..body_end]);
    let computed = h.finish();
    if stored != computed {
        return Err(PersistError::Integrity { stored, computed });
    }

    let digest = r.u64("header digest")?;
    let policy = r.u64("header policy")?;
    let engine_disc = r.u64("header engine discriminant")?;
    let generation_plus1 = r.u64("header generation")?;
    let label_count = r.u64("header label count")?;
    let section_count = r.u32("header section count")?;

    let mut sections: [Option<&[u8]>; 14] = [None; 14];
    for _ in 0..section_count {
        let tag = r.u32("section tag")?;
        let len = r.u64("section length")?;
        let len = usize::try_from(len).map_err(|_| {
            PersistError::Malformed(format!("section {tag}: length {len} overflows"))
        })?;
        let payload = r.take(len, "section payload")?;
        let slot = sections
            .get_mut(tag as usize)
            .filter(|_| (SEC_SOURCE..=SEC_FLAVOR).contains(&tag))
            .ok_or_else(|| PersistError::Malformed(format!("unknown section tag {tag}")))?;
        if slot.replace(payload).is_some() {
            return Err(PersistError::Malformed(format!(
                "duplicate section tag {tag}"
            )));
        }
    }
    if r.pos != body_end {
        return Err(PersistError::Malformed(format!(
            "{} stray bytes after the last section",
            body_end - r.pos
        )));
    }
    let required = |tag: u32, what: &'static str| {
        sections[tag as usize]
            .ok_or_else(|| PersistError::Malformed(format!("missing section {what} ({tag})")))
    };

    let source = std::str::from_utf8(required(SEC_SOURCE, "source")?)
        .map_err(|e| PersistError::Malformed(format!("source is not UTF-8: {e}")))?
        .to_owned();
    let linked = match sections[SEC_FLAVOR as usize] {
        None => false,
        Some(p) => {
            let flavor = decode_u32s(p, "flavor")?;
            match flavor.as_slice() {
                [FLAVOR_LINKED] => true,
                other => {
                    return Err(PersistError::Malformed(format!(
                        "unknown snapshot flavor {other:?}"
                    )))
                }
            }
        }
    };
    // The header digest doubles as the cache address: recompute it from
    // the decoded contents so a file filed under the wrong key is caught
    // even though its bytes are internally consistent. Linked session
    // snapshots are addressed by the linker's session digest, which is
    // not a function of the manifest bytes alone — for them the cache
    // layer compares key and manifest itself.
    if !linked {
        let computed = Fnv1a::digest_parts(source.as_bytes(), &[policy, engine_disc]);
        if digest != computed {
            return Err(PersistError::DigestMismatch {
                header: digest,
                computed,
            });
        }
    }

    let stats = decode_u64s(required(SEC_STATS, "stats")?, "stats")?;
    if stats.len() != STATS_FIELDS {
        return Err(PersistError::Malformed(format!(
            "stats: {} fields, expected {STATS_FIELDS}",
            stats.len()
        )));
    }
    let label_count = usize::try_from(label_count)
        .map_err(|_| PersistError::Malformed(format!("label count {label_count} overflows")))?;
    let parts = EngineParts {
        csr_offsets: decode_u32s(required(SEC_CSR_OFFSETS, "csr offsets")?, "csr offsets")?,
        csr_targets: decode_u32s(required(SEC_CSR_TARGETS, "csr targets")?, "csr targets")?,
        comp_of: decode_u32s(required(SEC_COMP_OF, "comp-of")?, "comp-of")?,
        node_label: decode_u32s(required(SEC_NODE_LABEL, "node labels")?, "node labels")?,
        expr_nodes: decode_u32s(required(SEC_EXPR_NODES, "expr nodes")?, "expr nodes")?,
        binder_nodes: decode_u32s(required(SEC_BINDER_NODES, "binder nodes")?, "binder nodes")?,
        occ_offsets: decode_u32s(required(SEC_OCC_OFFSETS, "occ offsets")?, "occ offsets")?,
        occ_exprs: decode_u32s(required(SEC_OCC_EXPRS, "occ exprs")?, "occ exprs")?,
        label_count,
        summaries: match sections[SEC_SUMMARIES as usize] {
            Some(p) => Some(decode_u64s(p, "summaries")?),
            None => None,
        },
        base_stats: stats_from_words(&stats),
        generation: generation_plus1.checked_sub(1),
    };
    let engine = QueryEngine::from_parts(parts).map_err(PersistError::Malformed)?;
    let suspicion = match sections[SEC_SUSPICION as usize] {
        Some(p) => Some(decode_u32s(p, "suspicion")?),
        None => None,
    };
    Ok(DecodedSnapshot {
        digest,
        policy,
        engine_disc,
        source,
        engine,
        suspicion,
        linked,
    })
}

// --- file layer ------------------------------------------------------------

/// The file name a snapshot key is stored under: 16 lowercase hex digits
/// plus `.stcfa` (e.g. `00c4d01bd3b6d359.stcfa`).
pub fn file_name(digest: u64) -> String {
    format!("{digest:016x}.{EXTENSION}")
}

/// Inverts [`file_name`]; `None` for anything else in the directory.
pub fn parse_file_name(name: &str) -> Option<u64> {
    let hex = name.strip_suffix(".stcfa")?;
    if hex.len() != 16 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Monotone discriminator for temp-file names, so concurrent writers in
/// one process never collide.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Atomically installs `bytes` as `dir/<file_name(digest)>`.
///
/// Writes to a dot-prefixed temp file in the same directory, flushes, and
/// renames over the final name — readers only ever observe either the old
/// complete file or the new complete file, never a torn prefix (and a
/// crash mid-write leaves only a temp file the integrity trailer would
/// reject anyway). Creates `dir` if needed. Returns the final path.
pub fn save_atomic(dir: &Path, digest: u64, bytes: &[u8]) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let final_path = dir.join(file_name(digest));
    let tmp_path = dir.join(format!(
        ".tmp-{digest:016x}-{}-{}",
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp_path)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp_path, &final_path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp_path);
    }
    result.map(|()| final_path)
}

/// Reads and decodes `dir/<file_name(digest)>`.
///
/// A missing file is `Ok(None)` (a plain cache miss); an unreadable or
/// undecodable file is the structured error (the caller should delete it
/// and rebuild).
pub fn load(dir: &Path, digest: u64) -> Result<Option<DecodedSnapshot>, PersistError> {
    let path = dir.join(file_name(digest));
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(PersistError::Io(format!("{}: {e}", path.display()))),
    };
    decode(&bytes).map(Some)
}

/// Removes `dir/<file_name(digest)>` if present. Errors other than
/// "not found" are reported (but are safe to ignore: a live file that
/// cannot be deleted will still decode to its old — integrity-valid —
/// contents or fail closed).
pub fn remove(dir: &Path, digest: u64) -> io::Result<()> {
    match std::fs::remove_file(dir.join(file_name(digest))) {
        Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_core::Analysis;
    use stcfa_lambda::Program;

    const SOURCE: &str = "(fn f => (fn x => f (f x)) (fn y => f y)) (fn z => z)";

    fn engine_for(source: &str) -> QueryEngine {
        let p = Program::parse(source).expect("test source parses");
        let a = Analysis::run(&p).expect("test source is bounded-type");
        QueryEngine::freeze(&a)
    }

    fn image_bytes(source: &str, prepare: bool) -> (u64, Vec<u8>) {
        let engine = engine_for(source);
        if prepare {
            engine.prepare();
        }
        let digest = Fnv1a::digest_parts(source.as_bytes(), &[1, 0]);
        let bytes = encode(&SnapshotImage {
            digest,
            policy: 1,
            engine_disc: 0,
            source,
            engine: &engine,
            suspicion: None,
            linked: false,
        });
        (digest, bytes)
    }

    fn assert_same_answers(source: &str, a: &QueryEngine, b: &QueryEngine) {
        let p = Program::parse(source).unwrap();
        for e in p.exprs() {
            assert_eq!(a.labels_of(e), b.labels_of(e), "labels at {e:?}");
        }
        for v in p.vars() {
            assert_eq!(a.labels_of_binder(v), b.labels_of_binder(v), "binder {v:?}");
        }
        for l in p.all_labels() {
            assert_eq!(
                a.exprs_with_label(l),
                b.exprs_with_label(l),
                "inverse {l:?}"
            );
        }
        assert_eq!(a.all_label_sets(), b.all_label_sets());
    }

    #[test]
    fn round_trips_with_and_without_summaries() {
        for prepare in [false, true] {
            let (digest, bytes) = image_bytes(SOURCE, prepare);
            let d = decode(&bytes).expect("clean bytes decode");
            assert_eq!(d.digest, digest);
            assert_eq!(d.policy, 1);
            assert_eq!(d.engine_disc, 0);
            assert_eq!(d.source, SOURCE);
            assert_same_answers(SOURCE, &engine_for(SOURCE), &d.engine);
            // A prepared engine persists its sweep: the decoded engine
            // answers from summaries without re-sweeping only then.
            let _ = d.engine.all_label_sets();
            assert_eq!(d.engine.query_stats().sweeps, u64::from(!prepare));
        }
    }

    #[test]
    fn generation_tag_round_trips() {
        let p = Program::parse(SOURCE).unwrap();
        let a = Analysis::run(&p).unwrap();
        for generation in [None, Some(0), Some(41)] {
            let engine = match generation {
                None => QueryEngine::freeze(&a),
                Some(g) => QueryEngine::freeze_with_generation(&a, g),
            };
            let digest = Fnv1a::digest_parts(SOURCE.as_bytes(), &[0, 0]);
            let bytes = encode(&SnapshotImage {
                digest,
                policy: 0,
                engine_disc: 0,
                source: SOURCE,
                engine: &engine,
                suspicion: None,
                linked: false,
            });
            let d = decode(&bytes).expect("decodes");
            assert_eq!(d.engine.generation(), generation);
        }
    }

    #[test]
    fn suspicion_scores_round_trip() {
        let engine = engine_for(SOURCE);
        let scores: Vec<u32> = (0..engine.comp_count() as u32).rev().collect();
        let digest = Fnv1a::digest_parts(SOURCE.as_bytes(), &[1, 0]);
        let bytes = encode(&SnapshotImage {
            digest,
            policy: 1,
            engine_disc: 0,
            source: SOURCE,
            engine: &engine,
            suspicion: Some(&scores),
            linked: false,
        });
        let d = decode(&bytes).expect("decodes");
        assert_eq!(d.suspicion.as_deref(), Some(scores.as_slice()));
        assert!(!d.linked);
        // Files without the section decode to `None`, not empty.
        let (_, plain) = image_bytes(SOURCE, false);
        assert_eq!(decode(&plain).unwrap().suspicion, None);
    }

    #[test]
    fn linked_snapshots_skip_the_source_digest_gate() {
        // A linked snapshot's address is the session digest — pick a
        // value that is deliberately NOT Fnv1a(source, [policy, disc]).
        let engine = engine_for(SOURCE);
        let manifest = "session\u{0}main\u{1}fn x => x\u{2}";
        let session_digest = 0xdead_beef_cafe_f00d_u64;
        let bytes = encode(&SnapshotImage {
            digest: session_digest,
            policy: 1,
            engine_disc: 0,
            source: manifest,
            engine: &engine,
            suspicion: None,
            linked: true,
        });
        let d = decode(&bytes).expect("linked snapshots decode");
        assert!(d.linked);
        assert_eq!(d.digest, session_digest);
        assert_eq!(d.source, manifest);
        // The same bytes *without* the flavor section must fail the
        // digest gate: linked-ness is not assumable.
        let built = encode(&SnapshotImage {
            digest: session_digest,
            policy: 1,
            engine_disc: 0,
            source: manifest,
            engine: &engine,
            suspicion: None,
            linked: false,
        });
        assert!(matches!(
            decode(&built).unwrap_err(),
            PersistError::DigestMismatch { .. }
        ));
        // An unknown flavor value is malformed, not silently trusted.
        let mut evil = bytes;
        let flavor_at = evil.len() - TRAILER_LEN - 4;
        evil[flavor_at..flavor_at + 4].copy_from_slice(&7u32.to_le_bytes());
        resign(&mut evil);
        assert!(matches!(
            decode(&evil).unwrap_err(),
            PersistError::Malformed(_)
        ));
    }

    #[test]
    fn truncation_at_every_length_is_structured() {
        let (_, bytes) = image_bytes(SOURCE, true);
        for len in 0..bytes.len() {
            let err = decode(&bytes[..len]).expect_err("prefix must not decode");
            // Prefixes long enough to carry the magic/version see the
            // integrity or truncation gate; shorter ones, truncation.
            assert!(
                matches!(
                    err,
                    PersistError::Truncated { .. }
                        | PersistError::Integrity { .. }
                        | PersistError::BadMagic
                        | PersistError::VersionSkew { .. }
                ),
                "prefix {len}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_caught() {
        // FNV-1a's per-byte step (xor, then multiply by an odd prime) is
        // a bijection on the state, so ANY single corrupted byte before
        // the trailer changes the computed digest; flips inside the
        // trailer change the stored one. Exhaustive over a small file.
        let (_, bytes) = image_bytes("fn x => x", false);
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut evil = bytes.clone();
                evil[i] ^= 1 << bit;
                let err = decode(&evil).expect_err("bit flip must not decode");
                assert!(
                    matches!(
                        err,
                        PersistError::Integrity { .. }
                            | PersistError::BadMagic
                            | PersistError::VersionSkew { .. }
                    ),
                    "byte {i} bit {bit}: unexpected {err:?}"
                );
            }
        }
    }

    #[test]
    fn version_skew_and_bad_magic_are_detected_first() {
        let (_, mut bytes) = image_bytes(SOURCE, false);
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        assert_eq!(
            decode(&bytes).unwrap_err(),
            PersistError::VersionSkew {
                found: FORMAT_VERSION + 1
            }
        );
        bytes[0] = b'X';
        assert_eq!(decode(&bytes).unwrap_err(), PersistError::BadMagic);
        assert_eq!(
            decode(&[]).unwrap_err(),
            PersistError::Truncated { what: "magic" }
        );
    }

    /// Re-sign `bytes` with a fresh integrity trailer (the attacker model
    /// for the inner gates: internally consistent, semantically wrong).
    fn resign(bytes: &mut [u8]) {
        let body = bytes.len() - TRAILER_LEN;
        let mut h = Fnv1a::new();
        h.write(&bytes[..body]);
        let digest = h.finish();
        bytes[body..].copy_from_slice(&digest.to_le_bytes());
    }

    #[test]
    fn wrong_cache_address_is_a_digest_mismatch() {
        let (digest, mut bytes) = image_bytes(SOURCE, false);
        // Re-file the snapshot under a different address and re-sign: the
        // integrity trailer passes, the content digest does not.
        bytes[12..20].copy_from_slice(&(digest ^ 1).to_le_bytes());
        resign(&mut bytes);
        match decode(&bytes).unwrap_err() {
            PersistError::DigestMismatch { header, computed } => {
                assert_eq!(header, digest ^ 1);
                assert_eq!(computed, digest);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn resigned_structural_corruption_is_malformed_not_panic() {
        // Damage an array *and* fix the trailer: only the structural
        // validators are left, and they must reject without panicking.
        let (_, clean) = image_bytes(SOURCE, true);
        let mutations: &[fn(&mut Vec<u8>)] = &[
            |b| b.truncate(b.len() - 16), // drop a section tail
            |b| {
                let at = HEADER_LEN + 12; // first section's payload
                b[at] = b[at].wrapping_add(1); // source byte → digest mismatch
            },
            |b| b[44..52].fill(0), // header label count → 0:
            // node_label entries go out of range
            |b| b.extend_from_slice(&[0; 7]), // stray trailing bytes
        ];
        for (i, m) in mutations.iter().enumerate() {
            let mut evil = clean.clone();
            m(&mut evil);
            if evil.len() >= HEADER_LEN + TRAILER_LEN {
                resign(&mut evil);
            }
            assert!(decode(&evil).is_err(), "mutation {i} must not decode");
        }
        // Re-signed section-count corruption: claims more sections than
        // the body holds.
        let mut evil = clean;
        let count_at = HEADER_LEN - 4;
        evil[count_at..HEADER_LEN].copy_from_slice(&99u32.to_le_bytes());
        resign(&mut evil);
        assert!(decode(&evil).is_err());
    }

    #[test]
    fn file_names_round_trip() {
        for digest in [0u64, 1, 0xc4d0_1bd3_b6d3_59b1, u64::MAX] {
            let name = file_name(digest);
            assert_eq!(parse_file_name(&name), Some(digest), "{name}");
        }
        assert_eq!(parse_file_name("deadbeef.stcfa"), None, "too short");
        assert_eq!(parse_file_name("00c4d01bd3b6d359.tmp"), None);
        assert_eq!(parse_file_name(".tmp-0000000000000000-1-2"), None);
    }

    #[test]
    fn save_load_remove_lifecycle() {
        let dir = std::env::temp_dir().join(format!(
            "stcfa-persist-test-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let (digest, bytes) = image_bytes(SOURCE, true);
        let path = save_atomic(&dir, digest, &bytes).expect("save");
        assert_eq!(path, dir.join(file_name(digest)));
        assert_eq!(std::fs::read(&path).expect("file exists"), bytes);
        // No temp files left behind.
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| parse_file_name(&n.to_string_lossy()).is_none())
            .collect();
        assert!(stray.is_empty(), "stray temp files: {stray:?}");
        let loaded = load(&dir, digest).expect("load").expect("present");
        assert_eq!(loaded.digest, digest);
        assert_eq!(loaded.source, SOURCE);
        assert!(load(&dir, digest ^ 1)
            .expect("miss is not an error")
            .is_none());
        // Corrupt on disk → structured error, then remove clears it.
        let mut evil = bytes;
        evil[40] ^= 0x10;
        std::fs::write(&path, &evil).unwrap();
        assert!(load(&dir, digest).is_err());
        remove(&dir, digest).expect("remove");
        assert!(load(&dir, digest).expect("gone is a miss").is_none());
        remove(&dir, digest).expect("idempotent");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
