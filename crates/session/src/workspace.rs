//! The workspace: named modules, the link graph, and the incremental
//! linker.
//!
//! # Linking model
//!
//! Modules are linked *in order* into one shared arena: module `i` is
//! parsed as a session fragment with every predecessor's top-level
//! scope (and datatype environment) ambient, then the incremental
//! analysis resumes — `core::incremental` adds the new fragment's basic
//! edges plus the binder→rhs edges that stitch the module onto its
//! predecessors (the cross-module dom/ran edges at the link boundary)
//! and re-runs the monotone close, whose cost is proportional to the
//! delta, not the workspace.
//!
//! # Invalidation
//!
//! The linker keeps ONE mutable *tip* (session program + incremental
//! analysis + binder-owner map) and, per linked module, a cheap *mark*:
//! the extent of every append-only table after that module, keyed by a
//! chain digest over the analysis options and every module name/content
//! digest up to that point. On re-link, the longest prefix of marks
//! whose chain digests still match is kept; the tip is *rewound* to the
//! last kept mark — popping the analysis's mutation journal and
//! truncating the arenas, in time proportional to what is being undone —
//! and only the suffix from the first changed module onward is re-parsed
//! and re-closed. Rewind-then-replay is bit-identical to a fresh link
//! (everything the linker mutates is append-only), so reused modules'
//! graph nodes are untouched and keep their original analysis
//! generations. Editing the *last* module of an `n`-module workspace
//! therefore costs one module, not `n` — with no per-checkpoint clones
//! of the session or graph on either the link or the re-link path.

use std::collections::{BTreeSet, HashMap};

use stcfa_core::analysis::AnalysisError;
use stcfa_core::incremental::{AnalysisMark, IncrementalAnalysis, StaleSnapshot};
use stcfa_core::{Analysis, AnalysisOptions, DatatypePolicy, QueryEngine};
use stcfa_devkit::hash::Fnv1a;
use stcfa_lambda::parser::ParseError;
use stcfa_lambda::session::{SessionMark, SessionProgram};
use stcfa_lambda::{ExprKind, Program, VarId};

use crate::module::{LinkReport, Module, ModuleReport};

/// Why a [`Workspace::link`] failed. Both variants name the offending
/// module; the linker's marks up to that module stay valid, so fixing
/// the module and re-linking only re-does the suffix.
#[derive(Clone, Debug)]
pub enum LinkError {
    /// The module's source failed to parse (including references to
    /// names no predecessor exports).
    Parse {
        /// Offending module.
        module: String,
        /// The underlying parse error (positions are module-relative).
        error: ParseError,
    },
    /// Analysis of the module's fragment failed (node budget).
    Analysis {
        /// Offending module.
        module: String,
        /// The underlying analysis error.
        error: AnalysisError,
    },
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::Parse { module, error } => {
                write!(f, "module `{module}`: {error}")
            }
            LinkError::Analysis { module, error } => {
                write!(f, "module `{module}`: {error}")
            }
        }
    }
}

impl std::error::Error for LinkError {}

impl LinkError {
    /// The module the error is attributed to.
    pub fn module(&self) -> &str {
        match self {
            LinkError::Parse { module, .. } => module,
            LinkError::Analysis { module, .. } => module,
        }
    }
}

/// The linker's single mutable state: the composed session, the resumed
/// analysis, and the binder-owner map. Re-links never clone it — they
/// rewind it to the edit point and replay the suffix.
struct Tip {
    session: SessionProgram,
    analysis: IncrementalAnalysis,
    /// Which module each session binder belongs to (for import
    /// derivation in later modules).
    owner: HashMap<VarId, usize>,
    /// Journal of `owner` insertions. Fragment binders are always fresh
    /// `VarId`s, so an insertion never overwrites an entry and rewinding
    /// is pop-and-remove.
    owner_log: Vec<VarId>,
}

impl Tip {
    fn new(options: AnalysisOptions) -> Tip {
        Tip {
            session: SessionProgram::new(),
            analysis: IncrementalAnalysis::new(options),
            owner: HashMap::new(),
            owner_log: Vec::new(),
        }
    }

    /// Rewinds all three components to a common earlier extent.
    fn rewind(&mut self, session: SessionMark, analysis: AnalysisMark, owners: usize) {
        while self.owner_log.len() > owners {
            let v = self.owner_log.pop().expect("len checked");
            self.owner.remove(&v);
        }
        self.session.rewind(session);
        self.analysis.rewind(analysis);
    }
}

/// One linker mark: the tip's extent after linking a prefix of the
/// module list. Cheap (a few counters plus the module report) — the
/// heavy state lives only in the tip.
struct Mark {
    /// Chain digest over the options and modules `0..=i`.
    chain_digest: u64,
    session: SessionMark,
    analysis: AnalysisMark,
    /// `owner_log` length at this mark.
    owners: usize,
    /// The report of the module this mark linked (as built:
    /// `reused == false`).
    report: ModuleReport,
}

/// A workspace of named modules with an incremental linker.
pub struct Workspace {
    options: AnalysisOptions,
    modules: Vec<Module>,
    tip: Tip,
    /// Extents of the empty tip, for rewinding past module 0.
    base_session: SessionMark,
    base_analysis: AnalysisMark,
    marks: Vec<Mark>,
    /// Bumped by every content-changing [`Workspace::upsert`] /
    /// [`Workspace::remove`]; frozen into [`LinkedSnapshot`]s for the
    /// same staleness discipline as the REPL's `SessionSnapshot`.
    generation: u64,
    last_report: Option<LinkReport>,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new(options: AnalysisOptions) -> Workspace {
        let tip = Tip::new(options);
        let base_session = tip.session.mark();
        let base_analysis = tip.analysis.mark();
        Workspace {
            options,
            modules: Vec::new(),
            tip,
            base_session,
            base_analysis,
            marks: Vec::new(),
            generation: 0,
            last_report: None,
        }
    }

    /// The analysis options every link uses.
    pub fn options(&self) -> AnalysisOptions {
        self.options
    }

    /// The workspace generation: the number of content-changing module
    /// edits so far. [`LinkedSnapshot`]s frozen at an older generation
    /// are stale.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The modules, in link order.
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// The module named `name`.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name() == name)
    }

    /// Adds a module (at the end of the link order) or replaces the
    /// source of the existing module with that name. Returns `true` if
    /// the workspace changed (a no-op upsert with identical source
    /// neither changes anything nor bumps the generation).
    pub fn upsert(&mut self, name: &str, source: &str) -> bool {
        let module = Module::new(name, source);
        match self.modules.iter_mut().find(|m| m.name() == name) {
            Some(slot) => {
                if slot.digest() == module.digest() && slot.source() == source {
                    return false;
                }
                *slot = module;
            }
            None => self.modules.push(module),
        }
        self.generation += 1;
        true
    }

    /// Replaces the whole module list in one step — the rollback path
    /// for transactional callers (the server's `session/update` restores
    /// the pre-update list when a link fails). Bumps the generation;
    /// marks matching a prefix of the restored list stay valid, so the
    /// follow-up link is still incremental.
    pub fn set_modules(&mut self, modules: Vec<Module>) {
        self.modules = modules;
        self.generation += 1;
    }

    /// Removes the module named `name`. Returns `true` if it existed.
    pub fn remove(&mut self, name: &str) -> bool {
        let Some(i) = self.modules.iter().position(|m| m.name() == name) else {
            return false;
        };
        self.modules.remove(i);
        self.generation += 1;
        true
    }

    /// Chain digest per module: `chain[i]` covers the options plus every
    /// module name and content digest up to and including module `i`.
    fn chain_digests(&self) -> Vec<u64> {
        let mut h = Fnv1a::new();
        h.write_u64(policy_disc(self.options.policy));
        h.write_u64(self.options.max_nodes.map(|n| n as u64 + 1).unwrap_or(0));
        self.modules
            .iter()
            .map(|m| {
                h.write(m.name().as_bytes());
                h.write_u64(m.digest());
                h.finish()
            })
            .collect()
    }

    /// Whether the marks currently cover the whole module list
    /// (i.e. [`Workspace::link`] has run since the last edit).
    pub fn is_linked(&self) -> bool {
        let chains = self.chain_digests();
        self.marks.len() == self.modules.len()
            && self
                .marks
                .iter()
                .zip(&chains)
                .all(|(m, &d)| m.chain_digest == d)
    }

    /// Rewinds the tip to the state after linking modules `0..keep` and
    /// drops the invalidated marks.
    fn rewind_to(&mut self, keep: usize) {
        let (session, analysis, owners) = match keep {
            0 => (self.base_session, self.base_analysis, 0),
            k => {
                let m = &self.marks[k - 1];
                (m.session, m.analysis, m.owners)
            }
        };
        self.tip.rewind(session, analysis, owners);
        self.marks.truncate(keep);
    }

    /// Links the workspace: keeps the longest unchanged mark prefix,
    /// rewinds the tip to it, re-parses and re-analyzes the suffix, and
    /// derives the import graph and session digest.
    ///
    /// On error the failing module is named and rolled back out of the
    /// tip; marks before it remain valid, so a later link after fixing
    /// the module re-does only the suffix.
    pub fn link(&mut self) -> Result<LinkReport, LinkError> {
        let chains = self.chain_digests();
        let mut keep = 0;
        while keep < self.marks.len()
            && keep < self.modules.len()
            && self.marks[keep].chain_digest == chains[keep]
        {
            keep += 1;
        }
        if keep < self.marks.len() {
            self.rewind_to(keep);
        }
        for (i, &chain_digest) in chains.iter().enumerate().skip(keep) {
            debug_assert!(self.tip.analysis.covers(&self.tip.session));
            let pre_analysis = self.tip.analysis.mark();
            let pre_owners = self.tip.owner_log.len();
            let module = &self.modules[i];
            let before = self.tip.session.program().size();
            // A failed define rewinds the session itself; the analysis
            // and owner map have not been touched yet.
            let fragment =
                self.tip
                    .session
                    .define(module.source())
                    .map_err(|e| LinkError::Parse {
                        module: module.name().to_string(),
                        error: e,
                    })?;
            let after = self.tip.session.program().size();
            // Import edges: any new variable occurrence whose binder an
            // earlier module owns links this module to that predecessor.
            let mut imports: BTreeSet<usize> = BTreeSet::new();
            for idx in before..after {
                if let ExprKind::Var(v) = self
                    .tip
                    .session
                    .program()
                    .kind(stcfa_lambda::ExprId::from_index(idx))
                {
                    if let Some(&owning) = self.tip.owner.get(v) {
                        imports.insert(owning);
                    }
                }
            }
            for b in &fragment.bindings {
                self.tip.owner.insert(b.binder, i);
                self.tip.owner_log.push(b.binder);
            }
            if let Err(e) = self.tip.analysis.update(&self.tip.session) {
                // Roll the half-linked module back out of the tip so the
                // marks through module `i - 1` stay usable.
                let pre_session = self.marks.last().map_or(self.base_session, |m| m.session);
                self.tip.rewind(pre_session, pre_analysis, pre_owners);
                return Err(LinkError::Analysis {
                    module: module.name().to_string(),
                    error: e,
                });
            }
            let report = ModuleReport {
                name: module.name().to_string(),
                digest: module.digest(),
                imports: imports
                    .iter()
                    .map(|&j| self.modules[j].name().to_string())
                    .collect(),
                exports: fragment
                    .bindings
                    .iter()
                    .filter(|b| !b.name.starts_with('$'))
                    .map(|b| b.name.clone())
                    .collect(),
                reused: false,
                generation: self.tip.analysis.generation(),
                exprs: after - before,
                expr_range: (before, after),
                value: fragment.value,
            };
            self.marks.push(Mark {
                chain_digest,
                session: self.tip.session.mark(),
                analysis: self.tip.analysis.mark(),
                owners: self.tip.owner_log.len(),
                report,
            });
        }
        let report = self.assemble_report(keep);
        self.last_report = Some(report.clone());
        Ok(report)
    }

    fn assemble_report(&self, keep: usize) -> LinkReport {
        let modules: Vec<ModuleReport> = self
            .marks
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let mut r = m.report.clone();
                r.reused = i < keep;
                r
            })
            .collect();
        let (nodes, edges, exprs) = if self.marks.is_empty() {
            (0, 0, 0)
        } else {
            (
                self.tip.analysis.node_count(),
                self.tip.analysis.edge_count(),
                self.tip.session.program().size(),
            )
        };
        LinkReport {
            session_digest: self.session_digest(&modules),
            generation: self.generation,
            reused: keep,
            relinked: modules.len() - keep,
            modules,
            nodes,
            edges,
            exprs,
        }
    }

    /// The session digest over the options, module names/digests in
    /// link order, and the derived import topology.
    fn session_digest(&self, modules: &[ModuleReport]) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(policy_disc(self.options.policy));
        h.write_u64(self.options.max_nodes.map(|n| n as u64 + 1).unwrap_or(0));
        h.write_u64(modules.len() as u64);
        for m in modules {
            h.write(m.name.as_bytes());
            h.write_u64(m.digest);
            h.write_u64(m.imports.len() as u64);
            for imp in &m.imports {
                h.write(imp.as_bytes());
            }
        }
        h.finish()
    }

    /// The last successful link's report, if still current.
    pub fn report(&self) -> Option<&LinkReport> {
        match &self.last_report {
            Some(r) if self.is_linked() => Some(r),
            _ => None,
        }
    }

    /// Looks up a top-level name in the linked scope (later modules
    /// shadow earlier ones). `None` when unlinked or unbound.
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        if !self.is_linked() {
            return None;
        }
        self.tip.session.lookup(name)
    }

    /// Freezes the linked workspace into a self-contained
    /// [`LinkedSnapshot`]. Returns `None` if the workspace has unlinked
    /// edits — call [`Workspace::link`] first.
    pub fn freeze(&self) -> Option<LinkedSnapshot> {
        if !self.is_linked() {
            return None;
        }
        let mut report = self.last_report.clone()?;
        // An edit sequence that nets out to the same content (A → B → A)
        // keeps the checkpoints valid but advances the generation; the
        // frozen report must carry the generation the snapshot checks
        // against.
        report.generation = self.generation;
        // A linked workspace's tip *is* the linked state (for an empty
        // module list it is the empty base), so snapshotting clones from
        // the tip directly.
        let program = self.tip.session.program().clone();
        let analysis = self.tip.analysis.snapshot(self.tip.session.program());
        let engine = QueryEngine::freeze_with_generation(&analysis, self.generation);
        Some(LinkedSnapshot {
            program,
            analysis,
            engine,
            report,
            generation: self.generation,
        })
    }
}

/// A self-contained, immutable view of a linked workspace: the composed
/// program, its analysis, and a frozen [`QueryEngine`], tagged with the
/// workspace generation they were frozen at.
pub struct LinkedSnapshot {
    program: Program,
    analysis: Analysis,
    engine: QueryEngine,
    report: LinkReport,
    generation: u64,
}

impl LinkedSnapshot {
    /// The composed (forest) program. Its `root()` is meaningless; use
    /// [`LinkReport::default_value`] or per-module values instead.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The composed analysis.
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// The link report the snapshot was frozen with.
    pub fn report(&self) -> &LinkReport {
        &self.report
    }

    /// The workspace generation the snapshot was frozen at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The frozen engine, if `workspace` has not been edited since the
    /// freeze — the same checked-staleness discipline as the REPL's
    /// `SessionSnapshot`.
    pub fn engine(&self, workspace: &Workspace) -> Result<&QueryEngine, StaleSnapshot> {
        if workspace.generation() != self.generation {
            return Err(StaleSnapshot {
                frozen_at: self.generation,
                current: workspace.generation(),
            });
        }
        Ok(&self.engine)
    }

    /// The frozen engine without a staleness check — for consumers that
    /// keep snapshot and workspace paired by construction (the server
    /// registry) or hold no workspace at all.
    pub fn engine_unchecked(&self) -> &QueryEngine {
        &self.engine
    }

    /// Decomposes the snapshot into its parts (for cache storage).
    pub fn into_parts(self) -> (Program, Analysis, QueryEngine, LinkReport) {
        (self.program, self.analysis, self.engine, self.report)
    }
}

/// Stable discriminant of a datatype policy for digest mixing (matches
/// the server's wire policy numbering).
fn policy_disc(policy: DatatypePolicy) -> u64 {
    match policy {
        DatatypePolicy::Congruence1 => 0,
        DatatypePolicy::Congruence2 => 1,
        DatatypePolicy::Exact => 2,
        DatatypePolicy::Forget => 3,
    }
}
