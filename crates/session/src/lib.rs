//! Multi-file analysis sessions over the subtransitive CFA.
//!
//! The paper builds its graph for one whole program, but because the
//! construction is *local* (one basic edge per syntax construct) and the
//! close phase is *monotone* (edges are only ever added), a program can
//! be analyzed as a sequence of named **modules**: each module's
//! fragment contributes its own nodes and basic edges, and linking a
//! module onto its predecessors adds only the binder→rhs dom/ran edges
//! at the boundary before resuming the close. The result is
//! node-for-node identical to analyzing the concatenated program — the
//! differential session tests quantify over arbitrary top-level splits
//! — while an edit to one module re-does only that module and its
//! successors, not the workspace.
//!
//! The crate provides:
//!
//! - [`Module`] — named source text with an FNV-1a/64 content digest;
//! - [`Workspace`] — the module list, rewind-based incremental linker,
//!   derived import graph, and session digest;
//! - [`LinkedSnapshot`] — a frozen, generation-checked
//!   [`stcfa_core::QueryEngine`] over the linked program;
//! - [`split`] — top-level boundary detection for turning a whole
//!   program into modules.
//!
//! ```
//! use stcfa_core::AnalysisOptions;
//! use stcfa_session::Workspace;
//!
//! let mut ws = Workspace::new(AnalysisOptions::default());
//! ws.upsert("util", "fun id x = x;");
//! ws.upsert("main", "id (fn u => u)");
//! let report = ws.link().unwrap();
//! assert_eq!(report.modules[1].imports, ["util"]);
//!
//! let snapshot = ws.freeze().unwrap();
//! let engine = snapshot.engine(&ws).unwrap();
//! let value = report.default_value().unwrap();
//! assert_eq!(engine.labels_of(value).len(), 1);
//!
//! // Editing a module stales the snapshot (checked, never silent)…
//! ws.upsert("main", "id (fn v => v) 0");
//! assert!(snapshot.engine(&ws).is_err());
//! // …and re-linking reuses the unchanged prefix verbatim.
//! let report = ws.link().unwrap();
//! assert!(report.modules[0].reused);
//! assert!(!report.modules[1].reused);
//! ```

#![warn(missing_docs)]

pub mod module;
pub mod split;
pub mod workspace;

pub use module::{LinkReport, Module, ModuleReport};
pub use workspace::{LinkError, LinkedSnapshot, Workspace};

#[cfg(test)]
mod tests {
    use stcfa_core::AnalysisOptions;

    use crate::{LinkError, Workspace};

    fn linked(modules: &[(&str, &str)]) -> Workspace {
        let mut ws = Workspace::new(AnalysisOptions::default());
        for (name, source) in modules {
            ws.upsert(name, source);
        }
        ws.link().unwrap();
        ws
    }

    #[test]
    fn imports_are_derived_from_references() {
        let ws = linked(&[
            ("a", "fun f x = x;"),
            ("b", "fun g h = fn y => h y;"),
            ("c", "val r = g f;"),
            ("d", "val s = fn q => q;"),
        ]);
        let report = ws.report().unwrap();
        assert_eq!(report.modules[0].imports, Vec::<String>::new());
        assert_eq!(report.modules[2].imports, ["a", "b"]);
        assert_eq!(report.modules[3].imports, Vec::<String>::new());
        assert_eq!(report.modules[2].exports, ["r"]);
    }

    #[test]
    fn editing_a_leaf_relinks_only_the_leaf() {
        let mut ws = linked(&[
            ("a", "fun f x = x;"),
            ("b", "val p = f (fn u => u);"),
            ("c", "val q = f (fn v => v);"),
        ]);
        let before = ws.report().unwrap().clone();
        ws.upsert("c", "val q = f (fn w => w);");
        let after = ws.link().unwrap();
        assert_eq!(after.reused, 2);
        assert_eq!(after.relinked, 1);
        for i in 0..2 {
            assert!(after.modules[i].reused);
            assert_eq!(
                after.modules[i].generation, before.modules[i].generation,
                "unchanged module {i} must keep its generation"
            );
        }
        assert!(!after.modules[2].reused);
    }

    #[test]
    fn editing_the_first_module_relinks_everything() {
        let mut ws = linked(&[("a", "fun f x = x;"), ("b", "val p = f (fn u => u);")]);
        ws.upsert("a", "fun f x = x; fun f2 y = y;");
        let report = ws.link().unwrap();
        assert_eq!(report.reused, 0);
        assert_eq!(report.relinked, 2);
    }

    #[test]
    fn linked_equals_monolithic() {
        let modules = [
            ("m0", "datatype box = B of (int -> int);\nfun f x = x;"),
            ("m1", "val b = B(fn n => n + 1);"),
            ("m2", "val g = case b of B(h) => h;\nval r = f g;"),
            ("m3", "r 3"),
        ];
        let ws = linked(&modules);
        let whole: String = modules.iter().map(|(_, s)| format!("{s}\n")).collect();
        let mono = linked(&[("whole", &whole)]);
        let (snap, mono_snap) = (ws.freeze().unwrap(), mono.freeze().unwrap());
        assert_eq!(
            snap.program().size(),
            mono_snap.program().size(),
            "same arena, module boundaries notwithstanding"
        );
        assert_eq!(
            snap.analysis().node_count(),
            mono_snap.analysis().node_count()
        );
        let (e1, e2) = (snap.engine(&ws).unwrap(), mono_snap.engine(&mono).unwrap());
        for e in snap.program().exprs() {
            assert_eq!(e1.labels_of(e), e2.labels_of(e), "labels diverge at {e:?}");
        }
    }

    #[test]
    fn session_digest_tracks_content_and_order() {
        let ws1 = linked(&[("a", "fun f x = x;"), ("b", "val p = f;")]);
        let ws2 = linked(&[("a", "fun f x = x;"), ("b", "val p = f;")]);
        let d1 = ws1.report().unwrap().session_digest;
        assert_eq!(d1, ws2.report().unwrap().session_digest);
        let edited = linked(&[("a", "fun f x = x;"), ("b", "val p = f; val q = f;")]);
        assert_ne!(d1, edited.report().unwrap().session_digest);
        let renamed = linked(&[("z", "fun f x = x;"), ("b", "val p = f;")]);
        assert_ne!(d1, renamed.report().unwrap().session_digest);
    }

    #[test]
    fn parse_errors_name_the_module_and_keep_the_prefix() {
        let mut ws = linked(&[("a", "fun f x = x;"), ("b", "val p = f;")]);
        ws.upsert("b", "val p = nosuchname;");
        match ws.link() {
            Err(LinkError::Parse { module, .. }) => assert_eq!(module, "b"),
            other => panic!("expected a parse error for `b`, got {other:?}"),
        }
        assert!(!ws.is_linked());
        // Fixing the module re-links only the suffix.
        ws.upsert("b", "val p = f;");
        let report = ws.link().unwrap();
        assert_eq!(report.reused, 1);
        assert_eq!(report.relinked, 1);
    }

    #[test]
    fn remove_then_relink() {
        let mut ws = linked(&[
            ("a", "fun f x = x;"),
            ("b", "val p = f (fn u => u);"),
            ("c", "val q = f;"),
        ]);
        assert!(ws.remove("b"));
        let report = ws.link().unwrap();
        assert_eq!(report.modules.len(), 2);
        assert_eq!(report.reused, 1, "`a` precedes the removal point");
        // Removing a module someone imports is a (named) link error.
        assert!(ws.remove("a"));
        match ws.link() {
            Err(LinkError::Parse { module, .. }) => assert_eq!(module, "c"),
            other => panic!("expected `c` to fail, got {other:?}"),
        }
    }

    #[test]
    fn upsert_with_identical_source_is_a_noop() {
        let mut ws = linked(&[("a", "fun f x = x;")]);
        let gen = ws.generation();
        assert!(!ws.upsert("a", "fun f x = x;"));
        assert_eq!(ws.generation(), gen);
        assert!(ws.is_linked(), "no-op upsert must not unlink");
    }

    #[test]
    fn module_attribution_of_exprs() {
        let ws = linked(&[("a", "fun f x = x;"), ("b", "f (fn u => u)")]);
        let report = ws.report().unwrap();
        let value = report.default_value().unwrap();
        assert_eq!(report.module_of_expr(value), Some("b"));
    }
}
