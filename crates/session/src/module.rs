//! Named modules and per-module link reports.

use stcfa_devkit::hash::Fnv1a;
use stcfa_lambda::ExprId;

/// A named module: source text plus its FNV-1a/64 content digest.
///
/// Modules are the unit of invalidation: the workspace re-links a module
/// exactly when its digest (or anything before it in link order)
/// changes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Module {
    name: String,
    source: String,
    digest: u64,
}

impl Module {
    /// Creates a module; the digest is computed from the source bytes.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> Module {
        let name = name.into();
        let source = source.into();
        let digest = {
            let mut h = Fnv1a::new();
            h.write(source.as_bytes());
            h.finish()
        };
        Module {
            name,
            source,
            digest,
        }
    }

    /// The module name (unique within a workspace).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The module source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// FNV-1a/64 digest of the source text.
    pub fn digest(&self) -> u64 {
        self.digest
    }
}

/// What linking one module contributed, as recorded by the last
/// [`crate::Workspace::link`].
#[derive(Clone, Debug)]
pub struct ModuleReport {
    /// Module name.
    pub name: String,
    /// Content digest at link time.
    pub digest: u64,
    /// Names of *earlier* modules this module references (its incoming
    /// link edges), in link order. Derived from the parsed fragment:
    /// every variable occurrence whose binder belongs to a predecessor
    /// module adds that predecessor.
    pub imports: Vec<String>,
    /// Top-level names this module binds (compiler-generated `$…` pack
    /// binders are omitted).
    pub exports: Vec<String>,
    /// Whether the module's fragment was reused verbatim from a
    /// checkpoint (true) or (re-)parsed and (re-)analyzed (false).
    pub reused: bool,
    /// The analysis generation at which this module's fragment was
    /// built. Reused modules keep the generation of their original
    /// build — the edit-loop tests assert exactly this.
    pub generation: u64,
    /// Expression occurrences this module contributed to the arena.
    pub exprs: usize,
    /// Half-open arena range `[start, end)` of those expressions; every
    /// expression of the linked program falls in exactly one module's
    /// range, which is how diagnostics are attributed to modules.
    pub expr_range: (usize, usize),
    /// The module's trailing value expression, if any.
    pub value: Option<ExprId>,
}

/// Summary of one [`crate::Workspace::link`] run.
#[derive(Clone, Debug)]
pub struct LinkReport {
    /// Session digest: FNV-1a/64 over the analysis options, every
    /// module's name and content digest in link order, and the derived
    /// import topology. Two workspaces with equal session digests link
    /// to identical analyses.
    pub session_digest: u64,
    /// Workspace generation this report describes.
    pub generation: u64,
    /// Per-module reports, in link order.
    pub modules: Vec<ModuleReport>,
    /// How many modules were reused from checkpoints.
    pub reused: usize,
    /// How many modules were (re-)linked.
    pub relinked: usize,
    /// Graph nodes in the linked analysis.
    pub nodes: usize,
    /// Graph edges in the linked analysis.
    pub edges: usize,
    /// Expression occurrences in the linked arena.
    pub exprs: usize,
}

impl LinkReport {
    /// The trailing value expression of the *last* module that has one —
    /// the linked program's natural "result" and the default query
    /// target for `session/query`.
    pub fn default_value(&self) -> Option<ExprId> {
        self.modules.iter().rev().find_map(|m| m.value)
    }

    /// The report for module `name`.
    pub fn module(&self, name: &str) -> Option<&ModuleReport> {
        self.modules.iter().find(|m| m.name == name)
    }

    /// The name of the module owning arena expression `e`, via the
    /// per-module expression ranges.
    pub fn module_of_expr(&self, e: ExprId) -> Option<&str> {
        let i = e.index();
        self.modules
            .iter()
            .find(|m| m.expr_range.0 <= i && i < m.expr_range.1)
            .map(|m| m.name.as_str())
    }
}
