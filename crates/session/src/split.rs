//! Splitting whole-program source at top-level declaration boundaries.
//!
//! A boundary is the position just after a `;` that terminates a
//! top-level declaration — i.e. a `;` lexed at paren depth zero outside
//! any `let … end` block. Splitting source at any subset of its
//! boundaries yields fragments that a [`crate::Workspace`] links back to
//! the *same* analysis as the unsplit program (the differential session
//! tests quantify over exactly this).

use stcfa_lambda::lexer::{lex, Kw, Tok};

/// Byte offsets just after each top-level `;` in `source`, in order.
///
/// Returns an error message if the source does not lex.
pub fn top_level_boundaries(source: &str) -> Result<Vec<usize>, String> {
    let tokens = lex(source).map_err(|e| e.to_string())?;
    let mut paren = 0usize;
    let mut lets = 0usize;
    let mut out = Vec::new();
    for (tok, span) in &tokens {
        match tok {
            Tok::LParen => paren += 1,
            Tok::RParen => paren = paren.saturating_sub(1),
            Tok::Kw(Kw::Let) => lets += 1,
            Tok::Kw(Kw::End) => lets = lets.saturating_sub(1),
            Tok::Semi if paren == 0 && lets == 0 => out.push(span.end.offset),
            _ => {}
        }
    }
    Ok(out)
}

/// Splits `source` at the given boundary offsets (each must come from
/// [`top_level_boundaries`]). Produces `cuts.len() + 1` fragments whose
/// concatenation is exactly `source`; fragments that are entirely
/// whitespace are dropped.
pub fn split_at(source: &str, cuts: &[usize]) -> Vec<String> {
    let mut out = Vec::with_capacity(cuts.len() + 1);
    let mut start = 0usize;
    for &cut in cuts {
        debug_assert!(start <= cut && cut <= source.len());
        if !source[start..cut].trim().is_empty() {
            out.push(source[start..cut].to_string());
        }
        start = cut;
    }
    if !source[start..].trim().is_empty() {
        out.push(source[start..].to_string());
    }
    out
}

/// Splits `source` into (up to) `parts` fragments of roughly equal
/// declaration count. With fewer boundaries than requested parts, every
/// boundary becomes a cut. Returns an error if the source does not lex.
pub fn split_even(source: &str, parts: usize) -> Result<Vec<String>, String> {
    let boundaries = top_level_boundaries(source)?;
    let parts = parts.max(1);
    if parts == 1 || boundaries.is_empty() {
        return Ok(vec![source.to_string()]);
    }
    // `boundaries.len()` cuts would make `len + 1` fragments; choose
    // `parts - 1` cuts spread evenly across the available boundaries.
    let cuts_wanted = (parts - 1).min(boundaries.len());
    let mut cuts = Vec::with_capacity(cuts_wanted);
    for k in 1..=cuts_wanted {
        let idx = k * boundaries.len() / (cuts_wanted + 1);
        let idx = idx.min(boundaries.len() - 1);
        let cut = boundaries[idx];
        if cuts.last() != Some(&cut) {
            cuts.push(cut);
        }
    }
    Ok(split_at(source, &cuts))
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROGRAM: &str =
        "fun id x = x;\nval a = let val t = id 1; val u = t in u end;\nval b = (id, id);\nid 9\n";

    #[test]
    fn boundaries_skip_let_blocks_and_parens() {
        let cuts = top_level_boundaries(PROGRAM).unwrap();
        // Three top-level `;` — the two inside `let … end` don't count.
        assert_eq!(cuts.len(), 3);
        for &c in &cuts {
            assert_eq!(&PROGRAM[c - 1..c], ";");
        }
    }

    #[test]
    fn split_concatenation_roundtrips() {
        let cuts = top_level_boundaries(PROGRAM).unwrap();
        let fragments = split_at(PROGRAM, &cuts);
        assert_eq!(fragments.concat(), PROGRAM);
        assert_eq!(fragments.len(), 4);
    }

    #[test]
    fn split_even_respects_part_count() {
        let two = split_even(PROGRAM, 2).unwrap();
        assert_eq!(two.len(), 2);
        assert_eq!(two.concat(), PROGRAM);
        let many = split_even(PROGRAM, 99).unwrap();
        // Only 3 boundaries: at most 4 fragments.
        assert_eq!(many.len(), 4);
        assert_eq!(many.concat(), PROGRAM);
    }

    #[test]
    fn unsplittable_source_stays_whole() {
        let src = "fn x => x";
        assert_eq!(split_even(src, 4).unwrap(), vec![src.to_string()]);
    }
}
