//! Seeded multi-module program generation for the session linker.
//!
//! Unlike [`crate::synth`], which builds a `Program` directly through the
//! `ProgramBuilder`, this generator emits *concrete source text* split
//! into named modules, because the session workspace (`stcfa-session`)
//! consumes source fragments. Every module is a run of top-level
//! declarations; only the final module carries a trailing value
//! expression, so the in-order concatenation of all module sources is
//! itself a well-formed whole program — the property the differential
//! session tests and `benches/session.rs` rely on.
//!
//! Terms are drawn from a tiny two-level simple-type universe
//! (`int -> int` and its transformer `(int -> int) -> (int -> int)`)
//! plus a boxed-function datatype declared in the first module, so the
//! generated programs are simply typed (bounded types, paper `P_k`) and
//! later modules genuinely *import* earlier modules' bindings — both
//! plain variables and datatype constructors cross module boundaries.

use stcfa_devkit::prng::Rng;

/// Parameters for [`module_sources`].
#[derive(Clone, Debug)]
pub struct ModulesConfig {
    /// RNG seed: same seed, same module set.
    pub seed: u64,
    /// Number of modules to emit (min 1).
    pub modules: usize,
    /// Top-level declarations per module (min 1).
    pub decls_per_module: usize,
    /// Probability that a referenced name is drawn from an *earlier*
    /// module rather than the current one, when both pools are
    /// non-empty. Higher values mean a denser import graph.
    pub cross_module_prob: f64,
    /// Whether the first module declares `datatype box = B of …` and
    /// later modules box/unbox functions through it, exercising
    /// cross-module constructor references and `case` flow.
    pub datatypes: bool,
}

impl Default for ModulesConfig {
    fn default() -> Self {
        ModulesConfig {
            seed: 0,
            modules: 4,
            decls_per_module: 8,
            cross_module_prob: 0.5,
            datatypes: true,
        }
    }
}

/// The generator's type tags: `F1` is `int -> int`, `F2` is
/// `(int -> int) -> (int -> int)`, `Boxed` is the datatype.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Tag {
    F1,
    F2,
    Boxed,
}

/// A named top-level binding with its type tag and defining module.
struct Decl {
    name: String,
    tag: Tag,
    module: usize,
}

/// Picks a name of the wanted tag, preferring earlier modules with
/// probability `cross_module_prob`. Returns `None` if no binding of
/// that tag exists yet.
fn pick<'a>(
    rng: &mut Rng,
    pool: &'a [Decl],
    tag: Tag,
    current_module: usize,
    cross_prob: f64,
) -> Option<&'a str> {
    let candidates: Vec<&Decl> = pool.iter().filter(|d| d.tag == tag).collect();
    if candidates.is_empty() {
        return None;
    }
    let earlier: Vec<&&Decl> = candidates
        .iter()
        .filter(|d| d.module < current_module)
        .collect();
    if !earlier.is_empty() && rng.gen_bool(cross_prob) {
        let i = rng.below(earlier.len() as u64) as usize;
        return Some(&earlier[i].name);
    }
    let i = rng.below(candidates.len() as u64) as usize;
    Some(&candidates[i].name)
}

/// Generates `(module_name, module_source)` pairs in link order.
///
/// Module names are `m0`, `m1`, …; concatenating the sources in order
/// yields a single well-formed program equivalent to the linked
/// session.
pub fn module_sources(config: &ModulesConfig) -> Vec<(String, String)> {
    let mut rng = Rng::seed_from_u64(config.seed);
    let n_modules = config.modules.max(1);
    let per_module = config.decls_per_module.max(1);
    let mut pool: Vec<Decl> = Vec::new();
    let mut out = Vec::with_capacity(n_modules);
    let mut fresh = 0usize;
    for m in 0..n_modules {
        let mut src = String::new();
        if m == 0 && config.datatypes {
            src.push_str("datatype box = B of (int -> int) | E;\n");
        }
        for _ in 0..per_module {
            fresh += 1;
            let name = format!("g{fresh}_{m}");
            let cp = config.cross_module_prob;
            // Production weights: makers first so pools are never
            // starved, then consumers that wire modules together.
            let tag = match rng.below(10) {
                0 | 1 => {
                    // F1 maker: a ground function.
                    let k = rng.below(9) + 1;
                    if rng.gen_bool(0.5) {
                        src.push_str(&format!("fun {name} x = x + {k};\n"));
                    } else {
                        src.push_str(&format!("val {name} = fn x => x * {k};\n"));
                    }
                    Tag::F1
                }
                2 | 3 => {
                    // F2 maker: a transformer of ground functions.
                    match rng.below(3) {
                        0 => src.push_str(&format!("fun {name} f = fn y => f (f y);\n")),
                        1 => src.push_str(&format!("val {name} = fn f => f;\n")),
                        _ => src.push_str(&format!("fun {name} f = fn y => f y + 1;\n")),
                    }
                    Tag::F2
                }
                4 | 5 => {
                    // F1 by application: transformer applied to a ground
                    // function — the cross-module dom/ran edge workhorse.
                    match (
                        pick(&mut rng, &pool, Tag::F2, m, cp),
                        pick(&mut rng, &pool, Tag::F1, m, cp),
                    ) {
                        (Some(f2), Some(f1)) => {
                            src.push_str(&format!("val {name} = {f2} {f1};\n"));
                            Tag::F1
                        }
                        _ => {
                            src.push_str(&format!("fun {name} x = x;\n"));
                            Tag::F1
                        }
                    }
                }
                6 => {
                    // F1 through a record: build a pair, project it back.
                    match (
                        pick(&mut rng, &pool, Tag::F1, m, cp),
                        pick(&mut rng, &pool, Tag::F1, m, cp),
                    ) {
                        (Some(a), Some(b)) => {
                            src.push_str(&format!("val {name} = #1 ({a}, {b});\n"));
                            Tag::F1
                        }
                        _ => {
                            src.push_str(&format!("fun {name} x = x - 1;\n"));
                            Tag::F1
                        }
                    }
                }
                7 if config.datatypes => {
                    // Box a ground function in the module-0 datatype.
                    match pick(&mut rng, &pool, Tag::F1, m, cp) {
                        Some(f1) => {
                            src.push_str(&format!("val {name} = B({f1});\n"));
                            Tag::Boxed
                        }
                        None => {
                            src.push_str(&format!("val {name} = E;\n"));
                            Tag::Boxed
                        }
                    }
                }
                8 if config.datatypes => {
                    // Unbox: cross-module `case` over the constructor.
                    match pick(&mut rng, &pool, Tag::Boxed, m, cp) {
                        Some(bx) => {
                            src.push_str(&format!(
                                "val {name} = case {bx} of B(g) => g | E => (fn z => z);\n"
                            ));
                            Tag::F1
                        }
                        None => {
                            src.push_str(&format!("val {name} = fn x => x + 2;\n"));
                            Tag::F1
                        }
                    }
                }
                _ => {
                    // Join point: everything funneled through one
                    // identity merges label sets (Section 2 pattern).
                    match pick(&mut rng, &pool, Tag::F1, m, cp) {
                        Some(f1) => {
                            src.push_str(&format!("val {name} = (fn j => j) {f1};\n"));
                            Tag::F1
                        }
                        None => {
                            src.push_str(&format!("fun {name} x = x + 3;\n"));
                            Tag::F1
                        }
                    }
                }
            };
            pool.push(Decl {
                name,
                tag,
                module: m,
            });
        }
        if m + 1 == n_modules {
            // Trailing value expression: drive a ground function so the
            // whole program has observable flow at the root.
            let f1 = pick(&mut rng, &pool, Tag::F1, m, 1.0).expect("F1 pool is never empty");
            src.push_str(&format!("{f1} 7\n"));
        }
        out.push((format!("m{m}"), src));
    }
    out
}

/// Joins module sources in link order into one whole-program source.
pub fn concatenated(sources: &[(String, String)]) -> String {
    let mut all = String::new();
    for (_, src) in sources {
        all.push_str(src);
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concatenation_parses_as_a_whole_program() {
        for seed in 0..8 {
            let cfg = ModulesConfig {
                seed,
                ..ModulesConfig::default()
            };
            let sources = module_sources(&cfg);
            assert_eq!(sources.len(), cfg.modules);
            let whole = concatenated(&sources);
            stcfa_lambda::Program::parse(&whole).expect("generated program parses");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = ModulesConfig::default();
        assert_eq!(module_sources(&cfg), module_sources(&cfg));
    }
}
