//! The paper's parameterized worst-case benchmark (Section 10, Table 1).
//!
//! > "The benchmark of size 1 consists of:
//! >
//! > ```text
//! > fun fs x = x
//! > fun bs x = x
//! > fun f1 x = x
//! > fun b1 x = x
//! > val x1 = b1 (fs f1)
//! > val y1 = (bs b1) f1
//! > ```
//! >
//! > and the benchmark of size n consists of the first two lines of the
//! > above code and n copies of the last four lines, with f1, b1, x1 and y1
//! > appropriately renamed."
//!
//! Every copy funnels its `fᵢ`/`bᵢ` through the shared `fs`/`bs`, so the
//! standard algorithm's label sets at the shared functions grow linearly
//! and its total work cubically, while the program stays bounded-type (the
//! subtransitive graph stays linear).

use stcfa_lambda::Program;

/// Surface syntax of the size-`n` benchmark.
pub fn source(n: usize) -> String {
    let mut s = String::with_capacity(32 + n * 96);
    s.push_str("fun fs x = x;\nfun bs x = x;\n");
    for i in 1..=n {
        s.push_str(&format!("fun f{i} x = x;\n"));
        s.push_str(&format!("fun b{i} x = x;\n"));
        s.push_str(&format!("val x{i} = b{i} (fs f{i});\n"));
        s.push_str(&format!("val y{i} = (bs b{i}) f{i};\n"));
    }
    // A final expression so the program is complete; y_n is the paper's
    // last binding.
    s.push('0');
    s
}

/// The parsed size-`n` benchmark.
///
/// # Panics
///
/// Never panics for `n ≥ 1`: the generated source is well-formed by
/// construction.
pub fn program(n: usize) -> Program {
    Program::parse(&source(n)).expect("generated cubic benchmark parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_at_several_sizes() {
        for n in [1, 2, 8, 32] {
            let p = program(n);
            // 2 shared + 2n copies of fun => 2n + 2 lambdas.
            assert_eq!(p.label_count(), 2 * n + 2);
        }
    }

    #[test]
    fn size_grows_linearly() {
        let s1 = program(8).size();
        let s2 = program(16).size();
        let per_copy = (s2 - s1) / 8;
        assert!(per_copy > 0);
        assert_eq!(s2 - s1, per_copy * 8, "per-copy cost is exactly constant");
    }

    #[test]
    fn is_well_typed_and_bounded() {
        let p = program(6);
        let typed = stcfa_types::TypedProgram::infer(&p).expect("benchmark is ML-typable");
        let m = stcfa_types::TypeMetrics::compute(&p, &typed);
        let p2 = program(12);
        let typed2 = stcfa_types::TypedProgram::infer(&p2).unwrap();
        let m2 = stcfa_types::TypeMetrics::compute(&p2, &typed2);
        assert_eq!(m.max_size, m2.max_size, "bounded-type family");
    }
}
