//! Datatype-heavy workload: functions stored in, and extracted from,
//! recursive data structures — the Section 6 stress case where the choice
//! of node congruence (≈₁ vs ≈₂) governs both cost and precision.
//!
//! The size-`n` program builds `n` separate function lists, each holding
//! its own closures, and applies the head of each list. Under ≈₂ (and
//! exact CFA) each list keeps its own functions; under ≈₁ all lists of the
//! same datatype share one class, so every head application sees every
//! stored function.

use stcfa_lambda::Program;

/// Surface syntax of the size-`n` program.
pub fn source(n: usize) -> String {
    let n = n.max(1);
    let mut s = String::from(
        "datatype flist = FNil | FCons of (int -> int) * flist;\n\
         fun head xs = fn d => case xs of FCons(f, t) => f | FNil => d;\n",
    );
    for i in 1..=n {
        s.push_str(&format!(
            "val list{i} = FCons(fn a{i} => a{i} + {i}, FCons(fn b{i} => b{i} * {i}, FNil));\n\
             val r{i} = head list{i} (fn d{i} => d{i}) {i};\n"
        ));
    }
    // Combine the results so nothing is dead.
    s.push('0');
    for i in 1..=n {
        s.push_str(&format!(" + r{i}"));
    }
    s
}

/// The parsed size-`n` program.
pub fn program(n: usize) -> Program {
    Program::parse(&source(n)).expect("generated funlist parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_core::{Analysis, AnalysisOptions, DatatypePolicy};
    use stcfa_lambda::ExprKind;

    fn avg_head_targets(p: &Program, policy: DatatypePolicy) -> f64 {
        let a = Analysis::run_with(
            p,
            AnalysisOptions {
                policy,
                max_nodes: None,
            },
        )
        .unwrap();
        let mut total = 0usize;
        let mut sites = 0usize;
        for app in p.app_sites() {
            let ExprKind::App { func, .. } = p.kind(app) else {
                unreachable!()
            };
            total += a.labels_of(*func).len();
            sites += 1;
        }
        total as f64 / sites as f64
    }

    #[test]
    fn parses_and_typechecks() {
        let p = program(4);
        stcfa_types::TypedProgram::infer(&p).expect("well-typed");
    }

    #[test]
    fn congruence2_is_strictly_more_precise_here() {
        let p = program(6);
        let coarse = avg_head_targets(&p, DatatypePolicy::Congruence1);
        let fine = avg_head_targets(&p, DatatypePolicy::Congruence2);
        assert!(
            fine < coarse,
            "≈₂ should beat ≈₁ on per-list function storage: {fine} vs {coarse}"
        );
    }

    #[test]
    fn evaluates() {
        let p = program(3);
        let out = stcfa_lambda::eval::eval(&p, stcfa_lambda::eval::EvalOptions::default()).unwrap();
        assert!(matches!(out.value, stcfa_lambda::eval::Value::Int(_)));
    }
}
