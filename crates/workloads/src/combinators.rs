//! Parser-combinator workload: the classic "closures returning closures"
//! stress for control-flow analysis. Every combinator (`pseq`, `palt`,
//! `pmany`, `pmap`) both consumes and produces parser closures, so call
//! targets can only be resolved by tracking functions through multiple
//! levels of higher-order flow and through a result datatype — a shape
//! that defeats syntactic call-graph construction entirely.

use stcfa_lambda::Program;

/// The program source.
pub const SOURCE: &str = r#"
-- A parser is a function ints -> presult: it consumes a prefix of the
-- input token list and either fails or yields a value and the rest.
datatype ints = TNil | TCons of int * ints;
datatype presult = PFail | POk of int * ints;

-- Primitive: match one exact token.
fun tok t = fn input =>
  case input of
    TCons(h, rest) => (if h = t then POk(h, rest) else PFail)
  | TNil => PFail;

-- Primitive: any token, yielding its value.
fun anyTok input =
  case input of TCons(h, rest) => POk(h, rest) | TNil => PFail;

-- Sequence two parsers, combining results with f.
fun pseq p = fn q => fn f => fn input =>
  case p input of
    POk(a, rest) =>
      (case q rest of
         POk(b, rest2) => POk(f a b, rest2)
       | PFail => PFail)
  | PFail => PFail;

-- Ordered choice.
fun palt p = fn q => fn input =>
  case p input of
    POk(a, rest) => POk(a, rest)
  | PFail => q input;

-- Map a function over a parser's result.
fun pmap f = fn p => fn input =>
  case p input of
    POk(a, rest) => POk(f a, rest)
  | PFail => PFail;

-- Zero-or-more repetitions, summing the results.
fun pmany p = fn input =>
  case p input of
    POk(a, rest) =>
      (case pmany p rest of
         POk(b, rest2) => POk(a + b, rest2)
       | PFail => POk(a, rest))
  | PFail => POk(0, input);

-- A tiny grammar over tokens (1 = '(', 2 = ')', digits are 10+d):
--   expr   := group | number
--   group  := '(' expr ')'
--   number := any token, value minus 10
fun number input = pmap (fn d => d - 10) anyTok input;
fun expr input =
  palt (fn i => group i) number input
and group input =
  pseq (tok 1) (fn i => pseq (fn j => expr j) (tok 2) (fn v => fn cls => v) i)
       (fn open_ => fn v => v)
       input;

fun runParser p = fn input =>
  case p input of POk(v, rest) => v | PFail => 0 - 1;

-- "(( 15 ))" as tokens: ( ( 15 ) )
val input1 = TCons(1, TCons(1, TCons(15, TCons(2, TCons(2, TNil)))));
val u1 = print (runParser (fn i => expr i) input1);   -- 5

-- "7 8 9" summed by pmany(number)
val input2 = TCons(17, TCons(18, TCons(19, TNil)));
val u2 = print (runParser (pmany (fn i => number i)) input2);  -- 24

runParser (fn i => expr i) input1 + runParser (pmany (fn i => number i)) input2
"#;

/// The parsed program.
pub fn program() -> Program {
    Program::parse(SOURCE).expect("combinator source parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_lambda::eval::{eval, EvalOptions, Value};
    use stcfa_types::TypedProgram;

    #[test]
    fn parses_and_typechecks() {
        let p = program();
        TypedProgram::infer(&p).expect("combinators are well-typed");
    }

    #[test]
    fn parses_the_sample_inputs() {
        let p = program();
        let out = eval(
            &p,
            EvalOptions {
                fuel: 10_000_000,
                inputs: vec![],
                max_depth: None,
            },
        )
        .unwrap();
        assert_eq!(out.outputs, vec![5, 24]);
        let Value::Int(v) = out.value else { panic!() };
        assert_eq!(v, 29);
    }

    #[test]
    fn higher_order_targets_resolve() {
        // The parser closures passed through pseq/palt/pmap must be found
        // at the combinators' internal call sites.
        let p = program();
        let a = stcfa_core::Analysis::run(&p).expect("bounded-type");
        let cfa = stcfa_cfa0::Cfa0::analyze(&p);
        let mut polymorphic_sites = 0;
        for app in p.app_sites() {
            let stcfa_lambda::ExprKind::App { func, .. } = p.kind(app) else {
                unreachable!()
            };
            let reference = cfa.labels(&p, *func);
            if reference.len() >= 2 {
                polymorphic_sites += 1;
            }
            let got = a.labels_of(*func);
            for l in reference {
                assert!(got.contains(&l), "missing {l:?} at {func:?}");
            }
        }
        assert!(
            polymorphic_sites >= 3,
            "combinator internals should have several polymorphic call sites, \
             found {polymorphic_sites}"
        );
    }

    #[test]
    fn dynamic_calls_are_predicted() {
        let p = program();
        let a = stcfa_core::Analysis::run(&p).unwrap();
        let out = eval(
            &p,
            EvalOptions {
                fuel: 10_000_000,
                inputs: vec![],
                max_depth: None,
            },
        )
        .unwrap();
        for (func_occ, label) in &out.trace.calls {
            assert!(
                a.labels_of(*func_occ).contains(label),
                "missed dynamic call of {label:?} at {func_occ:?}"
            );
        }
    }
}
