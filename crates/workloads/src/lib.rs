//! Workload generators for benchmarking and property-testing the
//! subtransitive CFA workspace.
//!
//! - [`cubic`] — the paper's parameterized worst-case family (Table 1);
//! - [`funlist`] — functions stored in recursive data structures (the
//!   Section 6 congruence stress case);
//! - [`join_point`] — the Section 2 join-point pattern behind the
//!   "observed non-linear behaviour" of standard CFA;
//! - [`synth`] — seeded random well-typed, terminating programs for
//!   differential and soundness property tests;
//! - [`modules`] — seeded multi-module source sets (concatenation-safe)
//!   for the session linker's differential tests and benches;
//! - [`life`] / [`lexgen`] — substitutes for the paper's two SML
//!   benchmarks (Table 2), with the substitution rationale documented in
//!   DESIGN.md.

#![warn(missing_docs)]

pub mod combinators;
pub mod cubic;
pub mod funlist;
pub mod henglein;
pub mod join_point;
pub mod lexgen;
pub mod life;
pub mod modules;
pub mod stdlib;
pub mod synth;
