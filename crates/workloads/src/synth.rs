//! Random well-typed bounded-type program generation.
//!
//! The generator is *type-directed*: it draws a goal type from a pool whose
//! depth is bounded by [`SynthConfig::max_type_depth`], then builds a term
//! of that type, so every generated program is simply typed — i.e. lies in
//! the paper's `P_k` class for a `k` controlled by the configuration — and
//! evaluates without dynamic type errors. Recursive functions follow a
//! structurally-decreasing counter pattern, so generated programs also
//! *terminate*, which the differential/soundness property tests rely on.

use stcfa_devkit::prng::Rng;
use stcfa_lambda::{ConId, ExprId, PrimOp, Program, ProgramBuilder, TyExpr, VarId};

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// RNG seed: same seed, same program.
    pub seed: u64,
    /// Approximate number of AST nodes to produce.
    pub target_size: usize,
    /// Bound on generated type depth (hence on the type-size constant `k`).
    pub max_type_depth: usize,
    /// Probability that an integer leaf is wrapped in a `print` effect.
    pub effect_prob: f64,
    /// Maximum record width (0 disables records).
    pub max_tuple_width: usize,
    /// Whether to declare and use a (non-recursive) datatype, exercising
    /// constructor/`case` flow. Non-recursive so that even the `Exact`
    /// datatype policy terminates, keeping the full differential-equality
    /// property applicable.
    pub datatypes: bool,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            seed: 0,
            target_size: 200,
            max_type_depth: 2,
            effect_prob: 0.1,
            max_tuple_width: 3,
            datatypes: true,
        }
    }
}

/// The small structural type universe of the generator.
#[derive(Clone, PartialEq, Eq, Debug)]
enum STy {
    Int,
    Bool,
    Arrow(Box<STy>, Box<STy>),
    Tuple(Vec<STy>),
    /// The generator's fixed datatype
    /// `datatype syn = S0 | S1 of int | S2 of (int -> int) * int`.
    Data,
}

/// Constructors of the generator's datatype, in declaration order.
#[derive(Clone, Copy)]
struct SynData {
    s0: ConId,
    s1: ConId,
    s2: ConId,
}

/// Generates a program from the configuration.
///
/// The program is a chain of top-level `let` bindings (so size scales
/// linearly with [`SynthConfig::target_size`]) whose right-hand sides are
/// depth-bounded random terms, followed by a final expression that can use
/// all of them.
pub fn generate(config: &SynthConfig) -> Program {
    let mut b = ProgramBuilder::new();
    let data = if config.datatypes {
        let d = b.declare_data("syn");
        let s0 = b.declare_con(d, "S0", vec![]);
        let s1 = b.declare_con(d, "S1", vec![TyExpr::Int]);
        let s2 = b.declare_con(
            d,
            "S2",
            vec![
                TyExpr::Arrow(Box::new(TyExpr::Int), Box::new(TyExpr::Int)),
                TyExpr::Int,
            ],
        );
        Some(SynData { s0, s1, s2 })
    } else {
        None
    };
    let mut g = Gen {
        rng: Rng::seed_from_u64(config.seed),
        b,
        env: Vec::new(),
        budget: config.target_size as isize,
        config: config.clone(),
        fresh: 0,
        data,
    };
    // Top-level binding chain.
    let mut bindings: Vec<(VarId, ExprId)> = Vec::new();
    while g.budget > 0 {
        let ty = g.random_type(g.config.max_type_depth);
        let rhs = g.expr(&ty, 5);
        let name = g.fresh_name("top");
        let binder = g.b.fresh_var(&name);
        g.env.push((binder, ty));
        bindings.push((binder, rhs));
    }
    let goal = g.random_type(g.config.max_type_depth);
    g.budget = 32; // allow the final expression a little room
    let mut body = g.expr(&goal, 5);
    for (binder, rhs) in bindings.into_iter().rev() {
        body = g.b.let_(binder, rhs, body);
    }
    g.b.finish(body).expect("generated program is well-formed")
}

struct Gen {
    rng: Rng,
    b: ProgramBuilder,
    env: Vec<(VarId, STy)>,
    budget: isize,
    config: SynthConfig,
    fresh: u32,
    data: Option<SynData>,
}

impl Gen {
    fn fresh_name(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!("{prefix}{}", self.fresh)
    }

    fn random_type(&mut self, depth: usize) -> STy {
        if depth == 0 {
            return match self.rng.gen_range(0..10) {
                0..=6 => STy::Int,
                7..=8 => STy::Bool,
                _ if self.data.is_some() => STy::Data,
                _ => STy::Int,
            };
        }
        match self.rng.gen_range(0..11) {
            0..=3 => STy::Int,
            4 => STy::Bool,
            5..=7 => {
                let a = self.random_type(depth - 1);
                let b = self.random_type(depth - 1);
                STy::Arrow(Box::new(a), Box::new(b))
            }
            8 if self.data.is_some() => STy::Data,
            _ if self.config.max_tuple_width >= 2 => {
                let w = self.rng.gen_range(2..=self.config.max_tuple_width);
                STy::Tuple((0..w).map(|_| self.random_type(depth - 1)).collect())
            }
            _ => STy::Int,
        }
    }

    /// Builds an expression of type `ty`; `depth` bounds term recursion.
    fn expr(&mut self, ty: &STy, depth: usize) -> ExprId {
        self.budget -= 1;
        if depth == 0 || self.budget <= 0 {
            return self.leaf(ty);
        }
        // Candidate productions, weighted.
        match self.rng.gen_range(0..13) {
            0 | 1 => self.leaf(ty),
            2 | 3 => self.lookup_env(ty).unwrap_or_else(|| self.leaf(ty)),
            4 | 5 => self.application(ty, depth),
            6 | 7 => self.let_binding(ty, depth),
            8 => self.conditional(ty, depth),
            9 => self.projection(ty, depth),
            10 => self.recursion(ty, depth),
            11 if self.data.is_some() => self.case_of_data(ty, depth),
            _ => match ty {
                STy::Arrow(a, b) => self.lambda(a, b, depth),
                STy::Tuple(parts) => self.tuple(parts.clone(), depth),
                _ => self.arith(ty, depth),
            },
        }
    }

    /// `case <data> of S0 => e | S1(n) => e | S2(f, k) => e [| _ => e]`.
    fn case_of_data(&mut self, ty: &STy, depth: usize) -> ExprId {
        let data = self.data.expect("guarded by caller");
        let scrutinee = self.expr(&STy::Data, depth - 1);
        let arm0 = (data.s0, Vec::new(), self.expr(ty, depth - 1));
        let n_name = self.fresh_name("n");
        let n = self.b.fresh_var(&n_name);
        self.env.push((n, STy::Int));
        let body1 = self.expr(ty, depth - 1);
        self.env.pop();
        let arm1 = (data.s1, vec![n], body1);
        let f_name = self.fresh_name("f");
        let f = self.b.fresh_var(&f_name);
        let k_name = self.fresh_name("k");
        let k = self.b.fresh_var(&k_name);
        self.env
            .push((f, STy::Arrow(Box::new(STy::Int), Box::new(STy::Int))));
        self.env.push((k, STy::Int));
        let body2 = self.expr(ty, depth - 1);
        self.env.pop();
        self.env.pop();
        let arm2 = (data.s2, vec![f, k], body2);
        self.b.case(scrutinee, vec![arm0, arm1, arm2], None)
    }

    fn leaf(&mut self, ty: &STy) -> ExprId {
        // Effects are injected before consulting the environment, so their
        // density stays proportional to program size even when most leaves
        // become variable references.
        if matches!(ty, STy::Int) && self.rng.gen_bool(self.config.effect_prob) {
            // let u = print v in v end
            let value = self.rng.gen_range(0..100);
            let v1 = self.b.int(value);
            let pr = self.b.prim(PrimOp::Print, vec![v1]);
            let name = self.fresh_name("u");
            let u = self.b.fresh_var(&name);
            let v2 = self.b.int(value);
            return self.b.let_(u, pr, v2);
        }
        if let Some(e) = self.lookup_env(ty) {
            return e;
        }
        match ty {
            STy::Int => {
                let value = self.rng.gen_range(0..100);
                self.b.int(value)
            }
            STy::Bool => {
                let v = self.rng.gen_bool(0.5);
                self.b.bool(v)
            }
            STy::Arrow(a, b) => {
                let (a, b) = (a.clone(), b.clone());
                self.lambda(&a, &b, 1)
            }
            STy::Tuple(parts) => self.tuple(parts.clone(), 1),
            STy::Data => {
                let data = self.data.expect("Data type only drawn when enabled");
                match self.rng.gen_range(0..3) {
                    0 => self.b.con(data.s0, vec![]),
                    1 => {
                        let n = self.expr(&STy::Int, 0);
                        self.b.con(data.s1, vec![n])
                    }
                    _ => {
                        let f = self.expr(&STy::Arrow(Box::new(STy::Int), Box::new(STy::Int)), 1);
                        let k = self.expr(&STy::Int, 0);
                        self.b.con(data.s2, vec![f, k])
                    }
                }
            }
        }
    }

    fn lookup_env(&mut self, ty: &STy) -> Option<ExprId> {
        let matches: Vec<VarId> = self
            .env
            .iter()
            .filter(|(_, t)| t == ty)
            .map(|(v, _)| *v)
            .collect();
        if matches.is_empty() {
            return None;
        }
        let pick = matches[self.rng.gen_range(0..matches.len())];
        Some(self.b.var(pick))
    }

    fn lambda(&mut self, a: &STy, b: &STy, depth: usize) -> ExprId {
        let name = self.fresh_name("x");
        let param = self.b.fresh_var(&name);
        self.env.push((param, a.clone()));
        let body = self.expr(b, depth.saturating_sub(1));
        self.env.pop();
        self.b.lam(param, body)
    }

    fn tuple(&mut self, parts: Vec<STy>, depth: usize) -> ExprId {
        let items: Vec<ExprId> = parts
            .iter()
            .map(|p| self.expr(p, depth.saturating_sub(1)))
            .collect();
        self.b.record(items)
    }

    fn application(&mut self, ty: &STy, depth: usize) -> ExprId {
        let arg_ty = self.random_type(self.config.max_type_depth.saturating_sub(1));
        let fun_ty = STy::Arrow(Box::new(arg_ty.clone()), Box::new(ty.clone()));
        let f = self.expr(&fun_ty, depth - 1);
        let a = self.expr(&arg_ty, depth - 1);
        self.b.app(f, a)
    }

    fn let_binding(&mut self, ty: &STy, depth: usize) -> ExprId {
        let bound_ty = self.random_type(self.config.max_type_depth);
        let rhs = self.expr(&bound_ty, depth - 1);
        let name = self.fresh_name("v");
        let binder = self.b.fresh_var(&name);
        self.env.push((binder, bound_ty));
        let body = self.expr(ty, depth - 1);
        self.env.pop();
        self.b.let_(binder, rhs, body)
    }

    fn conditional(&mut self, ty: &STy, depth: usize) -> ExprId {
        let c = self.expr(&STy::Bool, depth - 1);
        let t = self.expr(ty, depth - 1);
        let e = self.expr(ty, depth - 1);
        self.b.if_(c, t, e)
    }

    fn projection(&mut self, ty: &STy, depth: usize) -> ExprId {
        if self.config.max_tuple_width < 2 {
            return self.leaf(ty);
        }
        // Build a tuple with `ty` at a known position, then project it.
        let width = self.rng.gen_range(2..=self.config.max_tuple_width);
        let slot = self.rng.gen_range(0..width);
        let parts: Vec<STy> = (0..width)
            .map(|i| {
                if i == slot {
                    ty.clone()
                } else {
                    self.random_type(0)
                }
            })
            .collect();
        let tup = self.tuple(parts, depth - 1);
        self.b.proj(slot as u32, tup)
    }

    /// `letrec f = fn n => if n = 0 then base else f (n - 1) in f k` — a
    /// structurally terminating recursion returning `ty`.
    fn recursion(&mut self, ty: &STy, depth: usize) -> ExprId {
        let fname = self.fresh_name("rec");
        let f = self.b.fresh_var(&fname);
        let nname = self.fresh_name("n");
        let n = self.b.fresh_var(&nname);

        // Only `n` joins the general environment: if `f` did, random call
        // sites could apply it to large computed integers and blow the
        // (unbounded-stack) recursion depth.
        self.env.push((n, STy::Int));
        let nv = self.b.var(n);
        let zero = self.b.int(0);
        let cond = self.b.prim(PrimOp::IntEq, vec![nv, zero]);
        let base = self.expr(ty, depth.saturating_sub(1));
        let fv = self.b.var(f);
        let nv2 = self.b.var(n);
        let one = self.b.int(1);
        let dec = self.b.prim(PrimOp::Sub, vec![nv2, one]);
        let call = self.b.app(fv, dec);
        let body = self.b.if_(cond, base, call);
        self.env.pop(); // n
        let lam = self.b.lam(n, body);

        // letrec f = lam in f k
        let fv2 = self.b.var(f);
        let k = self.rng.gen_range(0..5);
        let kv = self.b.int(k);
        let use_site = self.b.app(fv2, kv);
        self.b.letrec(f, lam, use_site)
    }

    fn arith(&mut self, ty: &STy, depth: usize) -> ExprId {
        match ty {
            STy::Int => {
                let a = self.expr(&STy::Int, depth - 1);
                let b = self.expr(&STy::Int, depth - 1);
                let op = [PrimOp::Add, PrimOp::Sub, PrimOp::Mul][self.rng.gen_range(0..3usize)];
                self.b.prim(op, vec![a, b])
            }
            STy::Bool => {
                let a = self.expr(&STy::Int, depth - 1);
                let b = self.expr(&STy::Int, depth - 1);
                let op = [PrimOp::Lt, PrimOp::Leq, PrimOp::IntEq][self.rng.gen_range(0..3usize)];
                self.b.prim(op, vec![a, b])
            }
            other => self.leaf(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_lambda::eval::{eval, EvalOptions};
    use stcfa_types::TypedProgram;

    #[test]
    fn generated_programs_are_well_typed() {
        for seed in 0..30 {
            let p = generate(&SynthConfig {
                seed,
                ..Default::default()
            });
            TypedProgram::infer(&p)
                .unwrap_or_else(|e| panic!("seed {seed} generated ill-typed program: {e}"));
        }
    }

    #[test]
    fn generated_programs_terminate() {
        for seed in 0..30 {
            let p = generate(&SynthConfig {
                seed,
                ..Default::default()
            });
            eval(
                &p,
                EvalOptions {
                    fuel: 1_000_000,
                    inputs: vec![],
                    max_depth: None,
                },
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn determinism() {
        let cfg = SynthConfig {
            seed: 42,
            ..Default::default()
        };
        let a = generate(&cfg).to_source();
        let b = generate(&cfg).to_source();
        assert_eq!(a, b);
    }

    #[test]
    fn size_scales_with_target() {
        let small = generate(&SynthConfig {
            seed: 7,
            target_size: 100,
            ..Default::default()
        });
        let large = generate(&SynthConfig {
            seed: 7,
            target_size: 2000,
            ..Default::default()
        });
        assert!(large.size() > small.size());
    }
}
