//! The paper's Section 5 footnote family: programs whose *polytypes* stay
//! small (Henglein-bounded) while the monotypes of their let-expansion
//! grow exponentially (McAllester-unbounded).
//!
//! > "Consider the program consisting of n functions where the first
//! > function f0 is just the identity function, and f_{i+1} is defined to
//! > be λx.(f_i f_i) x. This program has bounded type using Henglein's
//! > definition, but the monotypes in the let-expansion of the program
//! > have exponential tree size."
//!
//! Every `fᵢ` has the scheme `∀a. a → a` (size 3), but expanding the
//! self-application `fᵢ fᵢ` instantiates the inner `fᵢ` at `(a→a)→(a→a)`,
//! doubling per level. This family is why the paper adopts McAllester's
//! definition for its complexity bound.
//!
//! **Reproduction finding.** On the *unexpanded* program, the literal LC′
//! rules do not terminate for `n ≥ 2`: both occurrences in `fᵢ fᵢ` are the
//! same variable node, so APP-1 adds the self-edge `dom(fᵢ) → fᵢ`, and the
//! demand-driven closure then ratchets `dom`/`ran` towers upward without
//! bound (each conclusion edge is itself the demand enabling the next
//! level). The paper's Section 5 termination argument maps constructed
//! nodes to positions in the let-expansion's type trees — which requires
//! the two occurrences to be *distinguished*, exactly what let-expansion
//! (or polyvariance) does. The tests below pin all three behaviours: the
//! node budget catches the divergence, the hybrid driver still answers,
//! and analyzing the explicitly let-expanded program terminates.

use stcfa_lambda::Program;

/// The size-`n` family: `f0 = id`, `f_{i+1} = λx.(f_i f_i) x`, ending in
/// `f_n 0`.
pub fn source(n: usize) -> String {
    let mut s = String::from("fun f0 x = x;\n");
    for i in 0..n {
        s.push_str(&format!("fun f{} x = (f{i} f{i}) x;\n", i + 1));
    }
    s.push_str(&format!("f{n} 0"));
    s
}

/// The parsed size-`n` program.
pub fn program(n: usize) -> Program {
    Program::parse(&source(n)).expect("generated henglein family parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_types::{TypeMetrics, TypedProgram};

    #[test]
    fn every_member_is_well_typed_with_small_schemes() {
        for n in [1usize, 3, 5] {
            let p = program(n);
            let typed = TypedProgram::infer(&p).unwrap();
            // Each fᵢ's recorded (generalized) type is a → a: size 3.
            for v in p.vars().filter(|v| p.var_name(*v).starts_with('f')) {
                assert_eq!(
                    typed.binder_ty(v).size(),
                    3,
                    "Henglein-small scheme for {}",
                    p.var_name(v)
                );
            }
        }
    }

    #[test]
    fn direct_occurrence_monotypes_stay_small() {
        // Without expansion, the per-occurrence instantiations are one
        // level deep: fᵢ's uses sit at (a→a)→(a→a), size 7, for every i —
        // the Henglein view under which the family looks bounded.
        for n in [2usize, 4, 6] {
            let p = program(n);
            let typed = TypedProgram::infer(&p).unwrap();
            let m = TypeMetrics::compute(&p, &typed);
            assert_eq!(m.max_size, 7, "n={n}");
        }
    }

    #[test]
    fn base_case_terminates() {
        let p = program(1);
        let a = stcfa_core::Analysis::run(&p).unwrap();
        let cfa = stcfa_cfa0::Cfa0::analyze(&p);
        for e in p.exprs() {
            assert_eq!(a.labels_of(e), cfa.labels(&p, e), "at {e:?}");
        }
    }

    #[test]
    fn monovariant_closure_diverges_for_n_at_least_2() {
        // The reproduction finding documented in the module docs: the
        // self-application's shared variable node makes the literal LC′
        // closure ratchet unboundedly; the budget reports it.
        let p = program(2);
        let r = stcfa_core::Analysis::run_with(
            &p,
            stcfa_core::AnalysisOptions {
                max_nodes: Some(200_000),
                ..Default::default()
            },
        );
        assert!(matches!(
            r,
            Err(stcfa_core::AnalysisError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn papers_own_section5_example_also_diverges() {
        // "fun id x = x; val y = ((id id) id) 1" — the example the paper
        // uses to introduce induced monotypes — contains the same
        // polymorphic self-application and also defeats the monovariant
        // closure; the hybrid driver answers via the cubic engine.
        let p = Program::parse("fun id x = x; val y = ((id id) id) 1; y").unwrap();
        let r = stcfa_core::Analysis::run_with(
            &p,
            stcfa_core::AnalysisOptions {
                max_nodes: Some(100_000),
                ..Default::default()
            },
        );
        assert!(matches!(
            r,
            Err(stcfa_core::AnalysisError::BudgetExceeded { .. })
        ));
        let h = stcfa_core::hybrid::HybridCfa::run(&p, Default::default());
        assert!(!h.is_linear());
        let cfa = stcfa_cfa0::Cfa0::analyze(&p);
        for e in p.exprs() {
            assert_eq!(h.labels_of(&p, e), cfa.labels(&p, e));
        }
    }

    #[test]
    fn hybrid_still_answers_exactly() {
        let p = program(2);
        let h = stcfa_core::hybrid::HybridCfa::run(&p, Default::default());
        assert!(!h.is_linear(), "falls back to the cubic engine");
        let cfa = stcfa_cfa0::Cfa0::analyze(&p);
        for e in p.exprs() {
            assert_eq!(h.labels_of(&p, e), cfa.labels(&p, e));
        }
    }

    #[test]
    fn let_expansion_restores_termination() {
        // Distinguishing the occurrences (as the Section 5 argument
        // presupposes) breaks the self-edge: the expanded program analyzes
        // fine, with node counts tracking the (exponential-in-n but
        // finite) expanded type positions.
        use stcfa_core::expand::{expandable_binders, let_expand};
        for n in [2usize, 3] {
            let mut p = program(n);
            for _ in 0..=n {
                let targets = expandable_binders(&p, 2);
                if targets.is_empty() {
                    break;
                }
                p = let_expand(&p, &targets).program;
            }
            let a = stcfa_core::Analysis::run_with(
                &p,
                stcfa_core::AnalysisOptions {
                    max_nodes: Some(1_000_000),
                    ..Default::default()
                },
            )
            .expect("expanded program is bounded");
            assert!(a.node_count() < 1000, "n={n}: {}", a.node_count());
        }
    }

    #[test]
    fn expanded_monotypes_grow_exponentially() {
        // The McAllester view: after expansion the deepest instantiation
        // roughly doubles per level — the footnote's exponential tree size.
        use stcfa_core::expand::{expandable_binders, let_expand};
        let deepest = |n: usize| {
            let mut p = program(n);
            for _ in 0..=n {
                let targets = expandable_binders(&p, 2);
                if targets.is_empty() {
                    break;
                }
                p = let_expand(&p, &targets).program;
            }
            let typed = TypedProgram::infer(&p).unwrap();
            TypeMetrics::compute(&p, &typed).max_size
        };
        let (d2, d3, d4) = (deepest(2), deepest(3), deepest(4));
        assert!(d3 > d2);
        assert!(d4 > d3);
        assert!(d4 >= 2 * d3 - 8, "expected ~doubling: {d2}, {d3}, {d4}");
    }
}
