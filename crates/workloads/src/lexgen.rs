//! The `lexgen` benchmark substitute (paper, Section 10, Table 2).
//!
//! The paper benchmarks the 1180-line SML/NJ lexer generator. As with
//! `life`, we do not have that source, so this module *generates* a
//! program with the same analysis-relevant shape: a table-driven DFA whose
//! per-state transition functions are machine-generated `if`-chains (as a
//! lexer generator's output is), semantic-action *closures stored in a
//! recursive datatype* and selected by token class at runtime (the pattern
//! that makes lexgen-style code interesting for CFA — functions flow
//! through data structures), and a driver loop over an embedded input.
//! The `states` parameter scales the program; [`DEFAULT_STATES`] yields
//! roughly the original's 1200 lines.

use stcfa_lambda::Program;

/// State count giving a program of about the paper's lexgen size.
pub const DEFAULT_STATES: usize = 110;

/// Generates the lexer program with `states` DFA states (minimum 4).
pub fn source(states: usize) -> String {
    let states = states.max(4);
    let mut s = String::with_capacity(states * 220);
    s.push_str(
        "-- Machine-generated table-driven lexer (lexgen substitute).\n\
         datatype toks = TNil | TCons of int * toks;\n\
         datatype acts = ANil | ACons of (int -> int) * acts;\n\
         datatype ints = INil | ICons of int * ints;\n\n",
    );

    // Per-state transition functions: state i maps a character class to a
    // next state via an if-chain. Deterministic pseudo-random targets.
    for i in 0..states {
        let t1 = (i * 7 + 3) % states;
        let t2 = (i * 13 + 5) % states;
        let t3 = (i * 31 + 11) % states;
        let t4 = (i + 1) % states;
        s.push_str(&format!(
            "fun state{i} c =\n  \
             if c = 0 then 0 - 1\n  \
             else if c < 32 then {t1}\n  \
             else if c < 64 then {t2}\n  \
             else if c < 96 then {t3}\n  \
             else {t4};\n",
        ));
    }

    // The transition table as a dispatch function: a balanced decision
    // tree over state numbers (what a lexer generator emits without
    // arrays; balanced so evaluation depth is logarithmic).
    fn dispatch(s: &mut String, lo: usize, hi: usize, indent: usize) {
        let pad = "  ".repeat(indent);
        if lo == hi {
            s.push_str(&format!("{pad}state{lo} c\n"));
            return;
        }
        let mid = (lo + hi) / 2;
        s.push_str(&format!("{pad}if s <= {mid}\n{pad}then\n"));
        dispatch(s, lo, mid, indent + 1);
        s.push_str(&format!("{pad}else\n"));
        dispatch(s, mid + 1, hi, indent + 1);
    }
    s.push_str("\nfun trans s = fn c =>\n");
    dispatch(&mut s, 0, states - 1, 1);
    s.push_str(";\n");

    // Which states accept: every third state.
    s.push_str("\nfun accepts s = s - (s div 3) * 3 = 0;\n");

    // One semantic-action closure per state (as a lexer generator emits),
    // all stored in one action list: a genuine higher-order join point.
    for i in 0..states {
        let k = (i * 5 + 1) % 17 + 1;
        s.push_str(&format!("fun act{i} v = v + {k} * v div {};\n", i + 1));
    }
    // Token class = the accepting state (one class per state, so each
    // token can select its own semantic action).
    s.push_str("\nfun tokclass s = s;\n");

    // Semantic actions: closures stored in a datatype, selected by class.
    s.push_str(
        "\n-- Semantic actions as closures in a list (functions through data).\n\
         fun nthAct xs = fn i =>\n  \
           case xs of\n    \
             ACons(f, t) => (if i = 0 then f else nthAct t (i - 1))\n  \
           | ANil => (fn z => z);\n\
         val actions =\n  ",
    );
    for i in 0..states {
        s.push_str(&format!("ACons(act{i},\n  "));
    }
    s.push_str("ANil");
    s.push_str(&")".repeat(states));
    s.push_str(";\n");

    // The driver: run the DFA over an input list, emitting token classes.
    s.push_str(
        "\nfun lex input = fn s =>\n  \
           case input of\n    \
             ICons(c, rest) =>\n      \
               (let val ns = trans s c in\n        \
                 if ns < 0\n        \
                 then (if accepts s then TCons(tokclass s, lex rest 0) else lex rest 0)\n        \
                 else lex rest ns\n       end)\n  \
           | INil => (if accepts s then TCons(tokclass s, TNil) else TNil);\n\
         \n\
         fun countToks ts = case ts of TCons(h, t) => 1 + countToks t | TNil => 0;\n\
         \n\
         fun sumActions ts = fn acc =>\n  \
           case ts of\n    \
             TCons(h, t) => sumActions t (nthAct actions h acc)\n  \
           | TNil => acc;\n",
    );

    // Embedded input: a deterministic pseudo-random character stream with
    // interspersed zeros (token boundaries).
    s.push_str("\nval input =\n  ");
    let chars: Vec<usize> = (0..96)
        .map(|i| if i % 7 == 6 { 0 } else { (i * 37 + 11) % 128 })
        .collect();
    for c in &chars {
        s.push_str(&format!("ICons({c}, "));
    }
    s.push_str("INil");
    s.push_str(&")".repeat(chars.len()));
    s.push_str(";\n");

    s.push_str(
        "\nval toks = lex input 0;\n\
         val n = countToks toks;\n\
         val u1 = print n;\n\
         val total = sumActions toks 100;\n\
         val u2 = print total;\n\
         total\n",
    );
    s
}

/// The parsed default-size program.
pub fn program() -> Program {
    Program::parse(&source(DEFAULT_STATES)).expect("generated lexgen parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_lambda::eval::{eval, EvalOptions, Value};
    use stcfa_types::TypedProgram;

    #[test]
    fn parses_and_typechecks() {
        // Parsing and inference both recurse over the deep let-chain; like
        // the evaluator test below, debug builds need a roomy stack.
        std::thread::Builder::new()
            .stack_size(256 << 20)
            .spawn(|| {
                let p = program();
                assert!(p.size() > 2000, "lexgen should be large, got {}", p.size());
                TypedProgram::infer(&p).expect("lexgen is well-typed");
            })
            .unwrap()
            .join()
            .unwrap();
    }

    #[test]
    fn line_count_is_in_the_papers_ballpark() {
        let lines = source(DEFAULT_STATES).lines().count();
        assert!(
            (700..2000).contains(&lines),
            "expected ≈1200 lines like the paper's lexgen, got {lines}"
        );
    }

    #[test]
    fn evaluates_and_produces_tokens() {
        // The recursive evaluator needs a roomy stack for a program this
        // deep in debug builds.
        std::thread::Builder::new()
            .stack_size(256 << 20)
            .spawn(|| {
                let p = program();
                let out = eval(
                    &p,
                    EvalOptions {
                        fuel: 10_000_000,
                        inputs: vec![],
                        max_depth: None,
                    },
                )
                .unwrap();
                let Value::Int(total) = out.value else {
                    panic!("expected int")
                };
                assert_eq!(out.outputs.len(), 2);
                assert!(out.outputs[0] >= 0, "token count printed");
                let _ = total;
            })
            .unwrap()
            .join()
            .unwrap();
    }

    #[test]
    fn scales_with_state_count() {
        let small = Program::parse(&source(10)).unwrap();
        let large = Program::parse(&source(40)).unwrap();
        assert!(large.size() > 2 * small.size());
    }

    #[test]
    fn subtransitive_analysis_handles_lexgen() {
        let p = Program::parse(&source(24)).unwrap();
        let a = stcfa_core::Analysis::run(&p).expect("bounded-type program");
        // Functions stored in `actions` must be discoverable at the
        // indirect call inside sumActions.
        let apps = p.app_sites();
        assert!(!apps.is_empty());
        assert!(a.stats().close_nodes > 0);
    }
}
