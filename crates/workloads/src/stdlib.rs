//! A "standard library" workload: a realistic, feature-complete ML program
//! (list combinators, options, an arithmetic-expression interpreter,
//! Church numerals) used as a broad-coverage corpus for differential tests
//! and as a mid-size benchmark input.

use stcfa_lambda::Program;

/// The program source.
pub const SOURCE: &str = r#"
-- ---------- integer lists ----------
datatype ilist = INil | ICons of int * ilist;

fun map f = fn xs =>
  case xs of ICons(h, t) => ICons(f h, map f t) | INil => INil;

fun filter p = fn xs =>
  case xs of
    ICons(h, t) => (if p h then ICons(h, filter p t) else filter p t)
  | INil => INil;

fun foldl f = fn z => fn xs =>
  case xs of ICons(h, t) => foldl f (f z h) t | INil => z;

fun foldr f = fn z => fn xs =>
  case xs of ICons(h, t) => f h (foldr f z t) | INil => z;

fun append xs = fn ys =>
  case xs of ICons(h, t) => ICons(h, append t ys) | INil => ys;

fun reverse xs = foldl (fn acc => fn h => ICons(h, acc)) INil xs;

fun length xs = foldl (fn n => fn h => n + 1) 0 xs;

fun member x = fn xs =>
  case xs of
    ICons(h, t) => (if h = x then true else member x t)
  | INil => false;

fun insert x = fn xs =>
  case xs of
    ICons(h, t) => (if x <= h then ICons(x, ICons(h, t)) else ICons(h, insert x t))
  | INil => ICons(x, INil);

fun sort xs = foldl (fn acc => fn h => insert h acc) INil xs;

fun upto a = fn b => if b < a then INil else ICons(a, upto (a + 1) b);

fun sum xs = foldl (fn x => fn y => x + y) 0 xs;

-- ---------- options ----------
datatype iopt = None | Some of int;

fun getOr d = fn o => case o of Some(v) => v | None => d;

fun find p = fn xs =>
  case xs of
    ICons(h, t) => (if p h then Some(h) else find p t)
  | INil => None;

-- ---------- an arithmetic-expression interpreter ----------
datatype aexp =
    Num of int
  | Add2 of aexp * aexp
  | Mul2 of aexp * aexp
  | Neg of aexp;

fun aeval e =
  case e of
    Num(n) => n
  | Add2(a, b) => aeval a + aeval b
  | Mul2(a, b) => aeval a * aeval b
  | Neg(a) => 0 - aeval a;

fun asize e =
  case e of
    Num(n) => 1
  | Add2(a, b) => 1 + asize a + asize b
  | Mul2(a, b) => 1 + asize a + asize b
  | Neg(a) => 1 + asize a;

-- constant folding: an optimization pass inside the workload
fun afold e =
  case e of
    Add2(a, b) =>
      (let val fa = afold a  val fb = afold b in
        case fa of
          Num(x) => (case fb of Num(y) => Num(x + y) | _ => Add2(fa, fb))
        | _ => Add2(fa, fb)
      end)
  | Mul2(a, b) =>
      (let val fa = afold a  val fb = afold b in
        case fa of
          Num(x) => (case fb of Num(y) => Num(x * y) | _ => Mul2(fa, fb))
        | _ => Mul2(fa, fb)
      end)
  | Neg(a) =>
      (let val fa = afold a in
        case fa of Num(x) => Num(0 - x) | _ => Neg(fa)
      end)
  | _ => e;

-- ---------- Church numerals (higher-order stress) ----------
fun church n = fn f => fn x => if n = 0 then x else church (n - 1) f (f x);
fun unchurch c = c (fn k => k + 1) 0;
fun cadd a = fn b => fn f => fn x => a f (b f x);
fun cmul a = fn b => fn f => a (b f);

-- ---------- driver ----------
val nums = upto 1 10;
val evens = filter (fn n => n - (n div 2) * 2 = 0) nums;
val doubled = map (fn n => n * 2) evens;
val total = sum doubled;
val u1 = print total;

val sorted = sort (ICons(3, ICons(1, ICons(2, INil))));
val u2 = print (length sorted);
val u3 = print (getOr 0 (find (fn n => 2 < n) sorted));

val expr = Add2(Mul2(Num(3), Num(4)), Neg(Num(2)));
val u4 = print (aeval expr);
val u5 = print (aeval (afold expr));
val u6 = print (asize (afold expr));

val three = church 3;
val four = church 4;
val u7 = print (unchurch (cadd three four));
val u8 = print (unchurch (cmul three four));

total + aeval expr
"#;

/// The parsed program.
pub fn program() -> Program {
    Program::parse(SOURCE).expect("stdlib source parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_lambda::eval::{eval, EvalOptions, Value};
    use stcfa_types::TypedProgram;

    #[test]
    fn parses_and_typechecks() {
        let p = program();
        assert!(p.size() > 450, "got {}", p.size());
        TypedProgram::infer(&p).expect("stdlib is well-typed");
    }

    #[test]
    fn computes_the_expected_answers() {
        let p = program();
        let out = eval(
            &p,
            EvalOptions {
                fuel: 10_000_000,
                inputs: vec![],
                max_depth: None,
            },
        )
        .unwrap();
        // evens of 1..10 = [2,4,6,8,10]; doubled sums to 60.
        // sorted list has 3 elements; first >2 in sorted [1,2,3] is 3.
        // 3*4 + (−2) = 10; folded agrees; folded size is 1.
        // church: 3+4=7, 3*4=12.
        assert_eq!(out.outputs, vec![60, 3, 3, 10, 10, 1, 7, 12]);
        let Value::Int(v) = out.value else { panic!() };
        assert_eq!(v, 70);
    }

    #[test]
    fn subtransitive_matches_cubic_at_call_sites() {
        let p = program();
        let a = stcfa_core::Analysis::run(&p).expect("bounded-type");
        let cfa = stcfa_cfa0::Cfa0::analyze(&p);
        for app in p.app_sites() {
            let stcfa_lambda::ExprKind::App { func, .. } = p.kind(app) else {
                unreachable!()
            };
            let got = a.labels_of(*func);
            for l in cfa.labels(&p, *func) {
                assert!(got.contains(&l), "missing {l:?} at {func:?}");
            }
        }
    }

    #[test]
    fn nesting_levels_are_flat() {
        // All three datatypes only mention themselves: max level 0.
        let p = program();
        assert_eq!(p.data_env().max_nesting_level(), 0);
    }
}
