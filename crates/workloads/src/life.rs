//! The `life` benchmark substitute (paper, Section 10, Table 2).
//!
//! The paper benchmarks the 150-line SML/NJ `life` program. We do not have
//! that 1997 source (and our front end is a core-ML subset), so this is a
//! functionally equivalent stand-in of comparable size and — more
//! importantly — the same analysis-relevant structure: a Game of Life over
//! a list-based board written with higher-order combinators
//! (`filterCells`, `anyCell`, `forEach`) so that functions flow through
//! call sites, closures and recursive datatypes exactly as in the
//! original. See DESIGN.md ("Substitutions").

use stcfa_lambda::Program;

/// The program source.
pub const SOURCE: &str = r#"
-- Game of Life over a list of live cells, with higher-order combinators.
-- Cells are a datatype (not a bare pair) so that coordinate access sites
-- have determined types under plain Hindley-Milner inference.
datatype cell = Cell of int * int;
datatype cells = CNil | CCons of cell * cells;

fun cellX c = case c of Cell(x, y) => x;
fun cellY c = case c of Cell(x, y) => y;

fun cellEq a = fn b =>
  if cellX a = cellX b then cellY a = cellY b else false;

fun append xs = fn ys =>
  case xs of CCons(h, t) => CCons(h, append t ys) | CNil => ys;

fun length xs =
  case xs of CCons(h, t) => 1 + length t | CNil => 0;

fun member c = fn xs =>
  case xs of
    CCons(h, t) => (if cellEq c h then true else member c t)
  | CNil => false;

-- Higher-order: keep the cells satisfying p.
fun filterCells p = fn xs =>
  case xs of
    CCons(h, t) => (if p h then CCons(h, filterCells p t) else filterCells p t)
  | CNil => CNil;

-- Higher-order: does any cell satisfy p?
fun anyCell p = fn xs =>
  case xs of
    CCons(h, t) => (if p h then true else anyCell p t)
  | CNil => false;

-- Higher-order: map a cell transformer over the board.
fun mapCells f = fn xs =>
  case xs of CCons(h, t) => CCons(f h, mapCells f t) | CNil => CNil;

-- Higher-order: fold the board into an integer.
fun foldCells f = fn z => fn xs =>
  case xs of CCons(h, t) => foldCells f (f z h) t | CNil => z;

fun dedup xs =
  case xs of
    CCons(h, t) => (if member h t then dedup t else CCons(h, dedup t))
  | CNil => CNil;

-- The eight neighbours of a cell.
fun neighbours c =
  let val x = cellX c  val y = cellY c in
    CCons(Cell(x - 1, y - 1), CCons(Cell(x, y - 1), CCons(Cell(x + 1, y - 1),
    CCons(Cell(x - 1, y),                           CCons(Cell(x + 1, y),
    CCons(Cell(x - 1, y + 1), CCons(Cell(x, y + 1), CCons(Cell(x + 1, y + 1),
    CNil))))))))
  end;

fun flatNeighbours xs =
  case xs of
    CCons(h, t) => append (neighbours h) (flatNeighbours t)
  | CNil => CNil;

fun liveNeighbourCount board = fn c =>
  length (filterCells (fn n => member n board) (neighbours c));

-- Conway's rule as a closure over the current board.
fun survives board = fn c =>
  let val n = liveNeighbourCount board c in
    if member c board
    then (if n = 2 then true else n = 3)
    else n = 3
  end;

fun step board =
  let
    val candidates = dedup (append board (flatNeighbours board))
  in
    filterCells (survives board) candidates
  end;

fun generations n = fn board =>
  if n = 0 then board else generations (n - 1) (step board);

-- Population statistics via the fold combinator.
fun population board = foldCells (fn z => fn c => z + 1) 0 board;

fun sumXs board = foldCells (fn z => fn c => z + cellX c) 0 board;

-- Print each cell's x coordinate (effects flow through combinators).
fun forEach f = fn xs =>
  case xs of
    CCons(h, t) => let val u = f h in forEach f t end
  | CNil => ();

-- A glider on an unbounded board.
val glider =
  CCons(Cell(1, 0), CCons(Cell(2, 1), CCons(Cell(0, 2), CCons(Cell(1, 2),
  CCons(Cell(2, 2), CNil)))));

val after = generations 4 glider;
val u1 = print (population after);
val u2 = print (sumXs after);
val u3 = forEach (fn c => print (cellY c)) after;
population after
"#;

/// The parsed program.
///
/// # Panics
///
/// Never panics: the embedded source is checked by this crate's tests.
pub fn program() -> Program {
    Program::parse(SOURCE).expect("life source parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_lambda::eval::{eval, EvalOptions, Value};
    use stcfa_types::TypedProgram;

    #[test]
    fn parses_and_typechecks() {
        let p = program();
        assert!(
            p.size() > 300,
            "life should be a sizable program, got {}",
            p.size()
        );
        TypedProgram::infer(&p).expect("life is well-typed");
    }

    #[test]
    fn glider_is_preserved_after_four_generations() {
        // A glider translates by (1, 1) every 4 generations: population
        // stays 5.
        let p = program();
        let out = eval(
            &p,
            EvalOptions {
                fuel: 10_000_000,
                inputs: vec![],
                max_depth: None,
            },
        )
        .unwrap();
        match out.value {
            Value::Int(pop) => assert_eq!(pop, 5, "glider population"),
            other => panic!("expected population count, got {other:?}"),
        }
        assert_eq!(out.outputs[0], 5, "printed population");
    }

    #[test]
    fn analyses_run_on_life() {
        let p = program();
        let a = stcfa_core::Analysis::run(&p).expect("subtransitive analysis terminates");
        // Higher-order combinators must see multiple callees.
        let stats = a.stats();
        assert!(stats.build_nodes > 0 && stats.close_nodes > 0);
        let cfa = stcfa_cfa0::Cfa0::analyze(&p);
        // Spot-check soundness at every application operator.
        for app in p.app_sites() {
            let stcfa_lambda::ExprKind::App { func, .. } = p.kind(app) else {
                unreachable!()
            };
            let sub = a.labels_of(*func);
            for l in cfa.labels(&p, *func) {
                assert!(sub.contains(&l), "missing {l:?} at {func:?}");
            }
        }
    }
}
