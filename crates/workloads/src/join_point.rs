//! The join-point program family from the paper's Section 2:
//!
//! ```text
//! fun f x = ...
//! ... (f x1) ...
//! ... (f x2) ...
//! ```
//!
//! "Since the number of calls to function f can linearly increase with
//! program size, the information collected for x can grow linearly — in
//! effect, x acts like a join point … if x is returned then all of the
//! information joined by x can flow back to the call sites." This family
//! is the paper's explanation for why the standard algorithm is observed
//! to be *non-linear* (if rarely cubic) in practice.

use stcfa_lambda::Program;

/// A program where one shared identity function is called with `calls`
/// distinct abstractions, and every result is used.
pub fn source(calls: usize) -> String {
    let mut s = String::from("fun f x = x;\n");
    for i in 1..=calls {
        s.push_str(&format!("val r{i} = f (fn a{i} => a{i});\n"));
    }
    // Apply each returned function once so the joined flow is consumed.
    for i in 1..=calls {
        s.push_str(&format!("val u{i} = r{i} 0;\n"));
    }
    s.push('0');
    s
}

/// The parsed join-point program.
pub fn program(calls: usize) -> Program {
    Program::parse(&source(calls)).expect("generated join-point program parses")
}

/// The join-point family with side effects inside the joined functions —
/// the Section 8 stress case: deciding which applications are effectful
/// requires control-flow information at every one of the `calls` sites,
/// and the standard pipeline's label sets there grow linearly.
pub fn source_with_effects(calls: usize) -> String {
    let mut s = String::from("fun f x = x;\n");
    for i in 1..=calls {
        // Odd-numbered functions print; even ones are pure.
        if i % 2 == 1 {
            s.push_str(&format!(
                "val r{i} = f (fn a{i} => let val w{i} = print a{i} in a{i} end);\n"
            ));
        } else {
            s.push_str(&format!("val r{i} = f (fn a{i} => a{i} + {i});\n"));
        }
    }
    for i in 1..=calls {
        s.push_str(&format!("val u{i} = r{i} 0;\n"));
    }
    s.push('0');
    s
}

/// The parsed effectful join-point program.
pub fn program_with_effects(calls: usize) -> Program {
    Program::parse(&source_with_effects(calls)).expect("generated program parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_cfa0::Cfa0;
    use stcfa_core::Analysis;

    #[test]
    fn join_point_collects_all_arguments() {
        let p = program(5);
        let a = Analysis::run(&p).unwrap();
        let cfa = Cfa0::analyze(&p);
        // x (f's parameter) joins all five argument abstractions.
        let x = p.vars().find(|&v| p.var_name(v) == "x").unwrap();
        assert_eq!(a.labels_of_binder(x).len(), 5);
        assert_eq!(cfa.var_labels(&p, x).len(), 5);
    }

    #[test]
    fn subtransitive_graph_stays_linear_on_join_points() {
        let small = Analysis::run(&program(8)).unwrap();
        let large = Analysis::run(&program(32)).unwrap();
        let e1 = small.edge_count() as f64;
        let e2 = large.edge_count() as f64;
        // Edges grow ~4x for 4x the size (linear), not ~16x (quadratic).
        assert!(
            e2 / e1 < 8.0,
            "edge growth {e2}/{e1} = {} should be roughly linear",
            e2 / e1
        );
    }
}
