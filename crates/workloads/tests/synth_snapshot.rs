//! Snapshot of the synthetic corpus: content digests of
//! `synth::generate` output for fixed seeds.
//!
//! The soundness and differential property suites all consume this
//! generator, so its output is part of the testing substrate's interface.
//! Any edit to the devkit PRNG or to the generator's draw sequence shifts
//! the corpus and must show up here as a reviewed digest change — it can
//! never happen silently. (The pinned values correspond to the in-tree
//! xoshiro256++ PRNG that replaced `rand::SmallRng`.)

use stcfa_workloads::synth::{generate, SynthConfig};

/// FNV-1a, 64-bit: tiny, dependency-free, and stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn digest(config: &SynthConfig) -> u64 {
    fnv1a(generate(config).to_source().as_bytes())
}

#[test]
fn default_config_corpus_is_pinned() {
    let expected: [(u64, u64); 5] = [
        (0, 0xe0624953fb0d6af7),
        (1, 0x35e5b9e2ed4ac15b),
        (2, 0x10528af0f10340e5),
        (3, 0xf6b5f479b23a6bae),
        (4, 0x1e28f4299e43b481),
    ];
    for (seed, want) in expected {
        let got = digest(&SynthConfig {
            seed,
            ..Default::default()
        });
        assert_eq!(
            got, want,
            "synthetic corpus shifted for seed {seed}: digest {got:#018x}, \
             pinned {want:#018x}. If the PRNG/generator change is intentional, \
             re-pin the digests in this test."
        );
    }
}

/// The property suites use non-default configurations; pin one of each
/// flavour so those corpora are covered too.
#[test]
fn suite_config_corpus_is_pinned() {
    // tests/soundness.rs configuration.
    let soundness = SynthConfig {
        seed: 42,
        target_size: 140,
        max_type_depth: 2,
        effect_prob: 0.15,
        max_tuple_width: 3,
        datatypes: true,
    };
    assert_eq!(
        digest(&soundness),
        0x15081c9bf8d3f9af,
        "soundness-config corpus shifted"
    );

    // tests/differential.rs lambda-fragment configuration.
    let fragment = SynthConfig {
        seed: 42,
        target_size: 160,
        max_type_depth: 2,
        effect_prob: 0.05,
        max_tuple_width: 0,
        datatypes: false,
    };
    assert_eq!(
        digest(&fragment),
        0x334fcb992c895054,
        "fragment-config corpus shifted"
    );
}

/// Print-on-demand helper for re-pinning: `cargo test -p stcfa-workloads
/// --test synth_snapshot -- --ignored --nocapture` prints current digests.
#[test]
#[ignore = "utility for regenerating the pinned digests above"]
fn print_current_digests() {
    for seed in 0..5u64 {
        let d = digest(&SynthConfig {
            seed,
            ..Default::default()
        });
        println!("({seed}, {d:#018x}),");
    }
}
