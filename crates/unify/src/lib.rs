//! Equality-based (almost-linear, unification) control-flow analysis — the
//! "fast but coarse" alternative the paper's introduction contrasts with.
//!
//! ```
//! use stcfa_lambda::Program;
//! use stcfa_unify::UnifyCfa;
//!
//! let p = Program::parse("(fn i => i) (fn z => z)").unwrap();
//! let u = UnifyCfa::analyze(&p);
//! assert_eq!(u.labels(p.root()).len(), 1);
//! ```
//!
//! Its label sets always contain inclusion-based CFA's (tested in this
//! workspace's integration suite); experiment E9 quantifies the precision
//! it gives up — the loss the subtransitive algorithm shows is unnecessary.

#![warn(missing_docs)]

pub mod analysis;

pub use analysis::{UnifyCfa, UnifyStats};
