//! Equality-based ("unification") control-flow analysis.
//!
//! The paper's introduction cites Bondorf & Jørgensen's almost-linear-time
//! equality-based flow analysis as what implementors used *instead of*
//! inclusion-based CFA to escape the cubic bottleneck — at the price of
//! accuracy, because every flow constraint `V(a) ⊇ V(b)` is strengthened to
//! an equality `V(a) = V(b)`. This crate implements that baseline in
//! Steensgaard style: a union-find over flow classes, where each class
//! carries the abstraction labels it contains plus *signatures* (a
//! function's parameter/result classes, record field classes, constructor
//! argument classes) that are unified recursively when classes merge.
//!
//! The paper's point — demonstrated by experiment E9 in this repository —
//! is that the subtransitive algorithm achieves (almost) the same running
//! time *without* this loss of precision.

use std::collections::{HashMap, HashSet};

use stcfa_lambda::{ConId, ExprId, ExprKind, Label, Program, VarId};

/// Work counters for the unification run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UnifyStats {
    /// Union operations that merged two distinct classes.
    pub unions: u64,
    /// Total unification requests (including no-ops).
    pub requests: u64,
    /// Classes allocated (program variables plus signature holes).
    pub classes: usize,
}

/// The analysis result: a flow partition of the program.
#[derive(Clone, Debug)]
pub struct UnifyCfa {
    n_exprs: usize,
    parent: Vec<u32>,
    labels: Vec<HashSet<u32>>,
    stats: UnifyStats,
}

#[derive(Clone, Debug, Default)]
struct Sig {
    /// `(dom, ran)` if the class is ever used as a function.
    func: Option<(u32, u32)>,
    /// Record field classes.
    fields: HashMap<u32, u32>,
    /// Constructor argument classes.
    con_args: HashMap<(ConId, u32), u32>,
}

impl UnifyCfa {
    /// Runs the equality-based analysis.
    pub fn analyze(program: &Program) -> UnifyCfa {
        let mut s = Solver {
            parent: Vec::new(),
            rank: Vec::new(),
            labels: Vec::new(),
            sigs: Vec::new(),
            queue: Vec::new(),
            stats: UnifyStats::default(),
        };
        let n = program.size() + program.var_count();
        for _ in 0..n {
            s.fresh();
        }
        s.collect(program);
        s.stats.classes = s.parent.len();
        UnifyCfa {
            n_exprs: program.size(),
            parent: {
                // Path-compress everything for O(1) queries afterwards.
                let len = s.parent.len();
                for i in 0..len {
                    s.find(i as u32);
                }
                s.parent.clone()
            },
            labels: s.labels,
            stats: s.stats,
        }
    }

    fn root(&self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    /// `L(e)` under the equality-based analysis, sorted. Always a superset
    /// of inclusion-based CFA's answer.
    pub fn labels(&self, e: ExprId) -> Vec<Label> {
        self.labels_of_class(self.root(e.index() as u32))
    }

    /// Labels of binder `v`, sorted.
    pub fn var_labels(&self, v: VarId) -> Vec<Label> {
        self.labels_of_class(self.root((self.n_exprs + v.index()) as u32))
    }

    fn labels_of_class(&self, root: u32) -> Vec<Label> {
        let mut out: Vec<Label> = self.labels[root as usize]
            .iter()
            .map(|&l| Label::from_index(l as usize))
            .collect();
        out.sort_unstable();
        out
    }

    /// Whether two expressions ended up in the same flow class.
    pub fn same_class(&self, a: ExprId, b: ExprId) -> bool {
        self.root(a.index() as u32) == self.root(b.index() as u32)
    }

    /// Work counters.
    pub fn stats(&self) -> UnifyStats {
        self.stats
    }
}

struct Solver {
    parent: Vec<u32>,
    rank: Vec<u8>,
    labels: Vec<HashSet<u32>>,
    sigs: Vec<Sig>,
    /// Pending unifications (avoids deep recursion on signature merges).
    queue: Vec<(u32, u32)>,
    stats: UnifyStats,
}

impl Solver {
    fn fresh(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.rank.push(0);
        self.labels.push(HashSet::new());
        self.sigs.push(Sig::default());
        id
    }

    fn find(&mut self, x: u32) -> u32 {
        let p = self.parent[x as usize];
        if p == x {
            return x;
        }
        let root = self.find(p);
        self.parent[x as usize] = root;
        root
    }

    fn unify(&mut self, a: u32, b: u32) {
        self.queue.push((a, b));
        while let Some((a, b)) = self.queue.pop() {
            self.stats.requests += 1;
            let (mut ra, mut rb) = (self.find(a), self.find(b));
            if ra == rb {
                continue;
            }
            self.stats.unions += 1;
            if self.rank[ra as usize] < self.rank[rb as usize] {
                std::mem::swap(&mut ra, &mut rb);
            }
            if self.rank[ra as usize] == self.rank[rb as usize] {
                self.rank[ra as usize] += 1;
            }
            self.parent[rb as usize] = ra;
            // Merge labels (move the smaller set).
            let moved = std::mem::take(&mut self.labels[rb as usize]);
            self.labels[ra as usize].extend(moved);
            // Merge signatures, queueing recursive unifications.
            let sig_b = std::mem::take(&mut self.sigs[rb as usize]);
            let sig_a = &mut self.sigs[ra as usize];
            match (&mut sig_a.func, sig_b.func) {
                (Some((d1, r1)), Some((d2, r2))) => {
                    self.queue.push((*d1, d2));
                    self.queue.push((*r1, r2));
                }
                (slot @ None, Some(f)) => *slot = Some(f),
                _ => {}
            }
            for (k, c2) in sig_b.fields {
                match sig_a.fields.get(&k) {
                    Some(&c1) => self.queue.push((c1, c2)),
                    None => {
                        sig_a.fields.insert(k, c2);
                    }
                }
            }
            for (k, c2) in sig_b.con_args {
                match sig_a.con_args.get(&k) {
                    Some(&c1) => self.queue.push((c1, c2)),
                    None => {
                        sig_a.con_args.insert(k, c2);
                    }
                }
            }
        }
    }

    /// The function signature of `x`'s class, created on demand.
    fn fn_sig(&mut self, x: u32) -> (u32, u32) {
        let r = self.find(x);
        if let Some(sig) = self.sigs[r as usize].func {
            return sig;
        }
        let d = self.fresh();
        let ran = self.fresh();
        // `fresh` may not have invalidated `r` (no unions), safe to re-index.
        self.sigs[r as usize].func = Some((d, ran));
        (d, ran)
    }

    fn field_sig(&mut self, x: u32, index: u32) -> u32 {
        let r = self.find(x);
        if let Some(&c) = self.sigs[r as usize].fields.get(&index) {
            return c;
        }
        let c = self.fresh();
        self.sigs[r as usize].fields.insert(index, c);
        c
    }

    fn con_sig(&mut self, x: u32, con: ConId, index: u32) -> u32 {
        let r = self.find(x);
        if let Some(&c) = self.sigs[r as usize].con_args.get(&(con, index)) {
            return c;
        }
        let c = self.fresh();
        self.sigs[r as usize].con_args.insert((con, index), c);
        c
    }

    fn collect(&mut self, program: &Program) {
        let ev = |e: ExprId| e.index() as u32;
        let bv = |v: VarId| (program.size() + v.index()) as u32;
        for e in program.exprs() {
            match program.kind(e) {
                ExprKind::Var(v) => self.unify(ev(e), bv(*v)),
                ExprKind::Lam { label, param, body } => {
                    // Labels live at the class root.
                    let r = self.find(ev(e));
                    self.labels[r as usize].insert(label.index() as u32);
                    let (d, ran) = self.fn_sig(ev(e));
                    self.unify(bv(*param), d);
                    self.unify(ev(*body), ran);
                }
                ExprKind::App { func, arg } => {
                    let (d, ran) = self.fn_sig(ev(*func));
                    self.unify(ev(*arg), d);
                    self.unify(ev(e), ran);
                }
                ExprKind::Let { binder, rhs, body } => {
                    self.unify(bv(*binder), ev(*rhs));
                    self.unify(ev(e), ev(*body));
                }
                ExprKind::LetRec {
                    binder,
                    lambda,
                    body,
                } => {
                    self.unify(bv(*binder), ev(*lambda));
                    self.unify(ev(e), ev(*body));
                }
                ExprKind::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    self.unify(ev(e), ev(*then_branch));
                    self.unify(ev(e), ev(*else_branch));
                }
                ExprKind::Record(items) => {
                    for (j, &item) in items.iter().enumerate() {
                        let f = self.field_sig(ev(e), j as u32);
                        self.unify(ev(item), f);
                    }
                }
                ExprKind::Proj { index, tuple } => {
                    let f = self.field_sig(ev(*tuple), *index);
                    self.unify(ev(e), f);
                }
                ExprKind::Con { con, args } => {
                    for (i, &arg) in args.iter().enumerate() {
                        let c = self.con_sig(ev(e), *con, i as u32);
                        self.unify(ev(arg), c);
                    }
                }
                ExprKind::Case {
                    scrutinee,
                    arms,
                    default,
                } => {
                    for arm in arms.iter() {
                        for (i, &b) in arm.binders.iter().enumerate() {
                            let c = self.con_sig(ev(*scrutinee), arm.con, i as u32);
                            self.unify(bv(b), c);
                        }
                        self.unify(ev(e), ev(arm.body));
                    }
                    if let Some(d) = default {
                        self.unify(ev(e), ev(*d));
                    }
                }
                ExprKind::Lit(_) | ExprKind::Prim { .. } => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_lambda::Program;

    #[test]
    fn identity_application() {
        let p = Program::parse("(fn i => i) (fn z => z)").unwrap();
        let u = UnifyCfa::analyze(&p);
        assert_eq!(u.labels(p.root()).len(), 1);
    }

    #[test]
    fn equality_merges_call_sites_coarsely() {
        // id applied to two different functions: inclusion CFA gives two
        // labels at each use; equality-based merges the *argument classes*
        // too, so both arguments see both labels.
        let src = "\
            fun id x = x;\n\
            val a = id (fn u => u);\n\
            val b = id (fn v => v);\n\
            a";
        let p = Program::parse(src).unwrap();
        let u = UnifyCfa::analyze(&p);
        let lams: Vec<_> = p
            .exprs()
            .filter(|&e| matches!(p.kind(e), ExprKind::Lam { .. }))
            .collect();
        // The two argument lambdas land in one class.
        let (u_lam, v_lam) = (lams[1], lams[2]);
        assert!(
            u.same_class(u_lam, v_lam),
            "equality analysis merges id's arguments"
        );
        assert!(u.labels(p.root()).len() >= 2);
    }

    #[test]
    fn branches_are_merged() {
        let p = Program::parse("if true then fn a => a else fn b => b").unwrap();
        let u = UnifyCfa::analyze(&p);
        assert_eq!(u.labels(p.root()).len(), 2);
    }

    #[test]
    fn records_and_datatypes() {
        let p = Program::parse("#1 ((fn x => x), (fn y => y))").unwrap();
        let u = UnifyCfa::analyze(&p);
        // Fields are separate classes, so projection stays precise here.
        assert_eq!(u.labels(p.root()).len(), 1);

        let p2 = Program::parse("datatype w = W of (int -> int); case W(fn x => x) of W(f) => f")
            .unwrap();
        let u2 = UnifyCfa::analyze(&p2);
        assert_eq!(u2.labels(p2.root()).len(), 1);
    }

    #[test]
    fn stats_count_unions() {
        let p = Program::parse("(fn x => x) (fn y => y)").unwrap();
        let u = UnifyCfa::analyze(&p);
        assert!(u.stats().unions > 0);
        assert!(u.stats().classes >= p.size());
    }
}
