//! The degradation detector: where did the subtransitive answer
//! plausibly over-approximate?
//!
//! The paper's linearity comes from the ≈₁/≈₂ congruences (Section 6):
//! datatype-typed positions collapse to class nodes, so flow through a
//! data structure is merged across every construction of the datatype.
//! That merging — plus the `Forget` policy's `TopFun` sink — is the
//! *only* place the graph construction loses precision relative to the
//! `Exact` policy, which the differential suite pins against standard
//! cubic CFA. Reachability over the graph itself is exact.
//!
//! The detector exploits that: at freeze time it scores every
//! condensation component with a **suspicion index** — a saturating
//! per-cone aggregate of
//!
//! - **merge nodes** reachable from the component (`DataClass`, `Slot`,
//!   `DeConClass`, `TopFun`): the congruence participants, weighted
//!   heaviest because they are the precision loss;
//! - **multi-abstraction SCCs**: a cycle carrying several labels answers
//!   every member with the whole union;
//! - **high-fan-in `dom`/`ran` nodes**: many call sites feeding one
//!   operator chain — the classic monovariant join point.
//!
//! The load-bearing invariant is one-directional: **suspicion 0 means
//! the query's forward cone contains no merge node at all**, so every
//! path the engine can follow exists identically under the `Exact`
//! policy and the answer is certifiably equal to full cubic CFA — no
//! escalation can shrink it. Non-zero suspicion is only a heuristic
//! ranking of where escalation is worth spending budget; it never
//! asserts imprecision.
//!
//! The sweep mirrors the engine's summary sweep: component ids are in
//! reverse topological order (DAG edges go to smaller ids), so one pass
//! over `0..comp_count` sees every successor finished — `O(N + E)`.

use stcfa_core::{Analysis, NodeId, NodeKind, QueryEngine};
use stcfa_lambda::{ExprId, VarId};

/// Weight of one congruence/merge node in a cone (dominant term; any
/// non-zero suspicion that matters for soundness comes from these).
const MERGE_WEIGHT: u32 = 16;
/// Weight per extra abstraction label in a single SCC.
const SCC_WEIGHT: u32 = 4;
/// Weight of a `dom`/`ran` node with more than one predecessor.
const FAN_WEIGHT: u32 = 1;

/// Per-component suspicion scores for one frozen engine, cheap to store
/// with the snapshot (`4 * comp_count` bytes) and `O(1)` to consult per
/// query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SuspicionIndex {
    per_comp: Vec<u32>,
}

impl SuspicionIndex {
    /// Scores every component of `engine`'s condensation. `analysis`
    /// must be the analysis `engine` was frozen from (the node table is
    /// consulted for node kinds).
    pub fn build(analysis: &Analysis, engine: &QueryEngine) -> SuspicionIndex {
        let cond = engine.condensation();
        let cc = cond.comp_count();
        let n = engine.csr().node_count();
        let nodes = analysis.nodes();
        assert_eq!(
            nodes.len(),
            n,
            "SuspicionIndex::build needs the analysis the engine was frozen \
             from (node tables differ); disk-warmed linked engines must \
             rehydrate persisted scores via `from_raw` instead",
        );
        let mut own = vec![0u32; cc];
        let mut labelled = vec![0u32; cc];
        for i in 0..n {
            let id = NodeId::from_index(i);
            let c = cond.comp_of(i);
            let w = match nodes.kind(id) {
                NodeKind::DataClass(_)
                | NodeKind::Slot(..)
                | NodeKind::DeConClass { .. }
                | NodeKind::TopFun => MERGE_WEIGHT,
                NodeKind::Dom(_) | NodeKind::Ran(_) if engine.rev_csr().degree(i) > 1 => FAN_WEIGHT,
                _ => 0,
            };
            own[c] = own[c].saturating_add(w);
            if engine.own_label(id).is_some() {
                labelled[c] += 1;
            }
        }
        for (o, &l) in own.iter_mut().zip(&labelled) {
            if l > 1 {
                *o = o.saturating_add(SCC_WEIGHT * (l - 1));
            }
        }
        // Cone aggregate: own score plus the worst successor cone. Using
        // `max` over successors (not a sum) keeps scores bounded on
        // diamond-shaped DAGs while preserving the invariant that a
        // component scores 0 iff nothing suspicious is reachable.
        let mut per_comp = vec![0u32; cc];
        for c in 0..cc {
            let mut worst = 0u32;
            for &s in cond.dag().succs(c) {
                worst = worst.max(per_comp[s as usize]);
            }
            per_comp[c] = own[c].saturating_add(worst);
        }
        SuspicionIndex { per_comp }
    }

    /// Rehydrates an index persisted with a snapshot.
    pub fn from_raw(per_comp: Vec<u32>) -> SuspicionIndex {
        SuspicionIndex { per_comp }
    }

    /// The raw per-component scores (persistence image).
    pub fn as_slice(&self) -> &[u32] {
        &self.per_comp
    }

    /// Number of scored components (must equal the engine's
    /// `comp_count` to be usable with it).
    pub fn comp_count(&self) -> usize {
        self.per_comp.len()
    }

    /// The suspicion of `node`'s forward cone.
    pub fn of_node(&self, engine: &QueryEngine, node: NodeId) -> u32 {
        self.per_comp[engine.condensation().comp_of(node.index())]
    }

    /// The suspicion of expression `e`'s answer.
    pub fn of_expr(&self, engine: &QueryEngine, e: ExprId) -> u32 {
        self.of_node(engine, engine.node_of_expr(e))
    }

    /// The suspicion of binder `v`'s answer.
    pub fn of_binder(&self, engine: &QueryEngine, v: VarId) -> u32 {
        self.of_node(engine, engine.node_of_binder(v))
    }

    /// Whether every component scores 0 — the whole snapshot's answers
    /// are certifiably exact and nothing can be refined.
    pub fn all_exact(&self) -> bool {
        self.per_comp.iter().all(|&s| s == 0)
    }

    /// How many components carry non-zero suspicion.
    pub fn suspicious_comps(&self) -> usize {
        self.per_comp.iter().filter(|&&s| s != 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_lambda::Program;

    fn built(src: &str) -> (Program, Analysis, QueryEngine) {
        let p = Program::parse(src).unwrap();
        let a = Analysis::run(&p).unwrap();
        let e = QueryEngine::freeze(&a);
        (p, a, e)
    }

    #[test]
    fn pure_lambda_programs_are_suspicion_free() {
        // No datatypes, no records: nothing merges under ≈₁, every
        // answer is exact — including through higher-order flow.
        let (p, a, e) = built("(fn x => x x) (fn y => y)");
        let idx = SuspicionIndex::build(&a, &e);
        assert_eq!(idx.of_expr(&e, p.root()), 0);
    }

    #[test]
    fn datatype_flow_raises_suspicion_at_the_reader() {
        let src = "\
            datatype wrap = W of (int -> int);\n\
            case W(fn x => x) of W(f) => f";
        let (p, a, e) = built(src);
        let idx = SuspicionIndex::build(&a, &e);
        // The case result reads through the constructor slot: its cone
        // contains the ≈₁ class node.
        assert!(idx.of_expr(&e, p.root()) >= MERGE_WEIGHT);
        assert!(!idx.all_exact());
    }

    #[test]
    fn roundtrips_through_raw_scores() {
        let (_, a, e) = built("let val f = fn x => x in f f end");
        let idx = SuspicionIndex::build(&a, &e);
        let again = SuspicionIndex::from_raw(idx.as_slice().to_vec());
        assert_eq!(idx, again);
        assert_eq!(again.comp_count(), e.comp_count());
    }
}
