//! Demand cones: the program slice a cone-restricted cubic run needs.
//!
//! Tier-2 escalation re-solves standard CFA, but only over the part of
//! the program that can influence the query — its **demand cone**. The
//! cone must be *flow-closed*: every constraint that can (transitively)
//! write into a demanded variable's set must itself be installed, or
//! the restricted fixpoint under-approximates at the query and an
//! "escalated" answer would silently drop real flow.
//!
//! Closure is a least fixpoint over three rule families:
//!
//! 1. **Engine reachability.** The subtransitive graph answers `L(e)`
//!    by *forward* reachability, and the ≈-congruences only merge —
//!    every exact path survives — so the nodes forward-reachable from a
//!    demanded variable over-approximate all of its value sources
//!    (including, e.g., the arguments of every call site that can write
//!    a demanded parameter, reached through the `dom` chain). Every
//!    reached node pulls the expressions and binders it carries into
//!    the cone.
//! 2. **Watch machinery.** Reachability covers where values come
//!    *from*, not the sets the solver's listeners *watch*: a demanded
//!    application pulls in its operator (APP-1/APP-2 watch `L(e₁)`), a
//!    projection its record, a `case` its scrutinee, and a demanded
//!    abstraction its body (its result is copied out wherever it is
//!    applied).
//! 3. **Writer constructs.** A set is written only by the construct
//!    that binds or applies it, and that construct must be installed: a
//!    demanded binder pulls in its owning `fn`/`let`/`letrec`/`case`,
//!    and a demanded operand pulls in its application (whose listener
//!    performs the `arg → param` write).
//!
//! The fixpoint is monotone over finite sets, `O(cone)` per rule. The
//! cone is deliberately not minimal — rules 2–3 over-include for
//! robustness — but it stays proportional to the query's actual flow
//! neighbourhood, which is exactly when escalation is worth paying for.
//! The `Forget` policy *cuts* flow at `TopFun` instead of merging, so
//! rule 1's premise fails there; the scheduler never builds cones under
//! it.

use stcfa_core::QueryEngine;
use stcfa_graph::BitSet;
use stcfa_lambda::{ExprId, ExprKind, Program, VarId};

/// The flow-closed slice serving one query site.
#[derive(Clone, Debug)]
pub struct DemandCone {
    /// Expressions whose constraints the restricted solver installs.
    pub exprs: BitSet,
    /// Binders demanded along the way (diagnostic; the solver derives
    /// binder handling from the expressions).
    pub binders: BitSet,
    /// Engine graph nodes visited — the budget unit: what the scheduler
    /// charges for escalating this query.
    pub node_count: usize,
}

impl DemandCone {
    /// Fraction of the program's expressions inside the cone.
    pub fn expr_fraction(&self, program: &Program) -> f64 {
        if program.size() == 0 {
            return 0.0;
        }
        self.exprs.len() as f64 / program.size() as f64
    }
}

/// Per-expression parent and per-binder owner maps, one `O(n)` walk.
struct Syntax {
    /// Parent expression of each expression (root: `u32::MAX`).
    parent: Vec<u32>,
    /// Owning expression of each binder (`fn`/`let`/`letrec`/`case`).
    owner: Vec<u32>,
}

impl Syntax {
    fn build(program: &Program) -> Syntax {
        let mut parent = vec![u32::MAX; program.size()];
        let mut owner = vec![u32::MAX; program.var_count()];
        for e in program.exprs() {
            let ei = e.index() as u32;
            let mut child = |c: ExprId| parent[c.index()] = ei;
            let mut binder = |v: VarId| owner[v.index()] = ei;
            match program.kind(e) {
                ExprKind::Var(_) | ExprKind::Lit(_) => {}
                ExprKind::Lam { param, body, .. } => {
                    binder(*param);
                    child(*body);
                }
                ExprKind::App { func, arg } => {
                    child(*func);
                    child(*arg);
                }
                ExprKind::Let {
                    binder: b,
                    rhs,
                    body,
                } => {
                    binder(*b);
                    child(*rhs);
                    child(*body);
                }
                ExprKind::LetRec {
                    binder: b,
                    lambda,
                    body,
                } => {
                    binder(*b);
                    child(*lambda);
                    child(*body);
                }
                ExprKind::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    child(*cond);
                    child(*then_branch);
                    child(*else_branch);
                }
                ExprKind::Record(items) => items.iter().copied().for_each(&mut child),
                ExprKind::Proj { tuple, .. } => child(*tuple),
                ExprKind::Con { args, .. } => args.iter().copied().for_each(&mut child),
                ExprKind::Case {
                    scrutinee,
                    arms,
                    default,
                } => {
                    child(*scrutinee);
                    for arm in arms.iter() {
                        arm.binders.iter().copied().for_each(&mut binder);
                        child(arm.body);
                    }
                    if let Some(d) = default {
                        child(*d);
                    }
                }
                ExprKind::Prim { args, .. } => args.iter().copied().for_each(&mut child),
            }
        }
        Syntax { parent, owner }
    }
}

/// Computes the flow-closed demand cone of the engine nodes `roots`
/// (typically the query expression's node).
pub fn demand_cone(program: &Program, engine: &QueryEngine, roots: &[usize]) -> DemandCone {
    let n = engine.csr().node_count();
    let syntax = Syntax::build(program);
    // Expressions/binders carried by each engine node: congruence can
    // put several occurrences on one node (all occurrences of a binder
    // share its node, for instance).
    let mut exprs_at: Vec<Vec<u32>> = vec![Vec::new(); n];
    for e in program.exprs() {
        exprs_at[engine.node_of_expr(e).index()].push(e.index() as u32);
    }
    let mut binders_at: Vec<Vec<u32>> = vec![Vec::new(); n];
    for i in 0..program.var_count() {
        binders_at[engine.node_of_binder(VarId::from_index(i)).index()].push(i as u32);
    }

    let mut node_in = BitSet::new(n);
    let mut expr_in = BitSet::new(program.size());
    let mut binder_in = BitSet::new(program.var_count().max(1));
    let mut node_work: Vec<usize> = Vec::new();
    let mut expr_work: Vec<u32> = Vec::new();
    let mut binder_work: Vec<u32> = Vec::new();
    for &r in roots {
        if node_in.insert(r) {
            node_work.push(r);
        }
    }
    loop {
        if let Some(u) = node_work.pop() {
            // Rule 1: sources of sources.
            for &s in engine.csr().succs(u) {
                if node_in.insert(s as usize) {
                    node_work.push(s as usize);
                }
            }
            for &e in &exprs_at[u] {
                if expr_in.insert(e as usize) {
                    expr_work.push(e);
                }
            }
            for &v in &binders_at[u] {
                if binder_in.insert(v as usize) {
                    binder_work.push(v);
                }
            }
            continue;
        }
        if let Some(v) = binder_work.pop() {
            let bn = engine.node_of_binder(VarId::from_index(v as usize)).index();
            if node_in.insert(bn) {
                node_work.push(bn);
            }
            // Rule 3: the owning construct installs this binder's edges.
            let o = syntax.owner[v as usize];
            if o != u32::MAX && expr_in.insert(o as usize) {
                expr_work.push(o);
            }
            continue;
        }
        if let Some(e) = expr_work.pop() {
            let id = ExprId::from_index(e as usize);
            let en = engine.node_of_expr(id).index();
            if node_in.insert(en) {
                node_work.push(en);
            }
            let mut need_expr = |x: ExprId, w: &mut Vec<u32>| {
                if expr_in.insert(x.index()) {
                    w.push(x.index() as u32);
                }
            };
            // Rule 2: watch machinery.
            match program.kind(id) {
                ExprKind::App { func, .. } => need_expr(*func, &mut expr_work),
                ExprKind::Lam { param, body, .. } => {
                    need_expr(*body, &mut expr_work);
                    if binder_in.insert(param.index()) {
                        binder_work.push(param.index() as u32);
                    }
                }
                ExprKind::Proj { tuple, .. } => need_expr(*tuple, &mut expr_work),
                ExprKind::Case { scrutinee, .. } => need_expr(*scrutinee, &mut expr_work),
                ExprKind::Var(v) if binder_in.insert(v.index()) => {
                    binder_work.push(v.index() as u32);
                }
                _ => {}
            }
            // Rule 3: a demanded operand's application performs the
            // `arg → param` write and must be live.
            let p = syntax.parent[e as usize];
            if p != u32::MAX {
                let pid = ExprId::from_index(p as usize);
                if matches!(program.kind(pid), ExprKind::App { arg, .. } if *arg == id) {
                    need_expr(pid, &mut expr_work);
                }
            }
            continue;
        }
        break;
    }
    DemandCone {
        node_count: node_in.len(),
        exprs: expr_in,
        binders: binder_in,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_cfa0::Cfa0;
    use stcfa_core::Analysis;

    fn cone_at_root(src: &str) -> (Program, QueryEngine, DemandCone) {
        let p = Program::parse(src).unwrap();
        let a = Analysis::run(&p).unwrap();
        let e = QueryEngine::freeze(&a);
        let root = e.node_of_expr(p.root()).index();
        let cone = demand_cone(&p, &e, &[root]);
        (p, e, cone)
    }

    #[test]
    fn cone_restricted_run_matches_the_full_oracle_at_the_root() {
        for src in [
            "(fn x => x x) (fn y => y)",
            "fun id x = x;\nval a = id (fn u => u);\nval b = id (fn v => v);\na",
            "datatype wrap = W of (int -> int);\ncase W(fn x => x) of W(f) => f",
            "#1 ((fn x => x), (fn y => y))",
            "if true then fn x => x else fn y => y",
            "fun f x = x; f (fn a => a) (fn b => b)",
        ] {
            let (p, _, cone) = cone_at_root(src);
            let full = Cfa0::analyze(&p);
            let restricted = Cfa0::analyze_within(&p, &cone.exprs);
            assert_eq!(
                restricted.labels(&p, p.root()),
                full.labels(&p, p.root()),
                "cone not flow-closed for {src:?}"
            );
        }
    }

    #[test]
    fn local_flow_yields_a_proper_sub_cone() {
        // The result only touches `h`; the sibling definition `g` (and
        // its inner call) stays outside the cone.
        let src = "\
            let val g = fn a => (fn b => b) a in\n\
            let val h = fn c => c in h h end end";
        let (p, _, cone) = cone_at_root(src);
        let full = Cfa0::analyze(&p);
        let restricted = Cfa0::analyze_within(&p, &cone.exprs);
        assert_eq!(restricted.labels(&p, p.root()), full.labels(&p, p.root()));
        assert!(
            cone.exprs.len() < p.size(),
            "expected a proper slice, got {}/{}",
            cone.exprs.len(),
            p.size()
        );
    }
}
