//! Adaptive precision scheduling over the frozen subtransitive engine.
//!
//! The paper's conclusion sketches "a hybrid linear/cubic combination":
//! the subtransitive analysis answers every query in (amortized) linear
//! time, but the ≈₁/≈₂ congruences it buys linearity with merge flow
//! through data structures — some answers over-approximate. Van Horn
//! and Mairson's completeness results (0CFA is PTIME-complete) say the
//! cure cannot be wholesale: escalating *every* query to cubic CFA
//! forfeits the paper's entire contribution. Escalation must be
//! selective.
//!
//! This crate is that selection logic, in three parts layered strictly
//! *over* the frozen [`QueryEngine`](stcfa_core::QueryEngine):
//!
//! - [`SuspicionIndex`] — the **degradation detector**. One `O(N + E)`
//!   pass at freeze time scores every condensation component by the
//!   congruence merge nodes, multi-abstraction SCCs, and high-fan-in
//!   `dom`/`ran` nodes reachable from it. Suspicion 0 is a *certificate*:
//!   the answer equals full cubic CFA. The index is 4 bytes per
//!   component and persists with the snapshot.
//! - [`demand_cone`] — the **cone builder**: the flow-closed program
//!   slice that can influence one query site, so cubic escalation pays
//!   for the neighbourhood, not the program.
//! - [`PrecisionScheduler`] — the **tier scheduler**: Tier 0
//!   (subtransitive, always), Tier 1 (polyvariant summaries), Tier 2
//!   (cone-restricted cubic), with per-site memoization and a
//!   per-snapshot escalation budget. Every answer carries a
//!   [`PrecisionInfo`] grade (`exact` / `refined` / `approx` + tier).
//!
//! Consumers: the server's protocol-v2 `query`/`rule` responses and
//! `stcfa query --precision` surface the grade per answer; the lint
//! engine derives `"confidence":"proven|likely"` for its diagnostics
//! from the same certificates.

pub mod cone;
pub mod detector;
pub mod scheduler;

pub use cone::{demand_cone, DemandCone};
pub use detector::SuspicionIndex;
pub use scheduler::{PrecisionClass, PrecisionInfo, PrecisionScheduler, SchedulerStats, Tier};
