//! The tier scheduler: answer every query at the cheapest tier that
//! can certify it.
//!
//! | Tier | Engine | Cost | When |
//! |------|--------|------|------|
//! | 0 | subtransitive `QueryEngine` | `O(E·L/64)` amortized | always — the baseline answer and the sound upper bound |
//! | 1 | `PolyAnalysis` summaries | linear, built once per snapshot | suspicion > 0 |
//! | 2 | `Cfa0` restricted to the demand cone | cubic in the *cone* | suspicion > 0 and budget remains — the confirmation step |
//!
//! Every answer is the Tier-0 set intersected with whatever the higher
//! tiers proved. Each tier is an independently sound may-flow
//! over-approximation of the *dynamic* flows (Tier 1's polyvariance can
//! refine past monovariant 0CFA; Tier 2's cone computes exactly the
//! 0CFA fixpoint at the query), so the intersection is sound too, and
//! the published set only ever shrinks. The precision grade is:
//!
//! - `exact` — certified no looser than full cubic CFA: either the
//!   detector's suspicion is 0 (no congruence merge reachable, so the
//!   linear answer *is* the exact answer), or Tier 2 ran and confirmed
//!   the unshrunk Tier-0 set;
//! - `refined` — escalation strictly shrank the Tier-0 set; whenever
//!   the budget allowed, the set was also confirmed against (and
//!   intersected with) the cubic oracle on the query's cone;
//! - `approx` — sound but unconfirmed: escalation was skipped (budget
//!   exhausted, `Forget` policy) or did not shrink the set.
//!
//! Escalation results are memoized per query site, so repeated queries
//! never re-pay cubic cost, and charged against a per-snapshot node
//! budget (`--precision-budget`): each Tier-2 run spends its cone's
//! engine-node count; once the budget is gone the scheduler degrades
//! to Tier 0 with an honest `approx` grade.
//!
//! **Single-CPU discipline:** the scheduler never spawns threads. All
//! tiers run on the caller's thread; batch parallelism stays where it
//! already lives, inside `QueryEngine::batch`'s worker budget.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use stcfa_cfa0::Cfa0;
use stcfa_core::{AnalysisOptions, DatatypePolicy, PolyAnalysis, PolyOptions, QueryEngine};
use stcfa_lambda::{ExprId, ExprKind, Label, Program};

use crate::cone::demand_cone;
use crate::detector::SuspicionIndex;

/// Which tier produced an answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Subtransitive engine (always consulted).
    Sub,
    /// Polyvariant summaries.
    Poly,
    /// Cone-restricted cubic CFA.
    Cone,
}

impl Tier {
    /// The numeric tier used on the wire.
    pub fn level(self) -> u8 {
        match self {
            Tier::Sub => 0,
            Tier::Poly => 1,
            Tier::Cone => 2,
        }
    }
}

/// How trustworthy the returned set is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrecisionClass {
    /// Certified equal to the full cubic answer.
    Exact,
    /// Strictly smaller than Tier 0 (and still sound).
    Refined,
    /// Sound over-approximation, not confirmed.
    Approx,
}

impl PrecisionClass {
    /// The lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            PrecisionClass::Exact => "exact",
            PrecisionClass::Refined => "refined",
            PrecisionClass::Approx => "approx",
        }
    }
}

/// Per-answer provenance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrecisionInfo {
    /// The grade of the returned set.
    pub class: PrecisionClass,
    /// The tier that produced (or confirmed) it.
    pub tier: Tier,
    /// The detector's suspicion score at the query site.
    pub suspicion: u32,
}

/// Aggregate scheduler counters (monotone; read for stats surfaces).
#[derive(Clone, Copy, Debug, Default)]
pub struct SchedulerStats {
    /// Queries answered (memo hits included).
    pub queries: u64,
    /// Memoized escalations served without recomputation.
    pub memo_hits: u64,
    /// Tier-1 escalations run.
    pub poly_runs: u64,
    /// Tier-2 cone runs.
    pub cone_runs: u64,
    /// Queries where a higher tier strictly shrank the answer.
    pub refined: u64,
    /// Engine nodes charged against the budget so far.
    pub budget_spent: usize,
}

/// The per-snapshot scheduler: suspicion index, escalation memo, lazy
/// polyvariant analysis, and the node budget.
pub struct PrecisionScheduler {
    suspicion: SuspicionIndex,
    policy: DatatypePolicy,
    budget: usize,
    spent: AtomicUsize,
    /// `Ok(analysis)` once built; `Err(())` if the polyvariant run
    /// failed (node budget) — Tier 1 is then permanently skipped.
    poly: OnceLock<Result<PolyAnalysis, ()>>,
    memo: Mutex<HashMap<u32, (Vec<Label>, PrecisionInfo)>>,
    queries: AtomicU64,
    memo_hits: AtomicU64,
    poly_runs: AtomicU64,
    cone_runs: AtomicU64,
    refined: AtomicU64,
}

impl std::fmt::Debug for PrecisionScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrecisionScheduler")
            .field("policy", &self.policy)
            .field("budget", &self.budget)
            .field("spent", &self.spent.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl PrecisionScheduler {
    /// Default per-snapshot escalation budget, in engine nodes.
    pub const DEFAULT_BUDGET: usize = 65_536;

    /// Builds a scheduler over a frozen snapshot's suspicion index.
    pub fn new(
        suspicion: SuspicionIndex,
        policy: DatatypePolicy,
        budget: usize,
    ) -> PrecisionScheduler {
        PrecisionScheduler {
            suspicion,
            policy,
            budget,
            spent: AtomicUsize::new(0),
            poly: OnceLock::new(),
            memo: Mutex::new(HashMap::new()),
            queries: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            poly_runs: AtomicU64::new(0),
            cone_runs: AtomicU64::new(0),
            refined: AtomicU64::new(0),
        }
    }

    /// The detector's index this scheduler consults.
    pub fn suspicion(&self) -> &SuspicionIndex {
        &self.suspicion
    }

    /// The configured budget, in engine nodes.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Counters so far.
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            queries: self.queries.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            poly_runs: self.poly_runs.load(Ordering::Relaxed),
            cone_runs: self.cone_runs.load(Ordering::Relaxed),
            refined: self.refined.load(Ordering::Relaxed),
            budget_spent: self.spent.load(Ordering::Relaxed),
        }
    }

    /// `L(e)` at the cheapest certifying tier.
    pub fn labels_of(
        &self,
        program: &Program,
        engine: &QueryEngine,
        e: ExprId,
    ) -> (Vec<Label>, PrecisionInfo) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let t0 = engine.labels_of(e);
        let suspicion = self.suspicion.of_expr(engine, e);
        if suspicion == 0 || t0.is_empty() {
            // No congruence merge in the cone (the linear answer is the
            // exact answer), or nothing left to shrink: an empty sound
            // upper bound proves the exact set is empty too.
            return (
                t0,
                PrecisionInfo {
                    class: PrecisionClass::Exact,
                    tier: Tier::Sub,
                    suspicion,
                },
            );
        }
        if let Some(hit) = self.memo.lock().expect("memo poisoned").get(&key(e)) {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        if self.policy == DatatypePolicy::Forget {
            // `Forget` cuts flow instead of merging: neither the cone
            // construction's premise nor "Tier 0 is an upper bound"
            // holds, so escalation cannot certify anything.
            return (
                t0,
                PrecisionInfo {
                    class: PrecisionClass::Approx,
                    tier: Tier::Sub,
                    suspicion,
                },
            );
        }

        // Tier 1: polyvariant summaries (linear; built once, shared).
        let t0_len = t0.len();
        let mut best = t0;
        let mut tier = Tier::Sub;
        if let Ok(poly) = self.poly_analysis(program) {
            let t1 = intersect_sorted(&best, &poly.labels_of(e));
            if t1.len() < best.len() {
                best = t1;
                tier = Tier::Poly;
            }
        }

        // Tier 2: cone-restricted cubic, budget permitting. This runs
        // even when Tier 1 already refined — the cubic cone is the
        // confirmation step. Every refined answer is intersected with
        // the 0CFA oracle on the query's slice (both analyses are sound
        // may-flow over-approximations, so so is their intersection),
        // and an unshrunk answer gains an exactness certificate.
        let mut confirmed_exact = false;
        let cone = demand_cone(program, engine, &[engine.node_of_expr(e).index()]);
        if self.charge(cone.node_count) {
            self.cone_runs.fetch_add(1, Ordering::Relaxed);
            let cfa = Cfa0::analyze_within(program, &cone.exprs);
            best = intersect_sorted(&best, &cfa.labels(program, e));
            tier = Tier::Cone;
            confirmed_exact = true;
        }

        let class = if best.len() < t0_len {
            self.refined.fetch_add(1, Ordering::Relaxed);
            PrecisionClass::Refined
        } else if confirmed_exact {
            PrecisionClass::Exact
        } else {
            PrecisionClass::Approx
        };
        let info = PrecisionInfo {
            class,
            tier,
            suspicion,
        };
        // Memoize settled outcomes only: a budget-starved `approx` may
        // improve if the same site is asked again after cheaper queries
        // freed nothing — but a *later* larger budget never exists per
        // snapshot, so deny-by-budget is settled too once Tier 1 ran.
        self.memo
            .lock()
            .expect("memo poisoned")
            .insert(key(e), (best.clone(), info));
        (best, info)
    }

    /// Call targets of application `app` (`L` of its operator), graded.
    /// `None` when `app` is not an application.
    pub fn call_targets(
        &self,
        program: &Program,
        engine: &QueryEngine,
        app: ExprId,
    ) -> Option<(Vec<Label>, PrecisionInfo)> {
        match program.kind(app) {
            ExprKind::App { func, .. } => Some(self.labels_of(program, engine, *func)),
            _ => None,
        }
    }

    /// The polyvariant analysis, built on first use (on the caller's
    /// thread — no spawning).
    fn poly_analysis(&self, program: &Program) -> Result<&PolyAnalysis, ()> {
        self.poly
            .get_or_init(|| {
                self.poly_runs.fetch_add(1, Ordering::Relaxed);
                let options = PolyOptions {
                    base: AnalysisOptions {
                        policy: self.policy,
                        max_nodes: None,
                    },
                    ..PolyOptions::default()
                };
                PolyAnalysis::run_with(program, options).map_err(|_| ())
            })
            .as_ref()
            .map_err(|_| ())
    }

    /// Tries to charge `nodes` against the budget; `false` leaves the
    /// budget untouched and the caller un-escalated.
    fn charge(&self, nodes: usize) -> bool {
        let mut cur = self.spent.load(Ordering::Relaxed);
        loop {
            if cur + nodes > self.budget {
                return false;
            }
            match self.spent.compare_exchange_weak(
                cur,
                cur + nodes,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }
}

fn key(e: ExprId) -> u32 {
    e.index() as u32
}

/// Intersection of two sorted label vectors (kept sorted).
fn intersect_sorted(a: &[Label], b: &[Label]) -> Vec<Label> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_core::Analysis;

    fn scheduler_for(src: &str) -> (Program, QueryEngine, PrecisionScheduler) {
        let p = Program::parse(src).unwrap();
        let a = Analysis::run(&p).unwrap();
        let e = QueryEngine::freeze(&a);
        let s = PrecisionScheduler::new(
            SuspicionIndex::build(&a, &e),
            a.policy(),
            PrecisionScheduler::DEFAULT_BUDGET,
        );
        (p, e, s)
    }

    #[test]
    fn suspicion_free_queries_are_exact_at_tier_zero() {
        let (p, e, s) = scheduler_for("(fn x => x x) (fn y => y)");
        let (labels, info) = s.labels_of(&p, &e, p.root());
        assert_eq!(labels, e.labels_of(p.root()));
        assert_eq!(info.class, PrecisionClass::Exact);
        assert_eq!(info.tier, Tier::Sub);
        assert_eq!(s.stats().cone_runs, 0, "no escalation should have run");
    }

    #[test]
    fn datatype_merges_escalate_and_refine() {
        // Two single-constructor datatypes: ≈₁ keeps them in separate
        // classes, but wrapping two *different* functions in the same
        // datatype merges them — the case result over-approximates and
        // the cubic cone separates the arms again.
        let src = "\
            datatype w = A of (int -> int) | B of (int -> int);\n\
            case A(fn x => x) of A(f) => f | B(g) => g";
        let (p, e, s) = scheduler_for(src);
        let (labels, info) = s.labels_of(&p, &e, p.root());
        let t0 = e.labels_of(p.root());
        assert!(info.suspicion > 0);
        assert!(labels.len() <= t0.len());
        // Whatever the grade, the answer must stay sound: the true
        // result (the one constructed function) must be present.
        let full = Cfa0::analyze(&p);
        for l in full.labels(&p, p.root()) {
            assert!(labels.contains(&l), "escalation dropped true label {l:?}");
        }
    }

    #[test]
    fn memoized_escalations_do_not_repay_cubic_cost() {
        let src = "\
            datatype wrap = W of (int -> int);\n\
            case W(fn x => x) of W(f) => f";
        let (p, e, s) = scheduler_for(src);
        let first = s.labels_of(&p, &e, p.root());
        let runs = s.stats().cone_runs;
        let second = s.labels_of(&p, &e, p.root());
        assert_eq!(first, second);
        assert_eq!(s.stats().cone_runs, runs, "second query re-ran the cone");
        assert_eq!(s.stats().memo_hits, 1);
    }

    #[test]
    fn exhausted_budget_degrades_to_an_honest_approx() {
        let src = "\
            datatype wrap = W of (int -> int);\n\
            case W(fn x => x) of W(f) => f";
        let p = Program::parse(src).unwrap();
        let a = Analysis::run(&p).unwrap();
        let e = QueryEngine::freeze(&a);
        let s = PrecisionScheduler::new(SuspicionIndex::build(&a, &e), a.policy(), 0);
        let (labels, info) = s.labels_of(&p, &e, p.root());
        assert_eq!(labels, e.labels_of(p.root()));
        assert_ne!(info.tier, Tier::Cone);
        assert_eq!(s.stats().cone_runs, 0);
        assert_eq!(s.stats().budget_spent, 0);
    }

    #[test]
    fn call_targets_follow_the_operator_site() {
        let (p, e, s) = scheduler_for("(fn x => x) 1");
        let (targets, info) = s.call_targets(&p, &e, p.root()).unwrap();
        assert_eq!(targets.len(), 1);
        assert_eq!(info.class, PrecisionClass::Exact);
        assert!(s
            .call_targets(&p, &e, targets_lam(&p, targets[0]))
            .is_none());
    }

    fn targets_lam(p: &Program, l: Label) -> ExprId {
        p.lam_of_label(l)
    }
}
