//! Call-graph construction — the "block and loop structure" artifact the
//! paper's introduction motivates CFA with: "The control-flow graph of a
//! program plays a central role in compilation."
//!
//! Nodes are the program's abstractions plus a virtual root (top-level
//! code); there is an edge `f → g` when some application site lexically
//! inside `f`'s body may call `g`. Built from per-site call targets, so
//! worst-case quadratic output (it *is* the "all calls from all call
//! sites" view, organized per function) — the paper's point is that most
//! consumers should avoid materializing it; this module is for the ones
//! that genuinely need it (inliner heuristics, recursion detection,
//! reachability).

use stcfa_core::{Analysis, QueryEngine};
use stcfa_graph::DiGraph;
use stcfa_lambda::{ExprId, ExprKind, Label, Program};

/// The call graph of a program.
#[derive(Clone, Debug)]
pub struct CallGraph {
    /// Graph over `label_count() + 1` nodes; node `label_count()` is the
    /// virtual root (top-level evaluation).
    graph: DiGraph,
    labels: usize,
}

impl CallGraph {
    /// Builds the call graph from subtransitive per-site call targets.
    ///
    /// Freezes a [`QueryEngine`] internally so the per-site target sets
    /// come out of one bit-parallel sweep instead of one BFS per site; use
    /// [`CallGraph::build_with_engine`] to share an already-frozen engine.
    pub fn build(program: &Program, analysis: &Analysis) -> CallGraph {
        Self::build_with_engine(program, &QueryEngine::freeze(analysis))
    }

    /// Builds the call graph through an existing frozen [`QueryEngine`].
    pub fn build_with_engine(program: &Program, engine: &QueryEngine) -> CallGraph {
        engine.prepare(); // every site is queried — the sweep pays for itself
        let labels = program.label_count();
        let mut graph = DiGraph::with_nodes(labels + 1);
        // Map every expression to its enclosing abstraction (or the root).
        let mut encloser = vec![labels; program.size()];
        // Walk top-down: children inherit, lambda bodies switch owner.
        fn assign(program: &Program, e: ExprId, owner: usize, encloser: &mut [usize]) {
            encloser[e.index()] = owner;
            match program.kind(e) {
                ExprKind::Lam { label, body, .. } => {
                    assign(program, *body, label.index(), encloser);
                }
                _ => {
                    let mut children = Vec::new();
                    program.for_each_child(e, |c| children.push(c));
                    for c in children {
                        assign(program, c, owner, encloser);
                    }
                }
            }
        }
        assign(program, program.root(), labels, &mut encloser);

        for app in program.app_sites() {
            let ExprKind::App { func, .. } = program.kind(app) else {
                unreachable!()
            };
            let caller = encloser[app.index()];
            for callee in engine.labels_of(*func) {
                graph.add_edge_dedup(caller, callee.index());
            }
        }
        CallGraph { graph, labels }
    }

    /// The virtual root node id.
    pub fn root(&self) -> usize {
        self.labels
    }

    /// Whether `caller` may directly call `callee`.
    pub fn calls(&self, caller: Option<Label>, callee: Label) -> bool {
        let from = caller.map_or(self.labels, |l| l.index());
        self.graph.has_edge(from, callee.index())
    }

    /// Direct callees of a function (or of top-level code for `None`).
    pub fn callees(&self, caller: Option<Label>) -> Vec<Label> {
        let from = caller.map_or(self.labels, |l| l.index());
        let mut out: Vec<Label> = self
            .graph
            .succs(from)
            .iter()
            .map(|&l| Label::from_index(l as usize))
            .collect();
        out.sort_unstable();
        out
    }

    /// Functions transitively reachable (callable) from top-level code.
    pub fn reachable_from_root(&self) -> Vec<Label> {
        let r = self.graph.reachable_from(self.labels);
        (0..self.labels)
            .filter(|&l| r.contains(l))
            .map(Label::from_index)
            .collect()
    }

    /// Whether a function can (transitively) call itself.
    pub fn is_recursive(&self, l: Label) -> bool {
        let (comp, _) = self.graph.sccs();
        // Same-SCC self test: either a self-loop or a larger cycle.
        if self.graph.has_edge(l.index(), l.index()) {
            return true;
        }
        (0..self.labels).any(|other| other != l.index() && comp[other] == comp[l.index()])
    }

    /// The underlying graph (node `root()` is top-level code).
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_cfa0::LiveCfa0;
    use stcfa_lambda::Program;

    fn build(src: &str) -> (Program, CallGraph) {
        let p = Program::parse(src).unwrap();
        let a = Analysis::run(&p).unwrap();
        let cg = CallGraph::build(&p, &a);
        (p, cg)
    }

    fn label_named(p: &Program, name: &str) -> Label {
        p.all_labels()
            .find(|&l| {
                let lam = p.lam_of_label(l);
                matches!(p.kind(lam), ExprKind::Lam { param, .. } if p.var_name(*param) == name)
            })
            .unwrap()
    }

    #[test]
    fn direct_calls_from_top_level() {
        let (p, cg) = build("(fn x => x + 1) 2");
        let f = p.all_labels().next().unwrap();
        assert!(cg.calls(None, f));
        assert_eq!(cg.callees(None), vec![f]);
    }

    #[test]
    fn nested_calls_attributed_to_enclosing_function() {
        // apply's body calls its argument; top-level calls apply.
        let src = "fun apply f = fn y => f y; apply (fn n => n + 1) 7";
        let (p, cg) = build(src);
        let apply_outer = label_named(&p, "f"); // fn f => …
        let apply_inner = label_named(&p, "y"); // fn y => f y
        let arg = label_named(&p, "n");
        assert!(cg.calls(None, apply_outer));
        assert!(
            cg.calls(None, apply_inner),
            "the curried second call is top-level"
        );
        assert!(cg.calls(Some(apply_inner), arg), "f y happens inside fn y");
        assert!(!cg.calls(Some(arg), apply_outer));
    }

    #[test]
    fn recursion_is_detected() {
        let (p, cg) = build("fun fact n = if n = 0 then 1 else n * fact (n - 1); fact 5");
        let fact = p.all_labels().next().unwrap();
        assert!(cg.is_recursive(fact));
        let (p2, cg2) = build("(fn x => x + 1) 2");
        assert!(!cg2.is_recursive(p2.all_labels().next().unwrap()));
    }

    #[test]
    fn reachability_over_approximates_liveness() {
        // A function is call-graph-reachable whenever its body is live
        // (the converse can fail: reachability ignores case/branch
        // pruning the live analysis performs).
        let srcs = [
            "let val dead = fn x => (fn y => y) 1 in (fn z => z) 2 end",
            "fun apply f = fn y => f y; apply (fn n => n + 1) 7",
            "fun id x = x; val a = id (fn u => u); a 3",
        ];
        for src in srcs {
            let p = Program::parse(src).unwrap();
            let a = Analysis::run(&p).unwrap();
            let cg = CallGraph::build(&p, &a);
            let live = LiveCfa0::analyze(&p);
            let reachable = cg.reachable_from_root();
            for l in p.all_labels() {
                let lam = p.lam_of_label(l);
                let ExprKind::Lam { body, .. } = p.kind(lam) else {
                    unreachable!()
                };
                if live.is_live(*body) {
                    assert!(
                        reachable.contains(&l),
                        "live body of {l:?} but not reachable in {src:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn higher_order_targets_appear() {
        // The stored closure is called from inside `head`'s consumer.
        let src = "\
            datatype fl = N | C of (int -> int) * fl;\n\
            fun head xs = fn d => case xs of C(f, t) => f | N => d;\n\
            (head (C(fn a => a + 1, N)) (fn z => z)) 5";
        let (p, cg) = build(src);
        let stored = label_named(&p, "a");
        assert!(
            cg.calls(None, stored),
            "the extracted closure is called at top level"
        );
    }
}
