//! Dead-binding elimination — a compiler pass combining two of the
//! linear-time analyses: a `let`/`letrec` binding can be removed when its
//! binder has no variable occurrences **and** its right-hand side is
//! effect-free (by the Section 8 effects analysis, so that eliminating it
//! cannot drop observable behaviour). Removing one binding can strand
//! others, so the pass iterates to a fixed point.

use stcfa_core::Analysis;
use stcfa_lambda::{CaseArm, ExprId, ExprKind, Literal, Program, ProgramBuilder, TyExpr, VarId};

use crate::effects::{effects, Effects};

/// Statistics of one elimination run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeadCodeStats {
    /// Bindings removed across all rounds.
    pub removed_bindings: usize,
    /// Fixed-point rounds taken.
    pub rounds: usize,
}

/// Removes dead, pure bindings until none remain. Returns the cleaned
/// program and statistics.
pub fn eliminate_dead_bindings(program: &Program) -> (Program, DeadCodeStats) {
    let mut current = program.clone();
    let mut stats = DeadCodeStats::default();
    loop {
        let analysis = match Analysis::run(&current) {
            Ok(a) => a,
            // Unbounded-type program: be conservative, change nothing.
            Err(_) => return (current, stats),
        };
        let eff = effects(&current, &analysis);
        let dead = find_dead_bindings(&current, &eff);
        if dead.is_empty() {
            return (current, stats);
        }
        stats.removed_bindings += dead.len();
        stats.rounds += 1;
        current = remove_bindings(&current, &dead);
    }
}

/// The `let`/`letrec` expressions whose binder is never referenced
/// (self-references inside a `letrec`'s own lambda do not count — they
/// disappear together with the binding) and whose right-hand side is pure.
fn find_dead_bindings(program: &Program, eff: &Effects) -> Vec<ExprId> {
    let mut used = vec![false; program.var_count()];
    for e in program.exprs() {
        if let ExprKind::Var(v) = program.kind(e) {
            used[v.index()] = true;
        }
    }
    program
        .exprs()
        .filter(|&e| match program.kind(e) {
            ExprKind::Let { binder, rhs, .. } => !used[binder.index()] && !eff.is_effectful(*rhs),
            ExprKind::LetRec { binder, lambda, .. } => {
                if used[binder.index()] {
                    // Discount occurrences inside the recursive lambda.
                    let inside = stcfa_core::expand::subtree(program, *lambda);
                    !program.exprs().any(|o| {
                        matches!(program.kind(o), ExprKind::Var(v) if v == binder)
                            && !inside.contains(&o)
                    })
                } else {
                    true
                }
            }
            _ => false,
        })
        .collect()
}

/// Rebuilds the program with each binding in `dead` replaced by its body.
fn remove_bindings(program: &Program, dead: &[ExprId]) -> Program {
    let mut c = Remover {
        src: program,
        b: ProgramBuilder::new(),
        var_map: vec![None; program.var_count()],
        dead,
    };
    // Copy the datatype environment.
    let env = program.data_env();
    for d in env.datas() {
        let name = program.interner().resolve(env.data(d).name).to_owned();
        let nd = c.b.declare_data(&name);
        for &con in &env.data(d).cons.clone() {
            let cname = program.interner().resolve(env.con(con).name).to_owned();
            let tys: Vec<TyExpr> = env.con(con).arg_tys.to_vec();
            c.b.declare_con(nd, &cname, tys);
        }
    }
    let root = c.copy(program.root());
    c.b.finish(root)
        .expect("dead-code elimination preserves validity")
}

struct Remover<'a> {
    src: &'a Program,
    b: ProgramBuilder,
    var_map: Vec<Option<VarId>>,
    dead: &'a [ExprId],
}

impl Remover<'_> {
    fn fresh_like(&mut self, old: VarId) -> VarId {
        let name = self.src.var_name(old).to_owned();
        let nv = self.b.fresh_var(&name);
        self.var_map[old.index()] = Some(nv);
        nv
    }

    fn copy(&mut self, e: ExprId) -> ExprId {
        if self.dead.contains(&e) {
            // Drop the binding (and its pure/unreferenced rhs).
            match self.src.kind(e).clone() {
                ExprKind::Let { body, .. } | ExprKind::LetRec { body, .. } => {
                    return self.copy(body);
                }
                _ => unreachable!("dead list contains only bindings"),
            }
        }
        match self.src.kind(e).clone() {
            ExprKind::Var(v) => {
                let nv = self.var_map[v.index()].expect("in scope");
                self.b.var(nv)
            }
            ExprKind::Lam { param, body, .. } => {
                let np = self.fresh_like(param);
                let nb = self.copy(body);
                self.b.lam(np, nb)
            }
            ExprKind::App { func, arg } => {
                let f = self.copy(func);
                let a = self.copy(arg);
                self.b.app(f, a)
            }
            ExprKind::Let { binder, rhs, body } => {
                let nr = self.copy(rhs);
                let nb = self.fresh_like(binder);
                let nbody = self.copy(body);
                self.b.let_(nb, nr, nbody)
            }
            ExprKind::LetRec {
                binder,
                lambda,
                body,
            } => {
                let nb = self.fresh_like(binder);
                let nl = self.copy(lambda);
                let nbody = self.copy(body);
                self.b.letrec(nb, nl, nbody)
            }
            ExprKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.copy(cond);
                let t = self.copy(then_branch);
                let e2 = self.copy(else_branch);
                self.b.if_(c, t, e2)
            }
            ExprKind::Record(items) => {
                let n: Vec<ExprId> = items.iter().map(|&i| self.copy(i)).collect();
                self.b.record(n)
            }
            ExprKind::Proj { index, tuple } => {
                let t = self.copy(tuple);
                self.b.proj(index, t)
            }
            ExprKind::Con { con, args } => {
                let n: Vec<ExprId> = args.iter().map(|&a| self.copy(a)).collect();
                self.b.con(con, n)
            }
            ExprKind::Case {
                scrutinee,
                arms,
                default,
            } => {
                let s = self.copy(scrutinee);
                let narms: Vec<_> = arms
                    .iter()
                    .map(|arm: &CaseArm| {
                        let nb: Vec<VarId> =
                            arm.binders.iter().map(|&b| self.fresh_like(b)).collect();
                        let body = self.copy(arm.body);
                        (arm.con, nb, body)
                    })
                    .collect();
                let nd = default.map(|d| self.copy(d));
                self.b.case(s, narms, nd)
            }
            ExprKind::Lit(Literal::Int(n)) => self.b.int(n),
            ExprKind::Lit(Literal::Bool(v)) => self.b.bool(v),
            ExprKind::Lit(Literal::Unit) => self.b.unit(),
            ExprKind::Prim { op, args } => {
                let n: Vec<ExprId> = args.iter().map(|&a| self.copy(a)).collect();
                self.b.prim(op, n)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_lambda::eval::{eval, EvalOptions};

    fn outputs(p: &Program) -> (String, Vec<i64>) {
        let out = eval(p, EvalOptions::default()).unwrap();
        (format!("{:?}", out.value), out.outputs)
    }

    #[test]
    fn removes_unused_pure_binding() {
        let p = Program::parse("let val dead = fn x => x in 42 end").unwrap();
        let (q, stats) = eliminate_dead_bindings(&p);
        assert_eq!(stats.removed_bindings, 1);
        assert!(q.size() < p.size());
        assert!(matches!(q.kind(q.root()), ExprKind::Lit(Literal::Int(42))));
    }

    #[test]
    fn keeps_effectful_bindings() {
        let p = Program::parse("let val noisy = print 1 in 42 end").unwrap();
        let (q, stats) = eliminate_dead_bindings(&p);
        assert_eq!(stats.removed_bindings, 0);
        assert_eq!(q.size(), p.size());
        assert_eq!(outputs(&p), outputs(&q));
    }

    #[test]
    fn cascades_through_chains() {
        // c uses b uses a; none are used by the result: all three go, but
        // only after the uses disappear round by round.
        let p = Program::parse(
            "let val a = fn x => x in\n\
             let val b = fn y => a y in\n\
             let val c = fn z => b z in\n\
             7 end end end",
        )
        .unwrap();
        let (q, stats) = eliminate_dead_bindings(&p);
        assert_eq!(stats.removed_bindings, 3);
        assert!(stats.rounds >= 1);
        assert!(matches!(q.kind(q.root()), ExprKind::Lit(Literal::Int(7))));
    }

    #[test]
    fn preserves_behaviour_on_mixed_programs() {
        let srcs = [
            "fun used x = x + 1; let val dead = fn q => q in print (used 1) end",
            "val keep = print 5; let val drop = (1, 2) in 9 end",
            "fun f n = if n = 0 then 0 else f (n - 1); let val g = fn u => u in f 3 end",
        ];
        for src in srcs {
            let p = Program::parse(src).unwrap();
            let (q, _) = eliminate_dead_bindings(&p);
            assert_eq!(outputs(&p), outputs(&q), "behaviour changed for {src:?}");
        }
    }

    #[test]
    fn dead_letrec_is_removed_even_if_self_referencing() {
        // loop references itself but nothing else references loop: the
        // self-occurrence vanishes with the binding.
        let p = Program::parse("val rec loop = fn x => loop x; 3").unwrap();
        let (q, stats) = eliminate_dead_bindings(&p);
        assert_eq!(stats.removed_bindings, 1);
        assert!(matches!(q.kind(q.root()), ExprKind::Lit(Literal::Int(3))));
        assert_eq!(outputs(&p), outputs(&q));
    }

    #[test]
    fn live_letrec_is_kept() {
        let p = Program::parse("fun f n = if n = 0 then 0 else f (n - 1); f 2").unwrap();
        let (q, stats) = eliminate_dead_bindings(&p);
        assert_eq!(stats.removed_bindings, 0);
        assert_eq!(outputs(&p), outputs(&q));
    }
}
