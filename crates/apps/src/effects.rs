//! Linear-time effects analysis (paper, Section 8).
//!
//! "Find the side-effecting expressions in a program." The naive pipeline —
//! run CFA, materialize the functions callable from every call site, then
//! post-process — is at least quadratic because the intermediate
//! representation is quadratic. The paper's alternative runs directly on
//! the subtransitive graph with a *colouring*:
//!
//! - (a) an application `(e₁ e₂)` is red if `e₁`, `e₂` or `ran(e₁)` is red;
//! - (b) a node `ran(e)` is red if it has an edge `ran(e) → e′` with `e′`
//!   red.
//!
//! plus the structural seeds/propagation (side-effecting primitives are
//! red; an expression with a red evaluated sub-expression is red — a
//! λ-abstraction does *not* evaluate its body). This is one reverse
//! reachability over a linear-size structure, hence linear time.
//!
//! [`effects_via_cfa0`] is the quadratic reference pipeline used to verify
//! that the colouring computes exactly the same set.

use stcfa_cfa0::Cfa0;
use stcfa_core::{Analysis, NodeId, NodeKind};
use stcfa_lambda::{ExprId, ExprKind, Label, Program};

/// Result of the effects analysis: per-occurrence "may have a side effect
/// when evaluated".
#[derive(Clone, Debug)]
pub struct Effects {
    red: Vec<bool>,
}

impl Effects {
    /// Whether evaluating `e` may perform a side effect.
    pub fn is_effectful(&self, e: ExprId) -> bool {
        self.red[e.index()]
    }

    /// All effectful occurrences, in id order.
    pub fn effectful_exprs(&self) -> Vec<ExprId> {
        self.red
            .iter()
            .enumerate()
            .filter(|&(_i, &r)| r)
            .map(|(i, &_r)| ExprId::from_index(i))
            .collect()
    }

    /// Number of effectful occurrences.
    pub fn count(&self) -> usize {
        self.red.iter().filter(|&&r| r).count()
    }
}

/// One unit of colouring work.
enum Item {
    Expr(ExprId),
    RanNode(NodeId),
}

/// Runs the linear-time colouring on the subtransitive graph.
pub fn effects(program: &Program, analysis: &Analysis) -> Effects {
    let n_exprs = program.size();
    let n_nodes = analysis.node_count();

    // Parent links restricted to *evaluated* children (a lambda's body is
    // not evaluated when the lambda is).
    let mut parent: Vec<Option<ExprId>> = vec![None; n_exprs];
    for e in program.exprs() {
        match program.kind(e) {
            ExprKind::Lam { .. } => {}
            _ => program.for_each_child(e, |c| parent[c.index()] = Some(e)),
        }
    }

    // Reverse index: for every node, the ran-nodes with an edge to it.
    let mut ran_preds: Vec<Vec<u32>> = vec![Vec::new(); n_nodes];
    // Applications watching each ran-node (rule (a), third disjunct).
    let mut apps_by_ran: Vec<Vec<ExprId>> = vec![Vec::new(); n_nodes];
    let nodes = analysis.nodes();
    for id in nodes.ids() {
        if matches!(nodes.kind(id), NodeKind::Ran(_)) {
            for &s in analysis.succs(id) {
                ran_preds[s as usize].push(id.index() as u32);
            }
        }
    }
    for e in program.exprs() {
        if let ExprKind::App { func, .. } = program.kind(e) {
            let fnode = analysis.node_of_expr(*func);
            if let Some(r) = nodes.get(NodeKind::Ran(fnode)) {
                apps_by_ran[r.index()].push(e);
            }
        }
    }

    let mut red_expr = vec![false; n_exprs];
    let mut red_node = vec![false; n_nodes];
    let mut work: Vec<Item> = Vec::new();

    // Seeds: applications of side-effecting primitives.
    for e in program.exprs() {
        if let ExprKind::Prim { op, .. } = program.kind(e) {
            if op.is_effectful() {
                red_expr[e.index()] = true;
                work.push(Item::Expr(e));
            }
        }
    }

    while let Some(item) = work.pop() {
        match item {
            Item::Expr(e) => {
                // Structural propagation to the evaluating parent.
                if let Some(p) = parent[e.index()] {
                    if !red_expr[p.index()] {
                        red_expr[p.index()] = true;
                        work.push(Item::Expr(p));
                    }
                }
                // Rule (b): ran-nodes pointing at this expression's node.
                // Variable occurrences map to binder nodes, and looking a
                // variable up has no effect, so only non-var expressions
                // transmit (their node kind is `Expr`).
                let n = analysis.node_of_expr(e);
                if matches!(nodes.kind(n), NodeKind::Expr(_)) {
                    for &r in &ran_preds[n.index()] {
                        if !red_node[r as usize] {
                            red_node[r as usize] = true;
                            work.push(Item::RanNode(NodeId::from_index(r as usize)));
                        }
                    }
                }
            }
            Item::RanNode(r) => {
                // Rule (a): applications whose operator's ran is red.
                for &app in &apps_by_ran[r.index()] {
                    if !red_expr[app.index()] {
                        red_expr[app.index()] = true;
                        work.push(Item::Expr(app));
                    }
                }
                // Rule (b), transitively: ran-nodes pointing at this one.
                for &q in &ran_preds[r.index()] {
                    if !red_node[q as usize] {
                        red_node[q as usize] = true;
                        work.push(Item::RanNode(NodeId::from_index(q as usize)));
                    }
                }
            }
        }
    }

    Effects { red: red_expr }
}

/// The quadratic reference: run full CFA, then iterate the textbook
/// effects conditions to fixpoint. Used to validate [`effects`].
pub fn effects_via_cfa0(program: &Program, cfa: &Cfa0) -> Effects {
    let n = program.size();
    let mut red = vec![false; n];
    // Pre-compute call targets per application.
    let targets: Vec<Option<Vec<Label>>> = program
        .exprs()
        .map(|e| cfa.call_targets(program, e))
        .collect();
    loop {
        let mut changed = false;
        for e in program.exprs() {
            if red[e.index()] {
                continue;
            }
            let mut now_red = false;
            match program.kind(e) {
                ExprKind::Prim { op, args } => {
                    now_red = op.is_effectful() || args.iter().any(|a| red[a.index()]);
                }
                ExprKind::Lam { .. } => {}
                ExprKind::App { func, arg } => {
                    now_red = red[func.index()] || red[arg.index()];
                    if !now_red {
                        if let Some(ls) = &targets[e.index()] {
                            for l in ls {
                                let lam = program.lam_of_label(*l);
                                if let ExprKind::Lam { body, .. } = program.kind(lam) {
                                    if red[body.index()] {
                                        now_red = true;
                                        break;
                                    }
                                }
                            }
                        }
                    }
                }
                _ => {
                    let mut any = false;
                    program.for_each_child(e, |c| any |= red[c.index()]);
                    now_red = any;
                }
            }
            if now_red {
                red[e.index()] = true;
                changed = true;
            }
        }
        if !changed {
            return Effects { red };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_cfa0::Cfa0;
    use stcfa_core::Analysis;
    use stcfa_lambda::Program;

    fn both(src: &str) -> (Program, Effects, Effects) {
        let p = Program::parse(src).unwrap();
        let a = Analysis::run(&p).unwrap();
        let fast = effects(&p, &a);
        let slow = effects_via_cfa0(&p, &Cfa0::analyze(&p));
        (p, fast, slow)
    }

    fn assert_agree(src: &str) {
        let (p, fast, slow) = both(src);
        for e in p.exprs() {
            assert_eq!(
                fast.is_effectful(e),
                slow.is_effectful(e),
                "colouring disagrees with reference at {e:?} ({:?}) in {src:?}",
                p.kind(e)
            );
        }
    }

    #[test]
    fn direct_effects() {
        let (p, fast, _) = both("print 1");
        assert!(fast.is_effectful(p.root()));
        let (p2, fast2, _) = both("1 + 2");
        assert!(!fast2.is_effectful(p2.root()));
    }

    #[test]
    fn effects_flow_through_calls() {
        // Calling a function whose body prints is effectful.
        let (p, fast, _) = both("(fn x => print x) 3");
        assert!(fast.is_effectful(p.root()));
        // Merely *mentioning* the function is not.
        let (p2, fast2, _) = both("let val f = fn x => print x in 1 end");
        assert!(!fast2.is_effectful(p2.root()));
    }

    #[test]
    fn effects_through_higher_order_flow() {
        // The printer reaches the call site through `apply`.
        let src = "\
            fun apply f = fn x => f x;\n\
            apply (fn n => print n) 7";
        let (p, fast, _) = both(src);
        assert!(fast.is_effectful(p.root()));
    }

    #[test]
    fn pure_higher_order_program_is_clean() {
        let src = "fun apply f = fn x => f x; apply (fn n => n + 1) 7";
        let (p, fast, _) = both(src);
        assert!(!fast.is_effectful(p.root()));
    }

    #[test]
    fn matches_reference_on_corpus() {
        for src in [
            "print 1",
            "(fn x => print x) 3",
            "fun apply f = fn x => f x; apply (fn n => print n) 7",
            "fun apply f = fn x => f x; apply (fn n => n + 1) 7",
            "if 1 < 2 then print 1 else 2",
            "let val f = fn x => print x in f end",
            "let val f = fn x => print x in f 1 end",
            "(fn p => #1 p) ((fn x => print x), (fn y => y)) 5",
            "fun id x = x; (id (fn u => print u)) 3",
            "val u = readint; u + 1",
            "(fn f => fn g => g f) (fn a => print a) (fn h => h 1)",
        ] {
            assert_agree(src);
        }
    }

    #[test]
    fn effect_inside_unreached_branch_still_flagged() {
        // May-analysis: both branches count.
        let (p, fast, _) = both("if true then 1 else print 2");
        assert!(fast.is_effectful(p.root()));
    }

    #[test]
    fn count_and_listing() {
        let (_, fast, _) = both("val a = print 1; val b = print 2; 3");
        assert!(fast.count() >= 2);
        assert_eq!(fast.effectful_exprs().len(), fast.count());
    }
}
