//! Linear-time CFA-consuming applications (paper, Sections 8–9 and the
//! abstract).
//!
//! The paper's thesis is that the "all calls from all call sites" view of
//! CFA is the wrong interface: consumers should run directly on the
//! subtransitive graph, never materializing the quadratic table. This
//! crate implements the paper's three consumers plus the optimization they
//! motivate:
//!
//! - [`mod@effects`] — which expressions may have side effects (Section 8), by
//!   graph colouring; with a quadratic reference implementation for
//!   differential testing.
//! - [`klimited`] — per-call-site function sets cut off at `k` with a
//!   "many" token (Section 9).
//! - [`called_once`] — functions called from exactly one call site
//!   (abstract, third bullet).
//! - [`callgraph`] — per-function call-graph construction (reachability,
//!   recursion detection).
//! - [`deadcode`] — dead-binding elimination driven by the effects
//!   analysis.
//! - [`inline`] — an inliner that combines 1-limited and called-once
//!   analysis and rewrites the program.
//!
//! ```
//! use stcfa_lambda::Program;
//! use stcfa_core::Analysis;
//! use stcfa_apps::effects::effects;
//!
//! let p = Program::parse("(fn x => print x) 3").unwrap();
//! let a = Analysis::run(&p).unwrap();
//! assert!(effects(&p, &a).is_effectful(p.root()));
//! ```

#![warn(missing_docs)]

pub mod called_once;
pub mod callgraph;
pub mod deadcode;
pub mod effects;
pub mod inline;
pub mod klimited;

pub use called_once::{CallSites, CalledOnce};
pub use callgraph::CallGraph;
pub use deadcode::{eliminate_dead_bindings, DeadCodeStats};
pub use effects::{effects, effects_via_cfa0, Effects};
pub use inline::{find_candidates, inline_once, Candidate, InlineError};
pub use klimited::{KLimited, KSet};
