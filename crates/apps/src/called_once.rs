//! Linear-time called-once analysis (abstract, third bullet): "identify
//! all functions called from only one call-site".
//!
//! A label `l` is called from call site `a = (e₁ e₂)` when `l ∈ L(e₁)`.
//! Counting call sites per label by querying every site is quadratic; the
//! linear algorithm runs a 1-limited *site*-set propagation in the flow
//! direction of the subtransitive graph: seed each operator node with its
//! application site, saturate at two sites ("many"), and read the answer
//! off at each abstraction's node.

use stcfa_core::{Analysis, NodeId, QueryEngine};
use stcfa_lambda::{ExprId, ExprKind, Label, Program};

/// How many call sites can call one function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallSites {
    /// The function is never called (dead, or only passed around).
    None,
    /// Exactly one call site (the inlining/specialization candidate).
    One(ExprId),
    /// Two or more call sites.
    Many,
}

impl CallSites {
    fn merge(&mut self, other: CallSites) -> bool {
        use CallSites::*;
        let next = match (*self, other) {
            (None, x) | (x, None) => x,
            (One(a), One(b)) if a == b => One(a),
            _ => Many,
        };
        if next != *self {
            *self = next;
            true
        } else {
            false
        }
    }
}

/// Per-label call-site counts.
#[derive(Clone, Debug)]
pub struct CalledOnce {
    per_label: Vec<CallSites>,
}

impl CalledOnce {
    /// Runs the linear-time propagation.
    pub fn run(program: &Program, analysis: &Analysis) -> CalledOnce {
        let n = analysis.node_count();
        let mut ann: Vec<CallSites> = vec![CallSites::None; n];
        let mut work: Vec<u32> = Vec::new();
        let mut queued = vec![false; n];
        // Seed: each application site marks its operator's node.
        for e in program.exprs() {
            if let ExprKind::App { func, .. } = program.kind(e) {
                let f = analysis.node_of_expr(*func);
                if ann[f.index()].merge(CallSites::One(e)) && !queued[f.index()] {
                    queued[f.index()] = true;
                    work.push(f.index() as u32);
                }
            }
        }
        // Propagate towards value sources (forward along edges): if node n
        // may be called from sites S, everything n evaluates to may be too.
        while let Some(i) = work.pop() {
            queued[i as usize] = false;
            let current = ann[i as usize];
            for &s in analysis.succs(NodeId::from_index(i as usize)) {
                if ann[s as usize].merge(current) && !queued[s as usize] {
                    queued[s as usize] = true;
                    work.push(s);
                }
            }
        }
        let per_label = program
            .all_labels()
            .map(|l| ann[analysis.node_of_label(l).index()])
            .collect();
        CalledOnce { per_label }
    }

    /// The quadratic reference: query `L(e₁)` at every application site
    /// with a fresh BFS (kept as the trusted slow path tests diff against).
    pub fn via_queries(program: &Program, analysis: &Analysis) -> CalledOnce {
        let mut per_label = vec![CallSites::None; program.label_count()];
        for e in program.exprs() {
            if let ExprKind::App { func, .. } = program.kind(e) {
                for l in analysis.labels_of(*func) {
                    per_label[l.index()].merge(CallSites::One(e));
                }
            }
        }
        CalledOnce { per_label }
    }

    /// [`CalledOnce::via_queries`] through a frozen [`QueryEngine`]: same
    /// per-site target sets, one summary sweep instead of a BFS per site.
    pub fn via_engine(program: &Program, engine: &QueryEngine) -> CalledOnce {
        engine.prepare();
        let mut per_label = vec![CallSites::None; program.label_count()];
        for e in program.exprs() {
            if let ExprKind::App { func, .. } = program.kind(e) {
                for l in engine.labels_of(*func) {
                    per_label[l.index()].merge(CallSites::One(e));
                }
            }
        }
        CalledOnce { per_label }
    }

    /// Call-site summary for `l`.
    pub fn of(&self, l: Label) -> CallSites {
        self.per_label[l.index()]
    }

    /// Labels called from exactly one site.
    pub fn called_once(&self) -> Vec<(Label, ExprId)> {
        self.per_label
            .iter()
            .enumerate()
            .filter_map(|(i, cs)| match cs {
                CallSites::One(site) => Some((Label::from_index(i), *site)),
                _ => None,
            })
            .collect()
    }

    /// Labels never called from any site (dead or escaping-only functions).
    pub fn never_called(&self) -> Vec<Label> {
        self.per_label
            .iter()
            .enumerate()
            .filter(|&(_i, cs)| matches!(cs, CallSites::None))
            .map(|(i, _cs)| Label::from_index(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_core::Analysis;
    use stcfa_lambda::Program;

    fn run(src: &str) -> (Program, Analysis, CalledOnce) {
        let p = Program::parse(src).unwrap();
        let a = Analysis::run(&p).unwrap();
        let c = CalledOnce::run(&p, &a);
        (p, a, c)
    }

    #[test]
    fn single_call_site() {
        let (p, _, c) = run("(fn x => x + 1) 2");
        let l = p.all_labels().next().unwrap();
        assert!(matches!(c.of(l), CallSites::One(_)));
        assert_eq!(c.called_once().len(), 1);
    }

    #[test]
    fn never_called_function() {
        let (p, _, c) = run("let val dead = fn x => x in 1 end");
        let l = p.all_labels().next().unwrap();
        assert_eq!(c.of(l), CallSites::None);
        assert_eq!(c.never_called(), vec![l]);
    }

    #[test]
    fn two_call_sites_is_many() {
        let (p, _, c) = run("fun id x = x; val a = id 1; val b = id 2; b");
        // id's lambda is called from two sites.
        let id_label = p.all_labels().next().unwrap();
        assert_eq!(c.of(id_label), CallSites::Many);
    }

    #[test]
    fn same_site_through_merge_stays_one() {
        // Both branches produce different functions, called at one site.
        let (p, _, c) = run("(if true then fn a => a else fn b => b) 1");
        for l in p.all_labels() {
            assert!(matches!(c.of(l), CallSites::One(_)), "label {l:?}");
        }
    }

    #[test]
    fn matches_quadratic_reference() {
        let corpus = [
            "(fn x => x + 1) 2",
            "fun id x = x; val a = id 1; val b = id 2; b",
            "fun apply f = fn x => f x; apply (fn n => n) 7",
            "let val t = fn s => s s in t (fn w => w) end",
            "(if true then fn a => a else fn b => b) 1",
            "fun compose f = fn g => fn x => f (g x); compose (fn a => a) (fn b => b) (fn c => c)",
            "let val dead = fn x => x in (fn y => y) 1 end",
        ];
        for src in corpus {
            let p = Program::parse(src).unwrap();
            let a = Analysis::run(&p).unwrap();
            let fast = CalledOnce::run(&p, &a);
            let slow = CalledOnce::via_queries(&p, &a);
            let engine = CalledOnce::via_engine(&p, &stcfa_core::QueryEngine::freeze(&a));
            for l in p.all_labels() {
                assert_eq!(fast.of(l), slow.of(l), "label {l:?} in {src:?}");
                assert_eq!(engine.of(l), slow.of(l), "engine path at {l:?} in {src:?}");
            }
        }
    }

    #[test]
    fn higher_order_callee_counted_at_indirect_site() {
        // `f` is called inside apply: the argument function's call site is
        // apply's internal application, once.
        let (p, _, c) = run("fun apply f = fn x => f x; apply (fn n => n) 7");
        let arg_label = p.all_labels().last().unwrap();
        assert!(matches!(c.of(arg_label), CallSites::One(_)));
    }
}
