//! Function inlining driven by the linear-time analyses — the motivating
//! consumer the paper names for k-limited and called-once CFA ("Examples of
//! these kinds of applications include inlining and specialization").
//!
//! A call site is an *inline candidate* when
//!
//! 1. 1-limited CFA reports exactly one callable function there, and
//! 2. called-once analysis reports that function is called from exactly
//!    that site (so inlining cannot duplicate work), and
//! 3. the operator is a variable or a literal abstraction (so dropping it
//!    loses no effects), and
//! 4. every free variable of the function body is in scope at the site
//!    (checked during the rewrite).
//!
//! [`inline_once`] rewrites `(e₁ e₂)` to `let x = e₂ in body end` with
//! fresh binders, producing a new valid [`Program`].

use std::error::Error;
use std::fmt;

use stcfa_core::Analysis;
use stcfa_lambda::{ExprId, ExprKind, Label, Literal, Program, ProgramBuilder, TyExpr, VarId};

use crate::called_once::{CallSites, CalledOnce};
use crate::klimited::KLimited;

/// An application site that can be safely inlined.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Candidate {
    /// The application `(e₁ e₂)`.
    pub site: ExprId,
    /// The unique function called there.
    pub label: Label,
}

/// Why a rewrite was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InlineError {
    /// The site is not an application.
    NotAnApplication(ExprId),
    /// More than one (or no) function can be called at the site.
    NotUnique(ExprId),
    /// The function is called from more than this site.
    NotCalledOnce(Label),
    /// The operator expression could have effects we would drop.
    OperatorNotTrivial(ExprId),
    /// A free variable of the body is not in scope at the site.
    OutOfScope {
        /// The function body's free variable.
        var: String,
    },
}

impl fmt::Display for InlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InlineError::NotAnApplication(e) => write!(f, "{e:?} is not an application"),
            InlineError::NotUnique(e) => {
                write!(f, "call site {e:?} does not have a unique target")
            }
            InlineError::NotCalledOnce(l) => {
                write!(f, "function {l:?} is called from more than one site")
            }
            InlineError::OperatorNotTrivial(e) => {
                write!(f, "operator at {e:?} is not a variable or abstraction")
            }
            InlineError::OutOfScope { var } => {
                write!(
                    f,
                    "free variable `{var}` of the body is not in scope at the site"
                )
            }
        }
    }
}

impl Error for InlineError {}

/// Finds all inline candidates using the two linear-time analyses.
pub fn find_candidates(program: &Program, analysis: &Analysis) -> Vec<Candidate> {
    let kl = KLimited::run(analysis, 1);
    let co = CalledOnce::run(program, analysis);
    let mut out = Vec::new();
    for site in program.app_sites() {
        let ExprKind::App { func, .. } = program.kind(site) else {
            unreachable!()
        };
        if !matches!(program.kind(*func), ExprKind::Var(_) | ExprKind::Lam { .. }) {
            continue;
        }
        let label = match kl.of_expr(analysis, *func).as_small() {
            Some([l]) => *l,
            _ => continue,
        };
        if co.of(label) == CallSites::One(site) {
            out.push(Candidate { site, label });
        }
    }
    out
}

/// Rewrites one candidate call site `(e₁ e₂)` into
/// `let x = e₂ in body end`, returning the new program.
pub fn inline_once(
    program: &Program,
    analysis: &Analysis,
    site: ExprId,
) -> Result<Program, InlineError> {
    let ExprKind::App { func, .. } = program.kind(site) else {
        return Err(InlineError::NotAnApplication(site));
    };
    if !matches!(program.kind(*func), ExprKind::Var(_) | ExprKind::Lam { .. }) {
        return Err(InlineError::OperatorNotTrivial(site));
    }
    let kl = KLimited::run(analysis, 1);
    let label = match kl.of_expr(analysis, *func).as_small() {
        Some([l]) => *l,
        _ => return Err(InlineError::NotUnique(site)),
    };
    let co = CalledOnce::run(program, analysis);
    if co.of(label) != CallSites::One(site) {
        return Err(InlineError::NotCalledOnce(label));
    }
    let lam = program.lam_of_label(label);
    let ExprKind::Lam { param, body, .. } = program.kind(lam) else {
        unreachable!("labels map to abstractions")
    };
    let mut copier = Copier {
        src: program,
        b: ProgramBuilder::new(),
        var_map: vec![None; program.var_count()],
        site,
        lam_param: *param,
        lam_body: *body,
        error: None,
    };
    copier.copy_data_env();
    let root = copier.copy(program.root());
    if let Some(e) = copier.error {
        return Err(e);
    }
    Ok(copier
        .b
        .finish(root)
        .expect("inlining preserves program validity"))
}

struct Copier<'a> {
    src: &'a Program,
    b: ProgramBuilder,
    var_map: Vec<Option<VarId>>,
    site: ExprId,
    lam_param: VarId,
    lam_body: ExprId,
    error: Option<InlineError>,
}

impl Copier<'_> {
    fn copy_data_env(&mut self) {
        let env = self.src.data_env();
        for d in env.datas() {
            let name = self.src.interner().resolve(env.data(d).name).to_owned();
            let nd = self.b.declare_data(&name);
            debug_assert_eq!(nd, d, "datatype ids are preserved in order");
            for &c in &env.data(d).cons.clone() {
                let cname = self.src.interner().resolve(env.con(c).name).to_owned();
                let tys: Vec<TyExpr> = env.con(c).arg_tys.to_vec();
                let nc = self.b.declare_con(nd, &cname, tys);
                debug_assert_eq!(nc, c, "constructor ids are preserved in order");
            }
        }
    }

    fn fresh_like(&mut self, old: VarId) -> VarId {
        let name = self.src.var_name(old).to_owned();
        let nv = self.b.fresh_var(&name);
        self.var_map[old.index()] = Some(nv);
        nv
    }

    fn copy(&mut self, e: ExprId) -> ExprId {
        if e == self.site {
            return self.copy_inlined_site(e);
        }
        match self.src.kind(e).clone() {
            ExprKind::Var(v) => match self.var_map[v.index()] {
                Some(nv) => self.b.var(nv),
                None => {
                    if self.error.is_none() {
                        self.error = Some(InlineError::OutOfScope {
                            var: self.src.var_name(v).to_owned(),
                        });
                    }
                    self.b.unit() // placeholder; the error aborts the result
                }
            },
            ExprKind::Lam { param, body, .. } => {
                let np = self.fresh_like(param);
                let nb = self.copy(body);
                self.b.lam(np, nb)
            }
            ExprKind::App { func, arg } => {
                let nf = self.copy(func);
                let na = self.copy(arg);
                self.b.app(nf, na)
            }
            ExprKind::Let { binder, rhs, body } => {
                let nr = self.copy(rhs);
                let nb = self.fresh_like(binder);
                let nbody = self.copy(body);
                self.b.let_(nb, nr, nbody)
            }
            ExprKind::LetRec {
                binder,
                lambda,
                body,
            } => {
                let nb = self.fresh_like(binder);
                let nl = self.copy(lambda);
                let nbody = self.copy(body);
                self.b.letrec(nb, nl, nbody)
            }
            ExprKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let nc = self.copy(cond);
                let nt = self.copy(then_branch);
                let ne = self.copy(else_branch);
                self.b.if_(nc, nt, ne)
            }
            ExprKind::Record(items) => {
                let nitems: Vec<ExprId> = items.iter().map(|&i| self.copy(i)).collect();
                self.b.record(nitems)
            }
            ExprKind::Proj { index, tuple } => {
                let nt = self.copy(tuple);
                self.b.proj(index, nt)
            }
            ExprKind::Con { con, args } => {
                let nargs: Vec<ExprId> = args.iter().map(|&a| self.copy(a)).collect();
                self.b.con(con, nargs)
            }
            ExprKind::Case {
                scrutinee,
                arms,
                default,
            } => {
                let ns = self.copy(scrutinee);
                let narms: Vec<_> = arms
                    .iter()
                    .map(|arm| {
                        let nbinders: Vec<VarId> =
                            arm.binders.iter().map(|&b| self.fresh_like(b)).collect();
                        let nbody = self.copy(arm.body);
                        (arm.con, nbinders, nbody)
                    })
                    .collect();
                let ndefault = default.map(|d| self.copy(d));
                self.b.case(ns, narms, ndefault)
            }
            ExprKind::Lit(Literal::Int(n)) => self.b.int(n),
            ExprKind::Lit(Literal::Bool(v)) => self.b.bool(v),
            ExprKind::Lit(Literal::Unit) => self.b.unit(),
            ExprKind::Prim { op, args } => {
                let nargs: Vec<ExprId> = args.iter().map(|&a| self.copy(a)).collect();
                self.b.prim(op, nargs)
            }
        }
    }

    /// `(e₁ e₂)` becomes `let x = e₂ in body end`.
    fn copy_inlined_site(&mut self, site: ExprId) -> ExprId {
        let ExprKind::App { arg, .. } = self.src.kind(site).clone() else {
            unreachable!("site is an application")
        };
        let narg = self.copy(arg);
        let nparam = self.fresh_like(self.lam_param);
        let nbody = self.copy(self.lam_body);
        self.b.let_(nparam, narg, nbody)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_lambda::eval::{eval, EvalOptions, Value};

    fn run_i64(p: &Program) -> (i64, Vec<i64>) {
        let out = eval(p, EvalOptions::default()).unwrap();
        match out.value {
            Value::Int(n) => (n, out.outputs),
            other => panic!("expected int, got {other:?}"),
        }
    }

    fn analyze(p: &Program) -> Analysis {
        Analysis::run(p).unwrap()
    }

    #[test]
    fn finds_beta_redex_candidate() {
        let p = Program::parse("(fn x => x + 1) 2").unwrap();
        let a = analyze(&p);
        let cands = find_candidates(&p, &a);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].site, p.root());
    }

    #[test]
    fn inline_preserves_semantics() {
        let cases = [
            "(fn x => x + 1) 2",
            "let val f = fn x => x * 2 in f 21 end",
            "fun helper n = n + 10; helper 32",
            "let val f = fn x => let val u = print x in x end in f 5 end",
        ];
        for src in cases {
            let p = Program::parse(src).unwrap();
            let a = analyze(&p);
            let cands = find_candidates(&p, &a);
            assert!(!cands.is_empty(), "no candidates in {src:?}");
            let before = run_i64(&p);
            let q = inline_once(&p, &a, cands[0].site).unwrap_or_else(|e| panic!("{src:?}: {e}"));
            // No application remains at the rewritten site's position when
            // the program was a single redex.
            let after = run_i64(&q);
            assert_eq!(before, after, "inlining changed behaviour of {src:?}");
        }
    }

    #[test]
    fn twice_called_function_is_rejected() {
        let p = Program::parse("fun id x = x; val a = id 1; val b = id 2; b").unwrap();
        let a = analyze(&p);
        assert!(find_candidates(&p, &a).is_empty());
        let site = p.app_sites()[0];
        assert!(matches!(
            inline_once(&p, &a, site),
            Err(InlineError::NotCalledOnce(_))
        ));
    }

    #[test]
    fn non_application_is_rejected() {
        let p = Program::parse("(fn x => x + 1) 2").unwrap();
        let a = analyze(&p);
        let lit = p
            .exprs()
            .find(|&e| matches!(p.kind(e), ExprKind::Lit(Literal::Int(2))))
            .unwrap();
        assert!(matches!(
            inline_once(&p, &a, lit),
            Err(InlineError::NotAnApplication(_))
        ));
    }

    #[test]
    fn inlined_program_is_smaller_or_equal_in_apps() {
        let p = Program::parse("let val f = fn x => x + 1 in f 41 end").unwrap();
        let a = analyze(&p);
        let cands = find_candidates(&p, &a);
        let q = inline_once(&p, &a, cands[0].site).unwrap();
        assert!(q.app_sites().len() < p.app_sites().len());
        assert_eq!(run_i64(&q).0, 42);
    }

    #[test]
    fn effects_in_argument_are_preserved_in_order() {
        let p = Program::parse("let val f = fn x => x + 1 in f (let val u = print 7 in 8 end) end")
            .unwrap();
        let a = analyze(&p);
        let cands = find_candidates(&p, &a);
        let q = inline_once(&p, &a, cands[0].site).unwrap();
        let (val_before, out_before) = run_i64(&p);
        let (val_after, out_after) = run_i64(&q);
        assert_eq!(val_before, val_after);
        assert_eq!(out_before, out_after);
    }
}
