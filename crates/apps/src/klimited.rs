//! Linear-time k-limited CFA (paper, Section 9).
//!
//! "In many applications of CFA, we are only interested in knowing
//! information about call sites where a small number of functions can be
//! called … We annotate each node with a value that is either a small set
//! or the token *many*," seeded at abstraction nodes with singletons and
//! propagated backwards along edges. Each node's annotation can grow at
//! most `k + 1` times, so change propagation gives a linear-time
//! algorithm.

use stcfa_core::{Analysis, NodeId};
use stcfa_lambda::{ExprId, ExprKind, Label, Program};

/// A label set bounded at `k`: either the exact (small) set or "many".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KSet {
    /// At most `k` labels, sorted.
    Small(Vec<Label>),
    /// More than `k` labels reach this point.
    Many,
}

impl KSet {
    /// The exact labels, if few enough.
    pub fn as_small(&self) -> Option<&[Label]> {
        match self {
            KSet::Small(v) => Some(v),
            KSet::Many => None,
        }
    }

    /// Whether this is the `Many` token.
    pub fn is_many(&self) -> bool {
        matches!(self, KSet::Many)
    }

    /// Merges `other` into `self` under the bound `k`; returns `true` on
    /// change.
    fn merge(&mut self, other: &KSet, k: usize) -> bool {
        match (&mut *self, other) {
            (KSet::Many, _) => false,
            (slot, KSet::Many) => {
                *slot = KSet::Many;
                true
            }
            (KSet::Small(mine), KSet::Small(theirs)) => {
                let mut changed = false;
                for l in theirs {
                    if let Err(pos) = mine.binary_search(l) {
                        mine.insert(pos, *l);
                        changed = true;
                    }
                }
                if mine.len() > k {
                    *self = KSet::Many;
                    return true;
                }
                changed
            }
        }
    }
}

/// The k-limited annotation of every graph node.
#[derive(Clone, Debug)]
pub struct KLimited {
    k: usize,
    ann: Vec<KSet>,
}

impl KLimited {
    /// Runs the k-limited propagation over the subtransitive graph.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (a 0-limited analysis answers nothing).
    pub fn run(analysis: &Analysis, k: usize) -> KLimited {
        assert!(k > 0, "k must be positive");
        let n = analysis.node_count();
        let mut ann: Vec<KSet> = vec![KSet::Small(Vec::new()); n];
        let mut work: Vec<u32> = Vec::new();
        let mut queued = vec![false; n];
        for i in 0..n {
            let id = NodeId::from_index(i);
            if let Some(l) = analysis.label_of_node(id) {
                ann[i] = KSet::Small(vec![l]);
                work.push(i as u32);
                queued[i] = true;
            }
        }
        // Backwards propagation: a node's annotation absorbs its
        // successors' (successors point towards value sources).
        while let Some(i) = work.pop() {
            queued[i as usize] = false;
            let current = ann[i as usize].clone();
            for &p in analysis.preds(NodeId::from_index(i as usize)) {
                if ann[p as usize].merge(&current, k) && !queued[p as usize] {
                    queued[p as usize] = true;
                    work.push(p);
                }
            }
        }
        KLimited { k, ann }
    }

    /// The bound this analysis ran with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The annotation of an arbitrary node.
    pub fn of_node(&self, n: NodeId) -> &KSet {
        &self.ann[n.index()]
    }

    /// The k-limited `L(e)`.
    pub fn of_expr(&self, analysis: &Analysis, e: ExprId) -> &KSet {
        self.of_node(analysis.node_of_expr(e))
    }

    /// The k-limited call targets of application `app`, or `None` if it is
    /// not an application.
    pub fn call_targets(
        &self,
        program: &Program,
        analysis: &Analysis,
        app: ExprId,
    ) -> Option<&KSet> {
        match program.kind(app) {
            ExprKind::App { func, .. } => Some(self.of_expr(analysis, *func)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcfa_core::Analysis;
    use stcfa_lambda::Program;

    /// The reference semantics: truncate the full reachability answer.
    fn assert_matches_full(src: &str, k: usize) {
        let p = Program::parse(src).unwrap();
        let a = Analysis::run(&p).unwrap();
        let kl = KLimited::run(&a, k);
        for e in p.exprs() {
            let full = a.labels_of(e);
            let got = kl.of_expr(&a, e);
            if full.len() <= k {
                assert_eq!(
                    got.as_small(),
                    Some(full.as_slice()),
                    "k-limited disagrees at {e:?} in {src:?}"
                );
            } else {
                assert!(
                    got.is_many(),
                    "expected Many at {e:?} in {src:?}, got {got:?}"
                );
            }
        }
    }

    #[test]
    fn matches_truncated_full_analysis() {
        let corpus = [
            "(fn x => x x) (fn y => y)",
            "fun id x = x; val a = id (fn u => u); val b = id (fn v => v); a",
            "if true then fn a => a else if false then fn b => b else fn c => c",
            "let val t = fn s => s s in t (fn w => w) end",
            "#1 ((fn x => x), (fn y => y))",
        ];
        for src in corpus {
            for k in 1..=3 {
                assert_matches_full(src, k);
            }
        }
    }

    #[test]
    fn many_token_appears_when_sets_overflow() {
        // Four functions join at one variable; k = 2 must say Many.
        let src = "\
            fun id x = x;\n\
            val a = id (fn p => p);\n\
            val b = id (fn q => q);\n\
            val c = id (fn r => r);\n\
            val d = id (fn s => s);\n\
            a";
        let p = Program::parse(src).unwrap();
        let a = Analysis::run(&p).unwrap();
        let kl = KLimited::run(&a, 2);
        assert!(kl.of_expr(&a, p.root()).is_many());
        let kl4 = KLimited::run(&a, 4);
        assert_eq!(kl4.of_expr(&a, p.root()).as_small().unwrap().len(), 4);
    }

    #[test]
    fn unique_call_targets_for_inlining() {
        let src = "(fn x => x + 1) 2";
        let p = Program::parse(src).unwrap();
        let a = Analysis::run(&p).unwrap();
        let kl = KLimited::run(&a, 1);
        let t = kl.call_targets(&p, &a, p.root()).unwrap();
        assert_eq!(t.as_small().unwrap().len(), 1);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let p = Program::parse("1").unwrap();
        let a = Analysis::run(&p).unwrap();
        let _ = KLimited::run(&a, 0);
    }
}
