//! A small, fast, reproducible pseudo-random number generator.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded from a single
//! `u64` by running splitmix64 over it — the standard recipe for expanding
//! a small seed into well-mixed 256-bit state. It is deterministic across
//! platforms and Rust versions: the synthetic-program corpus generated
//! from a seed is pinned by snapshot tests, so any change to this module
//! is an observable, reviewed event.
//!
//! The API surface deliberately mirrors the subset of `rand::Rng` the
//! workspace used: [`Rng::seed_from_u64`], [`Rng::gen_range`] over
//! half-open and inclusive integer ranges, and [`Rng::gen_bool`].

use std::ops::{Range, RangeInclusive};

/// splitmix64 state step: returns the next output and advances `x`.
#[inline]
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ generator. Construct with [`Rng::seed_from_u64`].
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Builds a generator whose 256-bit state is the splitmix64 expansion
    /// of `seed`. Same seed, same stream, on every platform.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut x = seed;
        let s = [
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
        ];
        Rng { s }
    }

    /// A generator seeded from wall-clock entropy (used for novel property
    /// test cases; never for anything that must reproduce). The seed used
    /// is recoverable: the property runner reports it on failure.
    pub fn entropy_seed() -> u64 {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        // Mix in an address so two runners starting the same nanosecond
        // (or a platform with a coarse clock) still diverge.
        let marker = &nanos as *const u64 as u64;
        let mut x = nanos ^ marker.rotate_left(32);
        splitmix64(&mut x)
    }

    /// Next raw 64-bit output (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper bits of [`Rng::next_u64`]).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)` via rejection sampling (no modulo
    /// bias). `bound` must be non-zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty range");
        // Largest multiple of `bound` that fits, minus one: accept values
        // at or under it, so every residue class is equally likely.
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform sample from an integer range, half-open (`lo..hi`) or
    /// inclusive (`lo..=hi`). Panics on an empty range.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Derives an independent generator (splitmix64 over the next output),
    /// for handing a reproducible sub-stream to a child task.
    pub fn split(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }
}

/// Ranges an [`Rng`] can sample uniformly. Implemented for half-open and
/// inclusive ranges of the integer types the workspace uses.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let width = (self.end - self.start) as u64;
                self.start + rng.below(width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let width = (hi - lo) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(width + 1) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let width = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.below(width) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let width = (hi as $u).wrapping_sub(lo as $u) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(width + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors() {
        // xoshiro256++ seeded by splitmix64(0): pin the first outputs so
        // the stream can never silently change.
        let mut r = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = Rng::seed_from_u64(0);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again, "same seed, same stream");
        let mut r3 = Rng::seed_from_u64(1);
        assert_ne!(first[0], r3.next_u64(), "different seeds diverge");
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let a = r.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&b));
            let c = r.gen_range(0u64..1);
            assert_eq!(c, 0);
        }
    }

    #[test]
    fn all_residues_reachable() {
        let mut r = Rng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&b| b), "all of 0..10 drawn in 1000 tries");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "got {hits}");
        let mut r = Rng::seed_from_u64(13);
        assert_eq!((0..1000).filter(|_| r.gen_bool(0.0)).count(), 0);
        let mut r = Rng::seed_from_u64(13);
        assert_eq!((0..1000).filter(|_| r.gen_bool(1.0)).count(), 1000);
    }

    #[test]
    fn full_u64_range_does_not_overflow() {
        let mut r = Rng::seed_from_u64(17);
        let _ = r.gen_range(0u64..=u64::MAX);
        let _ = r.gen_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn split_streams_are_independent() {
        let mut a = Rng::seed_from_u64(19);
        let mut b = a.split();
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }
}
