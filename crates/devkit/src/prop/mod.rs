//! Minimal property-based testing: strategies, greedy shrinking, a
//! case-count config, and a persistent regression-seed file — enough to
//! host the workspace's four property suites without the `proptest` crate.
//!
//! # Model
//!
//! A [`Strategy`] describes how to *sample* a shrinkable representation
//! ([`Strategy::Repr`]) from an [`Rng`](crate::prng::Rng), how to
//! enumerate *smaller candidates* of a representation, and how to
//! *realize* the value the property actually consumes. Keeping the
//! representation separate from the value is what lets `prop_map`ped
//! strategies (e.g. a random graph built from `(node count, edge list)`)
//! shrink: the runner shrinks the representation and re-realizes.
//!
//! # Reproducibility
//!
//! Every test case is generated from a single `u64` case seed. On failure
//! the runner appends `cc <test name> <seed>` to
//! `tests/devkit-regressions.txt` in the owning crate, and every later run
//! replays saved seeds for that test *before* generating novel ones — the
//! same contract as proptest's `.proptest-regressions` files. Set
//! `STCFA_PROP_SEED=<u64>` to reproduce an entire run, or
//! `STCFA_PROP_CASES=<n>` to override case counts (e.g. a long soak).

mod runner;
mod strategy;

pub use runner::{run, ProptestConfig};
pub use strategy::{any, collection, Arbitrary, Just, Map, Strategy};

/// A property failure: an assertion message carried back to the runner
/// (which shrinks the input and reports the minimal failure).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold; the string explains why.
    Fail(String),
    /// The input should be discarded without counting (unused by the
    /// current suites, but part of the proptest-shaped API).
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure from any message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Result type property bodies produce (`Ok(())` = the case passed).
pub type TestCaseResult = Result<(), TestCaseError>;

/// Fails the surrounding property unless `cond` holds. Unlike `assert!`
/// this returns a [`TestCaseError`] instead of panicking, which shrinks
/// faster (no unwinding) and reports through the runner's machinery.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::prop::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the surrounding property unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), a, b
        );
    }};
}

/// Fails the surrounding property unless the two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "{}\n  both: {:?}", format!($($fmt)*), a);
    }};
}

/// Declares property tests. A drop-in adapter for the `proptest!` macro:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///
///     #[test]
///     fn addition_commutes(a in 0u64..100, b in 0u64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
///
/// Each declared function becomes a regular `#[test]` that samples the
/// configured number of cases, replays this crate's saved regression
/// seeds first, and shrinks failures greedily. The regression file lives
/// at `tests/devkit-regressions.txt` under the invoking crate's manifest
/// directory.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::prop::run(
                    stringify!($name),
                    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/devkit-regressions.txt"),
                    &$config,
                    ($($strat,)+),
                    |($($arg,)+)| -> $crate::prop::TestCaseResult {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::prop::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}
