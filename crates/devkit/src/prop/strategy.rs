//! Strategies: how to sample, shrink, and realize property-test inputs.

use std::fmt::Debug;
use std::ops::Range;

use crate::prng::Rng;

/// A recipe for producing values of [`Strategy::Value`].
///
/// Sampling and shrinking operate on [`Strategy::Repr`], the shrinkable
/// *representation*; [`Strategy::realize`] converts a representation into
/// the value handed to the property. For primitive strategies the two
/// coincide; for `prop_map` the representation stays the pre-map input so
/// mapped values shrink through their constructor.
pub trait Strategy {
    /// The shrinkable representation. `Debug` so minimal failures print.
    type Repr: Clone + Debug;
    /// The value the property function receives.
    type Value;

    /// Draws a representation from the generator.
    fn sample(&self, rng: &mut Rng) -> Self::Repr;

    /// Candidate *strictly simpler* representations, best-first. The
    /// runner greedily walks this list, so order is the shrink heuristic.
    fn shrinks(&self, repr: &Self::Repr) -> Vec<Self::Repr>;

    /// Converts a representation into a property input.
    fn realize(&self, repr: &Self::Repr) -> Self::Value;

    /// Maps the produced value through `f`, keeping shrinking at the
    /// representation level (proptest's `prop_map`).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Types with a canonical full-range strategy, for `any::<T>()`.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical full-range strategy for `T` — `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Shrink candidates for an unsigned magnitude: 0, then successive
/// halvings toward the value, then the predecessor. Best-first (the
/// runner keeps the first candidate that still fails).
fn shrink_u64_toward(lo: u64, v: u64) -> Vec<u64> {
    let mut out = Vec::new();
    if v == lo {
        return out;
    }
    out.push(lo);
    let mut delta = v - lo;
    // Halve the distance: lo + d/2, lo + d*3/4, ... approaching v.
    while delta > 1 {
        delta /= 2;
        out.push(v - delta);
    }
    out.dedup();
    out
}

/// Full-range `u64` strategy (shrinks toward 0).
#[derive(Clone, Copy, Debug)]
pub struct AnyU64;

impl Strategy for AnyU64 {
    type Repr = u64;
    type Value = u64;
    fn sample(&self, rng: &mut Rng) -> u64 {
        rng.next_u64()
    }
    fn shrinks(&self, repr: &u64) -> Vec<u64> {
        shrink_u64_toward(0, *repr)
    }
    fn realize(&self, repr: &u64) -> u64 {
        *repr
    }
}

impl Arbitrary for u64 {
    type Strategy = AnyU64;
    fn arbitrary() -> AnyU64 {
        AnyU64
    }
}

/// Full-range `bool` strategy (shrinks toward `false`).
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Repr = bool;
    type Value = bool;
    fn sample(&self, rng: &mut Rng) -> bool {
        rng.gen_bool(0.5)
    }
    fn shrinks(&self, repr: &bool) -> Vec<bool> {
        if *repr {
            vec![false]
        } else {
            vec![]
        }
    }
    fn realize(&self, repr: &bool) -> bool {
        *repr
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Repr = $t;
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrinks(&self, repr: &$t) -> Vec<$t> {
                shrink_u64_toward(self.start as u64, *repr as u64)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
            fn realize(&self, repr: &$t) -> $t {
                *repr
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

/// A constant strategy: always the same value, never shrinks.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Repr = ();
    type Value = T;
    fn sample(&self, _rng: &mut Rng) {}
    fn shrinks(&self, _repr: &()) -> Vec<()> {
        vec![]
    }
    fn realize(&self, _repr: &()) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Repr = S::Repr;
    type Value = T;
    fn sample(&self, rng: &mut Rng) -> S::Repr {
        self.inner.sample(rng)
    }
    fn shrinks(&self, repr: &S::Repr) -> Vec<S::Repr> {
        self.inner.shrinks(repr)
    }
    fn realize(&self, repr: &S::Repr) -> T {
        (self.f)(self.inner.realize(repr))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Repr = ($($name::Repr,)+);
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut Rng) -> Self::Repr {
                ($(self.$idx.sample(rng),)+)
            }
            fn shrinks(&self, repr: &Self::Repr) -> Vec<Self::Repr> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrinks(&repr.$idx) {
                        let mut next = repr.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
            fn realize(&self, repr: &Self::Repr) -> Self::Value {
                ($(self.$idx.realize(&repr.$idx),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Collection strategies (`collection::vec`), mirroring
/// `proptest::collection`.
pub mod collection {
    use super::*;

    /// A vector of `element` samples with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Repr = Vec<S::Repr>;
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut Rng) -> Vec<S::Repr> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }

        fn shrinks(&self, repr: &Vec<S::Repr>) -> Vec<Vec<S::Repr>> {
            let min = self.len.start;
            let mut out: Vec<Vec<S::Repr>> = Vec::new();
            let n = repr.len();
            // 1. Structural shrinks first: empty, halves, then dropping
            //    single elements (cap the fan-out on long vectors).
            if n > min {
                if min == 0 && n > 1 {
                    out.push(Vec::new());
                }
                if n / 2 >= min && n / 2 < n {
                    out.push(repr[..n / 2].to_vec());
                    out.push(repr[n - n / 2..].to_vec());
                }
                let step = (n / 16).max(1);
                for i in (0..n).step_by(step) {
                    let mut next = repr.clone();
                    next.remove(i);
                    if next.len() >= min {
                        out.push(next);
                    }
                }
            }
            // 2. Element-wise shrinks, first candidate per slot.
            for (i, r) in repr.iter().enumerate().take(16) {
                if let Some(cand) = self.element.shrinks(r).into_iter().next() {
                    let mut next = repr.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }

        fn realize(&self, repr: &Vec<S::Repr>) -> Vec<S::Value> {
            repr.iter().map(|r| self.element.realize(r)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_strategy_samples_in_bounds() {
        let s = 5usize..20;
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let r = s.sample(&mut rng);
            assert!((5..20).contains(&r));
            for c in s.shrinks(&r) {
                assert!((5..20).contains(&c), "shrink {c} escaped range");
                assert!(c < r, "shrink must strictly decrease");
            }
        }
    }

    #[test]
    fn u64_shrinks_reach_zero() {
        let s = AnyU64;
        let shrinks = s.shrinks(&1024);
        assert_eq!(shrinks.first(), Some(&0));
        assert!(shrinks.iter().all(|&c| c < 1024));
        assert!(s.shrinks(&0).is_empty());
    }

    #[test]
    fn vec_shrinks_respect_min_len() {
        let s = collection::vec(0usize..10, 2..8);
        let mut rng = Rng::seed_from_u64(2);
        for _ in 0..200 {
            let r = s.sample(&mut rng);
            assert!((2..8).contains(&r.len()));
            for c in s.shrinks(&r) {
                assert!(c.len() >= 2, "shrink below min length");
            }
        }
    }

    #[test]
    fn map_shrinks_through_constructor() {
        let s = (1usize..50).prop_map(|n| vec![0u8; n]);
        let mut rng = Rng::seed_from_u64(3);
        let repr = s.sample(&mut rng);
        let v = s.realize(&repr);
        assert_eq!(v.len(), repr);
        for c in s.shrinks(&repr) {
            assert!(s.realize(&c).len() < v.len());
        }
    }

    #[test]
    fn tuple_strategy_shrinks_componentwise() {
        let s = (0usize..10, 0usize..10);
        let shrinks = s.shrinks(&(4, 7));
        assert!(!shrinks.is_empty());
        for (a, b) in shrinks {
            assert!((a < 4 && b == 7) || (a == 4 && b < 7));
        }
    }
}
