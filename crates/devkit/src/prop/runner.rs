//! The property-test runner: case generation, panic capture, greedy
//! shrinking, and the persistent regression-seed file.

use std::cell::Cell;
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::Once;

use super::{Strategy, TestCaseError, TestCaseResult};
use crate::prng::Rng;

/// Per-suite configuration; the name mirrors proptest so existing
/// `#![proptest_config(ProptestConfig::with_cases(n))]` lines port
/// verbatim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Novel cases to generate per test (saved regression seeds run in
    /// addition to — and before — these).
    pub cases: u32,
    /// Upper bound on accepted shrink steps before reporting.
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    /// A config running `cases` novel cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 4096,
        }
    }
}

thread_local! {
    /// Set while the runner executes a property body, so the global panic
    /// hook stays quiet for panics the runner catches and reports itself.
    static CAPTURING: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that suppresses output for
/// panics raised inside a property body on this thread. Other threads and
/// non-property panics keep the previous hook's behaviour.
fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !CAPTURING.with(|c| c.get()) {
                previous(info);
            }
        }));
    });
}

/// Runs `prop` on the realized value, converting panics into failures.
fn check<S: Strategy>(
    strategy: &S,
    repr: &S::Repr,
    prop: &impl Fn(S::Value) -> TestCaseResult,
) -> TestCaseResult {
    let value = strategy.realize(repr);
    CAPTURING.with(|c| c.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| prop(value)));
    CAPTURING.with(|c| c.set(false));
    match outcome {
        Ok(r) => r,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_owned()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "panicked with a non-string payload".to_owned()
            };
            Err(TestCaseError::fail(format!("panic: {msg}")))
        }
    }
}

/// Greedily shrinks a failing representation: repeatedly adopt the first
/// candidate that still fails, until no candidate fails or the iteration
/// budget runs out. Returns the minimal failure and its error.
fn shrink<S: Strategy>(
    strategy: &S,
    mut repr: S::Repr,
    mut err: TestCaseError,
    max_iters: u32,
    prop: &impl Fn(S::Value) -> TestCaseResult,
) -> (S::Repr, TestCaseError, u32) {
    let mut steps = 0u32;
    let mut tried = 0u32;
    'outer: loop {
        for cand in strategy.shrinks(&repr) {
            tried += 1;
            if tried > max_iters {
                break 'outer;
            }
            if let Err(e) = check(strategy, &cand, prop) {
                repr = cand;
                err = e;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (repr, err, steps)
}

/// Parses the regression file, returning the saved seeds for `test_name`.
/// Lines are `cc <test name> <seed>`; `#` starts a comment.
fn saved_seeds(path: &Path, test_name: &str) -> Vec<u64> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if parts.next() != Some("cc") {
            continue;
        }
        if parts.next() != Some(test_name) {
            continue;
        }
        if let Some(Ok(seed)) = parts.next().map(str::parse) {
            out.push(seed);
        }
    }
    out
}

/// Appends a failing seed to the regression file (creating it, with its
/// header, on first use). Best-effort: failures to persist must not mask
/// the test failure itself.
fn save_seed(path: &Path, test_name: &str, seed: u64) {
    if saved_seeds(path, test_name).contains(&seed) {
        return;
    }
    let header = "\
# Seeds for property-test cases that failed in the past, one per line:
#     cc <test name> <case seed>
# The devkit prop runner replays matching seeds before generating novel
# cases. Check this file in so every checkout re-runs old failures.
# (Format documented in docs/DEVKIT.md.)
";
    let existed = path.exists();
    let Ok(mut f) = fs::OpenOptions::new().create(true).append(true).open(path) else {
        return;
    };
    if !existed {
        let _ = f.write_all(header.as_bytes());
    }
    let _ = writeln!(f, "cc {test_name} {seed}");
}

/// The per-case seed stream: decorrelates consecutive cases so `base` and
/// `base + 1` as `STCFA_PROP_SEED` give unrelated runs.
fn case_seed(base: u64, index: u64) -> u64 {
    let mut x = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^ (x >> 31)
}

/// Runs one property: replayed regression seeds first, then `cases` novel
/// cases. Panics (failing the enclosing `#[test]`) on the first failing
/// case, after shrinking it and persisting its seed.
pub fn run<S: Strategy>(
    test_name: &str,
    regressions_path: &str,
    config: &ProptestConfig,
    strategy: S,
    prop: impl Fn(S::Value) -> TestCaseResult,
) {
    install_quiet_hook();
    let path = Path::new(regressions_path);

    let report_failure = |seed: u64, origin: &str, repr: S::Repr, err: TestCaseError| {
        save_seed(path, test_name, seed);
        let (min_repr, min_err, steps) =
            shrink(&strategy, repr, err, config.max_shrink_iters, &prop);
        let mut msg = String::new();
        let _ = writeln!(
            msg,
            "property `{test_name}` failed ({origin}, case seed {seed})"
        );
        let _ = writeln!(
            msg,
            "minimal input after {steps} shrink step(s): {min_repr:?}"
        );
        let _ = writeln!(msg, "error: {min_err}");
        let _ = writeln!(
            msg,
            "seed saved to {regressions_path}; re-running this test replays it \
             first. On another checkout, add the line `cc {test_name} {seed}` \
             to that file (see docs/DEVKIT.md)"
        );
        panic!("{msg}");
    };

    // 1. Replay saved failures for this test before anything novel.
    for seed in saved_seeds(path, test_name) {
        let mut rng = Rng::seed_from_u64(seed);
        let repr = strategy.sample(&mut rng);
        if let Err(e) = check(&strategy, &repr, &prop) {
            report_failure(seed, "saved regression", repr, e);
        }
    }

    // 2. Novel cases. STCFA_PROP_SEED pins the run; STCFA_PROP_CASES
    //    scales it (e.g. a soak run) without touching source.
    let base = std::env::var("STCFA_PROP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(Rng::entropy_seed);
    let cases = std::env::var("STCFA_PROP_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(config.cases);
    for i in 0..cases {
        let seed = case_seed(base, i as u64);
        let mut rng = Rng::seed_from_u64(seed);
        let repr = strategy.sample(&mut rng);
        if let Err(e) = check(&strategy, &repr, &prop) {
            report_failure(seed, "novel case", repr, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_regressions(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("stcfa-devkit-test-{name}-{}", std::process::id()));
        let _ = fs::remove_file(&p);
        p
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let path = tmp_regressions("pass");
        let count = std::cell::Cell::new(0u32);
        run(
            "always_holds",
            path.to_str().unwrap(),
            &ProptestConfig::with_cases(50),
            0u64..100,
            |v| {
                count.set(count.get() + 1);
                assert!(v < 100);
                Ok(())
            },
        );
        assert_eq!(count.get(), 50);
        assert!(!path.exists(), "no regression entry for a passing property");
    }

    #[test]
    fn failing_property_shrinks_and_persists() {
        let path = tmp_regressions("fail");
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            run(
                "fails_at_ten_plus",
                path.to_str().unwrap(),
                &ProptestConfig::with_cases(200),
                0u64..1000,
                |v| {
                    if v >= 10 {
                        return Err(TestCaseError::fail(format!("{v} too big")));
                    }
                    Ok(())
                },
            );
        }));
        let msg = match outcome {
            Err(p) => *p.downcast::<String>().expect("string panic"),
            Ok(()) => panic!("property unexpectedly passed"),
        };
        // Greedy shrinking must land exactly on the boundary.
        assert!(msg.contains("minimal input after"), "{msg}");
        assert!(msg.contains(": 10"), "expected shrink to 10, got: {msg}");
        // And the seed must now be saved and replayed first.
        let saved = saved_seeds(&path, "fails_at_ten_plus");
        assert_eq!(saved.len(), 1);
        assert!(saved_seeds(&path, "some_other_test").is_empty());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn panics_are_captured_and_shrunk() {
        let path = tmp_regressions("panic");
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            run(
                "panics_on_big",
                path.to_str().unwrap(),
                &ProptestConfig::with_cases(100),
                0u64..1000,
                |v| {
                    assert!(v < 5, "boom at {v}");
                    Ok(())
                },
            );
        }));
        let msg = match outcome {
            Err(p) => *p.downcast::<String>().expect("string panic"),
            Ok(()) => panic!("property unexpectedly passed"),
        };
        assert!(msg.contains("panic: boom at 5"), "{msg}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn saved_seeds_parse_format() {
        let path = tmp_regressions("parse");
        fs::write(
            &path,
            "# comment\n\ncc alpha 42\ncc beta 7\ncc alpha 99\nnot a cc line\n",
        )
        .unwrap();
        assert_eq!(saved_seeds(&path, "alpha"), vec![42, 99]);
        assert_eq!(saved_seeds(&path, "beta"), vec![7]);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn env_seed_reproduces_runs() {
        // Two runs with the same base seed must see identical case values.
        let path = tmp_regressions("repro");
        let collect = |base: u64| {
            let mut seen = Vec::new();
            for i in 0..20u64 {
                let mut rng = Rng::seed_from_u64(case_seed(base, i));
                seen.push((0u64..1_000_000).sample(&mut rng));
            }
            seen
        };
        assert_eq!(collect(5), collect(5));
        assert_ne!(collect(5), collect(6));
        let _ = fs::remove_file(&path);
    }
}
